//! Fairness staircase (Fig. 13e): four senders join a shared 100 Gb/s
//! bottleneck one interval apart and leave in join order. A fair CC gives
//! every active flow an equal share in every period.
//!
//! ```sh
//! cargo run --release --example fairness
//! ```

use fncc::prelude::*;

fn main() {
    println!("Fairness staircase — 4 staggered flows on a shared bottleneck\n");
    for cc in [CcKind::Fncc, CcKind::Hpcc] {
        let r = fairness_staircase(cc, 4, TimeDelta::from_ms(1), 1);
        print!("{:<6} Jain per period:", cc.name());
        for j in &r.jain_per_period {
            print!(" {j:.3}");
        }
        println!("  (all flows drained: {})", r.all_finished);
    }

    // Show the staircase itself: mean rate of each flow per period (FNCC).
    let r = fairness_staircase(CcKind::Fncc, 4, TimeDelta::from_ms(1), 1);
    println!("\nFNCC mean rate (Gb/s) per flow per 1 ms period:");
    println!(
        "{:<8} {:>8} {:>8} {:>8} {:>8}",
        "period", "flow0", "flow1", "flow2", "flow3"
    );
    for p in 0..7u64 {
        let lo = SimTime::from_ms(p);
        let hi = SimTime::from_ms(p + 1);
        print!("{p:<8}");
        for f in &r.flow_rates_gbps {
            print!(" {:>8.1}", f.mean_in(lo, hi));
        }
        println!();
    }
    println!(
        "\nExpected staircase: 100 -> 50 -> 33 -> 25 Gb/s as flows join, reversed as they leave."
    );
}
