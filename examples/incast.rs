//! Incast: N senders dump a burst at one receiver — the classic last-hop
//! congestion workload that motivates FNCC's LHCS (Algorithm 2).
//!
//! Senders sit on a star, so the receiver link is the flows' *last hop*.
//! With LHCS the receiver's concurrent-flow count N lets every sender jump
//! straight to `B·RTT·β/N`; without it they converge step by step.
//!
//! ```sh
//! cargo run --release --example incast
//! ```

use fncc::cc::{CcAlgo, FnccConfig};
use fncc::core::sim::SimBuilder;
use fncc::prelude::*;

fn run(n_senders: u32, lhcs: bool) -> (f64, f64, f64, u64, bool) {
    let line = Bandwidth::gbps(100);
    let topo = Topology::star(n_senders + 1, line, TimeDelta::from_ns(1500));
    let receiver = HostId(n_senders);
    let base_rtt = topo.base_rtt(1518, 70);
    let algo = if lhcs {
        CcAlgo::Fncc(FnccConfig::paper_default(line, base_rtt))
    } else {
        CcAlgo::Fncc(FnccConfig::without_lhcs(line, base_rtt))
    };

    let size = 2_000_000u64; // 2 MB per sender
    let flows: Vec<FlowSpec> = (0..n_senders)
        .map(|i| FlowSpec {
            id: FlowId(i),
            src: HostId(i),
            dst: receiver,
            size,
            start: SimTime::ZERO,
        })
        .collect();

    let port = n_senders as u8; // receiver's port on the star switch
    let horizon = SimTime::from_ms(10);
    let mut sim = SimBuilder::with_algo(topo, algo)
        .flows(flows)
        .sample(TimeDelta::from_us(1), horizon)
        .watch_queue(SwitchId(0), port, "q")
        .build();
    let all_done = sim.run_to_completion(TimeDelta::from_us(100), horizon);

    let telem = sim.telemetry();
    let q = telem.queue_series(SwitchId(0), port).unwrap();
    let peak_kb = q.max() / 1024.0;
    let last_fct_us = telem
        .flow_records()
        .filter_map(|r| r.fct())
        .map(|d| d.as_us_f64())
        .fold(0.0, f64::max);
    // Standing queue once the initial synchronized burst has passed — this
    // is what LHCS drains (β < 1 under-utilises until the queue empties).
    let standing_kb =
        q.mean_in(SimTime::from_us(150), SimTime::from_us(last_fct_us as u64)) / 1024.0;
    let triggers: u64 = (0..n_senders)
        .map(|i| sim.host(HostId(i)).lhcs_triggers(FlowId(i)).unwrap_or(0))
        .sum();
    (peak_kb, standing_kb, last_fct_us, triggers, all_done)
}

fn main() {
    println!("Incast: N x 2MB -> one receiver (star, 100 Gb/s)\n");
    println!(
        "{:<4} {:<10} {:>14} {:>17} {:>12} {:>14} {:>6}",
        "N", "LHCS", "peak_queue_KB", "standing_queue_KB", "last_FCT_us", "lhcs_triggers", "done"
    );
    for n in [4u32, 8, 16] {
        for lhcs in [false, true] {
            let (peak, standing, fct, trig, done) = run(n, lhcs);
            println!(
                "{:<4} {:<10} {:>14.1} {:>17.1} {:>12.1} {:>14} {:>6}",
                n,
                if lhcs { "with" } else { "without" },
                peak,
                standing,
                fct,
                trig,
                done
            );
        }
    }
    println!(
        "\nThe initial synchronized burst sets the peak (all windows start at one\n\
         BDP), but LHCS drains the *standing* queue by pinning every sender at\n\
         the fair share B*RTT*beta/N with beta < 1."
    );
}
