//! PFC pressure at high line rates (§2.3 / Fig. 3): slow congestion control
//! lets queues cross the PFC threshold and pause upstream senders; pause
//! storms are exactly what fast notification avoids.
//!
//! ```sh
//! cargo run --release --example pfc_pause
//! ```

use fncc::prelude::*;

fn main() {
    println!("PFC pause frames at the congestion point (two elephants, join at 300 us)\n");
    println!(
        "{:<6} {:>8} {:>14} {:>14} {:>10}",
        "cc", "Gb/s", "peak_queue_KB", "pause_frames", "drops"
    );
    for gbps in [100u64, 200, 400] {
        for cc in [CcKind::Fncc, CcKind::Hpcc, CcKind::Dcqcn] {
            let spec = MicrobenchSpec {
                cc,
                line_gbps: gbps,
                ..Default::default()
            };
            let r = elephant_dumbbell(&spec);
            println!(
                "{:<6} {:>8} {:>14.1} {:>14} {:>10}",
                cc.name(),
                gbps,
                r.peak_queue_kb,
                r.pause_frames,
                0 // PFC keeps the fabric lossless; drops are always zero here
            );
        }
        println!();
    }
    println!("DCQCN's late reaction pushes per-ingress occupancy past the 500 KB");
    println!("PFC threshold at 200/400 Gb/s; FNCC never pauses.");
}
