//! Notification latency (Figs. 2 & 12): how stale is the INT a sender acts
//! on, per hop, under HPCC (data-path insertion) vs FNCC (ACK-path
//! insertion)? Compares the closed-form model with live measurement.
//!
//! ```sh
//! cargo run --release --example notification_latency
//! ```

use fncc::prelude::*;

fn main() {
    let model =
        notification_gain_model(3, Bandwidth::gbps(100), TimeDelta::from_ns(1500), 1518, 70);

    let f = elephant_dumbbell(&MicrobenchSpec {
        cc: CcKind::Fncc,
        ..Default::default()
    });
    let h = elephant_dumbbell(&MicrobenchSpec {
        cc: CcKind::Hpcc,
        ..Default::default()
    });

    println!("INT staleness when the sender consumes it (100 Gb/s dumbbell, 3 switches)\n");
    println!(
        "{:<6} {:>14} {:>14} {:>16} {:>16}",
        "hop", "model_HPCC_us", "model_FNCC_us", "measured_HPCC_us", "measured_FNCC_us"
    );
    for g in &model {
        println!(
            "{:<6} {:>14.2} {:>14.2} {:>16.2} {:>16.2}",
            format!("sw{}", g.hop + 1),
            g.hpcc_age.as_us_f64(),
            g.fncc_age.as_us_f64(),
            h.mean_int_age_us.get(g.hop).copied().unwrap_or(f64::NAN),
            f.mean_int_age_us.get(g.hop).copied().unwrap_or(f64::NAN),
        );
    }
    println!(
        "\nFNCC's gain shrinks towards the last hop — exactly why the paper\n\
         adds the Last-Hop Congestion Speedup (Algorithm 2) there."
    );
    println!(
        "\nMeasured sender reaction after the 300 us join: FNCC {} us, HPCC {} us.",
        f.reaction_us
            .map(|x| format!("{:.0}", x - 300.0))
            .unwrap_or_else(|| "-".into()),
        h.reaction_us
            .map(|x| format!("{:.0}", x - 300.0))
            .unwrap_or_else(|| "-".into()),
    );
}
