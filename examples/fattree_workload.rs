//! A small fat-tree datacenter under the paper's WebSearch workload:
//! Poisson arrivals at 50% load, symmetric ECMP, FCT-slowdown report
//! (a pocket version of Fig. 14).
//!
//! ```sh
//! cargo run --release --example fattree_workload
//! ```

use fncc::prelude::*;

fn main() {
    println!("Fat-tree (k=4, 16 hosts) — WebSearch at 50% load, 150 flows/scheme\n");
    let mut rows: Vec<(CcKind, Vec<SlowdownStats>)> = Vec::new();
    for cc in [CcKind::Dcqcn, CcKind::Hpcc, CcKind::Fncc] {
        let spec = WorkloadSpec {
            cc,
            workload: Workload::WebSearch,
            load: 0.5,
            n_flows: 150,
            seeds: vec![7],
            k: 4,
            line_gbps: 100,
        };
        let r = fattree_workload(&spec);
        assert_eq!(r.unfinished, vec![0], "{cc:?} left flows unfinished");
        rows.push((cc, r.rows));
    }

    println!(
        "{:<10} {:>10} {:>10} {:>10}   (average FCT slowdown per size bucket)",
        "flow_size", "DCQCN", "HPCC", "FNCC"
    );
    let buckets = Workload::WebSearch.buckets();
    for (b, upper) in buckets.iter().enumerate() {
        if rows.iter().all(|(_, r)| r[b].count == 0) {
            continue;
        }
        println!(
            "{:<10} {:>10.2} {:>10.2} {:>10.2}",
            fncc::workloads::distributions::bucket_label(*upper),
            rows[0].1[b].avg,
            rows[1].1[b].avg,
            rows[2].1[b].avg,
        );
    }
    println!("\nFNCC ≤ HPCC ≪ DCQCN across buckets is the Fig. 14 shape.");
}
