//! A small fat-tree datacenter under the paper's WebSearch workload:
//! Poisson arrivals at 50% load, symmetric ECMP, FCT-slowdown report
//! (a pocket version of Fig. 14) — executed through the unified
//! `Scenario` → `Backend` → `RunReport` path, once per engine.
//!
//! ```sh
//! cargo run --release --example fattree_workload
//! ```

use fncc::prelude::*;

fn main() {
    println!("Fat-tree (k=4, 16 hosts) — WebSearch at 50% load, 150 flows/scheme\n");
    let scenario = |cc| {
        let mut spec = WorkloadSpec::new(cc, Workload::WebSearch);
        spec.n_flows = 150;
        spec.seeds = vec![7];
        spec.k = 4;
        spec.scenario()
    };

    let mut rows: Vec<(CcKind, RunReport)> = Vec::new();
    for cc in [CcKind::Dcqcn, CcKind::Hpcc, CcKind::Fncc] {
        let r = run_scenario(&scenario(cc), SimBackend::Packet);
        assert_eq!(r.unfinished, vec![0], "{cc:?} left flows unfinished");
        rows.push((cc, r));
    }

    println!(
        "{:<10} {:>10} {:>10} {:>10}   (average FCT slowdown per size bucket)",
        "flow_size", "DCQCN", "HPCC", "FNCC"
    );
    let buckets = Workload::WebSearch.buckets();
    for (b, upper) in buckets.iter().enumerate() {
        if rows.iter().all(|(_, r)| r.slowdowns[b].count == 0) {
            continue;
        }
        println!(
            "{:<10} {:>10.2} {:>10.2} {:>10.2}",
            fncc::workloads::distributions::bucket_label(*upper),
            rows[0].1.slowdowns[b].avg,
            rows[1].1.slowdowns[b].avg,
            rows[2].1.slowdowns[b].avg,
        );
    }
    println!("\nFNCC ≤ HPCC ≪ DCQCN across buckets is the Fig. 14 shape.");

    // The same description on the fluid fast path: identical flow sets,
    // a fraction of the events.
    let fncc_fluid = run_scenario(&scenario(CcKind::Fncc), SimBackend::Fluid);
    println!(
        "fluid cross-check: FNCC mean slowdown {:.2} (packet {:.2}) in {} events (packet {})",
        fncc_fluid.mean_slowdown().unwrap(),
        rows[2].1.mean_slowdown().unwrap(),
        fncc_fluid.events,
        rows[2].1.events,
    );
}
