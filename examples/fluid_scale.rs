//! The fluid backend at scale: 100k+ flows on the paper's k=8 fat-tree
//! (128 hosts, 100 Gb/s), completing in seconds — five to six orders of
//! magnitude beyond what the packet DES backend can touch.
//!
//! ```text
//! cargo run --release --example fluid_scale
//! ```

use fncc::cc::CcKind;
use fncc::des::TimeDelta;
use fncc::net::ids::HostId;
use fncc::net::topology::Topology;
use fncc::net::units::Bandwidth;
use fncc::transport::FlowSpec;
use fncc_fluid::{scenarios, FluidSim, Framing, RateModel};
use std::time::Instant;

fn run(name: &str, topo: &Topology, flows: Vec<FlowSpec>) {
    let n = flows.len();
    let t0 = Instant::now();
    let result = FluidSim::new(topo.clone(), RateModel::paper_default(CcKind::Fncc))
        .flows(flows)
        .run()
        .expect("scenario has no zero-capacity links");
    let wall = t0.elapsed().as_secs_f64();
    assert!(
        result.telemetry.all_flows_finished(),
        "{name}: flows left unfinished"
    );
    println!(
        "{name:<28} {n:>8} flows  {wall:>6.2}s wall  {:>8.0} flows/s  peak {:>6} active  \
         sim horizon {:.1} ms  mean slowdown {:.2}  ({} warm / {} full solves)",
        n as f64 / wall,
        result.peak_active,
        result.horizon.as_secs_f64() * 1e3,
        result.mean_slowdown(topo, Framing::default()),
        result.incremental_solves,
        result.full_solves,
    );
}

fn main() {
    let line = Bandwidth::gbps(100);
    let topo = Topology::fat_tree(8, line, TimeDelta::from_ns(1500));
    println!(
        "fluid backend on fat-tree k=8 ({} hosts, {} switches), FNCC rate model\n",
        topo.n_hosts,
        topo.n_switches()
    );

    // 1. 100k flows of random-permutation waves (wave events invalidate
    //    most of the solution, so this exercises the full-solve fallback).
    run(
        "permutation x782 waves",
        &topo,
        scenarios::permutation_waves(topo.n_hosts, 100_000, 782, TimeDelta::from_us(50), 1),
    );

    // 2. Incast storms: 100 senders slam one host, 1000 waves (100k flows).
    run(
        "incast storm 100-to-1",
        &topo,
        scenarios::incast_storm(
            topo.n_hosts,
            HostId(0),
            100,
            100_000,
            1000,
            TimeDelta::from_us(200),
        ),
    );

    // 3. Heavy-tailed Poisson arrivals (the §5.5 workload, fluid scale) —
    //    the warm-start acceptance run: single-flow churn events where the
    //    incremental allocator re-freezes only the affected residual.
    run(
        "web-search poisson 50%",
        &topo,
        scenarios::poisson_trace(
            topo.n_hosts,
            line,
            0.5,
            100_000,
            scenarios::Trace::WebSearch,
            1,
        ),
    );

    println!("\n(the packet DES backend runs ~400 such flows per seed in comparable wall time)");
}
