//! The unified Scenario API end to end: describe an experiment as a value,
//! serialize it to JSON (the `fncc-repro run` file format), and execute the
//! same description on both engines.
//!
//! The scenario here — an incast storm on a fat-tree — is one the paper's
//! harness could not express before the API redesign; `scenarios/` ships
//! this and an oversubscribed leaf-spine as ready-to-run files.
//!
//! ```sh
//! cargo run --release --example scenario
//! ```

use fncc::prelude::*;

fn main() {
    let scenario = Scenario {
        probes: ProbeSpec::micro(1000, 2),
        stop: StopCondition::Drain { cap_ms: 50 },
        ..Scenario::new(
            "incast-fattree-demo",
            TopologySpec::FatTree { k: 4 },
            TrafficSpec::Incast {
                receiver: 0,
                fan_in: 12,
                size: 200_000,
                waves: 3,
                gap_us: 100,
            },
            CcKind::Fncc,
        )
    };

    println!("--- scenario file (fncc-repro run <file.json>) ---");
    print!("{}", scenario.to_json());

    // One description, two engines.
    for backend in [SimBackend::Packet, SimBackend::Fluid] {
        println!("\n--- {backend} backend ---");
        let report = run_scenario(&scenario, backend);
        report.print_summary();
    }

    println!(
        "\nThe packet engine replays every frame (PFC, INT, LHCS); the fluid\n\
         engine water-fills max-min rates between flow events. Same flows,\n\
         same report format, orders of magnitude apart in cost."
    );
}
