//! Quickstart: the paper's §5.1 microbenchmark in ~20 lines.
//!
//! Two elephant flows share the dumbbell of Fig. 10; the second joins at
//! 300 µs. We run FNCC, HPCC and DCQCN and print how fast each sender
//! reacted and how deep the bottleneck queue got.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fncc::prelude::*;

fn main() {
    println!("FNCC quickstart — two elephants on a 100 Gb/s dumbbell\n");
    println!(
        "{:<6} {:>12} {:>15} {:>10} {:>8}",
        "cc", "reaction_us", "peak_queue_KB", "mean_util", "pauses"
    );
    for cc in [CcKind::Fncc, CcKind::Hpcc, CcKind::Dcqcn] {
        let spec = MicrobenchSpec {
            cc,
            ..Default::default()
        };
        let r = elephant_dumbbell(&spec);
        println!(
            "{:<6} {:>12} {:>15.1} {:>10.3} {:>8}",
            cc.name(),
            r.reaction_us
                .map(|x| format!("{x:.0}"))
                .unwrap_or_else(|| "-".into()),
            r.peak_queue_kb,
            r.mean_util_after_join,
            r.pause_frames,
        );
    }
    println!(
        "\nThe join happens at 300 us; FNCC's ACK-path INT lets the sender\n\
         react sub-RTT, before HPCC, and far before DCQCN's CNP loop."
    );
}
