//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! provides exactly the surface the workspace uses: [`rngs::SmallRng`]
//! (xoshiro256++, the same algorithm the real `SmallRng` uses on 64-bit
//! targets), the [`Rng`] / [`RngCore`] / [`SeedableRng`] traits with the
//! `gen`, `gen_range`, `next_u32`/`next_u64`/`fill_bytes` subset, and
//! [`Error`]. Distribution quality matches the upstream algorithm; the
//! concrete streams need not match upstream bit-for-bit (all reproducibility
//! guarantees in this workspace are pinned on `fncc_des::rng::splitmix64`
//! known-answer tests, not on `rand` internals).

use core::fmt;
use core::ops::Range;

/// Error type returned by the fallible `RngCore` methods. The shim's
/// generators are infallible, so this is never constructed.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rng error (unreachable in the vendored shim)")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: raw integer output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
    /// Fallible fill; infallible here.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (expanded internally).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Lemire-style widening multiply; bias is < 2^-64 per draw
                // and irrelevant for simulation workloads.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as $t;
                self.start + hi
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}

impl_signed_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of type `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Uniform value in `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind the real crate's 64-bit
    /// `SmallRng`: tiny state, excellent statistical quality, very fast.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(z: &mut u64) -> u64 {
        *z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = *z;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut z = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut z);
            }
            // All-zero state is the one forbidden fixpoint.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_and_uniformish() {
        let mut r = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x: u64 = r.gen_range(5u64..17);
            assert!((5..17).contains(&x));
            let y: usize = r.gen_range(0usize..3);
            assert!(y < 3);
            let z: f64 = r.gen_range(-2.0f64..4.0);
            assert!((-2.0..4.0).contains(&z));
        }
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        assert!(r.try_fill_bytes(&mut buf).is_ok());
    }
}
