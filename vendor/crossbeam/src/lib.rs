//! Offline stand-in for `crossbeam`, backed by `std::thread::scope`
//! (stable since Rust 1.63, which made crossbeam's scoped threads largely
//! redundant). Only the `thread::scope` + `Scope::spawn` subset the
//! workspace uses is provided.

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// A handle through which scoped threads are spawned.
    ///
    /// Mirrors `crossbeam::thread::Scope`: `spawn` takes a closure that
    /// receives the scope again so workers can spawn siblings.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish, returning its result (or the
        /// panic payload).
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread scoped to the enclosing [`scope`] call.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: inner_scope.spawn(move || f(&Scope { inner: inner_scope })),
            }
        }
    }

    /// Run `f` with a [`Scope`]; all spawned threads are joined before this
    /// returns. Matches crossbeam's signature: the result is `Err` only if a
    /// *detached* child panicked, which cannot happen here (std re-raises
    /// child panics on implicit join), so this always returns `Ok`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let n = AtomicUsize::new(0);
        let r = super::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| n.fetch_add(1, Ordering::SeqCst));
            }
            42
        })
        .unwrap();
        assert_eq!(r, 42);
        assert_eq!(n.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn workers_can_spawn_siblings() {
        let n = AtomicUsize::new(0);
        super::thread::scope(|s| {
            s.spawn(|s2| {
                n.fetch_add(1, Ordering::SeqCst);
                s2.spawn(|_| n.fetch_add(1, Ordering::SeqCst));
            });
        })
        .unwrap();
        assert_eq!(n.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn join_returns_value() {
        super::thread::scope(|s| {
            let h = s.spawn(|_| 7);
            assert_eq!(h.join().unwrap(), 7);
        })
        .unwrap();
    }
}
