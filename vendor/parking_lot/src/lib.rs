//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Provides the non-poisoning `Mutex`/`RwLock` subset the workspace uses.
//! Poisoning is stripped the way `parking_lot` strips it: a panic while a
//! guard is held simply releases the lock (we recover the inner value from
//! the std poison wrapper).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that does not poison on panic.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// A reader-writer lock that does not poison on panic.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contention() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0); // lock still usable
    }
}
