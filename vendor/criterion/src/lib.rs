//! Offline stand-in for `criterion`.
//!
//! Implements the API shape the workspace's benches use — groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!` macros —
//! over a simple wall-clock harness: a short warm-up, then timed batches
//! until a target measurement window is filled, reporting mean ns/iter
//! (and element throughput when configured). No statistics engine, no
//! HTML reports; good enough to catch order-of-magnitude regressions and
//! to keep `cargo bench` runnable offline.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus a parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`, as criterion renders it.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Accepted by `bench_function`: a plain name or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The rendered label.
    fn label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn label(self) -> String {
        self
    }
}

/// Passed to every benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    /// Measured mean ns/iter, filled by `iter`.
    mean_ns: f64,
}

/// Target measurement window per benchmark.
const MEASURE_WINDOW: Duration = Duration::from_millis(400);
/// Warm-up window per benchmark.
const WARMUP_WINDOW: Duration = Duration::from_millis(80);

impl Bencher {
    /// Time `f`, calling it repeatedly until the measurement window fills.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up: also estimates per-iteration cost for batch sizing.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP_WINDOW {
            std_black_box(f());
            warm_iters += 1;
        }
        let est = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let batch = ((0.05 / est.max(1e-9)) as u64).clamp(1, 1 << 20);

        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while total < MEASURE_WINDOW {
            let t0 = Instant::now();
            for _ in 0..batch {
                std_black_box(f());
            }
            total += t0.elapsed();
            iters += batch;
        }
        self.mean_ns = total.as_secs_f64() * 1e9 / iters as f64;
    }

    /// `iter` variant with per-iteration setup excluded from timing
    /// (approximated: setup included per call, documented limitation).
    pub fn iter_with_setup<S, I, R, F>(&mut self, mut setup: S, mut f: F)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        self.iter_custom(|| {
            let input = setup();
            let t0 = Instant::now();
            std_black_box(f(input));
            t0.elapsed()
        });
    }

    fn iter_custom<F: FnMut() -> Duration>(&mut self, mut timed: F) {
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let wall = Instant::now();
        while total < MEASURE_WINDOW && wall.elapsed() < MEASURE_WINDOW * 4 {
            total += timed();
            iters += 1;
        }
        self.mean_ns = total.as_secs_f64() * 1e9 / iters.max(1) as f64;
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn report(label: &str, mean_ns: f64, throughput: Option<Throughput>) {
    let mut line = format!("{label:<44} {:>12}/iter", human_time(mean_ns));
    match throughput {
        Some(Throughput::Elements(n)) => {
            let per_sec = n as f64 / (mean_ns / 1e9);
            line.push_str(&format!("   {:.2} Melem/s", per_sec / 1e6));
        }
        Some(Throughput::Bytes(n)) => {
            let per_sec = n as f64 / (mean_ns / 1e9);
            line.push_str(&format!("   {:.2} MB/s", per_sec / 1e6));
        }
        None => {}
    }
    println!("{line}");
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    filter: Option<&'a str>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the throughput annotation for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the shim sizes batches by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, label: String, mut f: F) {
        let full = format!("{}/{}", self.name, label);
        if let Some(filter) = self.filter {
            if !full.contains(filter) {
                return;
            }
        }
        let mut b = Bencher { mean_ns: f64::NAN };
        f(&mut b);
        report(&full, b.mean_ns, self.throughput);
    }

    /// Benchmark a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        self.run(id.label(), f);
        self
    }

    /// Benchmark a closure over an explicit input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(id.label(), |b| f(b, input));
        self
    }

    /// End the group (printing is immediate; nothing buffered).
    pub fn finish(&mut self) {}
}

/// The benchmark manager.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- FILTER` passes the filter as the first free arg.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        Criterion { filter }
    }
}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            filter: self.filter.as_deref(),
        }
    }

    /// Benchmark a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let matches = self
            .filter
            .as_deref()
            .map(|flt| name.contains(flt))
            .unwrap_or(true);
        if matches {
            let mut b = Bencher { mean_ns: f64::NAN };
            f(&mut b);
            report(name, b.mean_ns, None);
        }
        self
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { mean_ns: f64::NAN };
        b.iter(|| std::hint::black_box(3u64).wrapping_mul(7));
        assert!(b.mean_ns.is_finite() && b.mean_ns > 0.0);
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }

    #[test]
    fn human_time_units() {
        assert!(human_time(5.0).ends_with("ns"));
        assert!(human_time(5e3).ends_with("µs"));
        assert!(human_time(5e6).ends_with("ms"));
        assert!(human_time(5e9).ends_with(" s"));
    }
}
