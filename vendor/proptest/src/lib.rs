//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this shim implements
//! the subset of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro (doc comments / `#[test]` attributes, multiple
//!   `arg in strategy` bindings, trailing commas);
//! * [`Strategy`] for integer and float ranges, tuples, and
//!   [`collection::vec`];
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`].
//!
//! Semantics differ from real proptest in one way: there is no shrinking.
//! A failing case panics with the generated inputs printed, which is enough
//! to reproduce (generation is deterministic per test name). Case count
//! defaults to 64 and can be raised with `PROPTEST_CASES`.

use core::ops::Range;

/// Deterministic generator handed to strategies (splitmix64 stream).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test-name hash so every test owns a distinct stream.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x5DEE_CE66_D1CE_B00C,
        }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform u64 in [0, n).
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A value generator. Unlike real proptest there is no shrinking tree;
/// `generate` draws one concrete value.
pub trait Strategy {
    /// The type of generated values.
    type Value: core::fmt::Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_uint_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[inline]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_uint_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[inline]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    #[inline]
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    #[inline]
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $ix:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[inline]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$ix.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Map adapter returned by [`StrategyExt::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T: core::fmt::Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    #[inline]
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.base.generate(rng))
    }
}

/// Combinator extensions (the `prop_map` subset).
pub trait StrategyExt: Strategy + Sized {
    /// Transform generated values with `f`.
    fn prop_map<T: core::fmt::Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F> {
        Map { base: self, f }
    }
}

impl<S: Strategy + Sized> StrategyExt for S {}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use core::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy: lengths in `size`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Number of cases to run per property (`PROPTEST_CASES` override).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

/// FNV-1a over the test name — the per-test seed.
pub fn name_seed(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Strategy, StrategyExt,
        TestRng,
    };
    /// Namespace alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert inside a property; panics with the message on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+)
    };
}

/// Skip the current case when its inputs don't satisfy a precondition.
/// Expands to an early `return` from the per-case closure the [`proptest!`]
/// macro wraps each body in.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Define property tests. Each function body runs [`cases()`] times with
/// fresh inputs drawn from its strategies; failures panic with the inputs
/// printed (deterministic per test name, so re-runs reproduce).
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut __rng = $crate::TestRng::new($crate::name_seed(stringify!($name)));
            for __case in 0..$crate::cases() {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                let __inputs = format!(
                    concat!("[", stringify!($name), " case {}] inputs: ", $(stringify!($arg), "={:?} ",)+),
                    __case, $(&$arg),+
                );
                let __run = || { $body };
                if let Err(p) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(__run)) {
                    eprintln!("{__inputs}");
                    std::panic::resume_unwind(p);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in -5i64..5, z in 0.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.5..2.5).contains(&z));
        }

        #[test]
        fn vec_strategy_sizes(xs in crate::collection::vec(0u32..10, 2..9)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 9);
            for &x in &xs {
                prop_assert!(x < 10, "element {x} out of range");
            }
        }

        #[test]
        fn tuples_and_assume(pair in (0u64..100, 0u64..100)) {
            prop_assume!(pair.0 != pair.1);
            prop_assert_ne!(pair.0, pair.1);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::new(crate::name_seed("t"));
        let mut b = TestRng::new(crate::name_seed("t"));
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::new(crate::name_seed("u"));
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn prop_map_transforms() {
        let s = (1u64..5).prop_map(|x| x * 10);
        let mut rng = TestRng::new(1);
        for _ in 0..32 {
            let v = s.generate(&mut rng);
            assert!((10..50).contains(&v) && v % 10 == 0);
        }
    }
}
