//! Integration tests for the unified Scenario → Backend → RunReport API:
//! JSON round-trips, the artifact schema snapshot, and the shipped scenario
//! files running on both engines.

use fncc::core::json::Json;
use fncc::core::prelude::*;
use fncc::core::RUN_REPORT_SCHEMA;

fn scenario_file(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("scenarios")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Build → serialize → parse → identical value → identical run.
#[test]
fn scenario_json_roundtrip_runs_identically() {
    let built = Scenario {
        seeds: vec![3],
        stop: StopCondition::Drain { cap_ms: 50 },
        ..Scenario::new(
            "roundtrip",
            TopologySpec::LeafSpine {
                leaves: 3,
                spines: 2,
                hosts_per_leaf: 4,
            },
            TrafficSpec::Poisson {
                workload: Workload::WebSearch,
                load: 0.3,
                flows: 60,
            },
            CcKind::Hpcc,
        )
    };
    let parsed = Scenario::from_json(&built.to_json()).expect("parse own output");
    assert_eq!(parsed, built);

    // Identical descriptions produce identical flow sets…
    let (ta, fa) = built.instance(3);
    let (tb, fb) = parsed.instance(3);
    assert_eq!(ta.n_hosts, tb.n_hosts);
    assert_eq!(fa, fb);

    // …and identical fluid runs (cheap enough to assert end to end).
    let ra = run_scenario(&built, SimBackend::Fluid);
    let rb = run_scenario(&parsed, SimBackend::Fluid);
    assert_eq!(ra.events, rb.events);
    assert_eq!(ra.mean_slowdown(), rb.mean_slowdown());
}

/// Snapshot of the RunReport JSON artifact layout. If this fails, the
/// format changed: bump `RUN_REPORT_SCHEMA` and update every consumer.
#[test]
fn run_report_schema_snapshot() {
    let sc = Scenario {
        probes: ProbeSpec::micro(2000, 1),
        stop: StopCondition::Drain { cap_ms: 20 },
        ..Scenario::new(
            "schema-probe",
            TopologySpec::Star { hosts: 3 },
            TrafficSpec::Incast {
                receiver: 2,
                fan_in: 2,
                size: 100_000,
                waves: 1,
                gap_us: 0,
            },
            CcKind::Fncc,
        )
    };
    let report = run_scenario(&sc, SimBackend::Packet);
    let v = Json::parse(&report.to_json()).expect("artifact parses");

    assert_eq!(
        v.get("schema").and_then(|x| x.as_str()),
        Some("fncc.run_report/v1")
    );
    assert_eq!(
        v.get("schema").and_then(|x| x.as_str()),
        Some(RUN_REPORT_SCHEMA)
    );
    // Top-level field set and order are pinned.
    let keys: Vec<String> = match &v {
        Json::Obj(fields) => fields.iter().map(|(k, _)| k.clone()).collect(),
        _ => panic!("artifact root must be an object"),
    };
    assert_eq!(
        keys,
        [
            "schema",
            "scenario",
            "backend",
            "cc",
            "seeds",
            "events",
            "unfinished",
            "scalars",
            "slowdowns",
            "series"
        ]
    );
    // Slowdown rows and series carry their pinned inner fields.
    let row = &v.get("slowdowns").unwrap().as_arr().unwrap()[0];
    for field in ["bucket_upper", "label", "count", "avg", "p50", "p95", "p99"] {
        assert!(row.get(field).is_some(), "slowdown row missing '{field}'");
    }
    let series = &v.get("series").unwrap().as_arr().unwrap()[0];
    for field in ["name", "t_us", "v"] {
        assert!(series.get(field).is_some(), "series missing '{field}'");
    }
}

/// The CI hot-path smoke scenario (fluid-scale: 20k heavy-tailed Poisson
/// flows, far beyond packet-backend test budgets) must at least parse and
/// describe what CI expects to run.
#[test]
fn fluid_smoke_scenario_file_parses() {
    let sc = Scenario::from_json(&scenario_file("websearch_fluid_smoke.json")).unwrap();
    assert_eq!(sc.topology, TopologySpec::FatTree { k: 8 });
    match sc.traffic {
        TrafficSpec::Poisson {
            workload, flows, ..
        } => {
            assert_eq!(workload, Workload::WebSearch);
            assert!(flows >= 10_000, "smoke must exercise the warm-start path");
        }
        other => panic!("unexpected traffic spec {other:?}"),
    }
}

/// The shipped calibration-bank scenario (the geometry `fncc-repro
/// calibrate` sweeps per scheme) parses to the expected mice-behind-
/// elephants shape and runs on both backends.
#[test]
fn calibration_bank_scenario_file_runs_on_both_backends() {
    let sc = Scenario::from_json(&scenario_file("calibration_bank.json")).unwrap();
    // The full geometry is pinned (a unit test in fncc-experiments also
    // checks it against the calibrate module's Bank definition).
    assert_eq!(
        sc.traffic,
        TrafficSpec::MiceBehindElephants {
            elephants: 2,
            elephant_size: 4_000_000,
            mice: 16,
            mouse_size: 10_000,
            warmup_us: 60,
            gap_us: 25,
        }
    );
    for backend in [SimBackend::Packet, SimBackend::Fluid] {
        let report = run_scenario(&sc, backend);
        assert!(
            report.unfinished.iter().all(|&u| u == 0),
            "calibration bank on {backend}: unfinished flows"
        );
        // Both buckets the calibration fit reads must be populated.
        for upper in [10_000u64, 1_000_000_000] {
            let row = report
                .slowdowns
                .iter()
                .find(|r| r.bucket_upper == upper)
                .unwrap();
            assert!(row.count > 0, "{backend}: empty {upper} bucket");
        }
    }
}

/// The shipped scenario files parse and run on BOTH backends — the two
/// scenarios the pre-unification API could not express.
#[test]
fn shipped_scenario_files_run_on_both_backends() {
    for file in ["incast_fattree.json", "leafspine_oversub.json"] {
        let mut sc = Scenario::from_json(&scenario_file(file)).expect(file);
        // Trim to one seed to keep the packet runs test-sized.
        sc.seeds.truncate(1);
        for backend in [SimBackend::Packet, SimBackend::Fluid] {
            let report = run_scenario(&sc, backend);
            assert_eq!(report.backend, backend.name());
            assert!(
                report.unfinished.iter().all(|&u| u == 0),
                "{file} on {backend}: unfinished flows"
            );
            let total: usize = report.slowdowns.iter().map(|r| r.count).sum();
            assert!(total > 0, "{file} on {backend}: no bucketed flows");
            let mean = report.mean_slowdown().unwrap();
            assert!(mean >= 1.0, "{file} on {backend}: mean slowdown {mean}");
        }
    }
}

/// Elephants through the scenario path expose the microbenchmark scalars
/// on a horizon-stopped run.
#[test]
fn elephant_scenario_reports_micro_scalars() {
    let sc = Scenario {
        probes: ProbeSpec::micro(2000, 2),
        stop: StopCondition::Horizon { us: 500 },
        ..Scenario::new(
            "elephant-probe",
            TopologySpec::Dumbbell {
                senders: 2,
                switches: 3,
            },
            TrafficSpec::Elephants { join_at_us: 150 },
            CcKind::Fncc,
        )
    };
    let report = run_scenario(&sc, SimBackend::Packet);
    assert!(report.scalar("peak_queue_kb").unwrap() > 0.0);
    assert!(report.scalar("mean_util").unwrap() > 0.5);
    assert!(report.scalar("reaction_us").is_some(), "no reaction scalar");
    assert!(report.series("queue_kb").is_some());
    assert!(report.series("cc1").is_some());
    // Horizon runs never drain elephants: no slowdown rows.
    assert!(report.slowdowns.is_empty());
    assert_eq!(report.unfinished, vec![2]);
}
