//! Cross-crate invariants: losslessness, conservation, determinism and
//! routing symmetry on live simulations.

use fncc::cc::CcKind as Kind;
use fncc::core::sim::SimBuilder;
use fncc::prelude::*;

fn dumbbell_sim(cc: CcKind, n: u32, size: u64) -> fncc::core::sim::Sim {
    let topo = Topology::dumbbell(n, 3, Bandwidth::gbps(100), TimeDelta::from_ns(1500));
    let receiver = HostId(n);
    let flows: Vec<FlowSpec> = (0..n)
        .map(|i| FlowSpec {
            id: FlowId(i),
            src: HostId(i),
            dst: receiver,
            size,
            start: SimTime::from_us(u64::from(i) * 10),
        })
        .collect();
    SimBuilder::new(topo, cc).flows(flows).build()
}

/// With PFC on, no scheme ever drops a frame, and every flow completes.
#[test]
fn lossless_and_complete_for_all_schemes() {
    for cc in [
        Kind::Fncc,
        Kind::Hpcc,
        Kind::Dcqcn,
        Kind::Rocc,
        Kind::Timely,
        Kind::Swift,
    ] {
        let mut sim = dumbbell_sim(cc, 4, 400_000);
        let done = sim.run_to_completion(TimeDelta::from_us(100), SimTime::from_ms(50));
        assert!(done, "{cc:?}: flows did not finish");
        let c = &sim.telemetry().counters;
        assert_eq!(c.drops, 0, "{cc:?}: dropped frames");
        assert_eq!(c.pfc_pause_tx, c.pfc_resume_tx, "{cc:?}: unbalanced PFC");
    }
}

/// Every pause is matched by a resume even under heavy incast pressure.
#[test]
fn pfc_pause_resume_balance_under_incast() {
    let topo = Topology::star(9, Bandwidth::gbps(100), TimeDelta::from_ns(1500));
    let flows: Vec<FlowSpec> = (0..8)
        .map(|i| FlowSpec {
            id: FlowId(i),
            src: HostId(i),
            dst: HostId(8),
            size: 1_000_000,
            start: SimTime::ZERO,
        })
        .collect();
    let mut sim = SimBuilder::new(topo, CcKind::Dcqcn)
        .fabric(|f| f.pfc.threshold = 100 * 1024) // aggressive threshold
        .flows(flows)
        .build();
    let done = sim.run_to_completion(TimeDelta::from_us(100), SimTime::from_ms(50));
    assert!(done);
    let c = &sim.telemetry().counters;
    assert!(c.pfc_pause_tx > 0, "incast at tiny threshold must pause");
    assert_eq!(c.pfc_pause_tx, c.pfc_resume_tx);
    assert_eq!(c.drops, 0);
}

/// The byte count delivered equals the byte count sent (per telemetry).
#[test]
fn payload_conservation() {
    let mut sim = dumbbell_sim(CcKind::Fncc, 3, 250_000);
    assert!(sim.run_to_completion(TimeDelta::from_us(100), SimTime::from_ms(20)));
    let telem = sim.telemetry();
    for i in 0..3u32 {
        assert_eq!(
            telem.flow_tx(FlowId(i)),
            250_000,
            "flow {i}: sender transmitted exactly the flow size"
        );
        let rec = telem.flow_record(FlowId(i)).unwrap();
        assert!(rec.finish.is_some());
        assert!(rec.finish.unwrap() > rec.start);
    }
}

/// Identical configurations give bit-identical outcomes.
#[test]
fn determinism_across_runs() {
    let run = || {
        let mut sim = dumbbell_sim(CcKind::Dcqcn, 4, 300_000);
        sim.run_to_completion(TimeDelta::from_us(100), SimTime::from_ms(20));
        let finishes: Vec<_> = sim
            .telemetry()
            .flow_records()
            .map(|r| (r.flow, r.finish))
            .collect();
        (sim.events_processed(), finishes)
    };
    assert_eq!(run(), run());
}

/// Different seeds actually change stochastic components (ECN marking).
#[test]
fn seeds_perturb_ecn_marking() {
    let run = |seed: u64| {
        let topo = Topology::dumbbell(2, 3, Bandwidth::gbps(100), TimeDelta::from_ns(1500));
        let flows: Vec<FlowSpec> = (0..2)
            .map(|i| FlowSpec {
                id: FlowId(i),
                src: HostId(i),
                dst: HostId(2),
                size: 3_000_000,
                start: SimTime::ZERO,
            })
            .collect();
        let mut sim = SimBuilder::new(topo, CcKind::Dcqcn)
            .fabric(|f| f.seed = seed)
            .flows(flows)
            .build();
        sim.run_to_completion(TimeDelta::from_us(100), SimTime::from_ms(30));
        sim.telemetry().counters.ecn_marks
    };
    let a = run(1);
    let b = run(2);
    assert!(a > 0 && b > 0);
    assert_ne!(a, b, "different seeds should mark differently");
}

/// Live ACK paths traverse the reversed data path (checked via telemetry:
/// FNCC collects exactly one INT record per data-path switch).
#[test]
fn fncc_ack_int_hop_count_matches_path_length() {
    let topo = Topology::fat_tree(4, Bandwidth::gbps(100), TimeDelta::from_ns(1500));
    // Host 0 (pod 0) to host 15 (pod 3): 5-switch path.
    let hops = topo.path_switches(HostId(0), HostId(15), FlowId(0)).len();
    assert_eq!(hops, 5);
    let flows = vec![FlowSpec {
        id: FlowId(0),
        src: HostId(0),
        dst: HostId(15),
        size: 200_000,
        start: SimTime::ZERO,
    }];
    let mut sim = SimBuilder::new(topo, CcKind::Fncc).flows(flows).build();
    assert!(sim.run_to_completion(TimeDelta::from_us(100), SimTime::from_ms(10)));
    let telem = sim.telemetry();
    assert_eq!(telem.int_age_hops(), hops, "one INT record per path switch");
    for h in 0..hops {
        assert!(telem.mean_int_age(h).is_some(), "hop {h} never sampled");
    }
}

/// Cumulative ACKs (§3.2.3) preserve completion and losslessness.
#[test]
fn cumulative_acks_preserve_semantics() {
    for m in [1u32, 4, 16] {
        let topo = Topology::dumbbell(2, 3, Bandwidth::gbps(100), TimeDelta::from_ns(1500));
        let flows = vec![FlowSpec {
            id: FlowId(0),
            src: HostId(0),
            dst: HostId(2),
            size: 1_456_000,
            start: SimTime::ZERO,
        }];
        let mut sim = SimBuilder::new(topo, CcKind::Fncc)
            .ack_every(m)
            .flows(flows)
            .build();
        assert!(
            sim.run_to_completion(TimeDelta::from_us(100), SimTime::from_ms(10)),
            "m={m}"
        );
        assert_eq!(sim.telemetry().counters.drops, 0);
        // One ACK per m frames, plus the forced ACK on the last frame when
        // the flow length is not a multiple of m.
        assert_eq!(
            sim.telemetry().counters.acks_delivered,
            1000u64.div_ceil(m as u64)
        );
    }
}

/// Spanning-tree routing (Fig. 6) also completes workloads losslessly, on
/// a fat-tree, a Jellyfish and a Dragonfly.
#[test]
fn spanning_tree_routing_end_to_end() {
    let line = Bandwidth::gbps(100);
    let prop = TimeDelta::from_ns(1500);
    let topos = vec![
        Topology::fat_tree(4, line, prop).with_spanning_trees(4),
        Topology::jellyfish(8, 3, 2, line, prop, 5, 4),
        Topology::dragonfly(4, 2, 2, line, prop, 4),
    ];
    for topo in topos {
        let n = topo.n_hosts;
        let flows: Vec<FlowSpec> = (0..8.min(n / 2))
            .map(|i| FlowSpec {
                id: FlowId(i),
                src: HostId(i),
                dst: HostId(n - 1 - i),
                size: 150_000,
                start: SimTime::from_us(u64::from(i)),
            })
            .collect();
        let mut sim = SimBuilder::new(topo, CcKind::Fncc).flows(flows).build();
        assert!(sim.run_to_completion(TimeDelta::from_us(100), SimTime::from_ms(20)));
        assert_eq!(sim.telemetry().counters.drops, 0);
    }
}
