//! Sharded-DES equivalence: the conservative-synchronization runtime
//! (`Scenario::threads >= 1`) must produce the same `RunReport` as the
//! legacy single-engine path, for every scheme, at every thread count.
//!
//! Two strengths of "the same":
//!
//! * **Across thread counts** the report is byte-identical modulo the one
//!   wall-clock scalar (`events_per_sec`): the number of shards is fixed
//!   by the topology and threads only choose which worker runs which
//!   shard, so 1, 2 and 4 workers execute the identical event schedule.
//! * **Against the legacy engine** the comparison additionally strips the
//!   sharding bookkeeping scalars (`shards`, `epochs`,
//!   `cross_shard_frames`, `lookahead_ns`, `shard_fallback`) and the
//!   *structurally* per-shard diagnostics — `peak_queue_len` (one queue
//!   vs k per-shard queues), `pool_hit_rate` (one packet pool vs k),
//!   `wheel_cascades_l*` (one wheel vs k) — none of which describe
//!   simulated behaviour. Everything observable (event totals, FCT
//!   slowdowns, counters, series, fault scalars) must match byte-for-byte.

use fncc::core::{
    run_scenario, Scenario, SimBackend, StopCondition, TopologySpec, TrafficSpec, Workload,
};
use fncc_cc::CcKind;

/// Scalars whose values are wall-clock-derived (non-deterministic by
/// design) — stripped in every comparison.
const WALL_CLOCK: &[&str] = &["events_per_sec"];

/// Sharding bookkeeping plus structurally per-shard diagnostics — absent
/// or single-engine-shaped in legacy reports, so stripped only for the
/// legacy-vs-sharded comparison.
const SHARD_SHAPE: &[&str] = &[
    "shards",
    "epochs",
    "cross_shard_frames",
    "lookahead_ns",
    "shard_fallback",
    "peak_queue_len",
    "pool_hit_rate",
];

fn report_json(sc: &Scenario, threads: u32, strip_shard_shape: bool) -> String {
    let mut sc = sc.clone();
    sc.threads = threads;
    let mut report = run_scenario(&sc, SimBackend::Packet);
    report.scalars.retain(|(k, _)| {
        !WALL_CLOCK.contains(&k.as_str())
            && !(strip_shard_shape
                && (SHARD_SHAPE.contains(&k.as_str()) || k.starts_with("wheel_cascades_")))
    });
    report.to_json()
}

/// Cross-pod incast on the k=4 fat-tree: INT, ECN/CNP and PFC all fire,
/// and most traffic crosses shard boundaries.
fn incast_scenario(cc: CcKind) -> Scenario {
    let mut sc = Scenario::new(
        "sharded-equiv-incast",
        TopologySpec::FatTree { k: 4 },
        TrafficSpec::Incast {
            receiver: 0,
            fan_in: 6,
            size: 150_000,
            waves: 1,
            gap_us: 50,
        },
        cc,
    );
    sc.stop = StopCondition::Drain { cap_ms: 50 };
    sc.seeds = vec![7];
    sc
}

/// Poisson web-search cell — randomized sizes and start times spread
/// flows over every pod pair.
fn poisson_scenario(cc: CcKind) -> Scenario {
    let mut sc = Scenario::new(
        "sharded-equiv-poisson",
        TopologySpec::FatTree { k: 4 },
        TrafficSpec::Poisson {
            workload: Workload::WebSearch,
            load: 0.5,
            flows: 60,
        },
        cc,
    );
    sc.stop = StopCondition::Drain { cap_ms: 200 };
    sc.seeds = vec![3];
    sc
}

fn assert_equivalence(sc: &Scenario, label: &str) {
    // Legacy engine, with the shard-shape scalars it shares stripped.
    let legacy = report_json(sc, 0, true);
    // Sharded runtime at 1, 2 and 4 workers.
    let sharded: Vec<String> = [1u32, 2, 4]
        .iter()
        .map(|&t| report_json(sc, t, false))
        .collect();
    for (t, json) in [1, 2, 4].iter().zip(&sharded) {
        assert_eq!(
            &sharded[0], json,
            "{label}: sharded report at {t} threads differs from 1 thread"
        );
    }
    // Same run once more with the shard-shape scalars stripped: must equal
    // the legacy engine's bytes.
    let neutral = report_json(sc, 1, true);
    assert_eq!(
        legacy, neutral,
        "{label}: sharded report differs from the legacy engine"
    );
}

/// Every registered scheme, incast and Poisson, threads {0, 1, 2, 4}.
#[test]
fn all_schemes_all_thread_counts_match_legacy() {
    for &cc in CcKind::ALL.iter() {
        assert_equivalence(&incast_scenario(cc), &format!("{}/incast", cc.name()));
        assert_equivalence(&poisson_scenario(cc), &format!("{}/poisson", cc.name()));
    }
}

/// The faulted cell: a link flap on a fat-tree Poisson mix (the shipped
/// `linkflap_fattree.json` scenario, scaled down for test time). Fault
/// pause/release and the cross-shard teardown of the peer side of the
/// downed link must serialize identically on every runtime.
#[test]
fn faulted_scenario_matches_legacy() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/scenarios/linkflap_fattree.json"
    ))
    .expect("shipped scenario file");
    let mut sc = Scenario::from_json(&text).expect("shipped scenario parses");
    if let TrafficSpec::Poisson { ref mut flows, .. } = sc.traffic {
        *flows = 60;
    }
    sc.seeds = vec![1];
    assert_equivalence(&sc, "linkflap/poisson");
}

/// The sharded report carries the partition's bookkeeping scalars.
#[test]
fn sharded_report_exposes_partition_scalars() {
    let mut sc = incast_scenario(CcKind::Fncc);
    sc.threads = 2;
    let report = run_scenario(&sc, SimBackend::Packet);
    assert_eq!(report.scalar("shards"), Some(4.0));
    assert_eq!(report.scalar("lookahead_ns"), Some(1500.0));
    assert!(report.scalar("epochs").unwrap_or(0.0) > 0.0);
    assert!(report.scalar("cross_shard_frames").unwrap_or(0.0) > 0.0);
    assert_eq!(report.scalar("shard_fallback"), None);
}

/// Non-fat-tree topologies run sharded requests on the single-engine
/// path and say so in the report.
#[test]
fn non_fat_tree_reports_fallback_reason() {
    let mut sc = Scenario::new(
        "sharded-equiv-fallback",
        TopologySpec::LeafSpine {
            leaves: 4,
            spines: 2,
            hosts_per_leaf: 4,
        },
        TrafficSpec::Incast {
            receiver: 0,
            fan_in: 4,
            size: 100_000,
            waves: 1,
            gap_us: 50,
        },
        CcKind::Fncc,
    );
    sc.stop = StopCondition::Drain { cap_ms: 50 };
    sc.seeds = vec![1];
    sc.threads = 4;
    let report = run_scenario(&sc, SimBackend::Packet);
    assert_eq!(report.scalar("shards"), Some(1.0));
    assert_eq!(report.scalar("shard_fallback"), Some(1.0));
    assert_eq!(report.scalar("epochs"), Some(0.0));
    assert_eq!(report.scalar("cross_shard_frames"), Some(0.0));
}
