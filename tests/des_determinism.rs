//! Packet-DES determinism: the same `Scenario` + seed must produce a
//! byte-identical `RunReport` artifact run over run, and across event-queue
//! implementations (timing wheel vs the binary-heap reference oracle).
//!
//! The single wall-clock-derived scalar (`events_per_sec`) is stripped
//! before comparison — it is the one intentionally non-deterministic
//! report field.

use fncc::core::scenario::FaultSpec;
use fncc::core::{run_scenario, Scenario, SimBackend, StopCondition, TopologySpec, TrafficSpec};
use fncc_cc::CcKind;
use std::sync::Mutex;

/// Both tests in this binary read (and one mutates) the process-wide
/// `FNCC_DES_SCHED` variable; concurrent setenv/getenv is undefined
/// behavior on glibc, so every test takes this lock for its full body.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn scenario() -> Scenario {
    let mut sc = Scenario::new(
        "determinism-probe",
        TopologySpec::FatTree { k: 4 },
        TrafficSpec::Incast {
            receiver: 0,
            fan_in: 6,
            size: 150_000,
            waves: 2,
            gap_us: 50,
        },
        CcKind::Fncc,
    );
    sc.stop = StopCondition::Drain { cap_ms: 50 };
    sc.seeds = vec![7, 8];
    sc
}

/// Serialize a report with the wall-clock scalar removed.
fn stable_json(sc: &Scenario) -> String {
    let mut report = run_scenario(sc, SimBackend::Packet);
    report.scalars.retain(|(k, _)| k != "events_per_sec");
    report.to_json()
}

/// Additionally drop scheduler-internal diagnostics: `wheel_cascades_l*`
/// exists only when the timing wheel is the event queue, so the
/// cross-scheduler invariant pins the *measurements*, not the scheduler's
/// own introspection counters.
fn scheduler_neutral_json(sc: &Scenario) -> String {
    let mut report = run_scenario(sc, SimBackend::Packet);
    report
        .scalars
        .retain(|(k, _)| k != "events_per_sec" && !k.starts_with("wheel_cascades_"));
    report.to_json()
}

#[test]
fn identical_runs_and_schedulers_yield_identical_reports() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let sc = scenario();
    std::env::remove_var("FNCC_DES_SCHED");
    let wheel_a = stable_json(&sc);
    let wheel_b = stable_json(&sc);
    assert_eq!(wheel_a, wheel_b, "same scenario+seed, same scheduler");

    let wheel_neutral = scheduler_neutral_json(&sc);
    std::env::set_var("FNCC_DES_SCHED", "heap");
    let heap = scheduler_neutral_json(&sc);
    std::env::remove_var("FNCC_DES_SCHED");
    assert_eq!(wheel_neutral, heap, "wheel vs heap reference scheduler");
}

/// The determinism probe with a link flap and a seeded random-loss window
/// layered on: fault injection, go-back-N recovery, and the ECMP reroute
/// path must all be as reproducible as the lossless run.
fn faulted_scenario() -> Scenario {
    let mut sc = scenario();
    sc.name = "faulted-determinism-probe".into();
    sc.faults = vec![
        FaultSpec::LinkDown {
            switch: 0,
            port: 2,
            at_us: 40,
        },
        FaultSpec::LinkUp {
            switch: 0,
            port: 2,
            at_us: 300,
        },
        FaultSpec::RandomLoss {
            switch: 1,
            port: 2,
            from_us: 0,
            to_us: 2_000,
            probability: 0.01,
        },
    ];
    sc
}

#[test]
fn fault_injection_is_deterministic_across_runs_and_schedulers() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let sc = faulted_scenario();
    std::env::remove_var("FNCC_DES_SCHED");
    let wheel_a = stable_json(&sc);
    let wheel_b = stable_json(&sc);
    assert_eq!(wheel_a, wheel_b, "faulted scenario+seed, same scheduler");
    assert!(
        wheel_a.contains("retx_count") && wheel_a.contains("fault_drops"),
        "fault scalars missing from the report"
    );

    let wheel_neutral = scheduler_neutral_json(&sc);
    std::env::set_var("FNCC_DES_SCHED", "heap");
    let heap = scheduler_neutral_json(&sc);
    std::env::remove_var("FNCC_DES_SCHED");
    assert_eq!(wheel_neutral, heap, "faulted run: wheel vs heap scheduler");
}

/// The scheduler oracle in sharded mode: with `threads >= 1` every shard
/// replica picks up `FNCC_DES_SCHED` independently, so this pins the
/// per-shard wheels to the per-shard heap references — and the sharded
/// runtime to itself across runs — on both the lossless and the faulted
/// probe.
#[test]
fn sharded_runs_are_deterministic_across_runs_and_schedulers() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for mut sc in [scenario(), faulted_scenario()] {
        sc.threads = 2;
        std::env::remove_var("FNCC_DES_SCHED");
        let wheel_a = stable_json(&sc);
        let wheel_b = stable_json(&sc);
        assert_eq!(wheel_a, wheel_b, "{}: sharded run-to-run", sc.name);

        let wheel_neutral = scheduler_neutral_json(&sc);
        std::env::set_var("FNCC_DES_SCHED", "heap");
        let heap = scheduler_neutral_json(&sc);
        std::env::remove_var("FNCC_DES_SCHED");
        assert_eq!(
            wheel_neutral, heap,
            "{}: sharded wheel vs heap scheduler",
            sc.name
        );
    }
}

#[test]
fn engine_health_scalars_are_reported() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut sc = scenario();
    sc.seeds = vec![7];
    let report = run_scenario(&sc, SimBackend::Packet);
    assert_eq!(
        report.scalar("events_processed"),
        Some(report.events as f64)
    );
    assert!(report.scalar("events_per_sec").unwrap_or(0.0) > 0.0);
    assert!(report.scalar("peak_queue_len").unwrap_or(0.0) > 0.0);
    // A healthy model never schedules into the past.
    assert_eq!(report.scalar("clamped_schedules"), Some(0.0));
}
