//! Datapath-refactor equivalence: every scheme's `RunReport` is pinned to a
//! golden hash recorded from the pre-refactor per-scheme `CcFlow`
//! implementations. The generic `Datapath`/`CcPolicy` layer must reproduce
//! each control law float-op for float-op, so the packet, fluid, and hybrid
//! backends all have to produce byte-identical artifacts for the six
//! original schemes — any drift in operation order shows up here as a hash
//! mismatch before it can show up as a silent behaviour change.
//!
//! Wall-clock-derived scalars (`events_per_sec`, `span_*`) and
//! scheduler-internal diagnostics (`wheel_cascades_*`) are stripped before
//! hashing, exactly as in `des_determinism.rs`.
//!
//! The two PR-8 schemes (FairQ, Throttle) have no pre-refactor
//! implementation to pin against; they are covered by the determinism half
//! (same scenario+seed twice ⇒ identical bytes) and by the
//! cross-validation/conformance suites.

use fncc::core::{
    run_scenario, Scenario, SimBackend, StopCondition, TopologySpec, TrafficSpec, Workload,
};
use fncc_cc::CcKind;

/// 64-bit FNV-1a over the stable report JSON — dependency-free and stable
/// across platforms for identical input bytes.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Serialize a report with wall-clock and scheduler-introspection scalars
/// removed.
fn stable_json(sc: &Scenario, backend: SimBackend) -> String {
    let mut report = run_scenario(sc, backend);
    report.scalars.retain(|(k, _)| {
        k != "events_per_sec" && !k.starts_with("wheel_cascades_") && !k.starts_with("span_")
    });
    report.to_json()
}

/// Small fat-tree incast — exercises INT collection, ECN/CNP, PFC, and the
/// per-ACK hot path of every scheme at packet fidelity.
fn packet_scenario(cc: CcKind) -> Scenario {
    let mut sc = Scenario::new(
        "dp-equiv-packet",
        TopologySpec::FatTree { k: 4 },
        TrafficSpec::Incast {
            receiver: 0,
            fan_in: 6,
            size: 150_000,
            waves: 2,
            gap_us: 50,
        },
        cc,
    );
    sc.stop = StopCondition::Drain { cap_ms: 50 };
    sc.seeds = vec![7, 8];
    sc
}

/// Small web-search Poisson cell on the fluid backend — exercises the
/// per-scheme `RateModel` constants (utilization, queue penalty, duration-η).
fn fluid_scenario(cc: CcKind) -> Scenario {
    let mut sc = Scenario::new(
        "dp-equiv-fluid",
        TopologySpec::FatTree { k: 4 },
        TrafficSpec::Poisson {
            workload: Workload::WebSearch,
            load: 0.5,
            flows: 200,
        },
        cc,
    );
    sc.stop = StopCondition::Drain { cap_ms: 200 };
    sc.seeds = vec![3];
    sc
}

/// Golden packet-backend hashes, recorded from the pre-refactor engine
/// (PR 7 head, commit d225292) on `packet_scenario`.
const PACKET_GOLDEN: [(CcKind, u64); 6] = [
    (CcKind::Fncc, 0x6c771e4bc71b3401),
    (CcKind::Hpcc, 0x3160578e127a8458),
    (CcKind::Dcqcn, 0x80a12becc6cea02a),
    (CcKind::Rocc, 0xcc17a593a2e575ae),
    (CcKind::Timely, 0x27cc0f0095c1923a),
    (CcKind::Swift, 0x545c6a492ae31447),
];

/// Golden fluid-backend hashes, recorded from the pre-refactor engine on
/// `fluid_scenario`.
const FLUID_GOLDEN: [(CcKind, u64); 6] = [
    (CcKind::Fncc, 0x191b5d6f8c472ca1),
    (CcKind::Hpcc, 0x557b9d41ebee2e8a),
    (CcKind::Dcqcn, 0x65c40edbdb9c8a63),
    (CcKind::Rocc, 0xbbaa1ca8956422e0),
    (CcKind::Timely, 0x7f5e41af3a278b47),
    (CcKind::Swift, 0xef1a15604e0456bd),
];

#[test]
fn packet_reports_match_pre_refactor_golden() {
    for (cc, want) in PACKET_GOLDEN {
        let got = fnv1a(stable_json(&packet_scenario(cc), SimBackend::Packet).as_bytes());
        assert_eq!(
            got,
            want,
            "{}: packet RunReport drifted from the pre-refactor golden \
             (got 0x{got:016x}, want 0x{want:016x})",
            cc.name()
        );
    }
}

#[test]
fn fluid_reports_match_pre_refactor_golden() {
    for (cc, want) in FLUID_GOLDEN {
        let got = fnv1a(stable_json(&fluid_scenario(cc), SimBackend::Fluid).as_bytes());
        assert_eq!(
            got,
            want,
            "{}: fluid RunReport drifted from the pre-refactor golden \
             (got 0x{got:016x}, want 0x{want:016x})",
            cc.name()
        );
    }
}

/// Every scheme — including kinds added after the refactor — must be
/// run-to-run deterministic on both backends.
#[test]
fn all_schemes_are_run_to_run_deterministic() {
    for &cc in CcKind::ALL.iter() {
        let sc = packet_scenario(cc);
        assert_eq!(
            stable_json(&sc, SimBackend::Packet),
            stable_json(&sc, SimBackend::Packet),
            "{}: packet backend not deterministic",
            cc.name()
        );
        let sc = fluid_scenario(cc);
        assert_eq!(
            stable_json(&sc, SimBackend::Fluid),
            stable_json(&sc, SimBackend::Fluid),
            "{}: fluid backend not deterministic",
            cc.name()
        );
    }
}
