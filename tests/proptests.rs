//! Property-based tests over the core data structures and invariants.

use fncc::des::engine::{Engine, Model, Scheduler};
use fncc::des::rng::DetRng;
use fncc::des::stats::{jain_index, Samples};
use fncc::des::{SimTime, TimeDelta};
use fncc::net::ids::{FlowId, HostId};
use fncc::net::topology::Topology;
use fncc::net::units::Bandwidth;
use fncc::workloads::cdf::Cdf;
use proptest::prelude::*;

/// The engine dispatches any multiset of events in nondecreasing time
/// order, with FIFO tie-breaking.
#[derive(Default)]
struct Recorder {
    seen: Vec<(u64, u32)>,
}

impl Model for Recorder {
    type Event = u32;
    fn handle(&mut self, now: SimTime, ev: u32, _s: &mut Scheduler<u32>) {
        self.seen.push((now.as_ps(), ev));
    }
}

proptest! {
    #[test]
    fn engine_orders_any_event_multiset(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut eng = Engine::new(Recorder::default());
        for (i, &t) in times.iter().enumerate() {
            eng.schedule(SimTime::from_ps(t), i as u32);
        }
        eng.run_until_idle();
        let seen = &eng.model.seen;
        prop_assert_eq!(seen.len(), times.len());
        for w in seen.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time went backwards");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    }

    /// Fat-tree ECMP paths are symmetric for every (pair, flow) — the
    /// precondition of FNCC's return-path INT (Observation 2).
    #[test]
    fn fat_tree_paths_always_symmetric(
        src in 0u32..16,
        dst in 0u32..16,
        flow in 0u32..10_000,
    ) {
        prop_assume!(src != dst);
        let topo = Topology::fat_tree(4, Bandwidth::gbps(100), TimeDelta::from_ns(1500));
        let fwd = topo.path_switches(HostId(src), HostId(dst), FlowId(flow));
        let mut rev = topo.path_switches(HostId(dst), HostId(src), FlowId(flow));
        rev.reverse();
        prop_assert_eq!(fwd, rev);
    }

    /// Spanning-tree routing is symmetric too (Fig. 6 mechanism).
    #[test]
    fn spanning_tree_paths_always_symmetric(
        src in 0u32..16,
        dst in 0u32..16,
        flow in 0u32..10_000,
        n_trees in 1usize..6,
    ) {
        prop_assume!(src != dst);
        let topo = Topology::fat_tree(4, Bandwidth::gbps(100), TimeDelta::from_ns(1500))
            .with_spanning_trees(n_trees);
        let fwd = topo.path_switches(HostId(src), HostId(dst), FlowId(flow));
        let mut rev = topo.path_switches(HostId(dst), HostId(src), FlowId(flow));
        rev.reverse();
        prop_assert_eq!(fwd, rev);
    }

    /// Ideal FCT is monotone in flow size and bounded below by the
    /// propagation+pipeline floor.
    #[test]
    fn ideal_fct_monotone(size_a in 1u64..50_000_000, size_b in 1u64..50_000_000) {
        let topo = Topology::dumbbell(2, 3, Bandwidth::gbps(100), TimeDelta::from_ns(1500));
        let fct = |s| topo.ideal_fct(HostId(0), HostId(2), FlowId(0), s, 1456, 62);
        let (lo, hi) = if size_a <= size_b { (size_a, size_b) } else { (size_b, size_a) };
        prop_assert!(fct(lo) <= fct(hi));
        // Floor: 4 links × 1.5 µs propagation.
        prop_assert!(fct(lo) >= TimeDelta::from_us(6));
    }

    /// CDF sampling respects the support and quantiles are monotone.
    #[test]
    fn cdf_quantiles_monotone(u1 in 0.0f64..1.0, u2 in 0.0f64..1.0) {
        let cdf = fncc::workloads::distributions::web_search();
        let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
        prop_assert!(cdf.quantile(lo) <= cdf.quantile(hi));
        prop_assert!(cdf.quantile(hi) <= cdf.max_size());
        prop_assert!(cdf.quantile(lo) >= 1);
    }

    /// Custom CDFs: the sample mean tracks the analytic mean.
    #[test]
    fn cdf_sample_mean_tracks_analytic(seed in 0u64..1000) {
        let cdf = Cdf::new(&[(100.0, 0.3), (10_000.0, 0.9), (100_000.0, 1.0)]);
        let mut rng = DetRng::new(seed, 0);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| cdf.sample(&mut rng)).sum();
        let sample_mean = sum as f64 / n as f64;
        let analytic = cdf.mean();
        prop_assert!(
            (sample_mean - analytic).abs() / analytic < 0.15,
            "sample {} vs analytic {}", sample_mean, analytic
        );
    }

    /// Jain's index is always in (0, 1] and equals 1 only for equal rates.
    #[test]
    fn jain_index_bounds(xs in proptest::collection::vec(0.01f64..1000.0, 1..32)) {
        let j = jain_index(&xs);
        prop_assert!(j > 0.0 && j <= 1.0 + 1e-12);
        let equal = vec![xs[0]; xs.len()];
        prop_assert!((jain_index(&equal) - 1.0).abs() < 1e-9);
    }

    /// Nearest-rank percentiles are monotone in p and bounded by min/max.
    #[test]
    fn percentiles_monotone(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut s = Samples::new();
        for &x in &xs {
            s.push(x);
        }
        let p50 = s.percentile(50.0);
        let p95 = s.percentile(95.0);
        let p99 = s.percentile(99.0);
        prop_assert!(p50 <= p95 && p95 <= p99);
        let max = xs.iter().cloned().fold(f64::MIN, f64::max);
        let min = xs.iter().cloned().fold(f64::MAX, f64::min);
        prop_assert!(p99 <= max && p50 >= min);
    }

    /// Bandwidth serialization arithmetic: tx_time is additive in bytes.
    #[test]
    fn tx_time_additive(a in 1u64..100_000, b in 1u64..100_000, gbps in 1u64..800) {
        let bw = Bandwidth::gbps(gbps);
        let sum = bw.tx_time(a + b);
        let parts = bw.tx_time(a) + bw.tx_time(b);
        // Rounding up per call may add at most 1 ps per part.
        prop_assert!(parts >= sum);
        prop_assert!(parts.as_ps() - sum.as_ps() <= 2);
    }

    /// Timing-wheel vs binary-heap dispatch equivalence: over random
    /// schedules spanning every wheel level and the overflow heap — with
    /// dynamically scheduled follow-ups — both event queues dispatch the
    /// identical (time, tag) sequence. This pins the wheel's tie-break
    /// semantics to the reference oracle.
    #[test]
    fn timing_wheel_matches_heap_dispatch_order(
        // Times up to ~100 s in ps: far past the wheel's 35 s top window,
        // so the overflow heap participates too.
        times in proptest::collection::vec(0u64..100_000_000_000_000, 1..250),
        chain_delays in proptest::collection::vec(1u64..10_000_000_000, 0..8),
    ) {
        struct Chainer {
            seen: Vec<(u64, u32)>,
            delays: Vec<u64>,
        }
        impl Model for Chainer {
            type Event = u32;
            fn handle(&mut self, now: SimTime, ev: u32, s: &mut Scheduler<u32>) {
                self.seen.push((now.as_ps(), ev));
                // Tag-derived follow-ups keep both runs' schedules identical.
                if (ev as usize) < self.delays.len() {
                    s.after(TimeDelta::from_ps(self.delays[ev as usize]), ev + 1000);
                    s.immediate(ev + 2000);
                }
            }
        }
        let run = |kind: fncc::des::engine::QueueKind| {
            let mut eng = Engine::with_queue(
                Chainer { seen: Vec::new(), delays: chain_delays.clone() },
                kind,
            );
            for (i, &t) in times.iter().enumerate() {
                eng.schedule(SimTime::from_ps(t), i as u32);
            }
            eng.run_until_idle();
            eng.model.seen
        };
        let wheel = run(fncc::des::engine::QueueKind::Wheel);
        let heap = run(fncc::des::engine::QueueKind::Heap);
        prop_assert_eq!(wheel, heap);
    }
}

proptest! {
    /// The RTO schedule is monotone in the backoff counter and clamped to
    /// the configured ceiling — the pure half of the go-back-N invariants.
    #[test]
    fn rto_backoff_monotone_and_capped(k in 0u32..24) {
        let rec = fncc::transport::RecoveryConfig::paper_default();
        prop_assert!(rec.rto(k) >= rec.rto(0));
        prop_assert!(rec.rto(k + 1) >= rec.rto(k));
        // High backoffs saturate: the cap is reached and held.
        prop_assert_eq!(rec.rto(24), rec.rto(23));
    }
}

proptest! {
    /// Go-back-N under arbitrary seeded drop patterns (random per-frame
    /// loss, optionally compounded by a link flap that drops a whole window
    /// in flight and reorders delivery around the outage): the flow must
    /// finish — the cumulative-ACK receiver accepts every byte exactly once
    /// in order, so `all_flows_finished` certifies exactly-once delivery —
    /// and back-to-back RTO expiries with no ACK progress must never shrink
    /// the timeout (exponential backoff is monotone within a loss episode).
    #[test]
    fn go_back_n_survives_seeded_loss_with_monotone_backoff(
        seed in 0u64..10_000,
        prob in 0.0f64..0.08,
        size in 50_000u64..400_000,
        flap in (0u64..2).prop_map(|b| b == 1),
    ) {
        use fncc::cc::{CcAlgo, HpccConfig};
        use fncc::core::obs::{TraceEvent, TraceSink};
        use fncc::net::config::{FabricConfig, LinkFault, LinkFaultSpec};
        use fncc::net::fabric::{Ev, Fabric};
        use fncc::net::ids::SwitchId;
        use fncc::transport::{
            apply_cc_features, DcHost, FlowSpec, HostTimer, RecoveryConfig, TransportConfig,
        };

        let bw = Bandwidth::gbps(100);
        let topo = Topology::dumbbell(2, 3, bw, TimeDelta::from_ns(1500));
        let algo = CcAlgo::Hpcc(HpccConfig::paper_default(bw, TimeDelta::from_us(13)));
        let tcfg = TransportConfig::new(algo).with_recovery(RecoveryConfig::paper_default());
        let mut cfg = FabricConfig::paper_default();
        apply_cc_features(&mut cfg, tcfg.algo.kind(), bw);
        cfg.seed = seed;
        cfg.link_faults.push(LinkFaultSpec {
            switch: SwitchId(0),
            port: 2,
            fault: LinkFault::RandomLoss {
                from: SimTime::ZERO,
                to: SimTime::from_ms(50),
                prob,
            },
        });
        if flap {
            cfg.link_faults.push(LinkFaultSpec {
                switch: SwitchId(0),
                port: 2,
                fault: LinkFault::Down { at: SimTime::from_us(20) },
            });
            cfg.link_faults.push(LinkFaultSpec {
                switch: SwitchId(0),
                port: 2,
                fault: LinkFault::Up { at: SimTime::from_us(200) },
            });
        }
        let hosts: Vec<DcHost> = (0..topo.n_hosts).map(|_| DcHost::new(tcfg.clone())).collect();
        let mut fabric = Fabric::new(&topo, cfg, hosts);
        fabric.telemetry.trace = TraceSink::with_capacity(1 << 16);
        let spec = FlowSpec {
            id: FlowId(0),
            src: HostId(0),
            dst: HostId(2),
            size,
            start: SimTime::ZERO,
        };
        fabric.hosts[0].add_flow(spec.clone());
        let mut eng = fncc::des::engine::Engine::new(fabric);
        for (t, ev) in eng.model.startup_events() {
            eng.schedule(t, ev);
        }
        eng.schedule(
            spec.start,
            Ev::HostTimer { host: spec.src, timer: HostTimer::FlowStart(spec.id) },
        );
        eng.run_until(SimTime::from_ms(50));

        let t = &eng.model.telemetry;
        prop_assert!(
            t.all_flows_finished(),
            "flow stuck (seed {seed}, prob {prob:.3}, flap {flap}): \
             {} fault drops, {} retx, {} rtos",
            t.counters.fault_drops, t.counters.retx, t.counters.rtos
        );
        if flap {
            prop_assert!(t.counters.fault_drops > 0, "flap dropped nothing in flight");
        }
        // Backoff discipline: every genuine expiry logs the *next* timeout.
        // With no ACK progress the chain doubles (r2 >= r1); ACK progress
        // resets the counter to zero, so the only legal *shrink* between
        // consecutive expiries is a collapse to the bottom of the schedule,
        // rto(1) — the timeout an expiry logs right after a reset. (The
        // exact-gap heuristic alone is unsound: a timer armed before the
        // reset can genuinely expire at the old `t1 + r1` instant.) Every
        // logged value must also come from the configured schedule.
        let rec = RecoveryConfig::paper_default();
        let schedule: Vec<u64> = (1..=25).map(|k| rec.rto(k).as_ps()).collect();
        let rtos: Vec<(u64, u64)> = t
            .trace
            .events()
            .filter_map(|e| match *e {
                TraceEvent::Rto { t_ps, rto_ps, .. } => Some((t_ps, rto_ps)),
                _ => None,
            })
            .collect();
        for &(_, r) in &rtos {
            prop_assert!(schedule.contains(&r), "rto {r} ps not on the schedule");
        }
        for w in rtos.windows(2) {
            let ((t1, r1), (t2, r2)) = (w[0], w[1]);
            if t2 - t1 == r1 {
                prop_assert!(
                    r2 >= r1 || r2 == rec.rto(1).as_ps(),
                    "backoff shrank to a mid-schedule value within a loss \
                     episode: {r1} -> {r2} ps"
                );
            }
        }
    }
}

proptest! {
    /// Causality safety of the sharded DES over *arbitrary* partitions:
    /// whatever owner map the conservative epochs run over — not just the
    /// pod partition shipped in `PartitionMap::for_topology` — no
    /// cross-shard frame may arrive below its receiver's clock, and the
    /// observable results must equal the single-engine run. (The pod
    /// partition maximizes lookahead; correctness must not depend on it.)
    #[test]
    fn arbitrary_partitions_are_causally_safe_and_equivalent(
        n_shards in 2u16..5,
        host_owner_raw in proptest::collection::vec(0u16..8, 16..17),
        switch_owner_raw in proptest::collection::vec(0u16..8, 20..21),
        threads in 1usize..5,
    ) {
        use fncc::core::{ShardedSim, SimBuilder};
        use fncc::net::partition::PartitionMap;
        use fncc::transport::FlowSpec;
        use std::sync::Arc;

        let topo = Topology::fat_tree(4, Bandwidth::gbps(100), TimeDelta::from_ns(1500));
        let host_owner: Vec<u16> = host_owner_raw.iter().map(|&o| o % n_shards).collect();
        let switch_owner: Vec<u16> = switch_owner_raw.iter().map(|&o| o % n_shards).collect();
        let map = Arc::new(PartitionMap::from_owners(
            &topo, n_shards, host_owner, switch_owner,
        ));
        // A degenerate draw can put every node in one shard (no cut, zero
        // lookahead): that is the fallback path, tested elsewhere.
        prop_assume!(map.is_sharded() && map.cut_links > 0);

        // Cross-pod incast plus one intra-pod flow, staggered starts.
        let flows: Vec<FlowSpec> = [4u32, 8, 12, 1]
            .into_iter()
            .enumerate()
            .map(|(i, src)| FlowSpec {
                id: FlowId(i as u32),
                src: HostId(src),
                dst: HostId(0),
                size: 60_000,
                start: SimTime::from_us(i as u64),
            })
            .collect();
        let build = |shard: Option<(Arc<PartitionMap>, u16)>| {
            let mut b = SimBuilder::new(topo.clone(), fncc::cc::CcKind::Fncc)
                .flows(flows.clone());
            if let Some((m, s)) = shard {
                b = b.shard(m, s);
            }
            b.build()
        };

        let mut legacy = build(None);
        prop_assert!(legacy.run_to_completion(TimeDelta::from_ms(1), SimTime::from_ms(50)));

        let mut sharded =
            ShardedSim::with_map(map, threads, |m, s| build(Some((m, s))));
        prop_assert!(sharded.run_to_completion(TimeDelta::from_ms(1), SimTime::from_ms(50)));
        let stats = sharded.stats();
        prop_assert_eq!(stats.causality_violations, 0, "frame below the epoch horizon");
        prop_assert_eq!(sharded.events_processed(), legacy.events_processed());
        sharded.harvest();
        let (lt, st) = (legacy.telemetry(), sharded.telemetry());
        prop_assert_eq!(lt.counters.data_delivered, st.counters.data_delivered);
        prop_assert_eq!(lt.counters.acks_delivered, st.counters.acks_delivered);
        prop_assert_eq!(lt.counters.ecn_marks, st.counters.ecn_marks);
        for f in &flows {
            let a = lt.flow_record(f.id).unwrap();
            let b = st.flow_record(f.id).unwrap();
            prop_assert_eq!(a.start, b.start);
            prop_assert_eq!(a.finish, b.finish);
        }
    }

    /// Which worker runs which shard — and in what order the workers are
    /// started — must not change any result: the schedule is fixed by the
    /// partition, threads are pure transport.
    #[test]
    fn worker_assignment_does_not_change_results(
        threads in 2usize..5,
        assign_raw in proptest::collection::vec(0usize..8, 4..5),
    ) {
        use fncc::core::{ShardedSim, SimBuilder};
        use fncc::transport::FlowSpec;

        let topo = Topology::fat_tree(4, Bandwidth::gbps(100), TimeDelta::from_ns(1500));
        let flows: Vec<FlowSpec> = [4u32, 8, 12, 1]
            .into_iter()
            .enumerate()
            .map(|(i, src)| FlowSpec {
                id: FlowId(i as u32),
                src: HostId(src),
                dst: HostId(0),
                size: 60_000,
                start: SimTime::from_us(i as u64),
            })
            .collect();
        let run = |threads: usize, assign: Option<Vec<usize>>| {
            let flows = flows.clone();
            let mut sim = ShardedSim::new(&topo, threads, |m, s| {
                SimBuilder::new(topo.clone(), fncc::cc::CcKind::Fncc)
                    .flows(flows.clone())
                    .shard(m, s)
                    .build()
            });
            if let Some(a) = assign {
                sim.set_worker_assignment(a);
            }
            assert!(sim.run_to_completion(TimeDelta::from_ms(1), SimTime::from_ms(50)));
            let events = sim.events_processed();
            sim.harvest();
            let t = sim.telemetry();
            let records: Vec<_> = flows
                .iter()
                .map(|f| {
                    let r = t.flow_record(f.id).unwrap();
                    (r.start, r.finish)
                })
                .collect();
            (events, t.counters.data_delivered, t.counters.ecn_marks, records)
        };

        let baseline = run(1, None);
        let assign: Vec<usize> = assign_raw.iter().map(|&w| w % threads).collect();
        let shuffled = run(threads, Some(assign));
        prop_assert_eq!(baseline, shuffled);
    }
}

proptest! {
    /// The fluid allocator's warm-started incremental path is pinned to
    /// the from-scratch `allocate` oracle over random arrival/departure
    /// sequences: every alive flow's rate matches within 1e-9 relative
    /// after every rebalance, and the incremental solution is feasible
    /// and Pareto-optimal in its own right. (The fncc-fluid unit suite
    /// carries a deeper deterministic version; this one fuzzes shapes.)
    #[test]
    fn incremental_waterfill_matches_oracle(
        caps in proptest::collection::vec(1.0f64..200.0, 4..24),
        script in proptest::collection::vec((0u8..5, proptest::collection::vec(0u16..24, 1..5)), 1..60),
    ) {
        use fncc_fluid::{water_fill, worst_oversubscription, find_non_pareto_flow, Demand, WaterFiller};
        let nl = caps.len();
        let mut wf = WaterFiller::new(nl);
        wf.begin_incremental(&caps);
        let mut alive: Vec<(u32, Vec<u32>)> = Vec::new();
        for (op, raw_path) in script {
            if op < 2 && !alive.is_empty() {
                // 40% removals, index derived from the path payload.
                let ix = raw_path[0] as usize % alive.len();
                let (slot, _) = alive.swap_remove(ix);
                wf.remove_flow(slot);
            } else {
                let mut p: Vec<u32> = raw_path.iter().map(|&l| l as u32 % nl as u32).collect();
                p.sort_unstable();
                p.dedup();
                let slot = wf.add_flow(&p);
                alive.push((slot, p));
            }
            wf.rebalance();
            let demands: Vec<Demand<'_>> = alive
                .iter()
                .map(|(_, p)| Demand { cap: f64::INFINITY, path: p })
                .collect();
            let oracle = water_fill(&caps, &demands);
            for ((slot, _), &want) in alive.iter().zip(&oracle) {
                let got = wf.rate(*slot);
                let rel = (got - want).abs() / want.max(f64::MIN_POSITIVE);
                prop_assert!(rel <= 1e-9, "slot {} rate {} vs oracle {} (rel {:e})", slot, got, want, rel);
            }
            let rates: Vec<f64> = alive.iter().map(|(s, _)| wf.rate(*s)).collect();
            prop_assert!(worst_oversubscription(&caps, &demands, &rates) < 1e-6);
            prop_assert_eq!(find_non_pareto_flow(&caps, &demands, &rates, 1e-6), None);
        }
    }
}
