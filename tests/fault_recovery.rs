//! Cross-backend fault-recovery acceptance: the shipped
//! `scenarios/linkflap_fattree.json` must complete every flow for every CC
//! scheme on all three backends, with the packet and fluid engines agreeing
//! on mean slowdown within the established 15% cross-validation band — and
//! every scheme must also ride out a seeded random-loss window on a
//! guaranteed-crossed bottleneck (the go-back-N path is scheme-generic via
//! `on_timeout`).

use fncc::core::scenario::FaultSpec;
use fncc::core::{run_scenario, Scenario, SimBackend, TrafficSpec};
use fncc_cc::CcKind;

fn linkflap() -> Scenario {
    let text = std::fs::read_to_string("scenarios/linkflap_fattree.json")
        .expect("scenarios/linkflap_fattree.json must ship with the repo");
    Scenario::from_json(&text).expect("shipped scenario must parse")
}

#[test]
fn linkflap_scenario_completes_for_every_scheme_on_every_backend() {
    for kind in CcKind::ALL {
        let mut sc = linkflap();
        sc.cc = kind;
        let des = run_scenario(&sc, SimBackend::Packet);
        let fluid = run_scenario(&sc, SimBackend::Fluid);
        let hybrid = run_scenario(&sc, SimBackend::Hybrid);
        for (name, r) in [("packet", &des), ("fluid", &fluid), ("hybrid", &hybrid)] {
            assert_eq!(
                r.scalar("incomplete_flows"),
                Some(0.0),
                "{kind:?}/{name}: flows left incomplete under the link flap"
            );
        }
        // The flap severs one of ToR0's two uplinks: at least one flow must
        // have been moved onto the surviving ECMP member on both engines.
        assert!(
            des.scalar("rerouted_flows").unwrap_or(0.0) >= 1.0,
            "{kind:?}: DES never rerouted"
        );
        assert!(
            fluid.scalar("rerouted_flows").unwrap_or(0.0) >= 1.0,
            "{kind:?}: fluid never rerouted"
        );
        // Same metric and band as tests/fluid_cross_validation.rs: mean
        // slowdown, 15%. Raw FCT is workload-scale-dependent; slowdown is
        // what the calibration was established on.
        let s_des = des.mean_slowdown().expect("DES mean slowdown");
        let s_fluid = fluid.mean_slowdown().expect("fluid mean slowdown");
        let rel = (s_des - s_fluid).abs() / s_des;
        assert!(
            rel <= 0.15,
            "{kind:?}: DES slowdown {s_des:.2} vs fluid {s_fluid:.2} ({:.1}% apart)",
            100.0 * rel
        );
    }
}

#[test]
fn every_scheme_completes_under_random_loss() {
    // 0.5% seeded loss on the receiver ToR's host-facing egress. The
    // Poisson workload of the shipped scenario spreads across all hosts, so
    // swap in an incast aimed at host 15: every frame then crosses
    // switch 7 port 1 and no scheme can dodge the fault.
    for kind in CcKind::ALL {
        let mut sc = linkflap();
        sc.name = format!("randomloss-{}", kind.name());
        sc.cc = kind;
        sc.traffic = TrafficSpec::Incast {
            receiver: 15,
            fan_in: 4,
            size: 2_000_000,
            waves: 1,
            gap_us: 0,
        };
        sc.faults = vec![FaultSpec::RandomLoss {
            switch: 7,
            port: 1,
            from_us: 0,
            to_us: 2_000,
            probability: 0.005,
        }];
        let r = run_scenario(&sc, SimBackend::Packet);
        assert_eq!(
            r.scalar("incomplete_flows"),
            Some(0.0),
            "{kind:?}: flow never finished under 0.5% loss"
        );
        assert!(
            r.scalar("fault_drops").unwrap_or(0.0) > 0.0,
            "{kind:?}: the loss window dropped nothing"
        );
        assert!(
            r.scalar("retx_count").unwrap_or(0.0) > 0.0,
            "{kind:?}: drops occurred but nothing was retransmitted"
        );
    }
}
