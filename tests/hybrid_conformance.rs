//! Hybrid co-simulation conformance: the packet-fidelity *foreground* of a
//! hybrid run must see the congestion the pure packet DES would show it.
//!
//! Two cells exercise the two coupling directions, each across all six CC
//! schemes:
//!
//! * **incast** — overlapping incast waves into one receiver; the first
//!   wave runs at packet fidelity, the second drains in the fluid model
//!   through the single-bottleneck fast path. Tests fluid→packet residual
//!   capacity.
//! * **mice-behind-elephants** — mice at packet fidelity squeeze past
//!   fluid elephants on a shared dumbbell. Tests packet→fluid demand
//!   reservations (and back).
//!
//! Acceptance band: the foreground's mean FCT within 15% of the pure-DES
//! run of the identical flow set. A third test pins hybrid `RunReport`
//! determinism byte-for-byte (minus the wall-clock `events_per_sec`
//! scalar, exactly like the packet determinism suite).

use fncc::core::{
    make_algo, run_scenario, ForegroundSpec, PartitionRule, Scenario, SimBackend, SimBuilder,
    StopCondition, TopologySpec, TrafficSpec,
};
use fncc::hybrid::{HybridConfig, HybridSim};
use fncc_cc::CcKind;
use fncc_des::time::{SimTime, TimeDelta};
use fncc_fluid::RateModel;
use fncc_net::config::FabricConfig;
use fncc_net::ids::FlowId;
use fncc_net::telemetry::Telemetry;
use fncc_transport::FlowSpec;

/// The acceptance band on the foreground's mean FCT.
const TOLERANCE: f64 = 0.15;

fn incast_cell(cc: CcKind) -> Scenario {
    let mut sc = Scenario::new(
        format!("hybrid-conf-incast-{}", cc.name()),
        TopologySpec::FatTree { k: 4 },
        TrafficSpec::Incast {
            receiver: 0,
            fan_in: 8,
            size: 100_000,
            waves: 2,
            gap_us: 30,
        },
        cc,
    );
    sc.stop = StopCondition::Drain { cap_ms: 50 };
    // Wave 1 at packet fidelity; the overlapping wave 2 is background.
    sc.foreground = Some(ForegroundSpec {
        rules: vec![PartitionRule::FirstFlows { n: 8 }],
    });
    sc
}

fn mice_cell(cc: CcKind) -> Scenario {
    let mut sc = Scenario::new(
        format!("hybrid-conf-mice-{}", cc.name()),
        TopologySpec::Dumbbell {
            senders: 4,
            switches: 3,
        },
        TrafficSpec::MiceBehindElephants {
            elephants: 2,
            elephant_size: 2_000_000,
            mice: 6,
            mouse_size: 20_000,
            warmup_us: 30,
            gap_us: 10,
        },
        cc,
    );
    sc.stop = StopCondition::Drain { cap_ms: 50 };
    sc.foreground = Some(ForegroundSpec {
        rules: vec![PartitionRule::SizeBelow { bytes: 1_000_000 }],
    });
    sc
}

fn drain_horizon(flows: &[FlowSpec]) -> SimTime {
    flows.iter().map(|f| f.start).max().unwrap_or(SimTime::ZERO) + TimeDelta::from_ms(50)
}

fn mean_fct_us(telem: &Telemetry, ids: &[FlowId]) -> f64 {
    let fcts: Vec<f64> = ids
        .iter()
        .map(|&id| {
            telem
                .flow_record(id)
                .and_then(|r| r.fct())
                .unwrap_or_else(|| panic!("flow {id:?} unfinished"))
                .as_secs_f64()
                * 1e6
        })
        .collect();
    fcts.iter().sum::<f64>() / fcts.len() as f64
}

/// Mean foreground FCT under the pure packet DES (all flows at packet
/// fidelity — the reference the hybrid engine is judged against).
fn pure_des_fg_fct(sc: &Scenario, fg_ids: &[FlowId]) -> f64 {
    let (topo, flows) = sc.instance(1);
    let frames = FabricConfig::paper_default();
    let base_rtt = topo.base_rtt(frames.mtu, frames.ack_base);
    let algo = make_algo(sc.cc, sc.link.bandwidth(), base_rtt);
    let horizon = drain_horizon(&flows);
    let mut sim = SimBuilder::with_algo(topo, algo)
        .fabric(|f| f.seed = 1)
        .flows(flows)
        .build();
    sim.run_to_completion(TimeDelta::from_ms(1), horizon);
    mean_fct_us(sim.telemetry(), fg_ids)
}

/// Mean foreground FCT under the hybrid engine (background in the fluid
/// model, foreground in the DES).
fn hybrid_fg_fct(sc: &Scenario, fg_ids: &[FlowId]) -> f64 {
    let (topo, flows) = sc.instance(1);
    let spec = sc.foreground.as_ref().expect("cell declares a partition");
    let (fg, bg) = spec.partition(&flows);
    let horizon = drain_horizon(&flows);
    let mut sim = HybridSim::new(
        topo,
        sc.cc,
        fg,
        bg,
        RateModel::paper_default(sc.cc),
        HybridConfig::default(),
    )
    .expect("hybrid build");
    let done = sim
        .run_to_completion(TimeDelta::from_ms(1), horizon)
        .expect("hybrid run");
    assert!(done, "hybrid run hit the drain cap on '{}'", sc.name);
    mean_fct_us(sim.telemetry(), fg_ids)
}

fn assert_cell_conforms(sc: &Scenario) {
    let (_, flows) = sc.instance(1);
    let spec = sc.foreground.as_ref().unwrap();
    let fg_ids: Vec<FlowId> = flows
        .iter()
        .filter(|f| spec.is_foreground(f))
        .map(|f| f.id)
        .collect();
    assert!(!fg_ids.is_empty());
    let des = pure_des_fg_fct(sc, &fg_ids);
    let hyb = hybrid_fg_fct(sc, &fg_ids);
    let rel = (hyb - des).abs() / des;
    assert!(
        rel <= TOLERANCE,
        "{}: hybrid fg mean FCT {hyb:.1} us vs pure-DES {des:.1} us \
         ({:+.1}% > ±{:.0}%)",
        sc.name,
        (hyb / des - 1.0) * 100.0,
        TOLERANCE * 100.0,
    );
}

#[test]
fn incast_foreground_fct_tracks_pure_des_all_schemes() {
    for cc in CcKind::ALL {
        assert_cell_conforms(&incast_cell(cc));
    }
}

#[test]
fn mice_foreground_fct_tracks_pure_des_all_schemes() {
    for cc in CcKind::ALL {
        assert_cell_conforms(&mice_cell(cc));
    }
}

/// Same scenario + seed ⇒ byte-identical hybrid `RunReport`, modulo the
/// one wall-clock-derived scalar.
#[test]
fn hybrid_reports_are_byte_identical() {
    let stable = |sc: &Scenario| {
        let mut report = run_scenario(sc, SimBackend::Hybrid);
        report.scalars.retain(|(k, _)| k != "events_per_sec");
        report.to_json()
    };
    let mut sc = mice_cell(CcKind::Fncc);
    sc.seeds = vec![7, 8];
    let a = stable(&sc);
    let b = stable(&sc);
    assert_eq!(a, b, "hybrid report must be deterministic");
}
