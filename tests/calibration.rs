//! The calibration subsystem's integration tests: the `fncc.calibration/v1`
//! artifact schema snapshot, the checked-in `CALIBRATION.json` ↔
//! `RateModel::paper_default` sync, and property tests over the
//! `Calibration`/`CalibrationSet` invariants.

use fncc::cc::CcKind;
use fncc::core::calibration::{set_from_json, set_to_json, CalibrationArtifact};
use fncc::core::json::Json;
use fncc::core::prelude::*;
use fncc::core::CALIBRATION_SCHEMA;
use proptest::prelude::*;

fn checked_in_artifact() -> CalibrationArtifact {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("CALIBRATION.json");
    CalibrationArtifact::load(&path).expect("repo-root CALIBRATION.json")
}

/// Snapshot of the `fncc.calibration/v1` artifact layout. If this fails,
/// the format changed: bump `CALIBRATION_SCHEMA` and update every consumer
/// (same contract as the `fncc.run_report/v1` snapshot in
/// `tests/scenario_api.rs`).
#[test]
fn calibration_schema_snapshot() {
    let artifact = CalibrationArtifact {
        set: CalibrationSet::paper(),
        scale: "default".into(),
    };
    let v = Json::parse(&artifact.to_json()).expect("artifact parses");

    assert_eq!(
        v.get("schema").and_then(|x| x.as_str()),
        Some("fncc.calibration/v1")
    );
    assert_eq!(
        v.get("schema").and_then(|x| x.as_str()),
        Some(CALIBRATION_SCHEMA)
    );
    // Top-level field set and order are pinned.
    let keys: Vec<String> = match &v {
        Json::Obj(fields) => fields.iter().map(|(k, _)| k.clone()).collect(),
        _ => panic!("artifact root must be an object"),
    };
    assert_eq!(keys, ["schema", "scale", "schemes"]);
    // One entry per scheme, keyed by display name, in CcKind::ALL order,
    // each carrying exactly the two model parameters.
    let schemes = match v.get("schemes").unwrap() {
        Json::Obj(fields) => fields,
        _ => panic!("'schemes' must be an object"),
    };
    let names: Vec<&str> = schemes.iter().map(|(k, _)| k.as_str()).collect();
    let expect: Vec<&str> = CcKind::ALL.iter().map(|k| k.name()).collect();
    assert_eq!(names, expect);
    for (name, entry) in schemes {
        let keys: Vec<String> = match entry {
            Json::Obj(fields) => fields.iter().map(|(k, _)| k.clone()).collect(),
            _ => panic!("scheme entry must be an object"),
        };
        assert_eq!(keys, ["utilization", "queue_rtts"], "{name}");
    }
}

/// The checked-in repo-root artifact IS the source `paper_default` is
/// regenerated from: the two representations must never drift. A failure
/// means either `RateModel::paper_default` changed without re-running
/// `fncc-repro calibrate`, or a fresh calibration produced new values
/// without updating the constants.
#[test]
fn checked_in_artifact_matches_paper_default() {
    let artifact = checked_in_artifact();
    assert_eq!(
        artifact.scale, "default",
        "artifact must come from the default scale"
    );
    assert_eq!(artifact.set, CalibrationSet::paper());
    for kind in CcKind::ALL {
        assert_eq!(
            RateModel::from_calibration(kind, &artifact.set),
            RateModel::paper_default(kind),
            "{kind:?}: checked-in CALIBRATION.json drifted from paper_default"
        );
    }
}

/// A scenario carrying a calibration override round-trips through the
/// scenario-file JSON format and actually steers the fluid backend.
#[test]
fn scenario_calibration_override_roundtrips_and_applies() {
    let mut cal = CalibrationSet::paper();
    cal.set(
        CcKind::Fncc,
        Calibration {
            utilization: 0.5,
            queue_rtts: 2.5,
        },
    )
    .unwrap();
    let slow = Scenario {
        overrides: CcOverrides {
            calibration: Some(cal),
            ..CcOverrides::default()
        },
        stop: StopCondition::Drain { cap_ms: 20 },
        ..Scenario::new(
            "calibrated-dumbbell",
            TopologySpec::Dumbbell {
                senders: 2,
                switches: 3,
            },
            TrafficSpec::Incast {
                receiver: 2,
                fan_in: 2,
                size: 1_000_000,
                waves: 1,
                gap_us: 0,
            },
            CcKind::Fncc,
        )
    };
    let parsed = Scenario::from_json(&slow.to_json()).expect("parse own output");
    assert_eq!(parsed, slow);

    // Halving η must halve throughput: mean slowdown roughly doubles
    // against the default model.
    let baseline = Scenario {
        overrides: CcOverrides::default(),
        ..slow.clone()
    };
    let s_slow = run_scenario(&parsed, SimBackend::Fluid)
        .mean_slowdown()
        .unwrap();
    let s_base = run_scenario(&baseline, SimBackend::Fluid)
        .mean_slowdown()
        .unwrap();
    assert!(
        s_slow > 1.5 * s_base,
        "calibration override ignored: {s_slow} vs {s_base}"
    );
}

/// The backend-level override applies when the scenario carries none, and
/// the scenario-level one wins when both are present.
#[test]
fn backend_level_calibration_yields_to_scenario_level() {
    let mut halved = CalibrationSet::paper();
    halved
        .set(
            CcKind::Fncc,
            Calibration {
                utilization: 0.5,
                queue_rtts: 0.4,
            },
        )
        .unwrap();
    let sc = Scenario {
        stop: StopCondition::Drain { cap_ms: 20 },
        ..Scenario::new(
            "backend-cal",
            TopologySpec::Dumbbell {
                senders: 2,
                switches: 3,
            },
            TrafficSpec::Incast {
                receiver: 2,
                fan_in: 2,
                size: 1_000_000,
                waves: 1,
                gap_us: 0,
            },
            CcKind::Fncc,
        )
    };
    let default_mean = FluidBackend::default().run(&sc).mean_slowdown().unwrap();
    let halved_mean = FluidBackend::with_calibration(halved)
        .run(&sc)
        .mean_slowdown()
        .unwrap();
    assert!(
        halved_mean > 1.5 * default_mean,
        "{halved_mean} vs {default_mean}"
    );

    // Scenario-level paper calibration overrides the backend's halved one.
    let mut with_override = sc.clone();
    with_override.overrides.calibration = Some(CalibrationSet::paper());
    let overridden = FluidBackend::with_calibration(halved)
        .run(&with_override)
        .mean_slowdown()
        .unwrap();
    assert!(
        (overridden - default_mean).abs() < 1e-9,
        "scenario override must win"
    );
}

fn calibration_strategy() -> impl Strategy<Value = Calibration> {
    // Valid parameter space: utilization ∈ (0, 1], queue_rtts ≥ 0 finite.
    (1u32..1001, 0.0f64..64.0).prop_map(|(u, q)| Calibration {
        utilization: u as f64 / 1000.0,
        queue_rtts: q,
    })
}

proptest! {
    /// Any valid set round-trips losslessly through the JSON artifact
    /// (Rust's shortest-representation float formatting is exact).
    #[test]
    fn calibration_json_roundtrip_is_lossless(
        entries in proptest::collection::vec(
            calibration_strategy(),
            CcKind::ALL.len()..CcKind::ALL.len() + 1,
        )
    ) {
        let mut set = CalibrationSet::paper();
        for (kind, e) in CcKind::ALL.into_iter().zip(entries) {
            set.set(kind, e).unwrap();
        }
        let parsed = set_from_json(&set_to_json(&set)).unwrap();
        prop_assert_eq!(parsed, set);

        let artifact = CalibrationArtifact { set, scale: "default".into() };
        let reparsed = CalibrationArtifact::from_json(&artifact.to_json()).unwrap();
        prop_assert_eq!(reparsed, artifact);
    }

    /// Every constructed set upholds the model invariants, and
    /// `from_calibration` carries them into `RateModel`.
    #[test]
    fn calibration_set_upholds_invariants(
        entries in proptest::collection::vec(
            calibration_strategy(),
            CcKind::ALL.len()..CcKind::ALL.len() + 1,
        )
    ) {
        let mut set = CalibrationSet::paper();
        for (kind, e) in CcKind::ALL.into_iter().zip(entries) {
            set.set(kind, e).unwrap();
        }
        for kind in CcKind::ALL {
            let m = RateModel::from_calibration(kind, &set);
            prop_assert_eq!(m.kind, kind);
            prop_assert!(m.utilization > 0.0 && m.utilization <= 1.0);
            prop_assert!(m.queue_rtts >= 0.0 && m.queue_rtts.is_finite());
        }
    }

}

/// Out-of-range parameters are rejected wherever they enter, and a failed
/// set leaves the entry untouched.
#[test]
fn invalid_calibrations_are_rejected() {
    let mut set = CalibrationSet::paper();
    for utilization in [0.0, -0.5, 1.5, f64::NAN, f64::INFINITY] {
        let bad = Calibration {
            utilization,
            queue_rtts: 1.0,
        };
        assert!(set.set(CcKind::Swift, bad).is_err(), "util {utilization}");
    }
    for queue_rtts in [-0.1, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let bad = Calibration {
            utilization: 0.9,
            queue_rtts,
        };
        assert!(set.set(CcKind::Swift, bad).is_err(), "queue {queue_rtts}");
    }
    assert_eq!(set, CalibrationSet::paper());
    // The same invariants gate the JSON loader.
    let poisoned = CalibrationArtifact {
        set: CalibrationSet::paper(),
        scale: "default".into(),
    }
    .to_json()
    .replace("\"queue_rtts\": 1.2", "\"queue_rtts\": -1.2");
    assert!(CalibrationArtifact::from_json(&poisoned).is_err());
}
