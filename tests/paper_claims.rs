//! End-to-end integration tests asserting the paper's headline claims hold
//! in this reproduction (shape, not absolute numbers — see EXPERIMENTS.md).

use fncc::prelude::*;

fn quick(cc: CcKind) -> MicrobenchSpec {
    MicrobenchSpec {
        cc,
        horizon_us: 800,
        ..Default::default()
    }
}

/// §5.1 / Fig. 9b: FNCC is the first to slow down, then HPCC, then
/// DCQCN/RoCC.
#[test]
fn reaction_ordering_fncc_first() {
    let f = elephant_dumbbell(&quick(CcKind::Fncc))
        .reaction_us
        .expect("FNCC reacted");
    let h = elephant_dumbbell(&quick(CcKind::Hpcc))
        .reaction_us
        .expect("HPCC reacted");
    let d = elephant_dumbbell(&quick(CcKind::Dcqcn))
        .reaction_us
        .expect("DCQCN reacted");
    assert!(f < h, "FNCC {f} must react before HPCC {h}");
    assert!(h < d, "HPCC {h} must react before DCQCN {d}");
}

/// §5.1 / Fig. 9a: FNCC keeps the shallowest bottleneck queue.
#[test]
fn queue_ordering_fncc_shallowest() {
    let f = elephant_dumbbell(&quick(CcKind::Fncc)).peak_queue_kb;
    let h = elephant_dumbbell(&quick(CcKind::Hpcc)).peak_queue_kb;
    let d = elephant_dumbbell(&quick(CcKind::Dcqcn)).peak_queue_kb;
    assert!(f < h, "FNCC {f}KB vs HPCC {h}KB");
    assert!(h < d, "HPCC {h}KB vs DCQCN {d}KB");
}

/// §5.2 / Figs. 9c–f: the orderings are robust at 200 and 400 Gb/s.
#[test]
fn robust_at_higher_line_rates() {
    for gbps in [200u64, 400] {
        let mut f = quick(CcKind::Fncc);
        f.line_gbps = gbps;
        let mut h = quick(CcKind::Hpcc);
        h.line_gbps = gbps;
        let rf = elephant_dumbbell(&f);
        let rh = elephant_dumbbell(&h);
        assert!(
            rf.peak_queue_kb < rh.peak_queue_kb,
            "{gbps}G: FNCC {} vs HPCC {}",
            rf.peak_queue_kb,
            rh.peak_queue_kb
        );
        assert!(
            rf.reaction_us.unwrap() <= rh.reaction_us.unwrap(),
            "{gbps}G reaction"
        );
    }
}

/// §5.2 / Figs. 9g–h: FNCC maintains utilization at least as high as HPCC.
#[test]
fn utilization_fncc_at_least_hpcc() {
    let f = elephant_dumbbell(&quick(CcKind::Fncc)).mean_util_after_join;
    let h = elephant_dumbbell(&quick(CcKind::Hpcc)).mean_util_after_join;
    assert!(f >= h - 0.01, "FNCC util {f} vs HPCC {h}");
    assert!(f > 0.9, "FNCC util {f} too low");
}

/// §3.1 Observation 1 / Fig. 12: ACK-path INT is fresher than data-path
/// INT at every hop, most at the first hop.
#[test]
fn int_freshness_gain_largest_at_first_hop() {
    let f = elephant_dumbbell(&quick(CcKind::Fncc)).mean_int_age_us;
    let h = elephant_dumbbell(&quick(CcKind::Hpcc)).mean_int_age_us;
    assert_eq!(f.len(), 3);
    assert_eq!(h.len(), 3);
    for hop in 0..3 {
        assert!(
            f[hop] < h[hop],
            "hop {hop}: FNCC age {} must be fresher than HPCC {}",
            f[hop],
            h[hop]
        );
    }
    let gain: Vec<f64> = (0..3).map(|i| h[i] - f[i]).collect();
    assert!(
        gain[0] > gain[1] && gain[1] > gain[2],
        "gain must shrink with hop: {gain:?}"
    );
}

/// §2.3 / Fig. 3: pause-frame counts are ordered FNCC ≤ HPCC ≤ DCQCN.
#[test]
fn pause_frames_ordering() {
    let mut f = quick(CcKind::Fncc);
    f.line_gbps = 400;
    let mut h = quick(CcKind::Hpcc);
    h.line_gbps = 400;
    let mut d = quick(CcKind::Dcqcn);
    d.line_gbps = 400;
    let pf = elephant_dumbbell(&f).pause_frames;
    let ph = elephant_dumbbell(&h).pause_frames;
    let pd = elephant_dumbbell(&d).pause_frames;
    assert!(pf <= ph, "FNCC {pf} vs HPCC {ph}");
    assert!(ph <= pd, "HPCC {ph} vs DCQCN {pd}");
    assert!(pd > 0, "DCQCN must trigger PFC at 400G");
}

/// §5.4 / Fig. 13: FNCC's queue advantage shrinks from first to last hop,
/// and LHCS restores it at the last hop.
#[test]
fn hop_location_gains_and_lhcs() {
    let spec_f = quick(CcKind::Fncc);
    let spec_h = quick(CcKind::Hpcc);
    let mut reductions = Vec::new();
    for loc in [HopLocation::First, HopLocation::Middle, HopLocation::Last] {
        let h = hop_congestion(loc, &spec_h);
        let f = hop_congestion(loc, &spec_f);
        reductions.push(1.0 - f.peak_queue_kb / h.peak_queue_kb);
    }
    // First-hop gain must exceed last-hop gain (Fig. 12's theory).
    assert!(
        reductions[0] > reductions[2] - 0.01,
        "gains by hop: {reductions:?}"
    );

    // LHCS fires only at the last hop and reduces the standing queue there.
    let last_h = hop_congestion(HopLocation::Last, &spec_h);
    let mut no_lhcs_spec = quick(CcKind::Fncc);
    no_lhcs_spec.disable_lhcs = true;
    let last_no = hop_congestion(HopLocation::Last, &no_lhcs_spec);
    let last_with = hop_congestion(HopLocation::Last, &spec_f);
    assert_eq!(last_no.lhcs_triggers, 0);
    assert!(last_with.lhcs_triggers > 0);
    assert!(
        last_with.mean_queue_kb < last_no.mean_queue_kb,
        "LHCS queue {} vs no-LHCS {}",
        last_with.mean_queue_kb,
        last_no.mean_queue_kb
    );
    assert!(
        last_with.peak_queue_kb < last_h.peak_queue_kb,
        "LHCS vs HPCC peak"
    );
}

/// §5.3 / Fig. 13e: good fairness at short time scales. The paper staggers
/// joins by 100 ms; 1 ms (≈80 RTTs) is already enough for W_AI-driven
/// equalisation within each period.
#[test]
fn fairness_staircase_high_jain() {
    let r = fairness_staircase(CcKind::Fncc, 4, TimeDelta::from_ms(1), 3);
    assert!(r.all_finished, "staircase flows must drain");
    let min = r.jain_per_period.iter().copied().fold(1.0, f64::min);
    assert!(min > 0.9, "Jain {min} ({:?})", r.jain_per_period);
}

/// §5.5 / Figs. 14–15 (pocket scale): FNCC's FCT slowdown beats DCQCN
/// overall and is at worst comparable to HPCC. Averaged over three seeds —
/// the paper averages five runs, and a single 150-flow draw is noisy enough
/// to flip the DCQCN/FNCC ordering on unlucky seeds.
#[test]
fn workload_slowdowns_ordered() {
    let mut results = Vec::new();
    for cc in [CcKind::Dcqcn, CcKind::Hpcc, CcKind::Fncc] {
        let spec = WorkloadSpec {
            cc,
            workload: Workload::FbHadoop,
            load: 0.5,
            n_flows: 150,
            seeds: vec![1, 2, 3],
            k: 4,
            line_gbps: 100,
        };
        let r = fattree_workload(&spec);
        assert_eq!(r.unfinished, vec![0; 3], "{cc:?} unfinished flows");
        // Weighted overall average slowdown.
        let (mut sum, mut n) = (0.0, 0usize);
        for b in &r.rows {
            sum += b.avg * b.count as f64;
            n += b.count;
        }
        results.push((cc, sum / n as f64));
    }
    let (dcqcn, hpcc, fncc) = (results[0].1, results[1].1, results[2].1);
    assert!(fncc < dcqcn, "FNCC {fncc} must beat DCQCN {dcqcn}");
    assert!(fncc < hpcc * 1.1, "FNCC {fncc} should be ≲ HPCC {hpcc}");
}
