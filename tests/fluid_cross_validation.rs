//! Cross-validation: the fluid backend's FCT slowdowns must stay within a
//! 15% band of the packet DES backend on shared small-scale scenarios.
//!
//! Both backends receive *identical* topologies and flow sets (same seeds
//! drive the same generators), so disagreement is purely modeling error:
//! what the fluid backend gives up by replacing per-packet dynamics with
//! max-min rate shares plus the RateModel's steady-state knobs.

use fncc::cc::CcKind;
use fncc::core::backend::{fattree_workload_on, SimBackend};
use fncc::core::scenarios::{Workload, WorkloadResult, WorkloadSpec};
use fncc::core::sim::SimBuilder;
use fncc::des::{SimTime, TimeDelta};
use fncc::net::ids::{FlowId, HostId};
use fncc::net::topology::Topology;
use fncc::net::units::Bandwidth;
use fncc::transport::FlowSpec;
use fncc_fluid::{FluidSim, RateModel};

const BAND: f64 = 0.15;

fn weighted_mean_slowdown(r: &WorkloadResult) -> f64 {
    let (mut sum, mut n) = (0.0, 0usize);
    for b in &r.rows {
        sum += b.avg * b.count as f64;
        n += b.count;
    }
    sum / n.max(1) as f64
}

fn xval_workload(cc: CcKind, workload: Workload) {
    let spec = WorkloadSpec {
        cc,
        workload,
        load: 0.5,
        n_flows: 120,
        seeds: vec![1, 2],
        k: 4,
        line_gbps: 100,
    };
    let packet = fattree_workload_on(&spec, SimBackend::Packet);
    let fluid = fattree_workload_on(&spec, SimBackend::Fluid);
    assert!(
        packet.unfinished.iter().all(|&u| u == 0),
        "{cc:?} packet unfinished"
    );
    assert!(
        fluid.unfinished.iter().all(|&u| u == 0),
        "{cc:?} fluid unfinished"
    );
    let (p, f) = (
        weighted_mean_slowdown(&packet),
        weighted_mean_slowdown(&fluid),
    );
    let rel = (f - p) / p;
    assert!(
        rel.abs() < BAND,
        "{cc:?}/{workload:?}: fluid {f:.3} vs packet {p:.3} — off by {:+.1}%",
        rel * 100.0
    );
}

#[test]
fn fncc_hadoop_within_band() {
    xval_workload(CcKind::Fncc, Workload::FbHadoop);
}

#[test]
fn hpcc_hadoop_within_band() {
    xval_workload(CcKind::Hpcc, Workload::FbHadoop);
}

#[test]
fn dcqcn_hadoop_within_band() {
    xval_workload(CcKind::Dcqcn, Workload::FbHadoop);
}

#[test]
fn fncc_websearch_within_band() {
    xval_workload(CcKind::Fncc, Workload::WebSearch);
}

#[test]
fn hpcc_websearch_within_band() {
    xval_workload(CcKind::Hpcc, Workload::WebSearch);
}

#[test]
fn dcqcn_websearch_within_band() {
    xval_workload(CcKind::Dcqcn, Workload::WebSearch);
}

/// The §5.1 microbenchmark shape, cross-backend: two elephants sharing the
/// dumbbell bottleneck. The packet DES drains them at the CC's fair share;
/// the fluid model must land within the band on both flows' FCTs.
#[test]
fn dumbbell_elephants_within_band() {
    let line = Bandwidth::gbps(100);
    let size = 2_000_000u64; // 2 MB each — long enough to reach steady state
    let flows = vec![
        FlowSpec {
            id: FlowId(0),
            src: HostId(0),
            dst: HostId(2),
            size,
            start: SimTime::ZERO,
        },
        FlowSpec {
            id: FlowId(1),
            src: HostId(1),
            dst: HostId(2),
            size,
            start: SimTime::ZERO,
        },
    ];

    let topo = Topology::dumbbell(2, 3, line, TimeDelta::from_ns(1500));
    let mut sim = SimBuilder::new(topo.clone(), CcKind::Fncc)
        .flows(flows.clone())
        .build();
    assert!(sim.run_to_completion(TimeDelta::from_us(50), SimTime::from_ms(20)));
    let packet_fct: Vec<f64> = (0..2)
        .map(|i| {
            sim.telemetry()
                .flow_record(FlowId(i))
                .and_then(|r| r.fct())
                .expect("flow finished")
                .as_secs_f64()
        })
        .collect();

    let fluid = FluidSim::new(topo, RateModel::paper_default(CcKind::Fncc))
        .flows(flows)
        .run();
    for i in 0..2u32 {
        let f = fluid
            .telemetry
            .flow_record(FlowId(i))
            .and_then(|r| r.fct())
            .expect("fluid flow finished")
            .as_secs_f64();
        let p = packet_fct[i as usize];
        let rel = (f - p) / p;
        assert!(
            rel.abs() < BAND,
            "flow {i}: fluid {f:.6}s vs packet {p:.6}s — off by {:+.1}%",
            rel * 100.0
        );
    }
}

/// The fairness sanity behind the fluid model: equal elephants through one
/// bottleneck get equal fluid rates, matching the packet backend's
/// converged fair share within the band.
#[test]
fn incast_fair_share_within_band() {
    let line = Bandwidth::gbps(100);
    let n = 4u32;
    let size = 1_000_000u64;
    let flows: Vec<FlowSpec> = (0..n)
        .map(|i| FlowSpec {
            id: FlowId(i),
            src: HostId(i),
            dst: HostId(n),
            size,
            start: SimTime::ZERO,
        })
        .collect();

    let topo = Topology::dumbbell(n, 3, line, TimeDelta::from_ns(1500));
    let mut sim = SimBuilder::new(topo.clone(), CcKind::Fncc)
        .flows(flows.clone())
        .build();
    assert!(sim.run_to_completion(TimeDelta::from_us(50), SimTime::from_ms(20)));
    let packet_mean: f64 = (0..n)
        .map(|i| {
            sim.telemetry()
                .flow_record(FlowId(i))
                .and_then(|r| r.fct())
                .unwrap()
                .as_secs_f64()
        })
        .sum::<f64>()
        / n as f64;

    let fluid = FluidSim::new(topo, RateModel::paper_default(CcKind::Fncc))
        .flows(flows)
        .run();
    let fluid_mean: f64 = (0..n)
        .map(|i| {
            fluid
                .telemetry
                .flow_record(FlowId(i))
                .and_then(|r| r.fct())
                .unwrap()
                .as_secs_f64()
        })
        .sum::<f64>()
        / n as f64;
    let rel = (fluid_mean - packet_mean) / packet_mean;
    assert!(
        rel.abs() < BAND,
        "mean FCT: fluid {fluid_mean:.6}s vs packet {packet_mean:.6}s — off by {:+.1}%",
        rel * 100.0
    );
}
