//! Cross-validation: the fluid backend's FCT slowdowns must stay within a
//! 15% band of the packet DES backend on shared small-scale scenarios.
//!
//! Both backends execute the *same* declarative [`Scenario`] through the
//! unified `Backend` trait — identical topologies and flow sets (same seeds
//! drive the same generators) — so disagreement is purely modeling error:
//! what the fluid backend gives up by replacing per-packet dynamics with
//! max-min rate shares plus the RateModel's steady-state knobs.

use fncc::cc::CcKind;
use fncc::core::prelude::*;

const BAND: f64 = 0.15;

/// Run one scenario on both backends and return their mean slowdowns.
fn both_backends(sc: &Scenario) -> (f64, f64) {
    let packet = run_scenario(sc, SimBackend::Packet);
    let fluid = run_scenario(sc, SimBackend::Fluid);
    assert!(
        packet.unfinished.iter().all(|&u| u == 0),
        "{}: packet unfinished",
        sc.name
    );
    assert!(
        fluid.unfinished.iter().all(|&u| u == 0),
        "{}: fluid unfinished",
        sc.name
    );
    (
        packet.mean_slowdown().expect("packet slowdowns"),
        fluid.mean_slowdown().expect("fluid slowdowns"),
    )
}

fn assert_within_band(name: &str, p: f64, f: f64) {
    let rel = (f - p) / p;
    // Per-cell error, visible with `cargo test -- --nocapture` and in CI
    // logs: the conformance matrix's reporting obligation.
    println!(
        "[xval] {name:<24} packet {p:7.3}  fluid {f:7.3}  error {:+6.1}%",
        rel * 100.0
    );
    assert!(
        rel.abs() < BAND,
        "{name}: fluid {f:.3} vs packet {p:.3} — off by {:+.1}%",
        rel * 100.0
    );
}

/// Matrix cell scale. CI's quick job shrinks the three newly calibrated
/// schemes' cells with `FNCC_XVAL_FLOWS`/`FNCC_XVAL_SEEDS`; unset (the
/// default everywhere else) runs the full 120-flow × 2-seed cells.
fn env_scale(var: &str, default: u64) -> u64 {
    std::env::var(var)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn xval_workload(cc: CcKind, workload: Workload) {
    let mut spec = WorkloadSpec::new(cc, workload);
    spec.load = 0.5;
    spec.n_flows = env_scale("FNCC_XVAL_FLOWS", 120) as u32;
    spec.seeds = (1..=env_scale("FNCC_XVAL_SEEDS", 2)).collect();
    spec.k = 4;
    let (p, f) = both_backends(&spec.scenario());
    assert_within_band(&format!("{cc:?}/{workload:?}"), p, f);
}

// ----------------------------------------------------------------------
// The conformance matrix: every scheme the repo implements × both §5.5
// workloads, all within the band. One test per cell so a failure names
// its cell and the rest of the matrix still reports.
// ----------------------------------------------------------------------

#[test]
fn matrix_covers_every_scheme() {
    // The cell tests below are hand-expanded (one #[test] per cell, so
    // failures are addressable); this guard makes the expansion total. If
    // it fails, a scheme was added to `CcKind::ALL` without matrix cells.
    assert_eq!(
        CcKind::ALL.len(),
        8,
        "new scheme in CcKind::ALL: add its hadoop/websearch matrix cells \
         and a calibration entry"
    );
}

#[test]
fn fncc_hadoop_within_band() {
    xval_workload(CcKind::Fncc, Workload::FbHadoop);
}

#[test]
fn hpcc_hadoop_within_band() {
    xval_workload(CcKind::Hpcc, Workload::FbHadoop);
}

#[test]
fn dcqcn_hadoop_within_band() {
    xval_workload(CcKind::Dcqcn, Workload::FbHadoop);
}

#[test]
fn rocc_hadoop_within_band() {
    xval_workload(CcKind::Rocc, Workload::FbHadoop);
}

#[test]
fn timely_hadoop_within_band() {
    xval_workload(CcKind::Timely, Workload::FbHadoop);
}

#[test]
fn swift_hadoop_within_band() {
    xval_workload(CcKind::Swift, Workload::FbHadoop);
}

#[test]
fn fairq_hadoop_within_band() {
    xval_workload(CcKind::FairQ, Workload::FbHadoop);
}

#[test]
fn throttle_hadoop_within_band() {
    xval_workload(CcKind::Throttle, Workload::FbHadoop);
}

#[test]
fn fncc_websearch_within_band() {
    xval_workload(CcKind::Fncc, Workload::WebSearch);
}

#[test]
fn hpcc_websearch_within_band() {
    xval_workload(CcKind::Hpcc, Workload::WebSearch);
}

#[test]
fn dcqcn_websearch_within_band() {
    xval_workload(CcKind::Dcqcn, Workload::WebSearch);
}

#[test]
fn rocc_websearch_within_band() {
    xval_workload(CcKind::Rocc, Workload::WebSearch);
}

#[test]
fn timely_websearch_within_band() {
    xval_workload(CcKind::Timely, Workload::WebSearch);
}

#[test]
fn swift_websearch_within_band() {
    xval_workload(CcKind::Swift, Workload::WebSearch);
}

#[test]
fn fairq_websearch_within_band() {
    xval_workload(CcKind::FairQ, Workload::WebSearch);
}

#[test]
fn throttle_websearch_within_band() {
    xval_workload(CcKind::Throttle, Workload::WebSearch);
}

/// The §5.1 microbenchmark shape, cross-backend: two 2 MB elephants share
/// the dumbbell bottleneck from t = 0 (expressed as a one-wave incast of
/// the dumbbell's two senders). The packet DES drains them at the CC's
/// fair share; the fluid model must land within the band.
fn dumbbell_elephants(cc: CcKind) -> Scenario {
    Scenario {
        probes: ProbeSpec::default(),
        stop: StopCondition::Drain { cap_ms: 20 },
        ..Scenario::new(
            format!("xval-dumbbell-elephants-{}", cc.name()),
            TopologySpec::Dumbbell {
                senders: 2,
                switches: 3,
            },
            TrafficSpec::Incast {
                receiver: 2,
                fan_in: 2,
                size: 2_000_000,
                waves: 1,
                gap_us: 0,
            },
            cc,
        )
    }
}

#[test]
fn dumbbell_elephants_within_band() {
    let (p, f) = both_backends(&dumbbell_elephants(CcKind::Fncc));
    assert_within_band("dumbbell elephants", p, f);
}

/// Dumbbell spot check for the three schemes the calibration subsystem
/// newly covers (the workload matrix is their primary validation; this
/// pins the microbenchmark shape too).
///
/// Timely used to carry a documented looser bound here: under a
/// *sustained* multi-MB drain its gradient control settles into a deep
/// oscillation (~0.6 sustained utilization in the DES — a regime no §5.5
/// workload flow lives long enough to reach), which a single-η reduction
/// cannot express. The `RateModel` duration→effective-η hook
/// ([`fncc_fluid::DurationEta`]) now models exactly that decay, so Timely
/// is held to the same 15% band as every other scheme.
#[test]
fn new_schemes_dumbbell_spot_checks() {
    for cc in [CcKind::Rocc, CcKind::Swift, CcKind::Timely] {
        let (p, f) = both_backends(&dumbbell_elephants(cc));
        assert_within_band(&format!("{cc:?} dumbbell"), p, f);
    }
}

/// The fairness sanity behind the fluid model: equal elephants through one
/// bottleneck get equal fluid rates, matching the packet backend's
/// converged fair share within the band.
fn incast_fair_share(cc: CcKind) -> Scenario {
    Scenario {
        stop: StopCondition::Drain { cap_ms: 20 },
        ..Scenario::new(
            format!("xval-incast-fair-share-{}", cc.name()),
            TopologySpec::Dumbbell {
                senders: 4,
                switches: 3,
            },
            TrafficSpec::Incast {
                receiver: 4,
                fan_in: 4,
                size: 1_000_000,
                waves: 1,
                gap_us: 0,
            },
            cc,
        )
    }
}

#[test]
fn incast_fair_share_within_band() {
    let (p, f) = both_backends(&incast_fair_share(CcKind::Fncc));
    assert_within_band("incast fair share", p, f);
}

/// Incast spot check for the three newly calibrated schemes. Timely's
/// sustained-saturation decay is covered by the duration→effective-η hook
/// (see the dumbbell spot check), so all three sit in the standard band.
#[test]
fn new_schemes_incast_spot_checks() {
    for cc in [CcKind::Rocc, CcKind::Swift, CcKind::Timely] {
        let (p, f) = both_backends(&incast_fair_share(cc));
        assert_within_band(&format!("{cc:?} incast"), p, f);
    }
}

/// The new scenarios the unified API added ride outside the calibrated
/// band — extreme fan-in and an oversubscribed fabric are exactly where
/// per-packet dynamics (PFC, LHCS, ECMP collisions) matter most — but the
/// two engines must stay the same order of magnitude and agree on flow
/// accounting, or a backend has silently diverged from the shared
/// scenario description.
#[test]
fn new_scenarios_agree_loosely_across_backends() {
    let incast = Scenario {
        stop: StopCondition::Drain { cap_ms: 50 },
        seeds: vec![1],
        ..Scenario::new(
            "xval-incast-fattree",
            TopologySpec::FatTree { k: 4 },
            TrafficSpec::Incast {
                receiver: 0,
                fan_in: 12,
                size: 200_000,
                waves: 3,
                gap_us: 100,
            },
            CcKind::Fncc,
        )
    };
    let (p, f) = both_backends(&incast);
    let ratio = f / p;
    assert!(
        (0.5..2.0).contains(&ratio),
        "incast fat-tree: fluid {f:.2} vs packet {p:.2}"
    );

    let leafspine = Scenario {
        seeds: vec![1],
        ..Scenario::new(
            "xval-leafspine",
            TopologySpec::LeafSpine {
                leaves: 4,
                spines: 2,
                hosts_per_leaf: 8,
            },
            TrafficSpec::Poisson {
                workload: Workload::FbHadoop,
                load: 0.4,
                flows: 120,
            },
            CcKind::Fncc,
        )
    };
    let (p, f) = both_backends(&leafspine);
    let ratio = f / p;
    assert!(
        (0.5..1.5).contains(&ratio),
        "leaf-spine: fluid {f:.2} vs packet {p:.2}"
    );
}
