//! Cross-validation: the fluid backend's FCT slowdowns must stay within a
//! 15% band of the packet DES backend on shared small-scale scenarios.
//!
//! Both backends execute the *same* declarative [`Scenario`] through the
//! unified `Backend` trait — identical topologies and flow sets (same seeds
//! drive the same generators) — so disagreement is purely modeling error:
//! what the fluid backend gives up by replacing per-packet dynamics with
//! max-min rate shares plus the RateModel's steady-state knobs.

use fncc::cc::CcKind;
use fncc::core::prelude::*;

const BAND: f64 = 0.15;

/// Run one scenario on both backends and return their mean slowdowns.
fn both_backends(sc: &Scenario) -> (f64, f64) {
    let packet = run_scenario(sc, SimBackend::Packet);
    let fluid = run_scenario(sc, SimBackend::Fluid);
    assert!(
        packet.unfinished.iter().all(|&u| u == 0),
        "{}: packet unfinished",
        sc.name
    );
    assert!(
        fluid.unfinished.iter().all(|&u| u == 0),
        "{}: fluid unfinished",
        sc.name
    );
    (
        packet.mean_slowdown().expect("packet slowdowns"),
        fluid.mean_slowdown().expect("fluid slowdowns"),
    )
}

fn assert_within_band(name: &str, p: f64, f: f64) {
    let rel = (f - p) / p;
    assert!(
        rel.abs() < BAND,
        "{name}: fluid {f:.3} vs packet {p:.3} — off by {:+.1}%",
        rel * 100.0
    );
}

fn xval_workload(cc: CcKind, workload: Workload) {
    let mut spec = WorkloadSpec::new(cc, workload);
    spec.load = 0.5;
    spec.n_flows = 120;
    spec.seeds = vec![1, 2];
    spec.k = 4;
    let (p, f) = both_backends(&spec.scenario());
    assert_within_band(&format!("{cc:?}/{workload:?}"), p, f);
}

#[test]
fn fncc_hadoop_within_band() {
    xval_workload(CcKind::Fncc, Workload::FbHadoop);
}

#[test]
fn hpcc_hadoop_within_band() {
    xval_workload(CcKind::Hpcc, Workload::FbHadoop);
}

#[test]
fn dcqcn_hadoop_within_band() {
    xval_workload(CcKind::Dcqcn, Workload::FbHadoop);
}

#[test]
fn fncc_websearch_within_band() {
    xval_workload(CcKind::Fncc, Workload::WebSearch);
}

#[test]
fn hpcc_websearch_within_band() {
    xval_workload(CcKind::Hpcc, Workload::WebSearch);
}

#[test]
fn dcqcn_websearch_within_band() {
    xval_workload(CcKind::Dcqcn, Workload::WebSearch);
}

/// The §5.1 microbenchmark shape, cross-backend: two 2 MB elephants share
/// the dumbbell bottleneck from t = 0 (expressed as a one-wave incast of
/// the dumbbell's two senders). The packet DES drains them at the CC's
/// fair share; the fluid model must land within the band.
#[test]
fn dumbbell_elephants_within_band() {
    let sc = Scenario {
        probes: ProbeSpec::default(),
        stop: StopCondition::Drain { cap_ms: 20 },
        ..Scenario::new(
            "xval-dumbbell-elephants",
            TopologySpec::Dumbbell {
                senders: 2,
                switches: 3,
            },
            TrafficSpec::Incast {
                receiver: 2,
                fan_in: 2,
                size: 2_000_000,
                waves: 1,
                gap_us: 0,
            },
            CcKind::Fncc,
        )
    };
    let (p, f) = both_backends(&sc);
    assert_within_band("dumbbell elephants", p, f);
}

/// The fairness sanity behind the fluid model: equal elephants through one
/// bottleneck get equal fluid rates, matching the packet backend's
/// converged fair share within the band.
#[test]
fn incast_fair_share_within_band() {
    let sc = Scenario {
        stop: StopCondition::Drain { cap_ms: 20 },
        ..Scenario::new(
            "xval-incast-fair-share",
            TopologySpec::Dumbbell {
                senders: 4,
                switches: 3,
            },
            TrafficSpec::Incast {
                receiver: 4,
                fan_in: 4,
                size: 1_000_000,
                waves: 1,
                gap_us: 0,
            },
            CcKind::Fncc,
        )
    };
    let (p, f) = both_backends(&sc);
    assert_within_band("incast fair share", p, f);
}

/// The new scenarios the unified API added ride outside the calibrated
/// band — extreme fan-in and an oversubscribed fabric are exactly where
/// per-packet dynamics (PFC, LHCS, ECMP collisions) matter most — but the
/// two engines must stay the same order of magnitude and agree on flow
/// accounting, or a backend has silently diverged from the shared
/// scenario description.
#[test]
fn new_scenarios_agree_loosely_across_backends() {
    let incast = Scenario {
        stop: StopCondition::Drain { cap_ms: 50 },
        seeds: vec![1],
        ..Scenario::new(
            "xval-incast-fattree",
            TopologySpec::FatTree { k: 4 },
            TrafficSpec::Incast {
                receiver: 0,
                fan_in: 12,
                size: 200_000,
                waves: 3,
                gap_us: 100,
            },
            CcKind::Fncc,
        )
    };
    let (p, f) = both_backends(&incast);
    let ratio = f / p;
    assert!(
        (0.5..2.0).contains(&ratio),
        "incast fat-tree: fluid {f:.2} vs packet {p:.2}"
    );

    let leafspine = Scenario {
        seeds: vec![1],
        ..Scenario::new(
            "xval-leafspine",
            TopologySpec::LeafSpine {
                leaves: 4,
                spines: 2,
                hosts_per_leaf: 8,
            },
            TrafficSpec::Poisson {
                workload: Workload::FbHadoop,
                load: 0.4,
                flows: 120,
            },
            CcKind::Fncc,
        )
    };
    let (p, f) = both_backends(&leafspine);
    let ratio = f / p;
    assert!(
        (0.5..1.5).contains(&ratio),
        "leaf-spine: fluid {f:.2} vs packet {p:.2}"
    );
}
