//! Flight-recorder observability guarantees.
//!
//! Three contracts are pinned here:
//!
//! 1. The `fncc.trace/v1` JSONL wire format — a literal snapshot of the
//!    header and one line per event kind, so any accidental schema drift
//!    (renamed field, reordered key) fails a test instead of breaking the
//!    downstream `inspect` tooling silently.
//! 2. Every event round-trips through the repo's own JSON parser with all
//!    payload fields intact (property-tested over the full value ranges).
//! 3. Arming the recorder never changes the `RunReport`: both backends'
//!    smoke scenarios produce byte-identical artifacts with tracing on and
//!    off — the trace rides in a separate file.

use fncc::core::json::Json;
use fncc::core::obs::{TraceEvent, TraceMeta, TraceSink};
use fncc::core::{run_scenario_traced, Scenario, SimBackend};
use proptest::prelude::*;

fn drain(sink: &TraceSink) -> String {
    let meta = TraceMeta {
        scenario: "snap".into(),
        backend: "packet".into(),
        seed: 7,
    };
    let mut out = Vec::new();
    sink.write_jsonl(&mut out, &meta).unwrap();
    String::from_utf8(out).unwrap()
}

/// One event of every kind, with distinct payload values so a swapped
/// field shows up as a changed literal below.
fn one_of_each() -> Vec<TraceEvent> {
    vec![
        TraceEvent::Enqueue {
            t_ps: 1,
            sw: 2,
            port: 3,
            flow: 4,
            size: 5,
            queue_bytes: 6,
        },
        TraceEvent::Dequeue {
            t_ps: 7,
            sw: 8,
            port: 9,
            flow: 10,
            size: 11,
            queue_bytes: 12,
        },
        TraceEvent::EcnMark {
            t_ps: 13,
            sw: 14,
            port: 15,
            flow: 16,
            queue_bytes: 17,
        },
        TraceEvent::Drop {
            t_ps: 18,
            sw: 19,
            port: 20,
            flow: 21,
            size: 22,
        },
        TraceEvent::PfcPause {
            t_ps: 23,
            node: 24,
            port: 25,
            tx: true,
            at_host: false,
        },
        TraceEvent::PfcResume {
            t_ps: 26,
            node: 27,
            port: 28,
            tx: false,
            at_host: true,
        },
        TraceEvent::Cnp {
            t_ps: 29,
            flow: 30,
            src: 31,
            dst: 32,
        },
        TraceEvent::IntRecord {
            t_ps: 33,
            flow: 34,
            hop: 35,
            age_ps: 36,
        },
        TraceEvent::RateUpdate {
            t_ps: 37,
            flow: 38,
            rate_bps: 39.5,
            window_bytes: -1.0,
        },
        TraceEvent::FlowStart {
            t_ps: 40,
            flow: 41,
            src: 42,
            dst: 43,
            size: 44,
        },
        TraceEvent::FlowFinish { t_ps: 45, flow: 46 },
        TraceEvent::SolveBegin {
            t_ps: 47,
            active: 48,
        },
        TraceEvent::SolveEnd {
            t_ps: 49,
            full: true,
            changed: 50,
        },
        TraceEvent::FluidFlowAdd { t_ps: 51, flow: 52 },
        TraceEvent::FluidFlowRemove { t_ps: 53, flow: 54 },
        TraceEvent::HybridSync {
            t_ps: 55,
            reservations: 56,
            residuals: 57,
        },
        TraceEvent::HybridReserve {
            t_ps: 58,
            link: 59,
            load_bps: 60.5,
        },
        TraceEvent::HybridResidual {
            t_ps: 61,
            link: 62,
            residual_bps: 63.5,
        },
        TraceEvent::HybridBacklog {
            t_ps: 64,
            link: 65,
            backlog_bytes: 66,
        },
        TraceEvent::LinkDown {
            t_ps: 67,
            sw: 68,
            port: 69,
        },
        TraceEvent::LinkUp {
            t_ps: 70,
            sw: 71,
            port: 72,
        },
        TraceEvent::FaultDrop {
            t_ps: 73,
            sw: 74,
            port: 75,
            flow: 76,
            size: 77,
        },
        TraceEvent::Retransmit {
            t_ps: 78,
            flow: 79,
            seq: 80,
        },
        TraceEvent::Rto {
            t_ps: 81,
            flow: 82,
            rto_ps: 83,
        },
    ]
}

#[test]
fn trace_v1_schema_snapshot() {
    let mut sink = TraceSink::with_capacity(64);
    for ev in one_of_each() {
        sink.record(ev);
    }
    let text = drain(&sink);
    let expected = "\
{\"schema\":\"fncc.trace/v1\",\"scenario\":\"snap\",\"backend\":\"packet\",\"seed\":7,\"events\":24,\"dropped\":0}
{\"ev\":\"enqueue\",\"t_ps\":1,\"sw\":2,\"port\":3,\"flow\":4,\"size\":5,\"queue_bytes\":6}
{\"ev\":\"dequeue\",\"t_ps\":7,\"sw\":8,\"port\":9,\"flow\":10,\"size\":11,\"queue_bytes\":12}
{\"ev\":\"ecn_mark\",\"t_ps\":13,\"sw\":14,\"port\":15,\"flow\":16,\"queue_bytes\":17}
{\"ev\":\"drop\",\"t_ps\":18,\"sw\":19,\"port\":20,\"flow\":21,\"size\":22}
{\"ev\":\"pfc_pause\",\"t_ps\":23,\"node\":24,\"port\":25,\"tx\":true,\"at_host\":false}
{\"ev\":\"pfc_resume\",\"t_ps\":26,\"node\":27,\"port\":28,\"tx\":false,\"at_host\":true}
{\"ev\":\"cnp\",\"t_ps\":29,\"flow\":30,\"src\":31,\"dst\":32}
{\"ev\":\"int_record\",\"t_ps\":33,\"flow\":34,\"hop\":35,\"age_ps\":36}
{\"ev\":\"rate_update\",\"t_ps\":37,\"flow\":38,\"rate_bps\":39.5,\"window_bytes\":-1}
{\"ev\":\"flow_start\",\"t_ps\":40,\"flow\":41,\"src\":42,\"dst\":43,\"size\":44}
{\"ev\":\"flow_finish\",\"t_ps\":45,\"flow\":46}
{\"ev\":\"solve_begin\",\"t_ps\":47,\"active\":48}
{\"ev\":\"solve_end\",\"t_ps\":49,\"full\":true,\"changed\":50}
{\"ev\":\"fluid_flow_add\",\"t_ps\":51,\"flow\":52}
{\"ev\":\"fluid_flow_remove\",\"t_ps\":53,\"flow\":54}
{\"ev\":\"hybrid_sync\",\"t_ps\":55,\"reservations\":56,\"residuals\":57}
{\"ev\":\"hybrid_reserve\",\"t_ps\":58,\"link\":59,\"load_bps\":60.5}
{\"ev\":\"hybrid_residual\",\"t_ps\":61,\"link\":62,\"residual_bps\":63.5}
{\"ev\":\"hybrid_backlog\",\"t_ps\":64,\"link\":65,\"backlog_bytes\":66}
{\"ev\":\"link_down\",\"t_ps\":67,\"sw\":68,\"port\":69}
{\"ev\":\"link_up\",\"t_ps\":70,\"sw\":71,\"port\":72}
{\"ev\":\"fault_drop\",\"t_ps\":73,\"sw\":74,\"port\":75,\"flow\":76,\"size\":77}
{\"ev\":\"retransmit\",\"t_ps\":78,\"flow\":79,\"seq\":80}
{\"ev\":\"rto\",\"t_ps\":81,\"flow\":82,\"rto_ps\":83}
";
    assert_eq!(text, expected, "fncc.trace/v1 wire format drifted");
}

#[test]
fn trace_ring_overwrites_oldest_and_counts_drops() {
    let mut sink = TraceSink::with_capacity(4);
    for i in 0..10u64 {
        sink.record(TraceEvent::FlowFinish {
            t_ps: i,
            flow: i as u32,
        });
    }
    assert_eq!(sink.len(), 4);
    assert_eq!(sink.dropped(), 6);
    let ts: Vec<u64> = sink
        .events()
        .map(|e| match e {
            TraceEvent::FlowFinish { t_ps, .. } => *t_ps,
            _ => unreachable!(),
        })
        .collect();
    assert_eq!(ts, vec![6, 7, 8, 9], "oldest-first iteration after wrap");
}

// ----------------------------------------------------------------------
// Property: every event survives the JSONL round trip.
// ----------------------------------------------------------------------

/// Draws one uniformly-kinded event with uniformly random payloads (the
/// vendored proptest shim has no `prop_oneof`, so this implements
/// [`Strategy`] directly). `t_ps` stays below 2^53 so the f64-based JSON
/// reader represents it exactly.
struct EventStrategy;

impl Strategy for EventStrategy {
    type Value = TraceEvent;

    fn generate(&self, rng: &mut proptest::TestRng) -> TraceEvent {
        let t_ps = rng.next_u64() >> 11;
        let u32r = |rng: &mut proptest::TestRng| rng.next_u64() as u32;
        let u8r = |rng: &mut proptest::TestRng| rng.next_u64() as u8;
        let boolr = |rng: &mut proptest::TestRng| rng.next_u64() & 1 == 1;
        match rng.below(24) {
            0 => TraceEvent::Enqueue {
                t_ps,
                sw: u32r(rng),
                port: u8r(rng),
                flow: u32r(rng),
                size: u32r(rng),
                queue_bytes: rng.next_u64() >> 11,
            },
            1 => TraceEvent::Dequeue {
                t_ps,
                sw: u32r(rng),
                port: u8r(rng),
                flow: u32r(rng),
                size: u32r(rng),
                queue_bytes: rng.next_u64() >> 11,
            },
            2 => TraceEvent::EcnMark {
                t_ps,
                sw: u32r(rng),
                port: u8r(rng),
                flow: u32r(rng),
                queue_bytes: rng.next_u64() >> 11,
            },
            3 => TraceEvent::Drop {
                t_ps,
                sw: u32r(rng),
                port: u8r(rng),
                flow: u32r(rng),
                size: u32r(rng),
            },
            4 => TraceEvent::PfcPause {
                t_ps,
                node: u32r(rng),
                port: u8r(rng),
                tx: boolr(rng),
                at_host: boolr(rng),
            },
            5 => TraceEvent::PfcResume {
                t_ps,
                node: u32r(rng),
                port: u8r(rng),
                tx: boolr(rng),
                at_host: boolr(rng),
            },
            6 => TraceEvent::Cnp {
                t_ps,
                flow: u32r(rng),
                src: u32r(rng),
                dst: u32r(rng),
            },
            7 => TraceEvent::IntRecord {
                t_ps,
                flow: u32r(rng),
                hop: u8r(rng),
                age_ps: rng.next_u64() >> 11,
            },
            8 => TraceEvent::RateUpdate {
                t_ps,
                flow: u32r(rng),
                rate_bps: rng.unit_f64() * 1e12,
                window_bytes: if boolr(rng) {
                    -1.0
                } else {
                    rng.unit_f64() * 1e9
                },
            },
            9 => TraceEvent::FlowStart {
                t_ps,
                flow: u32r(rng),
                src: u32r(rng),
                dst: u32r(rng),
                size: rng.next_u64() >> 11,
            },
            10 => TraceEvent::FlowFinish {
                t_ps,
                flow: u32r(rng),
            },
            11 => TraceEvent::SolveBegin {
                t_ps,
                active: u32r(rng),
            },
            12 => TraceEvent::SolveEnd {
                t_ps,
                full: boolr(rng),
                changed: u32r(rng),
            },
            13 => TraceEvent::FluidFlowAdd {
                t_ps,
                flow: u32r(rng),
            },
            14 => TraceEvent::FluidFlowRemove {
                t_ps,
                flow: u32r(rng),
            },
            15 => TraceEvent::HybridSync {
                t_ps,
                reservations: u32r(rng),
                residuals: u32r(rng),
            },
            16 => TraceEvent::HybridReserve {
                t_ps,
                link: u32r(rng),
                load_bps: rng.unit_f64() * 1e12,
            },
            17 => TraceEvent::HybridResidual {
                t_ps,
                link: u32r(rng),
                residual_bps: rng.unit_f64() * 1e12,
            },
            18 => TraceEvent::HybridBacklog {
                t_ps,
                link: u32r(rng),
                backlog_bytes: rng.next_u64() >> 11,
            },
            19 => TraceEvent::LinkDown {
                t_ps,
                sw: u32r(rng),
                port: u8r(rng),
            },
            20 => TraceEvent::LinkUp {
                t_ps,
                sw: u32r(rng),
                port: u8r(rng),
            },
            21 => TraceEvent::FaultDrop {
                t_ps,
                sw: u32r(rng),
                port: u8r(rng),
                flow: u32r(rng),
                size: u32r(rng),
            },
            22 => TraceEvent::Retransmit {
                t_ps,
                flow: u32r(rng),
                seq: rng.next_u64() >> 11,
            },
            _ => TraceEvent::Rto {
                t_ps,
                flow: u32r(rng),
                rto_ps: rng.next_u64() >> 11,
            },
        }
    }
}

fn event_strategy() -> impl Strategy<Value = TraceEvent> {
    EventStrategy
}

/// Field-by-field comparison of a parsed JSONL line against the source
/// event. `t_ps` above 2^53 is representable in the artifact (it is written
/// as a decimal integer) but saturates the reader's f64 — tolerate that by
/// comparing through the same conversion.
fn assert_matches(line: &Json, ev: &TraceEvent) {
    let u = |k: &str| line.get(k).and_then(Json::as_f64).unwrap();
    let b = |k: &str| line.get(k).and_then(Json::as_bool).unwrap();
    assert_eq!(line.get("ev").and_then(Json::as_str).unwrap(), ev.kind());
    assert_eq!(u("t_ps"), ev.t_ps() as f64);
    match *ev {
        TraceEvent::Enqueue {
            sw,
            port,
            flow,
            size,
            queue_bytes,
            ..
        }
        | TraceEvent::Dequeue {
            sw,
            port,
            flow,
            size,
            queue_bytes,
            ..
        } => {
            assert_eq!(u("sw"), sw as f64);
            assert_eq!(u("port"), port as f64);
            assert_eq!(u("flow"), flow as f64);
            assert_eq!(u("size"), size as f64);
            assert_eq!(u("queue_bytes"), queue_bytes as f64);
        }
        TraceEvent::EcnMark {
            sw,
            port,
            flow,
            queue_bytes,
            ..
        } => {
            assert_eq!(u("sw"), sw as f64);
            assert_eq!(u("port"), port as f64);
            assert_eq!(u("flow"), flow as f64);
            assert_eq!(u("queue_bytes"), queue_bytes as f64);
        }
        TraceEvent::Drop {
            sw,
            port,
            flow,
            size,
            ..
        } => {
            assert_eq!(u("sw"), sw as f64);
            assert_eq!(u("port"), port as f64);
            assert_eq!(u("flow"), flow as f64);
            assert_eq!(u("size"), size as f64);
        }
        TraceEvent::PfcPause {
            node,
            port,
            tx,
            at_host,
            ..
        }
        | TraceEvent::PfcResume {
            node,
            port,
            tx,
            at_host,
            ..
        } => {
            assert_eq!(u("node"), node as f64);
            assert_eq!(u("port"), port as f64);
            assert_eq!(b("tx"), tx);
            assert_eq!(b("at_host"), at_host);
        }
        TraceEvent::Cnp { flow, src, dst, .. } => {
            assert_eq!(u("flow"), flow as f64);
            assert_eq!(u("src"), src as f64);
            assert_eq!(u("dst"), dst as f64);
        }
        TraceEvent::IntRecord {
            flow, hop, age_ps, ..
        } => {
            assert_eq!(u("flow"), flow as f64);
            assert_eq!(u("hop"), hop as f64);
            assert_eq!(u("age_ps"), age_ps as f64);
        }
        TraceEvent::RateUpdate {
            flow,
            rate_bps,
            window_bytes,
            ..
        } => {
            assert_eq!(u("flow"), flow as f64);
            assert_eq!(u("rate_bps"), rate_bps);
            assert_eq!(u("window_bytes"), window_bytes);
        }
        TraceEvent::FlowStart {
            flow,
            src,
            dst,
            size,
            ..
        } => {
            assert_eq!(u("flow"), flow as f64);
            assert_eq!(u("src"), src as f64);
            assert_eq!(u("dst"), dst as f64);
            assert_eq!(u("size"), size as f64);
        }
        TraceEvent::FlowFinish { flow, .. }
        | TraceEvent::FluidFlowAdd { flow, .. }
        | TraceEvent::FluidFlowRemove { flow, .. } => {
            assert_eq!(u("flow"), flow as f64);
        }
        TraceEvent::SolveBegin { active, .. } => {
            assert_eq!(u("active"), active as f64);
        }
        TraceEvent::SolveEnd { full, changed, .. } => {
            assert_eq!(b("full"), full);
            assert_eq!(u("changed"), changed as f64);
        }
        TraceEvent::HybridSync {
            reservations,
            residuals,
            ..
        } => {
            assert_eq!(u("reservations"), reservations as f64);
            assert_eq!(u("residuals"), residuals as f64);
        }
        TraceEvent::HybridReserve { link, load_bps, .. } => {
            assert_eq!(u("link"), link as f64);
            assert_eq!(u("load_bps"), load_bps);
        }
        TraceEvent::HybridResidual {
            link, residual_bps, ..
        } => {
            assert_eq!(u("link"), link as f64);
            assert_eq!(u("residual_bps"), residual_bps);
        }
        TraceEvent::HybridBacklog {
            link,
            backlog_bytes,
            ..
        } => {
            assert_eq!(u("link"), link as f64);
            assert_eq!(u("backlog_bytes"), backlog_bytes as f64);
        }
        TraceEvent::LinkDown { sw, port, .. } | TraceEvent::LinkUp { sw, port, .. } => {
            assert_eq!(u("sw"), sw as f64);
            assert_eq!(u("port"), port as f64);
        }
        TraceEvent::FaultDrop {
            sw,
            port,
            flow,
            size,
            ..
        } => {
            assert_eq!(u("sw"), sw as f64);
            assert_eq!(u("port"), port as f64);
            assert_eq!(u("flow"), flow as f64);
            assert_eq!(u("size"), size as f64);
        }
        TraceEvent::Retransmit { flow, seq, .. } => {
            assert_eq!(u("flow"), flow as f64);
            assert_eq!(u("seq"), seq as f64);
        }
        TraceEvent::Rto { flow, rto_ps, .. } => {
            assert_eq!(u("flow"), flow as f64);
            assert_eq!(u("rto_ps"), rto_ps as f64);
        }
    }
}

proptest! {
    #[test]
    fn trace_events_roundtrip_through_json(
        events in proptest::collection::vec(event_strategy(), 1..40)
    ) {
        let mut sink = TraceSink::with_capacity(64);
        for ev in &events {
            sink.record(*ev);
        }
        let text = drain(&sink);
        let mut lines = text.lines();
        let header = Json::parse(lines.next().unwrap()).unwrap();
        prop_assert_eq!(
            header.get("schema").and_then(Json::as_str),
            Some("fncc.trace/v1")
        );
        prop_assert_eq!(
            header.get("events").and_then(Json::as_f64),
            Some(events.len() as f64)
        );
        for (line, ev) in lines.zip(&events) {
            let parsed = Json::parse(line).unwrap();
            assert_matches(&parsed, ev);
        }
    }
}

// ----------------------------------------------------------------------
// Report invariance: tracing on vs off.
// ----------------------------------------------------------------------

/// The report with the single wall-clock scalar stripped (same rule as the
/// determinism suite: `events_per_sec` is intentionally non-deterministic).
fn stable_json(sc: &Scenario, backend: SimBackend, trace_out: Option<&std::path::Path>) -> String {
    let mut report = run_scenario_traced(sc, backend, trace_out);
    report.scalars.retain(|(k, _)| k != "events_per_sec");
    report.to_json()
}

fn assert_trace_invariant(scenario_file: &str, backend: SimBackend) {
    let text = std::fs::read_to_string(scenario_file).unwrap();
    let mut sc = Scenario::from_json(&text).unwrap();
    sc.probes.trace = false;
    let off = stable_json(&sc, backend, None);

    let dir = std::env::temp_dir().join(format!("fncc-obs-{}-{}", sc.name, backend.name()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("run.trace.jsonl");
    sc.probes.trace = true;
    let on = stable_json(&sc, backend, Some(&trace_path));

    assert_eq!(off, on, "tracing changed the report artifact");

    // The trace landed in its own artifact and is well-formed JSONL.
    let trace = std::fs::read_to_string(&trace_path).unwrap();
    let mut lines = trace.lines();
    let header = Json::parse(lines.next().unwrap()).unwrap();
    assert_eq!(
        header.get("schema").and_then(Json::as_str),
        Some("fncc.trace/v1")
    );
    assert_eq!(
        header.get("backend").and_then(Json::as_str),
        Some(backend.name())
    );
    let mut n = 0u64;
    for line in lines {
        let ev = Json::parse(line).unwrap();
        assert!(ev.get("ev").and_then(Json::as_str).is_some());
        assert!(ev.get("t_ps").and_then(Json::as_f64).is_some());
        n += 1;
    }
    assert!(n > 0, "armed trace recorded nothing");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn packet_report_identical_with_tracing_on() {
    assert_trace_invariant("scenarios/fattree_des_smoke.json", SimBackend::Packet);
}

#[test]
fn fluid_report_identical_with_tracing_on() {
    assert_trace_invariant("scenarios/websearch_fluid_smoke.json", SimBackend::Fluid);
}
