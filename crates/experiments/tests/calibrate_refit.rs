//! End-to-end exercise of the calibration subsystem's re-fit path: a
//! deliberately mis-calibrated scheme must trip the conformance gate and
//! come back with parameters that conform on the held-out cells, while a
//! conformant scheme must pass the gate untouched (the convergence
//! property that keeps the checked-in artifact stable).
//!
//! Runs at `--quick` scale (4 held-out seeds × 60 flows per workload) to
//! stay test-sized; everything is deterministic.

use fncc_cc::CcKind;
use fncc_experiments::calibrate::{holdout_errors, measure_scheme_from};
use fncc_experiments::Scale;
use fncc_fluid::{Calibration, CalibrationSet};

#[test]
fn conformant_scheme_keeps_shipped_parameters() {
    let shipped = CalibrationSet::paper().get(CcKind::Fncc);
    let m = measure_scheme_from(CcKind::Fncc, Scale::Quick, shipped);
    assert!(
        m.conformant,
        "shipped FNCC parameters must conform on the held-out cells \
         (hadoop {:+.1}%, websearch {:+.1}%)",
        m.holdout_err_hadoop * 100.0,
        m.holdout_err_websearch * 100.0
    );
    assert!(m.refit.is_none());
    assert_eq!(m.accepted, shipped, "conformant scheme must not churn");
    // Bank provenance numbers are sane.
    assert!(m.bank_utilization > 0.5 && m.bank_utilization <= 1.0);
    assert!(m.bank_queue_rtts >= 0.0 && m.bank_queue_rtts.is_finite());
    assert!(m.bank_elephant_slowdown >= 1.0);
    assert!(m.bank_mice_slowdown >= 1.0);
}

#[test]
fn broken_calibration_is_refit_to_conformance() {
    // A queue model five RTTs too deep: the fluid backend overshoots the
    // DES far beyond any gate width.
    let broken = Calibration {
        utilization: 0.95,
        queue_rtts: 8.0,
    };
    let before = holdout_errors(CcKind::Fncc, Scale::Quick, broken);
    assert!(
        before.iter().any(|e| e.abs() > 0.25),
        "test premise: broken parameters must be visibly out of band, got {before:?}"
    );

    let m = measure_scheme_from(CcKind::Fncc, Scale::Quick, broken);
    assert!(!m.conformant, "gate failed to flag broken parameters");
    let refit = m.refit.expect("non-conformant scheme must be re-fit");
    assert_eq!(m.accepted, refit);
    // The re-fit must restore conformance on the same held-out cells.
    let after = holdout_errors(CcKind::Fncc, Scale::Quick, refit);
    assert!(
        after.iter().all(|e| e.abs() < 0.25),
        "re-fit did not restore conformance: {after:?} (refit {refit:?})"
    );
    // And it must land near the known-good shipped values, not on some
    // other compensating optimum.
    let shipped = CalibrationSet::paper().get(CcKind::Fncc);
    assert!(
        (refit.utilization - shipped.utilization).abs() <= 0.1,
        "refit utilization {} vs shipped {}",
        refit.utilization,
        shipped.utilization
    );
    assert!(
        (refit.queue_rtts - shipped.queue_rtts).abs() <= 1.0,
        "refit queue_rtts {} vs shipped {}",
        refit.queue_rtts,
        shipped.queue_rtts
    );
}
