//! The reproduction scorecard: every headline claim of the paper checked
//! live, with a PASS/FAIL verdict — `fncc-repro check`.

use crate::report::f2;
use crate::RunOpts;
use fncc_cc::CcKind;
use fncc_core::prelude::*;
use fncc_core::scenarios::MicrobenchSpec;
use fncc_core::sweep::run_parallel;
use fncc_des::output::Table;

struct Check {
    id: &'static str,
    claim: &'static str,
    measured: String,
    pass: bool,
}

fn quick(cc: CcKind, gbps: u64) -> MicrobenchSpec {
    MicrobenchSpec {
        cc,
        line_gbps: gbps,
        horizon_us: 800,
        ..Default::default()
    }
}

/// Run the full claim checklist. Returns the number of failed checks.
pub fn check(opts: &RunOpts) -> usize {
    let mut checks: Vec<Check> = Vec::new();

    // Shared microbenchmark runs (parallel).
    let specs = [
        quick(CcKind::Fncc, 100),
        quick(CcKind::Hpcc, 100),
        quick(CcKind::Dcqcn, 100),
        quick(CcKind::Rocc, 100),
        quick(CcKind::Fncc, 400),
        quick(CcKind::Hpcc, 400),
        quick(CcKind::Dcqcn, 400),
    ];
    let jobs: Vec<_> = specs
        .iter()
        .map(|s| {
            let s = s.clone();
            move || elephant_dumbbell(&s)
        })
        .collect();
    let r = run_parallel(jobs, opts.threads);
    let (f100, h100, d100, r100, f400, h400, d400) =
        (&r[0], &r[1], &r[2], &r[3], &r[4], &r[5], &r[6]);

    let rt = |e: &ElephantResult| e.reaction_us.unwrap_or(f64::INFINITY);
    checks.push(Check {
        id: "C1 (Fig.9b)",
        claim: "FNCC is the first to slow down, then HPCC, then DCQCN/RoCC",
        measured: format!(
            "FNCC {:.0}us < HPCC {:.0}us < DCQCN {:.0}us, RoCC {:.0}us",
            rt(f100),
            rt(h100),
            rt(d100),
            rt(r100)
        ),
        pass: rt(f100) < rt(h100) && rt(h100) < rt(d100) && rt(h100) < rt(r100),
    });

    checks.push(Check {
        id: "C2 (Fig.9a)",
        claim: "FNCC keeps the shallowest congestion-point queue",
        measured: format!(
            "peaks KB: FNCC {} < HPCC {} < DCQCN {}",
            f2(f100.peak_queue_kb),
            f2(h100.peak_queue_kb),
            f2(d100.peak_queue_kb)
        ),
        pass: f100.peak_queue_kb < h100.peak_queue_kb && h100.peak_queue_kb < d100.peak_queue_kb,
    });

    checks.push(Check {
        id: "C3 (Fig.9g-h)",
        claim: "FNCC maintains utilization at least as high as HPCC",
        measured: format!(
            "FNCC {} vs HPCC {}",
            f2(f100.mean_util_after_join),
            f2(h100.mean_util_after_join)
        ),
        pass: f100.mean_util_after_join >= h100.mean_util_after_join - 0.01,
    });

    checks.push(Check {
        id: "C4 (§5.2)",
        claim: "orderings robust at 400 Gb/s",
        measured: format!(
            "reaction {:.0}<{:.0}<{:.0}; queue {}<{}<{}",
            rt(f400),
            rt(h400),
            rt(d400),
            f2(f400.peak_queue_kb),
            f2(h400.peak_queue_kb),
            f2(d400.peak_queue_kb)
        ),
        pass: rt(f400) <= rt(h400)
            && rt(h400) < rt(d400)
            && f400.peak_queue_kb < h400.peak_queue_kb
            && h400.peak_queue_kb < d400.peak_queue_kb,
    });

    checks.push(Check {
        id: "C5 (Fig.3)",
        claim: "pause frames ordered FNCC <= HPCC <= DCQCN, DCQCN > 0 at 400G",
        measured: format!(
            "FNCC {} HPCC {} DCQCN {}",
            f400.pause_frames, h400.pause_frames, d400.pause_frames
        ),
        pass: f400.pause_frames <= h400.pause_frames
            && h400.pause_frames <= d400.pause_frames
            && d400.pause_frames > 0,
    });

    checks.push(Check {
        id: "C6 (Fig.2/12)",
        claim: "ACK-path INT fresher at every hop; gain shrinks with hop index",
        measured: format!(
            "ages us FNCC {:?} vs HPCC {:?}",
            f100.mean_int_age_us
                .iter()
                .map(|x| (x * 10.0).round() / 10.0)
                .collect::<Vec<_>>(),
            h100.mean_int_age_us
                .iter()
                .map(|x| (x * 10.0).round() / 10.0)
                .collect::<Vec<_>>()
        ),
        pass: f100.mean_int_age_us.len() == 3
            && (0..3).all(|i| f100.mean_int_age_us[i] < h100.mean_int_age_us[i])
            && (h100.mean_int_age_us[0] - f100.mean_int_age_us[0])
                > (h100.mean_int_age_us[2] - f100.mean_int_age_us[2]),
    });

    // Hop-location study.
    let spec_f = quick(CcKind::Fncc, 100);
    let spec_h = quick(CcKind::Hpcc, 100);
    let mut spec_no = quick(CcKind::Fncc, 100);
    spec_no.disable_lhcs = true;
    let hf = hop_congestion(HopLocation::First, &spec_f);
    let hh = hop_congestion(HopLocation::First, &spec_h);
    let lf = hop_congestion(HopLocation::Last, &spec_f);
    let lh = hop_congestion(HopLocation::Last, &spec_h);
    let ln = hop_congestion(HopLocation::Last, &spec_no);
    let first_gain = 1.0 - hf.peak_queue_kb / hh.peak_queue_kb;
    let last_gain_no = 1.0 - ln.peak_queue_kb / lh.peak_queue_kb;
    checks.push(Check {
        id: "C7 (Fig.13a-c)",
        claim: "queue gain larger at first hop than at last hop (w/o LHCS)",
        measured: format!(
            "first {:.1}% vs last {:.1}%",
            100.0 * first_gain,
            100.0 * last_gain_no
        ),
        pass: first_gain > last_gain_no,
    });
    checks.push(Check {
        id: "C8 (Fig.13c-d)",
        claim: "LHCS fires only at the last hop and cuts the standing queue",
        measured: format!(
            "triggers last={} first={}; mean queue {} -> {} KB",
            lf.lhcs_triggers,
            hf.lhcs_triggers,
            f2(ln.mean_queue_kb),
            f2(lf.mean_queue_kb)
        ),
        pass: lf.lhcs_triggers > 0 && hf.lhcs_triggers == 0 && lf.mean_queue_kb < ln.mean_queue_kb,
    });

    // Fairness.
    let fair = fairness_staircase(CcKind::Fncc, 4, TimeDelta::from_ms(1), 1);
    let min_jain = fair.jain_per_period.iter().copied().fold(1.0, f64::min);
    checks.push(Check {
        id: "C9 (Fig.13e)",
        claim: "good fairness at short time scales (min Jain > 0.9)",
        measured: format!("min Jain {min_jain:.3}, drained: {}", fair.all_finished),
        pass: min_jain > 0.9 && fair.all_finished,
    });

    // Workload (pocket scale).
    let mut overall = Vec::new();
    for cc in [CcKind::Dcqcn, CcKind::Hpcc, CcKind::Fncc] {
        let spec = WorkloadSpec {
            cc,
            workload: Workload::FbHadoop,
            load: 0.5,
            n_flows: 200,
            seeds: vec![11],
            k: 4,
            line_gbps: 100,
        };
        let r = fattree_workload(&spec);
        let (mut s, mut n) = (0.0, 0usize);
        for b in &r.rows {
            s += b.avg * b.count as f64;
            n += b.count;
        }
        overall.push(s / n as f64);
    }
    checks.push(Check {
        id: "C10 (Fig.15)",
        claim: "workload FCT slowdown: FNCC < DCQCN and FNCC <~ HPCC",
        measured: format!(
            "avg slowdown DCQCN {} HPCC {} FNCC {}",
            f2(overall[0]),
            f2(overall[1]),
            f2(overall[2])
        ),
        pass: overall[2] < overall[0] && overall[2] < overall[1] * 1.1,
    });

    // Lossless-completion gate: on a fault-free scenario every flow must
    // finish inside the drain cap. A nonzero `incomplete_flows` here means a
    // buffer-exhaustion drop silently stalled a flow until the stop condition
    // truncated the run — exactly the failure mode the `fncc-repro check`
    // verdict must surface loudly rather than average away.
    {
        let mut sc = Scenario::new(
            "lossless-completion-probe",
            TopologySpec::FatTree { k: 4 },
            TrafficSpec::Incast {
                receiver: 0,
                fan_in: 6,
                size: 150_000,
                waves: 2,
                gap_us: 50,
            },
            CcKind::Fncc,
        );
        sc.stop = StopCondition::Drain { cap_ms: 50 };
        sc.seeds = vec![1];
        let incomplete = |b: SimBackend| {
            run_scenario(&sc, b)
                .scalar("incomplete_flows")
                .unwrap_or(0.0)
        };
        let (des, fluid) = (
            incomplete(SimBackend::Packet),
            incomplete(SimBackend::Fluid),
        );
        checks.push(Check {
            id: "C11 (lossless)",
            claim: "fault-free scenarios complete every flow (no silent stalls)",
            measured: format!("incomplete flows: packet {des:.0}, fluid {fluid:.0}"),
            pass: des == 0.0 && fluid == 0.0,
        });
    }

    let mut t = Table::new(["check", "claim", "measured", "verdict"]);
    let mut failed = 0;
    for c in &checks {
        if !c.pass {
            failed += 1;
        }
        t.row([
            c.id.to_string(),
            c.claim.to_string(),
            c.measured.clone(),
            if c.pass {
                "PASS".to_string()
            } else {
                "FAIL".to_string()
            },
        ]);
    }
    crate::report::emit_table(&opts.out, "scorecard", "Reproduction scorecard", &t);

    // The machine-readable verdict, in the same dependency-free JSON the
    // RunReport artifacts use — CI and dashboards consume one format.
    use fncc_core::json::{obj, Json};
    let artifact = obj([
        ("schema", Json::Str("fncc.scorecard/v1".into())),
        ("passed", Json::Num((checks.len() - failed) as f64)),
        ("failed", Json::Num(failed as f64)),
        (
            "checks",
            Json::Arr(
                checks
                    .iter()
                    .map(|c| {
                        obj([
                            ("id", Json::Str(c.id.into())),
                            ("claim", Json::Str(c.claim.into())),
                            ("measured", Json::Str(c.measured.clone())),
                            ("pass", Json::Bool(c.pass)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let path = opts.out.join("scorecard.json");
    let write = std::fs::create_dir_all(&opts.out)
        .and_then(|()| std::fs::write(&path, artifact.to_string_pretty()));
    match write {
        Ok(()) => println!("[json] {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }

    println!(
        "\n{}/{} claims reproduced",
        checks.len() - failed,
        checks.len()
    );
    failed
}
