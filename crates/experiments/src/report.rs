//! Output helpers: print a table to stdout and persist CSVs.

use fncc_des::output::{series_to_csv, write_text, Table};
use fncc_des::stats::TimeSeries;
use std::path::Path;

/// Print a titled table and store it as CSV under `dir/name.csv`.
pub fn emit_table(dir: &Path, name: &str, title: &str, table: &Table) {
    println!("\n== {title} ==");
    print!("{}", table.render());
    let path = dir.join(format!("{name}.csv"));
    if let Err(e) = table.write_csv(&path) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("[csv] {}", path.display());
    }
}

/// Store a set of time series as one CSV under `dir/name.csv`.
pub fn emit_series(dir: &Path, name: &str, series: &[&TimeSeries]) {
    let csv = match series_to_csv(series) {
        Ok(csv) => csv,
        Err(e) => {
            eprintln!("warning: refusing to write {name}.csv: {e}");
            return;
        }
    };
    let path = dir.join(format!("{name}.csv"));
    if let Err(e) = write_text(&path, &csv) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("[csv] {} ({} series)", path.display(), series.len());
    }
}

/// Format an optional µs value.
pub fn opt_us(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.1}"),
        None => "-".to_string(),
    }
}

/// Format a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}
