//! `fncc-repro inspect` — interrogate run artifacts from the command line.
//!
//! Works on both artifact kinds the backends emit:
//!
//! * `*.report.json` (`fncc.report/v1`) — prints the scalar table, the
//!   series inventory and the slowdown rows.
//! * `*.trace.jsonl` (`fncc.trace/v1`) — answers the flight-recorder
//!   questions: per-flow event timelines (`--flow N`), the top-k hottest
//!   egress queues (`--top K`), PFC pause bursts with their
//!   back-propagation chains, and — on hybrid-backend traces — the
//!   fluid↔packet coupling summary (sync cadence, reservation and
//!   residual-capacity pushes per link).

use fncc_core::json::Json;
use std::collections::BTreeMap;

/// Options parsed from the `inspect` verb's trailing flags.
#[derive(Clone, Copy, Debug, Default)]
pub struct InspectOpts {
    /// Restrict the trace timeline to one flow id.
    pub flow: Option<u32>,
    /// How many queue hotspots to list (default 5).
    pub top: Option<usize>,
}

/// Inspect one artifact file; returns an error string for the CLI to print.
pub fn inspect(path: &str, opts: InspectOpts) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let first = text.lines().next().unwrap_or("");
    if first.contains("\"schema\":\"fncc.trace/v1\"") {
        inspect_trace(&text, opts)
    } else {
        inspect_report(&text, path)
    }
}

// ----------------------------------------------------------------------
// Report artifacts
// ----------------------------------------------------------------------

fn inspect_report(text: &str, path: &str) -> Result<(), String> {
    let root = Json::parse(text).map_err(|e| format!("cannot parse {path}: {e}"))?;
    let schema = root.get("schema").and_then(Json::as_str).unwrap_or("?");
    let scenario = root.get("scenario").and_then(Json::as_str).unwrap_or("?");
    let backend = root.get("backend").and_then(Json::as_str).unwrap_or("?");
    let cc = root.get("cc").and_then(Json::as_str).unwrap_or("?");
    println!("report   {scenario} [{backend}/{cc}] ({schema})");
    if let Some(events) = root.get("events").and_then(Json::as_u64) {
        println!("events   {events}");
    }
    if let Some(Json::Obj(scalars)) = root.get("scalars") {
        println!("scalars  ({})", scalars.len());
        for (k, v) in scalars {
            if let Some(x) = v.as_f64() {
                println!("  {k:<28} {x:.6}");
            }
        }
    }
    if let Some(series) = root.get("series").and_then(Json::as_arr) {
        println!("series   ({})", series.len());
        for s in series {
            let name = s.get("name").and_then(Json::as_str).unwrap_or("?");
            let n = s
                .get("t_us")
                .and_then(Json::as_arr)
                .map_or(0, <[Json]>::len);
            println!("  {name:<28} {n} samples");
        }
    }
    if let Some(rows) = root.get("slowdowns").and_then(Json::as_arr) {
        if !rows.is_empty() {
            println!("slowdowns ({} buckets)", rows.len());
            for r in rows {
                let label = r.get("label").and_then(Json::as_str).unwrap_or("?");
                let avg = r.get("avg").and_then(Json::as_f64).unwrap_or(0.0);
                let p99 = r.get("p99").and_then(Json::as_f64).unwrap_or(0.0);
                let count = r.get("count").and_then(Json::as_u64).unwrap_or(0);
                println!("  {label:<28} avg {avg:.2}  p99 {p99:.2}  n={count}");
            }
        }
    }
    Ok(())
}

// ----------------------------------------------------------------------
// Trace artifacts
// ----------------------------------------------------------------------

/// One parsed trace line, kept as generic JSON (the schema is versioned in
/// the artifact, not in this reader — unknown event kinds pass through).
struct Ev {
    kind: String,
    t_ps: u64,
    json: Json,
}

impl Ev {
    fn u(&self, key: &str) -> Option<u64> {
        self.json.get(key).and_then(Json::as_u64)
    }
    fn t_us(&self) -> f64 {
        self.t_ps as f64 / 1e6
    }
}

fn inspect_trace(text: &str, opts: InspectOpts) -> Result<(), String> {
    let mut lines = text.lines();
    let header =
        Json::parse(lines.next().unwrap_or("{}")).map_err(|e| format!("bad trace header: {e}"))?;
    let scenario = header.get("scenario").and_then(Json::as_str).unwrap_or("?");
    let backend = header.get("backend").and_then(Json::as_str).unwrap_or("?");
    let seed = header.get("seed").and_then(Json::as_u64).unwrap_or(0);
    let dropped = header.get("dropped").and_then(Json::as_u64).unwrap_or(0);

    let mut events: Vec<Ev> = Vec::new();
    for (ix, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let json = Json::parse(line).map_err(|e| format!("bad trace line {}: {e}", ix + 2))?;
        let kind = json
            .get("ev")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("trace line {} has no \"ev\" tag", ix + 2))?
            .to_string();
        let t_ps = json.get("t_ps").and_then(Json::as_u64).unwrap_or(0);
        events.push(Ev { kind, t_ps, json });
    }

    println!("trace    {scenario} [{backend}] seed {seed}");
    let span_us = events.last().map_or(0.0, Ev::t_us) - events.first().map_or(0.0, Ev::t_us);
    println!(
        "events   {} over {span_us:.1} us{}",
        events.len(),
        if dropped > 0 {
            format!(" ({dropped} overwritten in the ring)")
        } else {
            String::new()
        }
    );
    let mut by_kind: BTreeMap<&str, u64> = BTreeMap::new();
    for e in &events {
        *by_kind.entry(&e.kind).or_insert(0) += 1;
    }
    for (k, n) in &by_kind {
        println!("  {k:<16} {n}");
    }

    queue_hotspots(&events, opts.top.unwrap_or(5));
    pfc_chains(&events);
    fault_timeline(&events);
    hybrid_coupling(&events);
    if let Some(flow) = opts.flow {
        flow_timeline(&events, flow);
    }
    Ok(())
}

/// Rank egress queues by their peak observed depth.
fn queue_hotspots(events: &[Ev], top: usize) {
    struct Hot {
        peak_bytes: u64,
        peak_t_ps: u64,
        enqueues: u64,
        marks: u64,
        drops: u64,
    }
    let mut hot: BTreeMap<(u64, u64), Hot> = BTreeMap::new();
    for e in events {
        let (Some(sw), Some(port)) = (e.u("sw"), e.u("port")) else {
            continue;
        };
        let h = hot.entry((sw, port)).or_insert(Hot {
            peak_bytes: 0,
            peak_t_ps: 0,
            enqueues: 0,
            marks: 0,
            drops: 0,
        });
        match e.kind.as_str() {
            "enqueue" => {
                h.enqueues += 1;
                let q = e.u("queue_bytes").unwrap_or(0);
                if q > h.peak_bytes {
                    h.peak_bytes = q;
                    h.peak_t_ps = e.t_ps;
                }
            }
            "ecn_mark" => h.marks += 1,
            "drop" => h.drops += 1,
            _ => {}
        }
    }
    let mut ranked: Vec<_> = hot.into_iter().collect();
    ranked.sort_by(|a, b| b.1.peak_bytes.cmp(&a.1.peak_bytes).then(a.0.cmp(&b.0)));
    if ranked.is_empty() {
        return;
    }
    println!(
        "top {} queue hotspots (by peak depth):",
        top.min(ranked.len())
    );
    for ((sw, port), h) in ranked.into_iter().take(top) {
        println!(
            "  sw{sw}:p{port}  peak {:.1} KB @ {:.1} us  ({} enq, {} ecn, {} drop)",
            h.peak_bytes as f64 / 1024.0,
            h.peak_t_ps as f64 / 1e6,
            h.enqueues,
            h.marks,
            h.drops,
        );
    }
}

/// Cluster transmitted PFC pauses into bursts and report each burst's
/// back-propagation chain (the distinct nodes that went XOFF, upstream
/// order = order of first pause).
fn pfc_chains(events: &[Ev]) {
    /// Pauses more than this far apart belong to different storms.
    const GAP_PS: u64 = 10_000_000; // 10 us
    let pauses: Vec<&Ev> = events
        .iter()
        .filter(|e| e.kind == "pfc_pause" && e.json.get("tx").and_then(Json::as_bool) == Some(true))
        .collect();
    if pauses.is_empty() {
        println!("pfc      no transmitted pauses");
        return;
    }
    let mut bursts: Vec<Vec<&Ev>> = vec![vec![pauses[0]]];
    for p in &pauses[1..] {
        let last_t = bursts.last().unwrap().last().unwrap().t_ps;
        if p.t_ps.saturating_sub(last_t) > GAP_PS {
            bursts.push(Vec::new());
        }
        bursts.last_mut().unwrap().push(p);
    }
    println!(
        "pfc      {} pauses in {} burst(s):",
        pauses.len(),
        bursts.len()
    );
    for b in &bursts {
        // Chain = nodes in order of first appearance within the burst.
        let mut chain: Vec<String> = Vec::new();
        for p in b {
            let node = p.u("node").unwrap_or(0);
            let host = p.json.get("at_host").and_then(Json::as_bool) == Some(true);
            let name = format!("{}{}", if host { "h" } else { "sw" }, node);
            if !chain.contains(&name) {
                chain.push(name);
            }
        }
        let t0 = b.first().unwrap().t_us();
        let t1 = b.last().unwrap().t_us();
        println!(
            "  {:.1}-{:.1} us  {} pauses, chain depth {}: {}",
            t0,
            t1,
            b.len(),
            chain.len(),
            chain.join(" <- "),
        );
    }
}

/// The fault timeline: link down/up spans per port, drops attributed to
/// injected faults vs buffer exhaustion, and per-flow RTO bursts (consecutive
/// expiries clustered into loss episodes, with the backoff ceiling reached).
/// Prints nothing on traces with no fault or recovery events.
fn fault_timeline(events: &[Ev]) {
    let has_fault_events = events.iter().any(|e| {
        matches!(
            e.kind.as_str(),
            "link_down" | "link_up" | "fault_drop" | "rto" | "retransmit"
        )
    });
    if !has_fault_events {
        return;
    }
    println!("faults");

    // Link state spans: pair each down with the next up on the same port.
    let mut down_at: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    let mut spans: Vec<((u64, u64), u64, Option<u64>)> = Vec::new();
    for e in events {
        let (Some(sw), Some(port)) = (e.u("sw"), e.u("port")) else {
            continue;
        };
        match e.kind.as_str() {
            "link_down" => {
                down_at.insert((sw, port), e.t_ps);
            }
            "link_up" => {
                if let Some(t0) = down_at.remove(&(sw, port)) {
                    spans.push(((sw, port), t0, Some(e.t_ps)));
                }
            }
            _ => {}
        }
    }
    for (key, t0) in down_at {
        spans.push((key, t0, None));
    }
    spans.sort_by_key(|&(_, t0, _)| t0);
    for ((sw, port), t0, t1) in &spans {
        match t1 {
            Some(t1) => println!(
                "  link sw{sw}:p{port}  down {:.1}-{:.1} us ({:.1} us outage)",
                *t0 as f64 / 1e6,
                *t1 as f64 / 1e6,
                (*t1 - *t0) as f64 / 1e6,
            ),
            None => println!(
                "  link sw{sw}:p{port}  down at {:.1} us, never restored",
                *t0 as f64 / 1e6
            ),
        }
    }

    // Drop attribution: the fabric tags injected-fault kills `fault_drop`;
    // plain `drop` remains buffer exhaustion.
    let fault_drops = events.iter().filter(|e| e.kind == "fault_drop").count();
    let buffer_drops = events.iter().filter(|e| e.kind == "drop").count();
    if fault_drops + buffer_drops > 0 {
        println!("  drops: {fault_drops} fault-attributed, {buffer_drops} buffer-exhaustion");
    }

    // RTO bursts per flow: a gap much longer than the previous expiry's own
    // timeout starts a new loss episode (backoff resets on ACK progress).
    let mut rtos_by_flow: BTreeMap<u64, Vec<(u64, u64)>> = BTreeMap::new();
    let mut retx_by_flow: BTreeMap<u64, u64> = BTreeMap::new();
    for e in events {
        match e.kind.as_str() {
            "rto" => {
                if let Some(flow) = e.u("flow") {
                    rtos_by_flow
                        .entry(flow)
                        .or_default()
                        .push((e.t_ps, e.u("rto_ps").unwrap_or(0)));
                }
            }
            "retransmit" => {
                if let Some(flow) = e.u("flow") {
                    *retx_by_flow.entry(flow).or_insert(0) += 1;
                }
            }
            _ => {}
        }
    }
    for (flow, rtos) in &rtos_by_flow {
        let mut bursts: Vec<Vec<(u64, u64)>> = vec![vec![rtos[0]]];
        for &(t, rto) in &rtos[1..] {
            let &(last_t, last_rto) = bursts.last().unwrap().last().unwrap();
            if t.saturating_sub(last_t) > 2 * last_rto {
                bursts.push(Vec::new());
            }
            bursts.last_mut().unwrap().push((t, rto));
        }
        let retx = retx_by_flow.get(flow).copied().unwrap_or(0);
        let summary: Vec<String> = bursts
            .iter()
            .map(|b| {
                let t0 = b.first().unwrap().0 as f64 / 1e6;
                let max_rto = b.iter().map(|&(_, r)| r).max().unwrap_or(0);
                format!(
                    "{} @ {t0:.1} us (max rto {:.0} us)",
                    b.len(),
                    max_rto as f64 / 1e6
                )
            })
            .collect();
        println!(
            "  flow {flow}: {} rto(s) in {} burst(s) [{}], {retx} retransmit(s)",
            rtos.len(),
            bursts.len(),
            summary.join("; "),
        );
    }
    // Retransmissions without any RTO (e.g. rewinds triggered elsewhere).
    for (flow, retx) in &retx_by_flow {
        if !rtos_by_flow.contains_key(flow) {
            println!("  flow {flow}: {retx} retransmit(s), no RTO");
        }
    }
}

/// Summarize the hybrid backend's coupling stream: synchronization
/// cadence and the per-link reservation / residual-capacity pushes.
/// Prints nothing on non-hybrid traces.
fn hybrid_coupling(events: &[Ev]) {
    let syncs: Vec<&Ev> = events.iter().filter(|e| e.kind == "hybrid_sync").collect();
    if syncs.is_empty() {
        return;
    }
    let t0 = syncs.first().unwrap().t_us();
    let t1 = syncs.last().unwrap().t_us();
    let mean_gap_us = if syncs.len() > 1 {
        (t1 - t0) / (syncs.len() - 1) as f64
    } else {
        0.0
    };
    println!(
        "hybrid   {} syncs over {:.1}-{:.1} us (mean gap {:.2} us)",
        syncs.len(),
        t0,
        t1,
        mean_gap_us
    );
    struct Link {
        reserves: u64,
        last_load_bps: f64,
        residuals: u64,
        min_residual_bps: f64,
        backlogs: u64,
        max_backlog_bytes: u64,
    }
    let mut links: BTreeMap<u64, Link> = BTreeMap::new();
    for e in events {
        let Some(l) = e.u("link") else { continue };
        let link = links.entry(l).or_insert(Link {
            reserves: 0,
            last_load_bps: 0.0,
            residuals: 0,
            min_residual_bps: f64::INFINITY,
            backlogs: 0,
            max_backlog_bytes: 0,
        });
        match e.kind.as_str() {
            "hybrid_reserve" => {
                link.reserves += 1;
                link.last_load_bps = e.json.get("load_bps").and_then(Json::as_f64).unwrap_or(0.0);
            }
            "hybrid_residual" => {
                link.residuals += 1;
                let r = e
                    .json
                    .get("residual_bps")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0);
                if r < link.min_residual_bps {
                    link.min_residual_bps = r;
                }
            }
            "hybrid_backlog" => {
                link.backlogs += 1;
                let b = e.u("backlog_bytes").unwrap_or(0);
                link.max_backlog_bytes = link.max_backlog_bytes.max(b);
            }
            _ => {}
        }
    }
    for (l, link) in &links {
        if link.reserves == 0 && link.residuals == 0 && link.backlogs == 0 {
            continue;
        }
        let min_res = if link.min_residual_bps.is_finite() {
            format!("{:.2}G", link.min_residual_bps / 1e9)
        } else {
            "-".into()
        };
        println!(
            "  link {l}: {} reservations (last fg load {:.2}G), \
             {} residual pushes (min {}), \
             {} backlog pushes (max {} B)",
            link.reserves,
            link.last_load_bps / 1e9,
            link.residuals,
            min_res,
            link.backlogs,
            link.max_backlog_bytes,
        );
    }
}

/// Print every event that names `flow`, in time order.
fn flow_timeline(events: &[Ev], flow: u32) {
    let picked: Vec<&Ev> = events
        .iter()
        .filter(|e| e.u("flow") == Some(flow as u64))
        .collect();
    println!("timeline for flow {flow} ({} events):", picked.len());
    for e in picked {
        let mut detail = String::new();
        for key in ["sw", "port", "hop", "size", "queue_bytes", "age_ps"] {
            if let Some(v) = e.u(key) {
                detail.push_str(&format!(" {key}={v}"));
            }
        }
        if let Some(r) = e.json.get("rate_bps").and_then(Json::as_f64) {
            detail.push_str(&format!(" rate={:.2}G", r / 1e9));
        }
        if let Some(w) = e.json.get("window_bytes").and_then(Json::as_f64) {
            if w >= 0.0 {
                detail.push_str(&format!(" wnd={w:.0}B"));
            }
        }
        println!("  {:>12.3} us  {:<12}{}", e.t_us(), e.kind, detail);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> String {
        let mut s = String::new();
        s.push_str(
            "{\"schema\":\"fncc.trace/v1\",\"scenario\":\"t\",\"backend\":\"packet\",\
             \"seed\":1,\"events\":4,\"dropped\":0}\n",
        );
        s.push_str(
            "{\"ev\":\"flow_start\",\"t_ps\":0,\"flow\":3,\"src\":0,\"dst\":2,\"size\":100}\n",
        );
        s.push_str(
            "{\"ev\":\"enqueue\",\"t_ps\":1000,\"sw\":0,\"port\":2,\"flow\":3,\"size\":1518,\
             \"queue_bytes\":1518}\n",
        );
        s.push_str(
            "{\"ev\":\"pfc_pause\",\"t_ps\":2000,\"node\":0,\"port\":0,\"tx\":true,\
             \"at_host\":false}\n",
        );
        s.push_str("{\"ev\":\"flow_finish\",\"t_ps\":9000,\"flow\":3}\n");
        s
    }

    fn hybrid_trace() -> String {
        let mut s = sample_trace();
        s.push_str(
            "{\"ev\":\"hybrid_reserve\",\"t_ps\":3000,\"link\":7,\
             \"load_bps\":2.5e10}\n",
        );
        s.push_str(
            "{\"ev\":\"hybrid_residual\",\"t_ps\":3000,\"link\":7,\
             \"residual_bps\":7.5e10}\n",
        );
        s.push_str(
            "{\"ev\":\"hybrid_backlog\",\"t_ps\":3000,\"link\":7,\
             \"backlog_bytes\":93810}\n",
        );
        s.push_str(
            "{\"ev\":\"hybrid_sync\",\"t_ps\":3000,\"reservations\":1,\
             \"residuals\":1}\n",
        );
        s.push_str(
            "{\"ev\":\"hybrid_sync\",\"t_ps\":8000,\"reservations\":0,\
             \"residuals\":0}\n",
        );
        s
    }

    fn fault_trace() -> String {
        let mut s = sample_trace();
        s.push_str("{\"ev\":\"link_down\",\"t_ps\":100000000,\"sw\":0,\"port\":2}\n");
        s.push_str(
            "{\"ev\":\"fault_drop\",\"t_ps\":100000000,\"sw\":0,\"port\":2,\"flow\":3,\
             \"size\":1518}\n",
        );
        s.push_str("{\"ev\":\"rto\",\"t_ps\":200000000,\"flow\":3,\"rto_ps\":100000000}\n");
        s.push_str("{\"ev\":\"rto\",\"t_ps\":300000000,\"flow\":3,\"rto_ps\":200000000}\n");
        s.push_str("{\"ev\":\"retransmit\",\"t_ps\":400000000,\"flow\":3,\"seq\":0}\n");
        s.push_str("{\"ev\":\"link_up\",\"t_ps\":400000000,\"sw\":0,\"port\":2}\n");
        s.push_str("{\"ev\":\"link_down\",\"t_ps\":500000000,\"sw\":1,\"port\":3}\n");
        s
    }

    #[test]
    fn fault_trace_inspection_reports_timeline() {
        // Down/up span + an unrestored link + an RTO burst: the timeline
        // reader must accept all of it (rendering is eyeballed in CI logs).
        let text = fault_trace();
        assert!(inspect_trace(&text, InspectOpts::default()).is_ok());
    }

    #[test]
    fn hybrid_trace_inspection_summarizes_coupling() {
        let text = hybrid_trace();
        assert!(inspect_trace(&text, InspectOpts::default()).is_ok());
    }

    #[test]
    fn trace_inspection_parses_all_lines() {
        let text = sample_trace();
        let r = inspect_trace(
            &text,
            InspectOpts {
                flow: Some(3),
                top: Some(3),
            },
        );
        assert!(r.is_ok());
    }

    #[test]
    fn malformed_line_is_located() {
        let mut text = sample_trace();
        text.push_str("{not json\n");
        let err = inspect_trace(&text, InspectOpts::default()).unwrap_err();
        assert!(err.contains("line 6"), "{err}");
    }

    #[test]
    fn report_inspection_accepts_minimal_report() {
        let report = "{\"schema\":\"fncc.report/v1\",\"scenario\":\"x\",\"backend\":\"packet\",\
             \"cc\":\"fncc\",\"events\":5,\"scalars\":{\"a\":1.5},\"series\":[],\"slowdowns\":[]}";
        assert!(inspect_report(report, "mem").is_ok());
    }
}
