//! `fncc-repro calibrate` — derive and police the fluid backend's
//! [`RateModel`] parameters against the packet DES instead of hand-tuning
//! them.
//!
//! The fluid model reduces a congestion-control scheme to two steady-state
//! numbers (see `fncc_fluid::model`): the link fraction it sustains
//! (`utilization`) and the standing-queue delay a contended flow pays in
//! base RTTs (`queue_rtts`). For **every** scheme in [`CcKind::ALL`] this
//! module runs three stages:
//!
//! 1. **Bank measurement** (interpretable raw numbers). The calibration
//!    bank is the §5.1 dumbbell with two elephants holding the bottleneck
//!    while a stream of 10 KB mice arrives behind them
//!    ([`TrafficSpec::MiceBehindElephants`]). The elephant bucket measures
//!    the capacity fraction the scheme actually extracts over a contended
//!    multi-MB drain (solved from two fluid evaluations — the fluid
//!    elephant slowdown is affine in `1/η`); the mice bucket measures the
//!    standing-queue delay mice pay behind the elephants (solved the same
//!    way — the fluid penalty is affine in `queue_rtts`).
//!
//! 2. **Conformance check** (the gate). The shipped calibration is run
//!    against the packet engine on *held-out* §5.5 workload cells — k = 4
//!    fat-tree, FbHadoop and WebSearch, seeds disjoint from the
//!    cross-validation suite's — and its mean-slowdown error recorded.
//!
//! 3. **Re-fit on failure** (the correction). Only when a scheme's shipped
//!    parameters fall outside the 15% band on a held-out cell are they
//!    replaced: `utilization` is re-solved on the held-out cells' big-flow
//!    buckets (affine in `1/η`), then `queue_rtts` on their overall mean
//!    slowdown (affine in `q`), both snapped to the grid (η to 0.05,
//!    `queue_rtts` to 0.1) — see [`refit_on_holdout`] for why the solves
//!    are decoupled.
//!
//! The re-fit is deliberately *not* taken from the bank solves: the bank
//! isolates each mechanism at one flow scale, and for ramp-dominated
//! schemes those numbers do not transfer (DCQCN needs ~15 ms of continuous
//! saturation before it converges, so its effective utilization over a
//! 4 MB drain is ~0.57 while its workload cells conform at η = 1.0). The
//! bank numbers are reported and recorded as provenance; the held-out
//! cells — the same *population* the model is used on, different seeds —
//! are what the fit must reproduce.
//!
//! Convergence-by-construction: a conformant scheme keeps its shipped
//! parameters, so re-running `calibrate` at the same scale reproduces the
//! checked-in `CALIBRATION.json` bit for bit (the DES is deterministic),
//! and the artifact only changes when conformance actually broke — a
//! deliberate, reviewed event. `tests/calibration.rs` pins the artifact
//! to [`CalibrationSet::paper`]; `tests/fluid_cross_validation.rs` holds
//! the full 6-scheme × 2-workload matrix to the band on the validation
//! seeds.

use crate::{RunOpts, Scale};
use fncc_core::calibration::CalibrationArtifact;
use fncc_core::prelude::*;

/// Conformance band on the held-out cells at the default/full scales —
/// same width as the cross-validation suite's.
const BAND: f64 = 0.15;

/// Conformance band at `--quick` scale. The quick gate sees a quarter of
/// the flows (4 seeds × 60 instead of 8 × 120), roughly doubling the
/// standard error of the mean cross-backend error (per-seed σ ≈ 10%), so
/// the same 15% gate would trip on sampling noise. Quick runs are smoke:
/// the checked-in artifact always comes from the default scale.
const BAND_QUICK: f64 = 0.25;

/// The gate width at `scale`.
fn band(scale: Scale) -> f64 {
    match scale {
        Scale::Quick => BAND_QUICK,
        _ => BAND,
    }
}

/// Held-out seeds, disjoint from the cross-validation suite's `{1, 2}`.
/// Eight seeds because the per-seed modeling error is noisy (σ ≈ 10% of
/// the mean slowdown at 120 heavy-tailed flows, with occasional
/// pathological draws near −45%): the gate must see the mean, not one
/// draw.
const HOLDOUT_SEEDS: [u64; 8] = [3, 4, 5, 6, 7, 8, 9, 10];

/// Mice bucket: the generic 10 KB split of fixed-size patterns.
const MICE_BUCKET: u64 = 10_000;
/// Elephant bucket: everything above 1 MB in the generic split.
const ELEPHANT_BUCKET: u64 = 1_000_000_000;

/// One scheme's calibration record: raw bank measurements, held-out
/// conformance of the shipped parameters, and the accepted result.
#[derive(Clone, Copy, Debug)]
pub struct SchemeMeasurement {
    /// Scheme.
    pub cc: CcKind,
    /// DES elephant-bucket slowdown on the bank run.
    pub bank_elephant_slowdown: f64,
    /// DES mice-bucket slowdown on the bank run.
    pub bank_mice_slowdown: f64,
    /// Capacity fraction extracted over the bank's contended drain.
    pub bank_utilization: f64,
    /// Standing-queue delay (base RTTs) the bank's mice paid.
    pub bank_queue_rtts: f64,
    /// Shipped-parameter error on the held-out FbHadoop cell.
    pub holdout_err_hadoop: f64,
    /// Shipped-parameter error on the held-out WebSearch cell.
    pub holdout_err_websearch: f64,
    /// Did the shipped parameters conform on both held-out cells?
    pub conformant: bool,
    /// The re-solved parameters (populated only on conformance failure).
    pub refit: Option<Calibration>,
    /// What the artifact records: shipped if conformant, refit otherwise.
    pub accepted: Calibration,
}

/// Bank geometry at one scale.
struct Bank {
    /// Elephant size (bytes) — sized so the elephants outlive the whole
    /// mouse stream at their bottleneck fair share.
    elephant_size: u64,
    /// Mouse count.
    mice: u32,
    /// Mouse spacing (µs).
    gap_us: u64,
}

impl Bank {
    fn for_scale(scale: Scale) -> Bank {
        match scale {
            // CI-sized smoke; the checked-in artifact comes from the
            // default scale.
            Scale::Quick => Bank {
                elephant_size: 2_500_000,
                mice: 8,
                gap_us: 30,
            },
            _ => Bank {
                elephant_size: 4_000_000,
                mice: 16,
                gap_us: 25,
            },
        }
    }

    /// The bank scenario: two elephants hold the §5.1 dumbbell bottleneck
    /// while 10 KB mice arrive behind them from separate sender hosts.
    fn scenario(&self, cc: CcKind) -> Scenario {
        Scenario {
            name: format!("calibrate-bank-{}", cc.name()),
            stop: StopCondition::Drain { cap_ms: 50 },
            ..Scenario::new(
                "calibrate-bank",
                TopologySpec::Dumbbell {
                    senders: 4,
                    switches: 3,
                },
                TrafficSpec::MiceBehindElephants {
                    elephants: 2,
                    elephant_size: self.elephant_size,
                    mice: self.mice,
                    mouse_size: 10_000,
                    warmup_us: 60,
                    gap_us: self.gap_us,
                },
                cc,
            )
        }
    }
}

/// The held-out workload cell for `(cc, workload)` at `scale`.
fn holdout_spec(cc: CcKind, workload: Workload, scale: Scale) -> WorkloadSpec {
    let mut spec = WorkloadSpec::new(cc, workload);
    spec.load = 0.5;
    spec.k = 4;
    match scale {
        Scale::Quick => {
            spec.n_flows = 60;
            spec.seeds = HOLDOUT_SEEDS[..4].to_vec();
        }
        _ => {
            spec.n_flows = 120;
            spec.seeds = HOLDOUT_SEEDS.to_vec();
        }
    }
    spec
}

/// Quantize `x` to the nearest `1/per` — the fit's grid (`per` = 20 for
/// the 0.05 utilization grid, 10 for the 0.1 queue grid). Dividing by an
/// exactly-representable integer keeps grid points bit-identical to their
/// literals (`19.0 / 20.0 == 0.95`), where multiplying by `0.05` would
/// leave float dust in the artifact.
fn quantize(x: f64, per: f64) -> f64 {
    (x * per).round() / per
}

/// The average slowdown of the bucket with upper edge `upper` bytes.
fn bucket_slowdown(report: &fncc_core::RunReport, upper: u64, what: &str) -> f64 {
    let row = report
        .slowdowns
        .iter()
        .find(|r| r.bucket_upper == upper)
        .unwrap_or_else(|| panic!("{what}: no {upper}-byte bucket in slowdown rows"));
    assert!(row.count > 0, "{what}: empty {upper}-byte bucket");
    row.avg
}

/// Run `sc` on the fluid backend under explicit candidate parameters.
fn fluid_report(sc: &Scenario, cand: Calibration) -> fncc_core::RunReport {
    let mut cal = CalibrationSet::paper();
    cal.set(sc.cc, cand).expect("candidate parameters in range");
    let mut sc = sc.clone();
    sc.overrides.calibration = Some(cal);
    run_scenario(&sc, SimBackend::Fluid)
}

fn cand(utilization: f64, queue_rtts: f64) -> Calibration {
    Calibration {
        utilization,
        queue_rtts,
    }
}

/// Bank stage: solve the two interpretable raw measurements.
fn measure_bank(cc: CcKind, scale: Scale) -> (f64, f64, f64, f64) {
    let sc = Bank::for_scale(scale).scenario(cc);
    let packet = run_scenario(&sc, SimBackend::Packet);
    let eleph_p = bucket_slowdown(&packet, ELEPHANT_BUCKET, "packet bank run");
    let mice_p = bucket_slowdown(&packet, MICE_BUCKET, "packet bank run");

    // Elephant bucket is affine in 1/η: two evaluations pin the line.
    let e_full = bucket_slowdown(&fluid_report(&sc, cand(1.0, 0.0)), ELEPHANT_BUCKET, "fluid");
    let e_half = bucket_slowdown(&fluid_report(&sc, cand(0.5, 0.0)), ELEPHANT_BUCKET, "fluid");
    let b = e_half - e_full;
    let a = 2.0 * e_full - e_half;
    assert!(
        b > 0.0,
        "{cc:?}: elephant bucket insensitive to utilization (e(1.0) {e_full}, e(0.5) {e_half})"
    );
    let bank_util = (b / (eleph_p - a).max(b)).min(1.0);

    // Mice bucket is affine in queue_rtts at fixed η.
    let s0 = bucket_slowdown(
        &fluid_report(&sc, cand(bank_util, 0.0)),
        MICE_BUCKET,
        "fluid",
    );
    let s1 = bucket_slowdown(
        &fluid_report(&sc, cand(bank_util, 1.0)),
        MICE_BUCKET,
        "fluid",
    );
    assert!(
        s1 > s0,
        "{cc:?}: queue penalty had no effect on the mice bucket (s0 {s0}, s1 {s1}) — \
         bank geometry left the mice uncontended"
    );
    let bank_queue = ((mice_p - s0) / (s1 - s0)).max(0.0);
    (eleph_p, mice_p, bank_util, bank_queue)
}

/// Count-weighted `(Σ avg·count, Σ count)` of the slowdown rows above
/// 1 MB — the big-flow observable the η re-fit matches.
fn big_flow_stats(report: &fncc_core::RunReport) -> (f64, usize) {
    report
        .slowdowns
        .iter()
        .filter(|r| r.bucket_upper > 1_000_000)
        .fold((0.0, 0), |(s, n), r| {
            (s + r.avg * r.count as f64, n + r.count)
        })
}

/// Re-fit stage: solve `(utilization, queue_rtts)` so the fluid backend
/// reproduces the DES on the held-out cells, as two decoupled
/// well-conditioned 1-D solves:
///
/// 1. `utilization` from the big-flow observable (count-weighted mean
///    slowdown of all > 1 MB buckets across both workloads) — affine in
///    `1/η`, pinned by evaluations at η ∈ {1.0, 0.5}. Skipped (shipped η
///    kept) when the held-out draws produced no big flows.
/// 2. `queue_rtts` from the overall mean slowdown (averaged over the two
///    workloads) at the solved η — affine in `queue_rtts`, pinned by
///    evaluations at q ∈ {0, 1}.
///
/// Both are snapped to the grid (η to 0.05, `queue_rtts` to 0.1). An
/// earlier joint 2×2 solve on the two workload means was abandoned: the
/// two equations are nearly collinear (both workloads respond to the two
/// parameters in almost the same ratio), so the solution exploded under
/// seed noise.
fn refit_on_holdout(
    cc: CcKind,
    scale: Scale,
    packet: &[fncc_core::RunReport],
    shipped: Calibration,
) -> Calibration {
    let cells: Vec<Scenario> = [Workload::FbHadoop, Workload::WebSearch]
        .into_iter()
        .map(|w| holdout_spec(cc, w, scale).scenario())
        .collect();

    // Big-flow observable from the DES.
    let (p_sum, p_n) = packet
        .iter()
        .map(big_flow_stats)
        .fold((0.0, 0), |(s, n), (s2, n2)| (s + s2, n + n2));
    let fluid_big = |c: Calibration| -> f64 {
        let (s, n) = cells
            .iter()
            .map(|sc| big_flow_stats(&fluid_report(sc, c)))
            .fold((0.0, 0), |(s, n), (s2, n2)| (s + s2, n + n2));
        s / n.max(1) as f64
    };
    let utilization = if p_n == 0 {
        shipped.utilization
    } else {
        let packet_big = p_sum / p_n as f64;
        let e_full = fluid_big(cand(1.0, 0.0));
        let e_half = fluid_big(cand(0.5, 0.0));
        let b = e_half - e_full;
        let a = 2.0 * e_full - e_half;
        if b <= 0.0 {
            shipped.utilization
        } else {
            quantize((b / (packet_big - a).max(b)).min(1.0), 20.0).clamp(0.05, 1.0)
        }
    };

    // Overall-mean observable at the solved η.
    let packet_mean = packet
        .iter()
        .map(|r| r.mean_slowdown().expect("packet slowdowns"))
        .sum::<f64>()
        / packet.len() as f64;
    let fluid_mean = |c: Calibration| -> f64 {
        cells
            .iter()
            .map(|sc| {
                fluid_report(sc, c)
                    .mean_slowdown()
                    .expect("fluid slowdowns")
            })
            .sum::<f64>()
            / cells.len() as f64
    };
    let s0 = fluid_mean(cand(utilization, 0.0));
    let s1 = fluid_mean(cand(utilization, 1.0));
    let queue_rtts = if s1 > s0 {
        quantize(((packet_mean - s0) / (s1 - s0)).max(0.0), 10.0)
    } else {
        shipped.queue_rtts
    };
    Calibration {
        utilization,
        queue_rtts,
    }
}

/// Mean-slowdown errors of candidate parameters against the packet engine
/// on the two held-out cells (`[FbHadoop, WebSearch]`), plus the packet
/// reports themselves (the re-fit reads their big-flow buckets). The one
/// definition of "held-out error": the public gate, the re-fit tests and
/// `measure_scheme_from` all go through here.
fn holdout_errors_and_reports(
    cc: CcKind,
    scale: Scale,
    candidate: Calibration,
) -> ([f64; 2], Vec<fncc_core::RunReport>) {
    let mut packet_reports = Vec::with_capacity(2);
    let mut errs = [0.0f64; 2];
    for (i, workload) in [Workload::FbHadoop, Workload::WebSearch]
        .into_iter()
        .enumerate()
    {
        let sc = holdout_spec(cc, workload, scale).scenario();
        let packet = run_scenario(&sc, SimBackend::Packet);
        let p = packet.mean_slowdown().expect("packet slowdowns");
        let f = fluid_report(&sc, candidate)
            .mean_slowdown()
            .expect("fluid slowdowns");
        errs[i] = (f - p) / p;
        packet_reports.push(packet);
    }
    (errs, packet_reports)
}

/// Mean-slowdown error of candidate parameters against the packet engine
/// on the two held-out cells (`[FbHadoop, WebSearch]`).
pub fn holdout_errors(cc: CcKind, scale: Scale, candidate: Calibration) -> [f64; 2] {
    holdout_errors_and_reports(cc, scale, candidate).0
}

/// Measure one scheme: bank numbers, held-out conformance of `shipped`,
/// re-fit if non-conformant.
pub fn measure_scheme_from(cc: CcKind, scale: Scale, shipped: Calibration) -> SchemeMeasurement {
    let (bank_elephant_slowdown, bank_mice_slowdown, bank_utilization, bank_queue_rtts) =
        measure_bank(cc, scale);

    let (errs, packet_reports) = holdout_errors_and_reports(cc, scale, shipped);
    let conformant = errs.iter().all(|e| e.abs() < band(scale));
    let refit = if conformant {
        None
    } else {
        Some(refit_on_holdout(cc, scale, &packet_reports, shipped))
    };
    SchemeMeasurement {
        cc,
        bank_elephant_slowdown,
        bank_mice_slowdown,
        bank_utilization,
        bank_queue_rtts,
        holdout_err_hadoop: errs[0],
        holdout_err_websearch: errs[1],
        conformant,
        refit,
        accepted: refit.unwrap_or(shipped),
    }
}

/// [`measure_scheme_from`] starting from the shipped (paper) calibration.
pub fn measure_scheme(cc: CcKind, scale: Scale) -> SchemeMeasurement {
    measure_scheme_from(cc, scale, CalibrationSet::paper().get(cc))
}

/// Run all three stages for every scheme and assemble the artifact set.
pub fn measure_all(scale: Scale) -> (CalibrationSet, Vec<SchemeMeasurement>) {
    let mut set = CalibrationSet::paper();
    let mut measurements = Vec::with_capacity(CcKind::ALL.len());
    for cc in CcKind::ALL {
        let m = measure_scheme(cc, scale);
        set.set(cc, m.accepted)
            .unwrap_or_else(|e| panic!("accepted parameters out of range: {e}"));
        measurements.push(m);
    }
    (set, measurements)
}

/// The `calibrate` verb: measure all schemes, print the report, and write
/// `<out>/CALIBRATION.json` (`fncc.calibration/v1`).
pub fn calibrate(opts: &RunOpts) -> CalibrationArtifact {
    let scale = match opts.scale {
        Scale::Quick => "quick",
        Scale::Default => "default",
        Scale::Full => "full",
    };
    println!("== calibrating fluid RateModels against the packet DES ({scale} scale) ==");
    let (set, measurements) = measure_all(opts.scale);

    println!(
        "  {:<8} | {:>7} {:>7} | {:>8} {:>8} | {:>6} {:>6} | {:>13}",
        "scheme", "bank_u", "bank_q", "hadoop", "websrch", "util", "q_rtts", "status"
    );
    for m in &measurements {
        println!(
            "  {:<8} | {:>7.3} {:>7.3} | {:>+7.1}% {:>+7.1}% | {:>6.2} {:>6.2} | {:>13}",
            m.cc.name(),
            m.bank_utilization,
            m.bank_queue_rtts,
            m.holdout_err_hadoop * 100.0,
            m.holdout_err_websearch * 100.0,
            m.accepted.utilization,
            m.accepted.queue_rtts,
            if m.conformant { "conformant" } else { "REFIT" },
        );
    }

    let artifact = CalibrationArtifact {
        set,
        scale: scale.to_string(),
    };
    let path = opts.out.join("CALIBRATION.json");
    match artifact.write(&path) {
        Ok(()) => println!("[json] {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
    if set == CalibrationSet::paper() {
        println!("calibration conformant: artifact matches the checked-in paper defaults");
    } else {
        println!(
            "calibration REFIT some schemes — review, then regenerate \
             RateModel::paper_default and the repo-root CALIBRATION.json \
             (see DESIGN.md §RateModel calibration)"
        );
    }
    artifact
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_snaps_to_grid_without_float_dust() {
        assert_eq!(quantize(0.948, 20.0), 0.95);
        assert_eq!(quantize(0.374, 10.0), 0.4);
        assert_eq!(quantize(3.24, 10.0), 3.2);
        assert_eq!(quantize(0.0, 10.0), 0.0);
        // Grid points are bit-identical to the literals paper_default uses.
        for (kind_q, per) in [(0.95, 20.0), (0.6, 10.0), (3.2, 10.0), (2.4, 10.0)] {
            assert_eq!(quantize(kind_q, per), kind_q);
        }
    }

    #[test]
    fn bank_scenarios_cover_all_schemes() {
        for scale in [Scale::Quick, Scale::Default] {
            let bank = Bank::for_scale(scale);
            for cc in CcKind::ALL {
                let sc = bank.scenario(cc);
                assert_eq!(sc.cc, cc);
                assert!(matches!(sc.stop, StopCondition::Drain { .. }));
                let (_, flows) = sc.instance(1);
                assert_eq!(flows.len(), 2 + bank.mice as usize);
                // Elephants must outlive the whole mouse stream even at
                // their bottleneck fair share, or the late mice see an
                // uncontended path and the queue fit loses its signal.
                let elephant_drain_us = bank.elephant_size as f64 * 8.0 / (100e9 / 2.0) * 1e6;
                let last_mouse_us = (60 + bank.mice as u64 * bank.gap_us) as f64;
                assert!(
                    elephant_drain_us > last_mouse_us,
                    "{scale:?}: elephants drain at {elephant_drain_us}us, \
                     last mouse at {last_mouse_us}us"
                );
            }
        }
    }

    #[test]
    fn shipped_bank_scenario_file_matches_default_geometry() {
        // scenarios/calibration_bank.json documents the geometry this
        // module sweeps per scheme; it must track Bank::for_scale exactly
        // or the shipped file silently stops describing what `calibrate`
        // actually runs.
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../scenarios/calibration_bank.json");
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        let shipped = Scenario::from_json(&text).expect("parse calibration_bank.json");
        let generated = Bank::for_scale(Scale::Default).scenario(shipped.cc);
        assert_eq!(shipped.traffic, generated.traffic);
        assert_eq!(shipped.topology, generated.topology);
        assert_eq!(shipped.stop, generated.stop);
    }

    #[test]
    fn holdout_seeds_are_disjoint_from_validation() {
        // The cross-validation suite pins seeds {1, 2}; fitting on them
        // would validate on the training set.
        for s in HOLDOUT_SEEDS {
            assert!(
                !(1..=2).contains(&s),
                "held-out seed {s} overlaps validation"
            );
        }
        let spec = holdout_spec(CcKind::Fncc, Workload::WebSearch, Scale::Default);
        assert_eq!(spec.seeds, HOLDOUT_SEEDS.to_vec());
        assert_eq!(spec.k, 4);
    }

    #[test]
    fn bucket_extraction_panics_without_rows() {
        let report = fncc_core::RunReport::new("empty", "fluid", "FNCC");
        let r = std::panic::catch_unwind(|| bucket_slowdown(&report, MICE_BUCKET, "test"));
        assert!(r.is_err());
    }
}
