//! Figures 1, 2, 3, 5/6, 9, 12, 13 — microbenchmarks, models and the
//! routing-symmetry check.

use crate::report::{emit_series, emit_table, f2, f3, opt_us};
use crate::RunOpts;
use fncc_cc::CcKind;
use fncc_core::prelude::*;
use fncc_core::scenarios::{HopCongestionResult, MicrobenchSpec};
use fncc_core::sweep::run_parallel;
use fncc_des::output::Table;
use fncc_des::time::TimeDelta;
use fncc_net::ids::{FlowId, HostId};

fn micro_spec(cc: CcKind, gbps: u64, opts: &RunOpts) -> MicrobenchSpec {
    MicrobenchSpec {
        cc,
        line_gbps: gbps,
        horizon_us: opts.micro_horizon_us(),
        ..Default::default()
    }
}

/// Fig. 1a: NVIDIA Spectrum buffer/capacity trend (static data).
pub fn fig1a(opts: &RunOpts) {
    let mut t = Table::new([
        "switch",
        "released",
        "capacity_tbps",
        "buffer_mb",
        "buffer/capacity_us",
    ]);
    for g in hardware_trends() {
        t.row([
            g.name.to_string(),
            g.released.to_string(),
            f2(g.capacity_tbps),
            f2(g.buffer_mb),
            f2(g.burst_absorption_us()),
        ]);
    }
    emit_table(
        &opts.out,
        "fig1a_hardware_trends",
        "Fig. 1a — switch buffer vs capacity",
        &t,
    );
}

/// Figs. 1b–d: bottleneck queue length over time at 100/200/400 Gb/s for
/// FNCC/HPCC/DCQCN (two elephants, second joins at 300 µs).
pub fn fig1_queues(opts: &RunOpts) {
    let ccs = [CcKind::Fncc, CcKind::Hpcc, CcKind::Dcqcn];
    for gbps in [100u64, 200, 400] {
        let specs: Vec<MicrobenchSpec> = ccs.iter().map(|&cc| micro_spec(cc, gbps, opts)).collect();
        let jobs: Vec<_> = specs
            .iter()
            .map(|s| {
                let s = s.clone();
                move || elephant_dumbbell(&s)
            })
            .collect();
        let results = run_parallel(jobs, opts.threads);

        let mut t = Table::new(["cc", "peak_queue_KB", "mean_queue_KB", "pause_frames"]);
        let mut named: Vec<TimeSeries> = Vec::new();
        for r in &results {
            let mut q = r.queue_kb.clone();
            q.name = r.cc.name().to_string();
            t.row([
                r.cc.name().to_string(),
                f2(r.peak_queue_kb),
                f2(q.mean()),
                r.pause_frames.to_string(),
            ]);
            named.push(q);
        }
        let refs: Vec<&TimeSeries> = named.iter().collect();
        emit_series(&opts.out, &format!("fig1_queue_{gbps}g"), &refs);
        emit_table(
            &opts.out,
            &format!("fig1_summary_{gbps}g"),
            &format!("Fig. 1 — queue length at {gbps} Gb/s"),
            &t,
        );
    }
}

/// Fig. 2: notification latency, measured. The INT a sender consumes is
/// `age` µs old; FNCC's must be fresher than HPCC's on every hop, and the
/// sender's first reaction after the join must come earlier.
pub fn fig2(opts: &RunOpts) {
    let f = elephant_dumbbell(&micro_spec(CcKind::Fncc, 100, opts));
    let h = elephant_dumbbell(&micro_spec(CcKind::Hpcc, 100, opts));
    let join = 300.0;
    let mut t = Table::new(["quantity", "HPCC", "FNCC"]);
    t.row([
        "reaction after join (us)".to_string(),
        opt_us(h.reaction_us.map(|x| x - join)),
        opt_us(f.reaction_us.map(|x| x - join)),
    ]);
    for hop in 0..h.mean_int_age_us.len().max(f.mean_int_age_us.len()) {
        t.row([
            format!("mean INT age, hop {hop} (us)"),
            h.mean_int_age_us
                .get(hop)
                .map(|&x| f2(x))
                .unwrap_or("-".into()),
            f.mean_int_age_us
                .get(hop)
                .map(|&x| f2(x))
                .unwrap_or("-".into()),
        ]);
    }
    emit_table(
        &opts.out,
        "fig2_notification",
        "Fig. 2 — sub-RTT notification (measured)",
        &t,
    );
}

/// Fig. 3: PFC pause frames at the congestion point, 200 and 400 Gb/s.
pub fn fig3(opts: &RunOpts) {
    let ccs = [CcKind::Dcqcn, CcKind::Hpcc, CcKind::Fncc];
    let mut t = Table::new(["cc", "pauses_200G", "pauses_400G"]);
    for &cc in &ccs {
        let p200 = elephant_dumbbell(&micro_spec(cc, 200, opts)).pause_frames;
        let p400 = elephant_dumbbell(&micro_spec(cc, 400, opts)).pause_frames;
        t.row([cc.name().to_string(), p200.to_string(), p400.to_string()]);
    }
    emit_table(
        &opts.out,
        "fig3_pause_frames",
        "Fig. 3 — pause frames at the congestion point",
        &t,
    );
}

/// Figs. 5/6: path symmetry under symmetric ECMP and under spanning-tree
/// routing, verified over many flows on the k=8 fat-tree.
pub fn paths(opts: &RunOpts) {
    let line = Bandwidth::gbps(100);
    let prop = TimeDelta::from_ns(1500);
    let mut t = Table::new([
        "routing",
        "pairs_checked",
        "symmetric",
        "distinct_paths_h0_h127",
    ]);
    for (name, topo) in [
        ("symmetric-ECMP", Topology::fat_tree(8, line, prop)),
        (
            "spanning-trees(8)",
            Topology::fat_tree(8, line, prop).with_spanning_trees(8),
        ),
    ] {
        let mut checked = 0u32;
        let mut symmetric = 0u32;
        let mut distinct = std::collections::HashSet::new();
        for f in 0..500u32 {
            let src = HostId((f * 37) % 128);
            let dst = HostId((f * 91 + 17) % 128);
            if src == dst {
                continue;
            }
            checked += 1;
            let fwd = topo.path_switches(src, dst, FlowId(f));
            let mut rev = topo.path_switches(dst, src, FlowId(f));
            rev.reverse();
            if fwd == rev {
                symmetric += 1;
            }
            distinct.insert(topo.path_switches(HostId(0), HostId(127), FlowId(f)));
        }
        t.row([
            name.to_string(),
            checked.to_string(),
            format!("{symmetric}/{checked}"),
            distinct.len().to_string(),
        ]);
    }
    emit_table(
        &opts.out,
        "fig5_6_path_symmetry",
        "Figs. 5–6 — data/ACK path symmetry (FNCC's Observation 2)",
        &t,
    );
}

/// Fig. 9: queue, per-flow rates and utilization for RoCC/DCQCN/HPCC/FNCC at
/// 100/200/400 Gb/s.
pub fn fig9(opts: &RunOpts) {
    let ccs = [CcKind::Fncc, CcKind::Hpcc, CcKind::Dcqcn, CcKind::Rocc];
    let mut summary = Table::new([
        "line",
        "cc",
        "reaction_us",
        "fair_conv_us",
        "peak_queue_KB",
        "mean_util",
        "pauses",
    ]);
    for gbps in [100u64, 200, 400] {
        let specs: Vec<MicrobenchSpec> = ccs.iter().map(|&cc| micro_spec(cc, gbps, opts)).collect();
        let jobs: Vec<_> = specs
            .iter()
            .map(|s| {
                let s = s.clone();
                move || elephant_dumbbell(&s)
            })
            .collect();
        let results = run_parallel(jobs, opts.threads);

        let mut queues: Vec<TimeSeries> = Vec::new();
        let mut utils: Vec<TimeSeries> = Vec::new();
        let mut rates: Vec<TimeSeries> = Vec::new();
        for r in &results {
            summary.row([
                format!("{gbps}G"),
                r.cc.name().to_string(),
                opt_us(r.reaction_us),
                opt_us(r.fair_convergence_us),
                f2(r.peak_queue_kb),
                f3(r.mean_util_after_join),
                r.pause_frames.to_string(),
            ]);
            let mut q = r.queue_kb.clone();
            q.name = r.cc.name().into();
            queues.push(q);
            let mut u = r.util.clone();
            u.name = r.cc.name().into();
            utils.push(u);
            for fr in &r.flow_rates_gbps {
                rates.push(fr.clone());
            }
            for cr in &r.cc_rates_gbps {
                rates.push(cr.clone());
            }
        }
        emit_series(
            &opts.out,
            &format!("fig9_queue_{gbps}g"),
            &queues.iter().collect::<Vec<_>>(),
        );
        emit_series(
            &opts.out,
            &format!("fig9_util_{gbps}g"),
            &utils.iter().collect::<Vec<_>>(),
        );
        emit_series(
            &opts.out,
            &format!("fig9_rates_{gbps}g"),
            &rates.iter().collect::<Vec<_>>(),
        );
    }
    emit_table(
        &opts.out,
        "fig9_summary",
        "Fig. 9 — response-speed microbenchmark",
        &summary,
    );
}

/// Fig. 12: the notification-latency model vs measurement.
pub fn fig12(opts: &RunOpts) {
    let model =
        notification_gain_model(3, Bandwidth::gbps(100), TimeDelta::from_ns(1500), 1518, 70);
    let f = elephant_dumbbell(&micro_spec(CcKind::Fncc, 100, opts));
    let h = elephant_dumbbell(&micro_spec(CcKind::Hpcc, 100, opts));
    let mut t = Table::new([
        "hop",
        "model_HPCC_age_us",
        "model_FNCC_age_us",
        "model_gain_us",
        "measured_HPCC_age_us",
        "measured_FNCC_age_us",
    ]);
    for g in &model {
        t.row([
            format!("sw{}", g.hop + 1),
            f2(g.hpcc_age.as_us_f64()),
            f2(g.fncc_age.as_us_f64()),
            f2(g.gain().as_us_f64()),
            h.mean_int_age_us
                .get(g.hop)
                .map(|&x| f2(x))
                .unwrap_or("-".into()),
            f.mean_int_age_us
                .get(g.hop)
                .map(|&x| f2(x))
                .unwrap_or("-".into()),
        ]);
    }
    emit_table(
        &opts.out,
        "fig12_notification_model",
        "Fig. 12 — INT freshness by congestion hop",
        &t,
    );
}

/// Figs. 13a–d: congestion location study with the LHCS ablation.
pub fn fig13(opts: &RunOpts) {
    let mut t = Table::new([
        "location",
        "scheme",
        "peak_queue_KB",
        "mean_queue_KB",
        "mean_util",
        "queue_reduction_vs_HPCC_%",
        "lhcs_triggers",
    ]);
    for loc in [HopLocation::First, HopLocation::Middle, HopLocation::Last] {
        let mk = |cc: CcKind, disable_lhcs: bool| MicrobenchSpec {
            cc,
            horizon_us: opts.micro_horizon_us().max(800),
            disable_lhcs,
            ..Default::default()
        };
        let hpcc = hop_congestion(loc, &mk(CcKind::Hpcc, false));
        let mut rows: Vec<(String, HopCongestionResult)> = vec![("HPCC".into(), hpcc.clone())];
        if loc == HopLocation::Last {
            rows.push((
                "FNCC w/o LHCS".into(),
                hop_congestion(loc, &mk(CcKind::Fncc, true)),
            ));
            rows.push((
                "FNCC with LHCS".into(),
                hop_congestion(loc, &mk(CcKind::Fncc, false)),
            ));
        } else {
            rows.push(("FNCC".into(), hop_congestion(loc, &mk(CcKind::Fncc, false))));
        }
        for (name, r) in &rows {
            // The paper's reduction percentages refer to queue depth at the
            // congestion point; peak depth is the robust analogue here (the
            // post-join *mean* is near zero for all schemes and noisy).
            let reduction = if r.cc == CcKind::Hpcc {
                "-".to_string()
            } else {
                f2(100.0 * (1.0 - r.peak_queue_kb / hpcc.peak_queue_kb.max(1e-9)))
            };
            t.row([
                loc.name().to_string(),
                name.clone(),
                f2(r.peak_queue_kb),
                f2(r.mean_queue_kb),
                f3(r.mean_util),
                reduction,
                r.lhcs_triggers.to_string(),
            ]);
            // Per-variant series for 13a-c plots.
            let tag = format!("fig13_{}_{}", loc.name(), name.replace([' ', '/'], "_"));
            emit_series(&opts.out, &tag, &[&r.queue_kb, &r.util]);
        }
        // Fig. 13d: last-hop flow rates.
        if loc == HopLocation::Last {
            let mut all: Vec<TimeSeries> = Vec::new();
            for (name, r) in &rows {
                for (i, s) in r.flow_rates_gbps.iter().enumerate() {
                    let mut s = s.clone();
                    s.name = format!("{name}-flow{i}");
                    all.push(s);
                }
            }
            emit_series(
                &opts.out,
                "fig13d_lasthop_rates",
                &all.iter().collect::<Vec<_>>(),
            );
        }
    }
    emit_table(
        &opts.out,
        "fig13_summary",
        "Fig. 13 — gains by congestion location",
        &t,
    );
}

/// Fig. 13e: the fairness staircase.
pub fn fig13e(opts: &RunOpts) {
    let interval = match opts.scale {
        crate::Scale::Quick => TimeDelta::from_us(300),
        _ => TimeDelta::from_ms(1),
    };
    let r = fairness_staircase(CcKind::Fncc, 4, interval, 1);
    let mut t = Table::new(["period", "jain_index"]);
    for (p, j) in r.jain_per_period.iter().enumerate() {
        t.row([p.to_string(), f3(*j)]);
    }
    emit_table(
        &opts.out,
        "fig13e_fairness",
        "Fig. 13e — fairness over staggered flows",
        &t,
    );
    emit_series(
        &opts.out,
        "fig13e_rates",
        &r.flow_rates_gbps.iter().collect::<Vec<_>>(),
    );
    println!("all flows drained: {}", r.all_finished);
}
