//! Ablations beyond the paper's figures: LHCS parameter sweeps, periodic
//! `All_INT_Table` refresh, cumulative-ACK granularity, and the Timely/Swift
//! extension baselines.

use crate::report::{emit_table, f2, f3, opt_us};
use crate::RunOpts;
use fncc_cc::{CcAlgo, CcKind, LhcsConfig};
use fncc_core::prelude::*;
use fncc_core::scenarios::MicrobenchSpec;
use fncc_core::sim::SimBuilder;
use fncc_des::output::Table;
use fncc_des::time::TimeDelta;
use fncc_net::ids::SwitchId;
use fncc_transport::FlowSpec;

/// β/α sweep for LHCS on the last-hop scenario: lower β drains the queue
/// harder at the cost of utilization; α gates trigger sensitivity.
pub fn lhcs_sweep(opts: &RunOpts) {
    let line = Bandwidth::gbps(100);
    let mut t = Table::new([
        "beta",
        "alpha",
        "peak_queue_KB",
        "mean_util",
        "lhcs_triggers",
    ]);
    for &beta in &[0.8, 0.9, 0.95, 1.0] {
        for &alpha in &[1.01, 1.05, 1.2] {
            let topo = Topology::line(3, &[0, 2], line, TimeDelta::from_ns(1500));
            let base_rtt = topo.base_rtt(1518, 70);
            // Paper-default construction via the one shared factory; only
            // the swept LHCS knobs are overridden on top.
            let mut algo = fncc_core::sim::make_algo(CcKind::Fncc, line, base_rtt);
            if let CcAlgo::Fncc(ref mut cfg) = algo {
                cfg.lhcs = LhcsConfig {
                    enabled: true,
                    alpha,
                    beta,
                };
            }
            let horizon = SimTime::from_us(800);
            let elephant = (line.as_f64() / 8.0 * horizon.as_secs_f64() * 1.5) as u64;
            let flows = vec![
                FlowSpec {
                    id: FlowId(0),
                    src: HostId(0),
                    dst: HostId(2),
                    size: elephant,
                    start: SimTime::ZERO,
                },
                FlowSpec {
                    id: FlowId(1),
                    src: HostId(1),
                    dst: HostId(2),
                    size: elephant,
                    start: SimTime::from_us(300),
                },
            ];
            let sw = SwitchId(2);
            let port = fncc_core::sim::Sim::egress_port_on_path(
                &topo,
                HostId(0),
                HostId(2),
                FlowId(0),
                sw,
            )
            .unwrap();
            let mut sim = SimBuilder::with_algo(topo, algo)
                .flows(flows)
                .sample(TimeDelta::from_us(1), horizon)
                .watch_queue(sw, port, "q")
                .watch_util(sw, port, "u")
                .build();
            sim.run_until(horizon);
            let telem = sim.telemetry();
            let q = telem.queue_series(sw, port).unwrap();
            let u = telem.util_series(sw, port).unwrap();
            let triggers: u64 = (0..2u32)
                .map(|i| sim.host(HostId(i)).lhcs_triggers(FlowId(i)).unwrap_or(0))
                .sum();
            t.row([
                f2(beta),
                f2(alpha),
                f2(q.max() / 1024.0),
                f3(u.mean_in(SimTime::from_us(300), horizon)),
                triggers.to_string(),
            ]);
        }
    }
    emit_table(
        &opts.out,
        "ablation_lhcs",
        "Ablation — LHCS α/β sweep (last-hop congestion)",
        &t,
    );
}

/// Periodic `All_INT_Table` refresh: how stale may the table get before
/// FNCC's advantage erodes?
pub fn int_refresh_sweep(opts: &RunOpts) {
    let mut t = Table::new(["refresh", "reaction_us", "peak_queue_KB", "mean_util"]);
    for (label, refresh) in [
        ("live", None),
        ("1us", Some(TimeDelta::from_us(1))),
        ("5us", Some(TimeDelta::from_us(5))),
        ("20us", Some(TimeDelta::from_us(20))),
    ] {
        let spec = MicrobenchSpec {
            cc: CcKind::Fncc,
            int_refresh: refresh,
            horizon_us: opts.micro_horizon_us(),
            ..Default::default()
        };
        let r = elephant_dumbbell(&spec);
        t.row([
            label.to_string(),
            opt_us(r.reaction_us),
            f2(r.peak_queue_kb),
            f3(r.mean_util_after_join),
        ]);
    }
    emit_table(
        &opts.out,
        "ablation_int_refresh",
        "Ablation — All_INT_Table refresh period (Fig. 8's management module)",
        &t,
    );
}

/// Cumulative-ACK granularity m (§3.2.3): coarser ACKs cost notification
/// freshness.
pub fn ack_coalescing_sweep(opts: &RunOpts) {
    let line = Bandwidth::gbps(100);
    let mut t = Table::new([
        "ack_every_m",
        "reaction_us",
        "peak_queue_KB",
        "acks_delivered",
    ]);
    for m in [1u32, 2, 4, 8] {
        let topo = Topology::dumbbell(2, 3, line, TimeDelta::from_ns(1500));
        let horizon = SimTime::from_us(opts.micro_horizon_us());
        let join = SimTime::from_us(300);
        let elephant = (line.as_f64() / 8.0 * horizon.as_secs_f64() * 1.5) as u64;
        let flows = vec![
            FlowSpec {
                id: FlowId(0),
                src: HostId(0),
                dst: HostId(2),
                size: elephant,
                start: SimTime::ZERO,
            },
            FlowSpec {
                id: FlowId(1),
                src: HostId(1),
                dst: HostId(2),
                size: elephant,
                start: join,
            },
        ];
        let mut sim = SimBuilder::new(topo, CcKind::Fncc)
            .ack_every(m)
            .flows(flows)
            .sample(TimeDelta::from_us(1), horizon)
            .watch_queue(SwitchId(0), 2, "q")
            .watch_flow(FlowId(0), "flow0")
            .build();
        sim.run_until(horizon);
        let telem = sim.telemetry();
        let rate = telem.flow_rate_series(FlowId(0)).unwrap();
        let mut gbps = fncc_des::stats::TimeSeries::new("r");
        for (tt, v) in rate.iter() {
            gbps.push(tt, v / 1e9);
        }
        let reaction = fncc_core::metrics::reaction_time(&gbps, join, 90.0).map(|x| x.as_us_f64());
        t.row([
            m.to_string(),
            opt_us(reaction),
            f2(telem.queue_series(SwitchId(0), 2).unwrap().max() / 1024.0),
            telem.counters.acks_delivered.to_string(),
        ]);
    }
    emit_table(
        &opts.out,
        "ablation_ack_coalescing",
        "Ablation — cumulative ACK granularity m",
        &t,
    );
}

/// Failure injection: a stuck PFC pause on the spine link (§2.3's pause
/// storm hazard). The watchdog records episode lengths; the fabric must
/// recover losslessly once the fault clears.
pub fn pause_storm(opts: &RunOpts) {
    use fncc_core::scenario::{FaultSpec, Scenario};

    let mut t = Table::new([
        "fault_us",
        "cc",
        "episodes",
        "max_pause_us",
        "total_pause_us",
        "upstream_pauses",
        "drops",
        "all_finished",
    ]);
    for fault_us in [0u64, 50, 200] {
        for cc in [CcKind::Fncc, CcKind::Dcqcn] {
            let line = Bandwidth::gbps(100);
            let topo = Topology::dumbbell(2, 3, line, TimeDelta::from_ns(1500));
            let flows: Vec<FlowSpec> = (0..2)
                .map(|i| FlowSpec {
                    id: FlowId(i),
                    src: HostId(i),
                    dst: HostId(2),
                    size: 2_000_000,
                    start: SimTime::ZERO,
                })
                .collect();
            // The stuck-port fault goes through the scenario-level spec and
            // the same lowering every backend uses — no bespoke wiring.
            let faults: Vec<FaultSpec> = if fault_us > 0 {
                vec![FaultSpec::StuckPort {
                    switch: 1,
                    port: 1,
                    at_us: 20,
                    duration_us: fault_us,
                }]
            } else {
                Vec::new()
            };
            let mut sim = SimBuilder::new(topo, cc)
                .fabric(|f| Scenario::lower_faults(&faults, f))
                .flows(flows)
                .build();
            let done = sim.run_to_completion(TimeDelta::from_us(100), SimTime::from_ms(20));
            let telem = sim.telemetry();
            t.row([
                fault_us.to_string(),
                cc.name().to_string(),
                telem.pause_episodes().to_string(),
                f2(telem.pause_time_max().as_us_f64()),
                f2(telem.pause_time_total().as_us_f64()),
                telem.counters.pfc_pause_tx.to_string(),
                telem.counters.drops.to_string(),
                done.to_string(),
            ]);
        }
    }
    emit_table(
        &opts.out,
        "ablation_pause_storm",
        "Failure injection — stuck PFC pause on the spine link (§2.3)",
        &t,
    );
}

/// Extension baselines: Timely and Swift on the Fig. 9 scenario.
pub fn extra_cc(opts: &RunOpts) {
    let mut t = Table::new(["cc", "reaction_us", "peak_queue_KB", "mean_util", "pauses"]);
    for cc in [CcKind::Fncc, CcKind::Hpcc, CcKind::Timely, CcKind::Swift] {
        let spec = MicrobenchSpec {
            cc,
            horizon_us: opts.micro_horizon_us(),
            ..Default::default()
        };
        let r = elephant_dumbbell(&spec);
        t.row([
            cc.name().to_string(),
            opt_us(r.reaction_us),
            f2(r.peak_queue_kb),
            f3(r.mean_util_after_join),
            r.pause_frames.to_string(),
        ]);
    }
    emit_table(
        &opts.out,
        "ablation_extra_cc",
        "Extension — delay-based baselines (Timely/Swift) on the Fig. 9 scenario",
        &t,
    );
}
