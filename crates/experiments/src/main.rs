//! `fncc-repro` — regenerate the FNCC paper's tables and figures, or run
//! any declarative scenario file on any backend.
//!
//! ```text
//! fncc-repro [EXPERIMENT…] [--out DIR] [--quick|--full] [--threads N]
//!            [--seeds N] [--flows N] [--backend packet|fluid|hybrid] [--progress]
//! fncc-repro run SCENARIO.json… [--backend packet|fluid|hybrid] [--out DIR]
//!            [--trace] [--threads N] [--progress]
//! fncc-repro inspect ARTIFACT… [--flow N] [--top K]
//!
//! experiments: fig1a fig1 fig2 fig3 paths fig9 fig12 fig13 fig13e fig14
//!              fig15 ablate storm load-sweep extra-cc bench-des
//!              bench-hybrid calibrate check all
//!              (default: all; `all` runs each paper experiment once —
//!              `storm` is already part of `ablate`, and the maintenance
//!              verbs `bench-des`/`calibrate` only run when named)
//!
//! `--backend fluid` swaps the packet DES for the flow-level fast path in
//! the workload experiments (fig14, fig15, load-sweep) and in `run` —
//! same flow sets, orders of magnitude faster, slowdowns within the
//! cross-validated band. `--backend hybrid` co-simulates: the scenario's
//! `foreground` partition runs at packet fidelity while the background
//! drains in the fluid model (fleet-scale load, packet-level victims). `run` executes a `Scenario` JSON file through the
//! unified Backend path and writes a `*.report.json` artifact. `calibrate`
//! measures every scheme's fluid RateModel parameters against the packet
//! DES and writes a `fncc.calibration/v1` artifact (`CALIBRATION.json`).
//!
//! `--trace` arms the flight recorder on `run`: the first seed's typed
//! event stream is drained to a `*.trace.jsonl` (`fncc.trace/v1`) artifact
//! next to the report, which `inspect` can interrogate (per-flow timelines,
//! queue hotspots, PFC bursts). `--progress` (or `FNCC_PROGRESS=1`) prints
//! a once-per-second heartbeat to stderr on long packet-DES runs.
//! ```

use fncc_experiments::{
    ablation, benchdes, calibrate, figs, inspect, scorecard, workload_figs, RunOpts, Scale,
};
use std::path::PathBuf;
use std::time::Instant;

// Count allocations binary-wide so `bench-des` can report them; library
// consumers of fncc-experiments are not affected.
#[global_allocator]
static GLOBAL: fncc_experiments::CountingAlloc = fncc_experiments::CountingAlloc;

fn usage() -> ! {
    // Enumerated from `CcKind::ALL` so a newly registered scheme shows up
    // here (and in scenario-file `cc` parsing) without touching this file.
    let schemes: Vec<&str> = fncc_cc::CcKind::ALL.iter().map(|k| k.name()).collect();
    eprintln!(
        "usage: fncc-repro [EXPERIMENT...] [--out DIR] [--quick|--full] \
         [--threads N] [--seeds N] [--flows N] [--backend packet|fluid|hybrid] \
         [--progress]\n\
         \x20      fncc-repro run SCENARIO.json... [--backend packet|fluid|hybrid] [--out DIR] \
         [--trace] [--threads N] [--progress]\n\
         \x20      fncc-repro inspect ARTIFACT... [--flow N] [--top K]\n\
         experiments: fig1a fig1 fig2 fig3 paths fig9 fig12 fig13 fig13e \
         fig14 fig15 ablate storm load-sweep extra-cc bench-des bench-hybrid \
         calibrate check all\n\
         schemes (scenario `cc` field, case-insensitive): {}",
        schemes.join(" ")
    );
    std::process::exit(2)
}

fn main() {
    let mut opts = RunOpts::default();
    let mut experiments: Vec<String> = Vec::new();
    let mut inspect_opts = inspect::InspectOpts::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => opts.out = PathBuf::from(args.next().unwrap_or_else(|| usage())),
            "--quick" => opts.scale = Scale::Quick,
            "--full" => opts.scale = Scale::Full,
            "--threads" => {
                // One flag, two consumers: job-pool width for multi-run
                // experiments, and the sharded-DES worker count for `run`
                // and the `bench-des` scaling series.
                let n: usize = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                opts.threads = n;
                opts.sim_threads = Some(n as u32);
            }
            "--seeds" => {
                opts.seeds = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--flows" => {
                opts.flows = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--backend" => {
                opts.backend = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--trace" => opts.trace = true,
            // The heartbeat is read by the DES engine deep below the
            // backend API; an env var reaches it without threading a flag
            // through every layer (and doubles as the non-CLI switch).
            "--progress" => std::env::set_var("FNCC_PROGRESS", "1"),
            "--flow" => {
                inspect_opts.flow = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--top" => {
                inspect_opts.top = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "-h" | "--help" => usage(),
            exp if !exp.starts_with('-') => experiments.push(exp.to_string()),
            _ => usage(),
        }
    }
    if experiments.is_empty() {
        experiments.push("all".to_string());
    }

    let t0 = Instant::now();
    if experiments[0] == "run" {
        if experiments.len() < 2 {
            eprintln!("'run' needs at least one scenario file");
            usage();
        }
        for path in &experiments[1..] {
            run_scenario_file(path, &opts);
        }
    } else if experiments[0] == "inspect" {
        if experiments.len() < 2 {
            eprintln!("'inspect' needs at least one artifact file");
            usage();
        }
        for path in &experiments[1..] {
            if let Err(e) = inspect::inspect(path, inspect_opts) {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
        return;
    } else {
        for exp in &experiments {
            run_one(exp, &opts);
        }
    }
    println!("\ntotal wall time: {:.1}s", t0.elapsed().as_secs_f64());
}

/// Execute one scenario JSON file on the selected backend and persist the
/// unified report artifact next to the CSVs.
fn run_scenario_file(path: &str, opts: &RunOpts) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let mut scenario = match fncc_core::Scenario::from_json(&text) {
        Ok(sc) => sc,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(2);
        }
    };
    scenario.probes.trace |= opts.trace;
    // `--threads N` runs the packet DES sharded over N workers; reports
    // are byte-identical to the single-engine path at any thread count.
    if let Some(n) = opts.sim_threads {
        scenario.threads = n;
    }
    // `--flows N` scales a Poisson scenario down (or up) without editing
    // the file: CI smoke-runs the fleet-scale scenarios on every backend
    // at a size the packet engine can chew through in minutes.
    if let Some(n) = opts.flows {
        if let fncc_core::TrafficSpec::Poisson { ref mut flows, .. } = scenario.traffic {
            *flows = n;
        }
    }
    let t0 = Instant::now();
    let trace_path = scenario.probes.trace.then(|| {
        let _ = std::fs::create_dir_all(&opts.out);
        opts.out.join(
            fncc_core::RunReport::new(&scenario.name, opts.backend.name(), scenario.cc.name())
                .trace_file_name(),
        )
    });
    let report = fncc_core::run_scenario_traced(&scenario, opts.backend, trace_path.as_deref());
    report.print_summary();
    let artifact = opts.out.join(report.artifact_file_name());
    match report.write_json(&artifact) {
        Ok(()) => println!("[json] {}", artifact.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", artifact.display()),
    }
    println!(
        "[run {}] done in {:.1}s",
        scenario.name,
        t0.elapsed().as_secs_f64()
    );
}

fn run_one(exp: &str, opts: &RunOpts) {
    let t0 = Instant::now();
    match exp {
        "fig1a" => figs::fig1a(opts),
        "fig1" => figs::fig1_queues(opts),
        "fig2" => figs::fig2(opts),
        "fig3" => figs::fig3(opts),
        "paths" => figs::paths(opts),
        "fig9" => figs::fig9(opts),
        "fig12" => figs::fig12(opts),
        "fig13" => figs::fig13(opts),
        "fig13e" => figs::fig13e(opts),
        "fig14" => workload_figs::fig14(opts),
        "fig15" => workload_figs::fig15(opts),
        "ablate" => {
            ablation::lhcs_sweep(opts);
            ablation::int_refresh_sweep(opts);
            ablation::ack_coalescing_sweep(opts);
            ablation::pause_storm(opts);
        }
        "storm" => ablation::pause_storm(opts),
        "bench-des" => benchdes::bench_des(opts),
        "bench-hybrid" => benchdes::bench_hybrid(opts),
        "calibrate" => {
            calibrate::calibrate(opts);
        }
        "load-sweep" => workload_figs::load_sweep(opts),
        "check" => {
            let failed = scorecard::check(opts);
            if failed > 0 {
                std::process::exit(1);
            }
        }
        "extra-cc" => ablation::extra_cc(opts),
        "all" => {
            for e in [
                "fig1a",
                "fig1",
                "fig2",
                "fig3",
                "paths",
                "fig9",
                "fig12",
                "fig13",
                "fig13e",
                "fig14",
                "fig15",
                // `ablate` already includes the pause-storm injection, so
                // `storm` is not repeated here.
                "ablate",
                "load-sweep",
                "extra-cc",
                "check",
            ] {
                run_one(e, opts);
            }
            return;
        }
        other => {
            eprintln!("unknown experiment: {other}");
            usage();
        }
    }
    println!("[{exp}] done in {:.1}s", t0.elapsed().as_secs_f64());
}
