//! `fncc-repro` — regenerate the FNCC paper's tables and figures.
//!
//! ```text
//! fncc-repro [EXPERIMENT…] [--out DIR] [--quick|--full] [--threads N]
//!            [--seeds N] [--flows N] [--backend packet|fluid]
//!
//! experiments: fig1a fig1 fig2 fig3 paths fig9 fig12 fig13 fig13e fig14
//!              fig15 ablate storm extra-cc all   (default: all)
//!
//! `--backend fluid` swaps the packet DES for the flow-level fast path in
//! the workload experiments (fig14, fig15, load-sweep) — same flow sets,
//! orders of magnitude faster, slowdowns within the cross-validated band.
//! ```

use fncc_experiments::{ablation, figs, scorecard, workload_figs, RunOpts, Scale};
use std::path::PathBuf;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: fncc-repro [EXPERIMENT...] [--out DIR] [--quick|--full] \
         [--threads N] [--seeds N] [--flows N] [--backend packet|fluid]\n\
         experiments: fig1a fig1 fig2 fig3 paths fig9 fig12 fig13 fig13e \
         fig14 fig15 ablate storm load-sweep extra-cc check all"
    );
    std::process::exit(2)
}

fn main() {
    let mut opts = RunOpts::default();
    let mut experiments: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => opts.out = PathBuf::from(args.next().unwrap_or_else(|| usage())),
            "--quick" => opts.scale = Scale::Quick,
            "--full" => opts.scale = Scale::Full,
            "--threads" => {
                opts.threads = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--seeds" => {
                opts.seeds = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--flows" => {
                opts.flows = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--backend" => {
                opts.backend = args
                    .next()
                    .and_then(|s| fncc_core::SimBackend::parse(&s))
                    .unwrap_or_else(|| usage())
            }
            "-h" | "--help" => usage(),
            exp if !exp.starts_with('-') => experiments.push(exp.to_string()),
            _ => usage(),
        }
    }
    if experiments.is_empty() {
        experiments.push("all".to_string());
    }

    let t0 = Instant::now();
    for exp in &experiments {
        run_one(exp, &opts);
    }
    println!("\ntotal wall time: {:.1}s", t0.elapsed().as_secs_f64());
}

fn run_one(exp: &str, opts: &RunOpts) {
    let t0 = Instant::now();
    match exp {
        "fig1a" => figs::fig1a(opts),
        "fig1" => figs::fig1_queues(opts),
        "fig2" => figs::fig2(opts),
        "fig3" => figs::fig3(opts),
        "paths" => figs::paths(opts),
        "fig9" => figs::fig9(opts),
        "fig12" => figs::fig12(opts),
        "fig13" => figs::fig13(opts),
        "fig13e" => figs::fig13e(opts),
        "fig14" => workload_figs::fig14(opts),
        "fig15" => workload_figs::fig15(opts),
        "ablate" => {
            ablation::lhcs_sweep(opts);
            ablation::int_refresh_sweep(opts);
            ablation::ack_coalescing_sweep(opts);
            ablation::pause_storm(opts);
        }
        "storm" => ablation::pause_storm(opts),
        "load-sweep" => workload_figs::load_sweep(opts),
        "check" => {
            let failed = scorecard::check(opts);
            if failed > 0 {
                std::process::exit(1);
            }
        }
        "extra-cc" => ablation::extra_cc(opts),
        "all" => {
            for e in [
                "fig1a",
                "fig1",
                "fig2",
                "fig3",
                "paths",
                "fig9",
                "fig12",
                "fig13",
                "fig13e",
                "fig14",
                "fig15",
                "ablate",
                "storm",
                "load-sweep",
                "extra-cc",
                "check",
            ] {
                run_one(e, opts);
            }
            return;
        }
        other => {
            eprintln!("unknown experiment: {other}");
            usage();
        }
    }
    println!("[{exp}] done in {:.1}s", t0.elapsed().as_secs_f64());
}
