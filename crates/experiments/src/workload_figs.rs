//! Figures 14 and 15 — large-scale fat-tree workload runs, executed
//! through the unified `Scenario` → `Backend` → `RunReport` path (so
//! `--backend fluid` swaps engines without touching this code).

use crate::report::{emit_table, f2};
use crate::RunOpts;
use fncc_cc::CcKind;
use fncc_core::scenarios::{Workload, WorkloadSpec};
use fncc_core::sweep::run_parallel;
use fncc_core::{run_scenario, RunReport};
use fncc_des::output::Table;

fn spec(cc: CcKind, workload: Workload, opts: &RunOpts) -> WorkloadSpec {
    let mut s = WorkloadSpec::new(cc, workload);
    s.seeds = opts.workload_seeds();
    s.n_flows = opts.workload_flows();
    if opts.scale == crate::Scale::Quick {
        s.k = 4;
    }
    s
}

fn run(workload: Workload, fig: &str, opts: &RunOpts) {
    let ccs = [CcKind::Dcqcn, CcKind::Hpcc, CcKind::Fncc];
    let backend = opts.backend;
    let jobs: Vec<_> = ccs
        .iter()
        .map(|&cc| {
            let sc = spec(cc, workload, opts).scenario();
            move || run_scenario(&sc, backend)
        })
        .collect();
    let results: Vec<RunReport> = run_parallel(jobs, opts.threads);

    for (stat, pick) in [("average", 0usize), ("median", 1), ("95th", 2), ("99th", 3)] {
        let mut t = Table::new([
            "flow_size",
            "DCQCN",
            "HPCC",
            "FNCC",
            "FNCC_vs_HPCC_%",
            "FNCC_vs_DCQCN_%",
        ]);
        let buckets = workload.buckets();
        for (b, &upper) in buckets.iter().enumerate() {
            let val = |r: &RunReport| -> f64 {
                let row = &r.slowdowns[b];
                match pick {
                    0 => row.avg,
                    1 => row.p50,
                    2 => row.p95,
                    _ => row.p99,
                }
            };
            let (d, h, f) = (val(&results[0]), val(&results[1]), val(&results[2]));
            if results.iter().all(|r| r.slowdowns[b].count == 0) {
                continue;
            }
            let pct = |base: f64| {
                if base > 0.0 {
                    f2(100.0 * (1.0 - f / base))
                } else {
                    "-".to_string()
                }
            };
            t.row([
                fncc_workloads::distributions::bucket_label(upper),
                f2(d),
                f2(h),
                f2(f),
                pct(h),
                pct(d),
            ]);
        }
        emit_table(
            &opts.out,
            &format!("{fig}_{stat}"),
            &format!(
                "{fig} — {} FCT slowdown, {} (50% load)",
                stat,
                workload.name()
            ),
            &t,
        );
    }

    let mut meta = Table::new([
        "cc",
        "backend",
        "flows_per_seed",
        "seeds",
        "unfinished",
        "events",
    ]);
    for r in &results {
        meta.row([
            r.cc.clone(),
            r.backend.clone(),
            opts.workload_flows().to_string(),
            r.seeds.len().to_string(),
            format!("{:?}", r.unfinished),
            r.events.to_string(),
        ]);
        // Persist the unified artifact alongside the CSVs.
        let path = opts.out.join(r.artifact_file_name());
        if let Err(e) = r.write_json(&path) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
    emit_table(
        &opts.out,
        &format!("{fig}_meta"),
        &format!("{fig} run metadata"),
        &meta,
    );
}

/// Fig. 14: WebSearch at 50% load on the k=8 fat-tree.
pub fn fig14(opts: &RunOpts) {
    run(Workload::WebSearch, "fig14", opts);
}

/// Fig. 15: FB_Hadoop at 50% load on the k=8 fat-tree.
pub fn fig15(opts: &RunOpts) {
    run(Workload::FbHadoop, "fig15", opts);
}

/// Extension: overall FCT slowdown vs offered load (30/50/70%) — the
/// classic CC sensitivity sweep the paper fixes at 50%.
pub fn load_sweep(opts: &RunOpts) {
    let ccs = [CcKind::Dcqcn, CcKind::Hpcc, CcKind::Fncc];
    let mut t = Table::new(["load", "cc", "avg_slowdown", "p99_slowdown", "unfinished"]);
    for &load in &[0.3f64, 0.5, 0.7] {
        let backend = opts.backend;
        let jobs: Vec<_> = ccs
            .iter()
            .map(|&cc| {
                let mut s = spec(cc, Workload::FbHadoop, opts);
                s.load = load;
                s.k = 4; // pocket fabric keeps the sweep cheap
                let sc = s.scenario();
                move || run_scenario(&sc, backend)
            })
            .collect();
        for r in run_parallel(jobs, opts.threads) {
            let p99max = r.slowdowns.iter().map(|b| b.p99).fold(0.0f64, f64::max);
            t.row([
                format!("{:.0}%", load * 100.0),
                r.cc.clone(),
                f2(r.mean_slowdown().unwrap_or(f64::NAN)),
                f2(p99max),
                format!("{:?}", r.unfinished),
            ]);
        }
    }
    emit_table(
        &opts.out,
        "ablation_load_sweep",
        "Extension — FCT slowdown vs offered load",
        &t,
    );
}
