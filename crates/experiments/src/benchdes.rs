//! `fncc-repro bench-des` / `bench-hybrid` — engine throughput harnesses.
//!
//! `bench-des` runs the fat-tree workload benchmark points on the packet
//! backend and writes `BENCH_des.json` (events/sec, wall time, peak
//! event-queue length, heap allocations from the counting allocator), so
//! the engine's perf trajectory is recorded run over run. `--quick`
//! shrinks to the CI smoke point; `--full` adds the binary-heap reference
//! scheduler for a wheel-vs-heap comparison on identical work.
//! `--threads N` appends a core-scaling series: the headline point on the
//! sharded runtime at 1, 2, 4, … up to N workers (reports byte-identical
//! at every width, so the series isolates pure synchronization cost).
//!
//! `bench-hybrid` sweeps the co-simulation backend over growing
//! *background* flow populations (a fixed packet-fidelity foreground of
//! the first flows, the rest in the fluid model) and writes
//! `BENCH_hybrid.json` — the scaling story behind the hybrid engine's
//! headline: fleet-scale background at a wall-clock the pure DES only
//! reaches with orders of magnitude fewer flows.

use crate::{RunOpts, Scale};
use fncc_cc::CcKind;
use fncc_core::json::{num_u64, obj, Json};
use fncc_core::{
    run_scenario, run_scenario_traced, ForegroundSpec, PartitionRule, Scenario, SimBackend,
    TopologySpec, TrafficSpec, Workload,
};
use std::time::Instant;

/// Artifact schema identifier.
pub const BENCH_DES_SCHEMA: &str = "fncc.bench_des/v1";

/// One measured benchmark point.
struct Point {
    name: String,
    scheduler: &'static str,
    flows: u32,
    /// Sharded-runtime worker count (0 = legacy single-engine path).
    threads: u32,
    events: u64,
    wall_s: f64,
    events_per_sec: f64,
    peak_queue_len: f64,
    clamped_schedules: f64,
    allocations: u64,
}

fn workload_point(k: u32, flows: u32, cap_ms: u64) -> Scenario {
    let mut sc = Scenario::new(
        format!("bench-des-k{k}-{flows}f"),
        TopologySpec::FatTree { k },
        TrafficSpec::Poisson {
            workload: Workload::WebSearch,
            load: 0.5,
            flows,
        },
        CcKind::Fncc,
    );
    sc.stop = fncc_core::StopCondition::Drain { cap_ms };
    sc.seeds = vec![1];
    sc
}

fn measure(sc: &Scenario, scheduler: &'static str) -> Point {
    std::env::set_var("FNCC_DES_SCHED", scheduler);
    let allocs_before = crate::alloc_count();
    let t0 = Instant::now();
    let report = run_scenario(sc, SimBackend::Packet);
    let wall = t0.elapsed().as_secs_f64();
    let allocations = crate::alloc_count() - allocs_before;
    std::env::remove_var("FNCC_DES_SCHED");
    let flows = match sc.traffic {
        TrafficSpec::Poisson { flows, .. } => flows,
        _ => 0,
    };
    Point {
        name: sc.name.clone(),
        scheduler,
        flows,
        threads: sc.threads,
        events: report.events,
        wall_s: wall,
        events_per_sec: report.events as f64 / wall.max(1e-9),
        peak_queue_len: report.scalar("peak_queue_len").unwrap_or(0.0),
        clamped_schedules: report.scalar("clamped_schedules").unwrap_or(0.0),
        allocations,
    }
}

/// Run the benchmark points and write `BENCH_des.json` under `opts.out`.
pub fn bench_des(opts: &RunOpts) {
    let points: Vec<Scenario> = match opts.scale {
        // CI smoke: one reduced point, seconds-long.
        Scale::Quick => vec![workload_point(4, 400, 200)],
        // The headline point: the fat-tree workload at 10⁴ flows.
        Scale::Default => vec![
            workload_point(8, 2_000, 200),
            workload_point(8, 10_000, 200),
        ],
        Scale::Full => vec![
            workload_point(8, 2_000, 200),
            workload_point(8, 10_000, 200),
            workload_point(8, 30_000, 200),
        ],
    };
    let schedulers: &[&'static str] = match opts.scale {
        // Full mode measures the reference heap on identical work too.
        Scale::Full => &["wheel", "heap"],
        _ => &["wheel"],
    };

    let mut measured = Vec::new();
    for sc in &points {
        for sched in schedulers {
            let p = measure(sc, sched);
            println!(
                "[bench-des] {} [{}]: {} events in {:.1}s = {:.2}M events/s \
                 (peak queue {}, {} allocs)",
                p.name,
                p.scheduler,
                p.events,
                p.wall_s,
                p.events_per_sec / 1e6,
                p.peak_queue_len,
                p.allocations,
            );
            measured.push(p);
        }
    }

    // Core-scaling series (`--threads N`): the headline point re-run on
    // the sharded runtime at 1, 2, 4, … workers up to N. The threads=1
    // sharded run doubles as the overhead baseline against the legacy
    // measurement of the same point (identical reports, so events match).
    if let Some(max_t) = opts.sim_threads {
        let base = points.last().expect("bench-des has at least one point");
        let mut ladder: Vec<u32> = [1u32, 2, 4, 8, 16]
            .into_iter()
            .filter(|&t| t < max_t.max(1))
            .collect();
        ladder.push(max_t.max(1));
        let mut one_thread_eps = None;
        for t in ladder {
            let mut sc = base.clone();
            sc.name = format!("{}-t{t}", base.name);
            sc.threads = t;
            let p = measure(&sc, "wheel");
            let speedup = one_thread_eps.map(|base: f64| p.events_per_sec / base);
            one_thread_eps.get_or_insert(p.events_per_sec);
            println!(
                "[bench-des] {} [wheel, {t} threads]: {} events in {:.1}s = \
                 {:.2}M events/s{}",
                p.name,
                p.events,
                p.wall_s,
                p.events_per_sec / 1e6,
                speedup.map_or(String::new(), |s| format!(" ({s:.2}x vs 1 thread)")),
            );
            measured.push(p);
        }
    }

    // Flight-recorder cost check: re-run the first point with the trace
    // sink armed and record the throughput delta against the untraced
    // measurement of the same point, so the recorder's price is tracked
    // run over run next to the engine's own trajectory.
    let mut traced_sc = points[0].clone();
    traced_sc.probes.trace = true;
    let trace_path = opts.out.join("bench-des.trace.jsonl");
    if let Some(dir) = trace_path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::env::set_var("FNCC_DES_SCHED", "wheel");
    let t0 = Instant::now();
    let traced_report = run_scenario_traced(&traced_sc, SimBackend::Packet, Some(&trace_path));
    let traced_wall = t0.elapsed().as_secs_f64();
    std::env::remove_var("FNCC_DES_SCHED");
    let traced_eps = traced_report.events as f64 / traced_wall.max(1e-9);
    let base_eps = measured[0].events_per_sec;
    let overhead_pct = (base_eps - traced_eps) / base_eps.max(1e-9) * 100.0;
    println!(
        "[bench-des] {} [wheel+trace]: {:.2}M events/s ({overhead_pct:+.1}% vs untraced)",
        traced_sc.name,
        traced_eps / 1e6,
    );

    let artifact = obj([
        ("schema", Json::Str(BENCH_DES_SCHEMA.into())),
        (
            "points",
            Json::Arr(
                measured
                    .iter()
                    .map(|p| {
                        obj([
                            ("name", Json::Str(p.name.clone())),
                            ("scheduler", Json::Str(p.scheduler.into())),
                            ("flows", Json::Num(p.flows as f64)),
                            ("threads", Json::Num(p.threads as f64)),
                            ("events", num_u64(p.events)),
                            ("wall_s", Json::Num(p.wall_s)),
                            ("events_per_sec", Json::Num(p.events_per_sec)),
                            ("peak_queue_len", Json::Num(p.peak_queue_len)),
                            ("clamped_schedules", Json::Num(p.clamped_schedules)),
                            ("allocations", num_u64(p.allocations)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "trace",
            obj([
                ("point", Json::Str(traced_sc.name.clone())),
                ("events_per_sec_traced", Json::Num(traced_eps)),
                ("overhead_pct", Json::Num(overhead_pct)),
            ]),
        ),
    ]);
    let path = opts.out.join("BENCH_des.json");
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, artifact.to_string_pretty()) {
        Ok(()) => println!("[json] {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// Artifact schema identifier for the hybrid scaling sweep.
pub const BENCH_HYBRID_SCHEMA: &str = "fncc.bench_hybrid/v1";

/// Foreground size of every hybrid benchmark point: the first flows by id
/// run at packet fidelity, everything behind them is fluid background.
const HYBRID_FG_FLOWS: u32 = 64;

fn hybrid_point(k: u32, flows: u32, cap_ms: u64) -> Scenario {
    let mut sc = workload_point(k, flows, cap_ms);
    sc.name = format!("bench-hybrid-k{k}-{flows}f");
    sc.foreground = Some(ForegroundSpec {
        rules: vec![PartitionRule::FirstFlows { n: HYBRID_FG_FLOWS }],
    });
    sc
}

/// Run the hybrid co-simulation scaling sweep and write
/// `BENCH_hybrid.json` under `opts.out`.
pub fn bench_hybrid(opts: &RunOpts) {
    let points: Vec<Scenario> = match opts.scale {
        // CI smoke: small fabric, 10⁴ background flows, seconds-long.
        Scale::Quick => vec![hybrid_point(4, 10_000, 200)],
        // The acceptance point: 10⁶ background flows on the paper fabric.
        Scale::Default => vec![
            hybrid_point(8, 100_000, 200),
            hybrid_point(8, 1_000_000, 200),
        ],
        Scale::Full => vec![
            hybrid_point(8, 10_000, 200),
            hybrid_point(8, 100_000, 200),
            hybrid_point(8, 1_000_000, 200),
        ],
    };

    let mut rows = Vec::new();
    for sc in &points {
        let allocs_before = crate::alloc_count();
        let t0 = Instant::now();
        let report = run_scenario(sc, SimBackend::Hybrid);
        let wall = t0.elapsed().as_secs_f64();
        let allocations = crate::alloc_count() - allocs_before;
        let flows = match sc.traffic {
            TrafficSpec::Poisson { flows, .. } => flows,
            _ => 0,
        };
        let syncs = report.scalar("hybrid_syncs").unwrap_or(0.0);
        println!(
            "[bench-hybrid] {}: {} flows ({} fg) in {:.1}s — {} events, \
             {syncs} syncs, {:.0} flows/s",
            report.scenario,
            flows,
            HYBRID_FG_FLOWS,
            wall,
            report.events,
            flows as f64 / wall.max(1e-9),
        );
        rows.push(obj([
            ("name", Json::Str(sc.name.clone())),
            ("flows", Json::Num(flows as f64)),
            ("foreground_flows", Json::Num(HYBRID_FG_FLOWS as f64)),
            ("events", num_u64(report.events)),
            ("wall_s", Json::Num(wall)),
            ("flows_per_sec", Json::Num(flows as f64 / wall.max(1e-9))),
            ("hybrid_syncs", Json::Num(syncs)),
            (
                "hybrid_reservations",
                Json::Num(report.scalar("hybrid_reservations").unwrap_or(0.0)),
            ),
            (
                "hybrid_residual_pushes",
                Json::Num(report.scalar("hybrid_residual_pushes").unwrap_or(0.0)),
            ),
            (
                "hybrid_backlog_pushes",
                Json::Num(report.scalar("hybrid_backlog_pushes").unwrap_or(0.0)),
            ),
            (
                "single_bottleneck_solves",
                Json::Num(report.scalar("single_bottleneck_solves").unwrap_or(0.0)),
            ),
            (
                "peak_bg_active",
                Json::Num(report.scalar("peak_bg_active").unwrap_or(0.0)),
            ),
            (
                "mean_slowdown",
                Json::Num(report.scalar("mean_slowdown").unwrap_or(0.0)),
            ),
            ("allocations", num_u64(allocations)),
        ]));
    }

    let artifact = obj([
        ("schema", Json::Str(BENCH_HYBRID_SCHEMA.into())),
        ("points", Json::Arr(rows)),
    ]);
    let path = opts.out.join("BENCH_hybrid.json");
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, artifact.to_string_pretty()) {
        Ok(()) => println!("[json] {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
