//! `fncc-experiments` — regeneration of every table and figure in the FNCC
//! paper's evaluation (§2 and §5).
//!
//! Each `fig*` function runs the corresponding scenario(s) from
//! [`fncc_core::scenarios`], prints the same rows/series the paper reports,
//! and writes CSV files under the output directory. The `fncc-repro` binary
//! dispatches to them; see `DESIGN.md` for the experiment index.

pub mod ablation;
pub mod benchdes;
pub mod calibrate;
pub mod figs;
pub mod inspect;
pub mod report;
pub mod scorecard;
pub mod workload_figs;

use fncc_core::SimBackend;
use std::alloc::{GlobalAlloc, Layout, System};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A counting wrapper around the system allocator: one relaxed increment
/// per allocation, so `bench-des` can report allocation counts. The
/// overhead is unmeasurable next to the allocation itself. Registered as
/// `#[global_allocator]` by the `fncc-repro` binary only — library
/// consumers (e.g. the criterion benches) keep the plain system
/// allocator, and `alloc_count` simply stays at 0 there.
pub struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates to `System` verbatim; only adds a relaxed counter.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Heap allocations (including reallocs) since process start (0 unless
/// [`CountingAlloc`] is installed as the global allocator).
pub fn alloc_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Global run options shared by all experiments.
#[derive(Clone, Debug)]
pub struct RunOpts {
    /// Output directory for CSV files.
    pub out: PathBuf,
    /// Scale factor: `quick` shrinks horizons/flow counts for smoke runs,
    /// `full` restores paper scale.
    pub scale: Scale,
    /// Worker threads for multi-run experiments.
    pub threads: usize,
    /// Explicit `--threads` value, when given. `run` forwards it to the
    /// packet backend's sharded DES runtime (`Scenario::threads`), and
    /// `bench-des` adds a core-scaling series at this worker count.
    /// `None` (no flag) keeps every scenario on the legacy single-engine
    /// path.
    pub sim_threads: Option<u32>,
    /// Override the number of seeds for Figs. 14/15.
    pub seeds: Option<u32>,
    /// Override the flows-per-seed for Figs. 14/15.
    pub flows: Option<u32>,
    /// Engine for the workload experiments (`--backend fluid` swaps the
    /// packet DES for the flow-level fast path — same flow sets, so tables
    /// stay comparable).
    pub backend: SimBackend,
    /// Arm the flight recorder on `run` scenarios (`--trace`): the first
    /// seed's event stream lands in a `*.trace.jsonl` artifact next to the
    /// report.
    pub trace: bool,
}

/// Experiment scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-long smoke test.
    Quick,
    /// Minutes-long default (shape-faithful).
    Default,
    /// Paper-scale (5 seeds × 2000 flows on the fat-tree).
    Full,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            out: PathBuf::from("results"),
            scale: Scale::Default,
            threads: fncc_core::sweep::default_threads(),
            sim_threads: None,
            seeds: None,
            flows: None,
            backend: SimBackend::Packet,
            trace: false,
        }
    }
}

impl RunOpts {
    /// Workload seeds for Figs. 14/15 under the current scale.
    pub fn workload_seeds(&self) -> Vec<u64> {
        let n = self.seeds.unwrap_or(match self.scale {
            Scale::Quick => 1,
            Scale::Default => 2,
            Scale::Full => 5,
        });
        (1..=n as u64).collect()
    }

    /// Flows per seed for Figs. 14/15 under the current scale.
    pub fn workload_flows(&self) -> u32 {
        self.flows.unwrap_or(match self.scale {
            Scale::Quick => 60,
            Scale::Default => 400,
            Scale::Full => 2000,
        })
    }

    /// Microbenchmark horizon (µs).
    pub fn micro_horizon_us(&self) -> u64 {
        match self.scale {
            Scale::Quick => 600,
            _ => 1200,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_controls_workload_size() {
        let quick = RunOpts {
            scale: Scale::Quick,
            ..Default::default()
        };
        assert_eq!(quick.workload_seeds(), vec![1]);
        assert_eq!(quick.workload_flows(), 60);
        let full = RunOpts {
            scale: Scale::Full,
            ..Default::default()
        };
        assert_eq!(full.workload_seeds().len(), 5);
        assert_eq!(full.workload_flows(), 2000);
    }

    #[test]
    fn overrides_beat_scale() {
        let o = RunOpts {
            scale: Scale::Full,
            seeds: Some(3),
            flows: Some(123),
            ..Default::default()
        };
        assert_eq!(o.workload_seeds(), vec![1, 2, 3]);
        assert_eq!(o.workload_flows(), 123);
    }

    #[test]
    fn horizons_by_scale() {
        assert_eq!(RunOpts::default().micro_horizon_us(), 1200);
        let quick = RunOpts {
            scale: Scale::Quick,
            ..Default::default()
        };
        assert_eq!(quick.micro_horizon_us(), 600);
    }
}
