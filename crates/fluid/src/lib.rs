#![warn(missing_docs)]
//! `fncc-fluid` — a flow-level (fluid) fast-path simulation backend.
//!
//! The packet DES backend (`fncc-des` + `fncc-net` + `fncc-transport`)
//! models every frame, ACK and PFC pause; that fidelity costs ~10⁶ events
//! per simulated millisecond and caps runs at a few hundred flows. This
//! crate trades per-packet effects for scale, the standard move in
//! flow-level CC studies (max-min fair-share models in Zeng's inter-DC CC
//! survey, FairQ's fairness analysis): time advances directly between flow
//! arrival/completion events, and between events every active flow drains
//! at its *water-filling max-min fair share* of the network, computed over
//! the same [`fncc_net::topology::Topology`] and ECMP routing the packet
//! backend uses.
//!
//! Congestion-control schemes enter through [`RateModel`] steady-state
//! hooks (sustained utilization η + convergence lag in RTTs), so
//! FNCC/HPCC/DCQCN comparisons remain meaningful at a million flows.
//! The backend's FCT slowdowns are pinned against the packet DES on small
//! shared scenarios by the cross-validation suite in the workspace's
//! `tests/` directory.
//!
//! ## Quickstart
//!
//! ```
//! use fncc_fluid::{FluidSim, RateModel, scenarios};
//! use fncc_net::topology::Topology;
//! use fncc_net::units::Bandwidth;
//! use fncc_des::time::TimeDelta;
//! use fncc_cc::CcKind;
//!
//! let topo = Topology::fat_tree(4, Bandwidth::gbps(100), TimeDelta::from_ns(1500));
//! let flows = scenarios::permutation_waves(topo.n_hosts, 1_000_000, 10,
//!                                          TimeDelta::from_us(100), 1);
//! let result = FluidSim::new(topo.clone(), RateModel::paper_default(CcKind::Fncc))
//!     .flows(flows)
//!     .run()
//!     .expect("no zero-capacity links");
//! assert!(result.telemetry.all_flows_finished());
//! println!("mean slowdown: {:.2}", result.mean_slowdown(&topo, Default::default()));
//! ```

pub mod coupler;
pub mod link;
pub mod maxmin;
pub mod model;
pub mod scenarios;
pub mod sim;

pub use coupler::BackgroundFluid;
pub use link::LinkMap;
pub use maxmin::{
    find_non_pareto_flow, water_fill, worst_oversubscription, Demand, Rebalance, WaterFiller,
};
pub use model::{Calibration, CalibrationSet, DurationEta, RateModel};
pub use scenarios::Trace;
pub use sim::{CapacityChange, CapacityEvent, FluidError, FluidResult, FluidSim, Framing};
