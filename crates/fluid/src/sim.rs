//! The fluid event loop: advance time between flow arrivals/completions,
//! re-solving the max-min allocation at every active-set change.
//!
//! Between consecutive events every active flow drains at its allocated
//! rate, so the simulator's cost is `O(events · allocation)` regardless of
//! flow sizes or link speeds — the property that lets it run millions of
//! flows where the packet DES backend tops out at hundreds.
//!
//! FCT composition: a flow's completion time is
//!
//! ```text
//! finish = t_drained(wire bytes at allocated rates)
//!        + pipeline floor (first-frame store-and-forward latency)
//!        + queue_rtts · base_rtt · contention    (see RateModel)
//! ```
//!
//! where `contention = 1 − mean_rate / (η · path line rate)` measures how
//! much of its lifetime the flow spent sharing its path: an uncontended
//! flow drains at the scheme's full rate (contention 0, no queue to sit
//! behind), a flow halved by an elephant pays half the scheme's standing
//! queue. An uncontended flow under an ideal scheme scores a slowdown of
//! exactly 1.0 against [`Topology::ideal_fct`].

use crate::link::LinkMap;
use crate::maxmin::{Rebalance, WaterFiller};
use crate::model::RateModel;
use fncc_des::time::SimTime;
use fncc_net::config::FabricConfig;
use fncc_net::ids::{HostId, NodeRef, SwitchId};
use fncc_net::routing::{egress_avoiding, flow_hash};
use fncc_net::telemetry::{FlowRecord, Telemetry};
use fncc_net::topology::Topology;
use fncc_obs::{Profiler, TraceEvent, TraceSink};
use fncc_transport::FlowSpec;

/// A scheduled change to one switch egress link — the fluid lowering of a
/// scenario fault. `Down`/`Up` fail and restore the physical link (both
/// directions; crossing flows reroute over the surviving ECMP paths exactly
/// as the packet engine's recompiled tables would steer them); `Scale`
/// multiplies the named egress direction's capacity (a degraded link, or
/// random loss modeled as its goodput haircut).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CapacityEvent {
    /// When the change takes effect.
    pub at: SimTime,
    /// Switch owning the egress.
    pub switch: SwitchId,
    /// Egress port index.
    pub port: u8,
    /// What happens.
    pub change: CapacityChange,
}

/// The kind of capacity change a [`CapacityEvent`] applies.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CapacityChange {
    /// Link fails: both directions die, crossing flows reroute (or stall
    /// until [`CapacityChange::Up`] when the failure severs their
    /// destination).
    Down,
    /// Link restored: routing reverts to the pristine tables, rerouted
    /// flows move back.
    Up,
    /// Multiply the egress capacity by this factor (a fault window's end is
    /// lowered as the reciprocal, so overlapping faults compose).
    Scale(f64),
}

/// Fabric framing parameters the fluid model needs. The default derives
/// from [`FabricConfig::paper_default`], so the two backends can never
/// silently disagree on wire-byte accounting.
#[derive(Clone, Copy, Debug)]
pub struct Framing {
    /// Payload bytes per full-size frame.
    pub mtu_payload: u32,
    /// Per-frame header overhead in bytes.
    pub header: u32,
    /// ACK frame size (the return leg of the base-RTT computation).
    pub ack_bytes: u32,
}

impl Default for Framing {
    fn default() -> Self {
        Framing::from(&FabricConfig::paper_default())
    }
}

impl From<&FabricConfig> for Framing {
    fn from(cfg: &FabricConfig) -> Self {
        Framing {
            mtu_payload: cfg.mtu_payload(),
            header: cfg.data_header,
            ack_bytes: cfg.ack_base,
        }
    }
}

impl Framing {
    /// Full frame size on the wire (payload + headers) — what the
    /// queue-delay model's base RTT must be computed from.
    #[inline]
    pub fn mtu(&self) -> u32 {
        self.mtu_payload + self.header
    }

    /// Bytes on the wire for `size` application bytes.
    #[inline]
    pub fn wire_bytes(&self, size: u64) -> u64 {
        let npkts = size.div_ceil(self.mtu_payload as u64).max(1);
        size + npkts * self.header as u64
    }
}

/// A fluid run failed in a way that would otherwise corrupt the clock:
/// a zero-capacity link (or a flow allocated a zero rate over one) can
/// never drain, which would silently drive the event loop to `t = ∞`/NaN.
#[derive(Clone, Debug, PartialEq)]
pub struct FluidError {
    /// The flow that could not make progress, when one is identifiable.
    pub flow: Option<fncc_net::ids::FlowId>,
    /// Human-readable diagnosis.
    pub message: String,
}

impl std::fmt::Display for FluidError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fluid simulation stalled: {}", self.message)
    }
}

impl std::error::Error for FluidError {}

/// RTTs of continuous bottleneck saturation before a scheme's standing
/// queue is fully built (the `queue_rtts` penalty ramps linearly up to
/// this). Matches the packet backend's observed queue ramp on the elephant
/// microbenchmark (~tens of µs at a ~13 µs RTT).
pub(crate) const QUEUE_BUILD_RTTS: f64 = 4.0;

/// One live flow's drain state, indexed by its allocator slot. Rates are
/// piecewise constant between rebalances, so the loop only materializes a
/// flow's remaining bits when its rate changes or it retires; everything
/// else is pure projection from `(last_sync, remaining, rate)`.
#[derive(Clone, Default)]
pub(crate) struct SlotState {
    /// Index into the sorted spec array.
    pub(crate) spec_ix: u32,
    /// Wire bits left at `last_sync`.
    pub(crate) remaining_bits: f64,
    /// Total wire bits (for the mean-rate contention estimate).
    pub(crate) wire_bits: f64,
    /// Pipeline floor (first-frame store-and-forward latency), seconds.
    pub(crate) floor: f64,
    /// η-scaled path line rate — the rate an uncontended flow of this
    /// scheme would drain at (bits/s).
    pub(crate) fair_line: f64,
    /// Drain start (arrival) time, seconds.
    pub(crate) t_start: f64,
    /// Instant the drain state was last materialized, seconds.
    pub(crate) last_sync: f64,
    /// Allocated rate in effect since `last_sync` (bits/s).
    pub(crate) rate: f64,
    /// Longest closed segment (seconds) over which the flow held one
    /// *constant* contended rate (below `CONTENDED_FRAC · fair_line`).
    /// Feeds the duration→η hook: the oscillation regime needs a stable
    /// equilibrium against a persistent competitor set, and every
    /// re-allocation (a competitor arriving or leaving) resets the
    /// controller's ringing — so the hook keys on the longest contended
    /// constant-rate stretch, not total drain time.
    pub(crate) max_cont: f64,
}

/// A slot counts as contended (for duration→η episode tracking) while its
/// allocated rate sits below this fraction of its uncontended drain rate.
pub(crate) const CONTENDED_FRAC: f64 = 0.95;

/// The request path of `(src → dst, flow)` avoiding dead switch egress
/// ports, as dense link ids into `out`. Each hop resolves through
/// [`egress_avoiding`], so the surviving-ECMP choice is bit-identical to
/// the packet engine's recompiled tables. `None` when the dead set severs
/// the destination (`out` is then unspecified).
pub(crate) fn path_avoiding(
    topo: &Topology,
    links: &LinkMap,
    dead: &[Vec<bool>],
    src: HostId,
    dst: HostId,
    flow: fncc_net::ids::FlowId,
    out: &mut Vec<u32>,
) -> Option<()> {
    out.clear();
    let h = flow_hash(src, dst, flow);
    out.push(links.id_of(NodeRef::Host(src), 0));
    let mut cur = topo.host_ports[src.ix()].peer;
    let mut hops = 0;
    loop {
        hops += 1;
        assert!(hops < 64, "routing loop tracing {src:?}->{dst:?}");
        match cur {
            NodeRef::Host(hh) => {
                debug_assert_eq!(hh, dst, "path reached wrong host");
                return Some(());
            }
            NodeRef::Switch(s) => {
                let sw = &topo.switches[s.ix()];
                let d = &dead[s.ix()];
                let port = egress_avoiding(&sw.route, dst, h, |p| {
                    d.get(p as usize).copied().unwrap_or(false)
                })?;
                out.push(links.id_of(cur, port));
                cur = sw.ports[port as usize].peer;
            }
        }
    }
}

/// Re-walk every live flow's route under the current dead set at a link
/// Down/Up boundary: flows whose surviving path changed move (their drain
/// state materialized at `t`, rate reassigned by the next rebalance),
/// severed flows park in `stalled` with their remaining bits frozen, and
/// stalled flows whose destination became reachable again rejoin.
#[allow(clippy::too_many_arguments)]
pub(crate) fn repath_flows(
    topo: &Topology,
    links: &LinkMap,
    dead: &[Vec<bool>],
    specs: &[FlowSpec],
    filler: &mut WaterFiller,
    slots: &mut Vec<SlotState>,
    active: &mut Vec<u32>,
    stalled: &mut Vec<SlotState>,
    telemetry: &mut Telemetry,
    t: f64,
) {
    let mut path_buf: Vec<u32> = Vec::new();
    let mut i = active.len();
    while i > 0 {
        i -= 1;
        let slot = active[i] as usize;
        let spec = &specs[slots[slot].spec_ix as usize];
        let reachable = path_avoiding(
            topo,
            links,
            dead,
            spec.src,
            spec.dst,
            spec.id,
            &mut path_buf,
        )
        .is_some();
        if reachable && path_buf.as_slice() == filler.path(slot as u32) {
            continue;
        }
        // Materialize the drain state before the rate changes hands.
        let mut st = slots[slot].clone();
        if st.rate > 0.0 {
            st.remaining_bits -= st.rate * (t - st.last_sync);
            if st.rate < st.fair_line * CONTENDED_FRAC {
                st.max_cont = st.max_cont.max(t - st.last_sync);
            }
        }
        st.last_sync = t;
        st.rate = 0.0;
        filler.remove_flow(slot as u32);
        if reachable {
            telemetry.note_rerouted(spec.id);
            let new_slot = filler.add_flow(&path_buf) as usize;
            if new_slot >= slots.len() {
                slots.resize(new_slot + 1, SlotState::default());
            }
            slots[new_slot] = st;
            active[i] = new_slot as u32;
        } else {
            active.swap_remove(i);
            stalled.push(st);
        }
    }
    let mut i = stalled.len();
    while i > 0 {
        i -= 1;
        let spec = &specs[stalled[i].spec_ix as usize];
        if path_avoiding(
            topo,
            links,
            dead,
            spec.src,
            spec.dst,
            spec.id,
            &mut path_buf,
        )
        .is_some()
        {
            let mut st = stalled.swap_remove(i);
            st.last_sync = t;
            st.rate = 0.0;
            let slot = filler.add_flow(&path_buf) as usize;
            if slot >= slots.len() {
                slots.resize(slot + 1, SlotState::default());
            }
            slots[slot] = st;
            active.push(slot as u32);
        }
    }
}

/// Result of a fluid run.
pub struct FluidResult {
    /// Per-flow lifetime records (compatible with the packet backend's
    /// telemetry, so `fncc_core::metrics::fct_slowdowns` applies directly).
    pub telemetry: Telemetry,
    /// Max-min re-allocations performed (the event count).
    pub reallocations: u64,
    /// Peak number of concurrently active flows.
    pub peak_active: usize,
    /// Simulated instant the last flow completed.
    pub horizon: SimTime,
    /// Re-allocations that fell back to a from-scratch solve.
    pub full_solves: u64,
    /// Re-allocations served by the warm-started incremental path.
    pub incremental_solves: u64,
    /// Total per-flow rate writes across all re-allocations — the work
    /// the warm start actually did (`rate_updates / reallocations` is the
    /// mean residual size; a from-scratch loop would write
    /// `Σ active-set sizes`).
    pub rate_updates: u64,
    /// Wall-clock spans over the solver (populated only when `FNCC_PROFILE`
    /// is set; empty otherwise so reports stay deterministic).
    pub profiler: Profiler,
}

impl FluidResult {
    /// Mean FCT slowdown (actual / contention-free ideal) over finished
    /// flows, the cross-backend comparison metric.
    pub fn mean_slowdown(&self, topo: &Topology, framing: Framing) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for rec in self.telemetry.flow_records() {
            let Some(fct) = rec.fct() else { continue };
            let ideal = topo.ideal_fct(
                rec.src,
                rec.dst,
                rec.flow,
                rec.size,
                framing.mtu_payload,
                framing.header,
            );
            sum += (fct.as_secs_f64() / ideal.as_secs_f64().max(f64::MIN_POSITIVE)).max(1.0);
            n += 1;
        }
        if n == 0 {
            f64::NAN
        } else {
            sum / n as f64
        }
    }
}

/// Flow-level simulator over a [`Topology`] under a [`RateModel`].
pub struct FluidSim {
    topo: Topology,
    links: LinkMap,
    model: RateModel,
    framing: Framing,
    flows: Vec<FlowSpec>,
    faults: Vec<CapacityEvent>,
    trace: bool,
}

impl FluidSim {
    /// A fluid simulation of `model` over `topo`.
    pub fn new(topo: Topology, model: RateModel) -> Self {
        let links = LinkMap::new(&topo);
        FluidSim {
            topo,
            links,
            model,
            framing: Framing::default(),
            flows: Vec::new(),
            faults: Vec::new(),
            trace: false,
        }
    }

    /// Schedule link-fault capacity events (sorted internally by time).
    pub fn capacity_events(mut self, events: impl IntoIterator<Item = CapacityEvent>) -> Self {
        self.faults.extend(events);
        self.faults.sort_by_key(|e| e.at);
        self
    }

    /// Override framing parameters (defaults match the packet backend).
    pub fn framing(mut self, framing: Framing) -> Self {
        self.framing = framing;
        self
    }

    /// Arm the flight-recorder trace sink: solver begin/end, flow add/remove
    /// events land in the result telemetry's [`TraceSink`].
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Add flows.
    pub fn flows(mut self, flows: impl IntoIterator<Item = FlowSpec>) -> Self {
        self.flows.extend(flows);
        self
    }

    /// The network description.
    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// Framing in effect.
    pub fn framing_params(&self) -> Framing {
        self.framing
    }

    /// Run every flow to completion and return the records.
    ///
    /// Errors when an active flow is allocated a zero rate (a
    /// zero-capacity link in a hand-written scenario): such a flow can
    /// never finish and would otherwise silently drive the clock to
    /// infinity.
    pub fn run(mut self) -> Result<FluidResult, FluidError> {
        // Effective capacities: the scheme sustains η of each link.
        let eta = self.model.utilization;
        let capacity: Vec<f64> = self.links.capacities().iter().map(|&c| c * eta).collect();

        // A zero-capacity link can never drain a flow: reject it up front
        // with a real error rather than letting the event loop (or the
        // topology's serialization-time arithmetic) run off the rails.
        if !self.flows.is_empty() {
            if let Some(l) = capacity.iter().position(|&c| c <= 0.0) {
                return Err(FluidError {
                    flow: None,
                    message: format!(
                        "link {l} has zero capacity; no flow crossing it can ever \
                         finish (zero-bandwidth link in a hand-written scenario?)"
                    ),
                });
            }
        }

        // Scheme standing-queue delay in seconds (0 when there are no
        // flows), from the *configured* framing — an MTU override changes
        // the base RTT the queue-delay model is denominated in.
        let base_rtt = if self.flows.is_empty() {
            0.0
        } else {
            self.topo
                .base_rtt(self.framing.mtu(), self.framing.ack_bytes)
                .as_secs_f64()
        };
        let queue_delay = self.model.queue_rtts * base_rtt;

        self.flows.sort_by_key(|f| f.start);
        let specs = std::mem::take(&mut self.flows);
        let fevents = std::mem::take(&mut self.faults);

        let mut telemetry = Telemetry::new();
        if self.trace {
            telemetry.trace = TraceSink::with_capacity(TraceSink::DEFAULT_CAPACITY);
        }
        let h_resolve = telemetry.metrics.histogram("resolve_set_size");
        let mut profiler = Profiler::from_env();
        let ph_solve = profiler.phase("fluid_solve");
        // Trace timestamps: the fluid clock runs in f64 seconds.
        let to_ps = |secs: f64| (secs * 1e12).round() as u64;
        for f in &specs {
            telemetry.flow_started(FlowRecord {
                flow: f.id,
                src: f.src,
                dst: f.dst,
                size: f.size,
                start: f.start,
                finish: None,
            });
        }

        let mut filler = WaterFiller::new(self.links.len());
        filler.begin_incremental(&capacity);
        // Drain state per allocator slot, plus the list of live slots.
        let mut slots: Vec<SlotState> = Vec::new();
        let mut active: Vec<u32> = Vec::new();
        let mut path_buf: Vec<u32> = Vec::new();
        let mut route_buf: Vec<u32> = Vec::new();
        let mut next_arrival = 0usize;
        // Fault state: per-link capacity factor (Scale events compose
        // multiplicatively), per-switch-port dead flags (Down/Up), flows
        // parked because the dead set severs their destination.
        let mut next_fault = 0usize;
        let mut factor: Vec<f64> = vec![1.0; self.links.len()];
        let mut dead: Vec<Vec<bool>> = self
            .topo
            .switches
            .iter()
            .map(|sw| vec![false; sw.ports.len()])
            .collect();
        let mut n_dead = 0usize;
        let mut stalled: Vec<SlotState> = Vec::new();
        let mut t = 0.0f64; // seconds
        let mut reallocations = 0u64;
        let mut rate_updates = 0u64;
        let mut peak_active = 0usize;
        let mut horizon = SimTime::ZERO;
        // Standing-queue state: since when each link has been continuously
        // saturated (NaN = not saturated). Only links the rebalance touched
        // can change state; a link that goes idle re-enters through the
        // allocator's activation hook with a clean history, which also
        // covers whole-network idle gaps.
        let mut sat_since: Vec<f64> = vec![f64::NAN; self.links.len()];

        while next_arrival < specs.len()
            || !active.is_empty()
            || (!stalled.is_empty() && next_fault < fevents.len())
        {
            if active.is_empty() {
                // Jump the clock to the next arrival or fault. The network
                // was idle over the gap, so any standing-queue history is
                // stale. (Stalled flows drain nothing; only a link-up —
                // a fault event — can revive them.)
                let t_arr = if next_arrival < specs.len() {
                    specs[next_arrival].start.as_secs_f64()
                } else {
                    f64::INFINITY
                };
                let t_flt = if next_fault < fevents.len() {
                    fevents[next_fault].at.as_secs_f64()
                } else {
                    f64::INFINITY
                };
                let jump = t_arr.min(t_flt);
                if jump.is_infinite() {
                    break; // only stalled flows remain, nothing can revive them
                }
                t = t.max(jump);
            }
            // Apply every fault event whose time has been reached, then
            // re-walk routes once if any link changed state.
            let mut links_flipped = false;
            while next_fault < fevents.len() && fevents[next_fault].at.as_secs_f64() <= t + 1e-15 {
                let ev = fevents[next_fault];
                next_fault += 1;
                match ev.change {
                    CapacityChange::Scale(f) => {
                        let l = self.links.id_of(NodeRef::Switch(ev.switch), ev.port);
                        factor[l as usize] *= f;
                        // Floor well above zero so the zero-rate guard
                        // stays meaningful: a degraded link is slow, not
                        // dead (Down models dead).
                        let eff = (capacity[l as usize] * factor[l as usize])
                            .max(capacity[l as usize] * 1e-9);
                        filler.set_capacity(l, eff);
                    }
                    CapacityChange::Down | CapacityChange::Up => {
                        let down = matches!(ev.change, CapacityChange::Down);
                        let port = ev.port as usize;
                        let sw = &self.topo.switches[ev.switch.ix()];
                        // A physical link dies whole: fail the reverse
                        // direction through the peer port too, exactly as
                        // the packet fabric does.
                        if dead[ev.switch.ix()][port] != down {
                            dead[ev.switch.ix()][port] = down;
                            n_dead = if down { n_dead + 1 } else { n_dead - 1 };
                        }
                        if let NodeRef::Switch(s2) = sw.ports[port].peer {
                            let p2 = sw.ports[port].peer_port as usize;
                            if dead[s2.ix()][p2] != down {
                                dead[s2.ix()][p2] = down;
                                n_dead = if down { n_dead + 1 } else { n_dead - 1 };
                            }
                        }
                        if telemetry.trace.enabled() {
                            telemetry.trace.record(if down {
                                TraceEvent::LinkDown {
                                    t_ps: to_ps(t),
                                    sw: ev.switch.0,
                                    port: ev.port,
                                }
                            } else {
                                TraceEvent::LinkUp {
                                    t_ps: to_ps(t),
                                    sw: ev.switch.0,
                                    port: ev.port,
                                }
                            });
                        }
                        links_flipped = true;
                    }
                }
            }
            if links_flipped {
                repath_flows(
                    &self.topo,
                    &self.links,
                    &dead,
                    &specs,
                    &mut filler,
                    &mut slots,
                    &mut active,
                    &mut stalled,
                    &mut telemetry,
                    t,
                );
            }
            // Admit every flow whose start time has been reached.
            while next_arrival < specs.len() {
                let s = &specs[next_arrival];
                let start = s.start.as_secs_f64();
                if start > t + 1e-15 {
                    break;
                }
                self.links
                    .path_links_into(&self.topo, s.src, s.dst, s.id, &mut path_buf);
                let wire_bits = self.framing.wire_bytes(s.size) as f64 * 8.0;
                // Pipeline floor: ideal FCT minus pure streaming time at the
                // path bottleneck (what the fluid drain models).
                let ideal = self
                    .topo
                    .ideal_fct(
                        s.src,
                        s.dst,
                        s.id,
                        s.size,
                        self.framing.mtu_payload,
                        self.framing.header,
                    )
                    .as_secs_f64();
                let bottleneck = path_buf
                    .iter()
                    .map(|&l| self.links.capacity(l))
                    .fold(f64::INFINITY, f64::min);
                let floor = (ideal - wire_bits / bottleneck).max(0.0);
                let st = SlotState {
                    spec_ix: next_arrival as u32,
                    remaining_bits: wire_bits,
                    wire_bits,
                    floor,
                    fair_line: bottleneck * eta,
                    t_start: start,
                    last_sync: t,
                    rate: 0.0,
                    max_cont: 0.0,
                };
                if telemetry.trace.enabled() {
                    telemetry.trace.record(TraceEvent::FluidFlowAdd {
                        t_ps: to_ps(t),
                        flow: s.id.0,
                    });
                }
                next_arrival += 1;
                // Under an active fault the pristine path may cross a dead
                // link: reroute over the surviving ECMP members, or park
                // the flow until a link-up reconnects its destination.
                // The n_dead == 0 fast path keeps fault-free runs on the
                // exact pre-fault code path (byte-identical results).
                let route = if n_dead == 0 {
                    &path_buf
                } else if path_avoiding(
                    &self.topo,
                    &self.links,
                    &dead,
                    s.src,
                    s.dst,
                    s.id,
                    &mut route_buf,
                )
                .is_some()
                {
                    if route_buf != path_buf {
                        telemetry.note_rerouted(s.id);
                    }
                    &route_buf
                } else {
                    stalled.push(st);
                    continue;
                };
                let slot = filler.add_flow(route) as usize;
                if slot >= slots.len() {
                    slots.resize(slot + 1, SlotState::default());
                }
                slots[slot] = st;
                active.push(slot as u32);
            }
            peak_active = peak_active.max(active.len());

            // Warm-started re-solve for the changed active set; only flows
            // whose rate moved get their drain state materialized.
            if telemetry.trace.enabled() {
                telemetry.trace.record(TraceEvent::SolveBegin {
                    t_ps: to_ps(t),
                    active: active.len() as u32,
                });
            }
            let full_before = filler.solve_stats().0;
            let span = profiler.begin();
            let outcome = filler.rebalance();
            profiler.end(ph_solve, span);
            if outcome != Rebalance::Noop {
                reallocations += 1;
                rate_updates += filler.changed().len() as u64;
                telemetry
                    .metrics
                    .observe(h_resolve, filler.changed().len() as u64);
            }
            if telemetry.trace.enabled() {
                telemetry.trace.record(TraceEvent::SolveEnd {
                    t_ps: to_ps(t),
                    full: filler.solve_stats().0 > full_before,
                    changed: filler.changed().len() as u32,
                });
            }
            for &slot in filler.changed() {
                let st = &mut slots[slot as usize];
                if st.rate > 0.0 {
                    st.remaining_bits -= st.rate * (t - st.last_sync);
                }
                // Close out the segment [last_sync, t) for contended-
                // episode tracking: the old rate held constant over it.
                if st.rate > 0.0 && st.rate < st.fair_line * CONTENDED_FRAC {
                    st.max_cont = st.max_cont.max(t - st.last_sync);
                }
                st.last_sync = t;
                st.rate = filler.rate(slot);
                if st.rate <= 0.0 {
                    let spec = &specs[st.spec_ix as usize];
                    let choke = filler
                        .path(slot)
                        .iter()
                        .copied()
                        .min_by(|&a, &b| {
                            self.links
                                .capacity(a)
                                .partial_cmp(&self.links.capacity(b))
                                .expect("NaN link capacity")
                        })
                        .map(|l| (l, self.links.capacity(l)));
                    return Err(FluidError {
                        flow: Some(spec.id),
                        message: format!(
                            "flow {:?} ({:?} → {:?}) was allocated a zero rate and can \
                             never finish; narrowest path link {:?} (zero-capacity link \
                             in the scenario?)",
                            spec.id, spec.src, spec.dst, choke
                        ),
                    });
                }
            }

            // Track how long each link has been continuously saturated —
            // the proxy for whether a standing queue had time to build.
            // Links (re)entering service start with no queue history;
            // beyond that, only touched links can change saturation state.
            for &l in filler.activated_links() {
                sat_since[l as usize] = f64::NAN;
            }
            for &l in filler.touched_links() {
                let saturated =
                    filler.link_residual(l) <= 0.01 * capacity[l as usize] * factor[l as usize];
                if !saturated {
                    sat_since[l as usize] = f64::NAN;
                } else if sat_since[l as usize].is_nan() {
                    sat_since[l as usize] = t;
                }
            }

            // Next event: earliest projected completion vs next arrival vs
            // next scheduled fault.
            let t_arr = if next_arrival < specs.len() {
                specs[next_arrival].start.as_secs_f64()
            } else {
                f64::INFINITY
            };
            let t_flt = if next_fault < fevents.len() {
                fevents[next_fault].at.as_secs_f64()
            } else {
                f64::INFINITY
            };
            let mut t_fin = f64::INFINITY;
            for &slot in &active {
                let st = &slots[slot as usize];
                t_fin = t_fin.min(st.last_sync + st.remaining_bits.max(0.0) / st.rate);
            }
            if t_fin.is_infinite() && t_arr.is_infinite() && t_flt.is_infinite() {
                if active.is_empty() {
                    break; // only stalled flows remain, nothing can revive them
                }
                // Unreachable given the zero-rate guard above; defensive.
                let spec = &specs[slots[active[0] as usize].spec_ix as usize];
                return Err(FluidError {
                    flow: Some(spec.id),
                    message: format!(
                        "no active flow can finish and no arrivals remain \
                         (first stuck flow: {:?})",
                        spec.id
                    ),
                });
            }
            t = t_fin.min(t_arr).min(t_flt);
            if t < t_fin {
                continue; // arrival- or fault-only event: nothing can retire yet
            }

            // Retire everything that completed at this instant (tolerance:
            // half a bit — below any meaningful transfer granularity).
            let mut i = active.len();
            while i > 0 {
                i -= 1;
                let slot = active[i];
                let st = &slots[slot as usize];
                let fin = st.last_sync + st.remaining_bits.max(0.0) / st.rate;
                if fin > t + 0.5 / st.rate {
                    continue;
                }
                let spec = &specs[st.spec_ix as usize];
                let mut drain = (t - st.t_start).max(0.0);
                // Contention: how far the flow's lifetime-average rate fell
                // below the scheme's uncontended drain rate on this path.
                // Scales the standing-queue delay so idle-path flows (the
                // common case for mice) pay nothing.
                let mean_rate = if drain > 0.0 {
                    st.wire_bits / drain
                } else {
                    st.fair_line
                };
                let contention = (1.0 - mean_rate / st.fair_line).clamp(0.0, 1.0);
                // Contended-sustained-drain utilization decay (the
                // duration→η hook, Timely only): a drain that shared its
                // bottleneck with a *persistent* competitor set for many
                // RTTs really sustained `effective_eta` of it, not the
                // short-horizon η the shares were computed with. Keyed on
                // the longest contended constant-rate stretch — every
                // re-allocation (workload churn) resets the oscillation
                // and earns no decay. Stretch the recorded drain at retire
                // time — a per-flow FCT correction, like the queue-delay
                // term, so other flows' shares and the event clock are
                // untouched.
                let mut sustained = st.max_cont;
                if st.rate > 0.0 && st.rate < st.fair_line * CONTENDED_FRAC {
                    sustained = sustained.max(t - st.last_sync);
                }
                // Gate on the episode covering (nearly) the whole drain:
                // only flows contended from birth to death — synchronized
                // incast-style drains — ring; a flow that spent part of
                // its life uncontended keeps re-anchoring to the
                // short-horizon utilization (ramp from 80% coverage).
                let birth = if drain > 0.0 {
                    ((sustained / drain - 0.8) / 0.2).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                let eta_hook = self.model.effective_eta(sustained, base_rtt, contention);
                let eta_eff = eta + (eta_hook - eta) * birth;
                if eta_eff < eta {
                    drain *= eta / eta_eff;
                }
                // Queue build-up: the deepest standing queue on the path,
                // as the fraction of QUEUE_BUILD_RTTS the bottleneck has
                // been continuously saturated. Transient sharing (mice
                // colliding for microseconds) builds no queue; an elephant
                // holding a link saturated for many RTTs builds the
                // scheme's full standing queue.
                let mut sat_dur = 0.0f64;
                for &l in filler.path(slot) {
                    let since = sat_since[l as usize];
                    if !since.is_nan() {
                        sat_dur = sat_dur.max(t - since);
                    }
                }
                let buildup = if base_rtt > 0.0 {
                    (sat_dur / (QUEUE_BUILD_RTTS * base_rtt)).min(1.0)
                } else {
                    0.0
                };
                let fct_secs = drain + st.floor + queue_delay * contention * buildup;
                let finish = spec.start
                    + fncc_des::time::TimeDelta::from_secs_f64(fct_secs.max(f64::MIN_POSITIVE));
                telemetry.flow_finished(spec.id, finish);
                if finish > horizon {
                    horizon = finish;
                }
                if telemetry.trace.enabled() {
                    telemetry.trace.record(TraceEvent::FluidFlowRemove {
                        t_ps: to_ps(t),
                        flow: spec.id.0,
                    });
                }
                filler.remove_flow(slot);
                active.swap_remove(i);
            }
        }

        let (full_solves, incremental_solves) = filler.solve_stats();
        Ok(FluidResult {
            telemetry,
            reallocations,
            peak_active,
            horizon,
            full_solves,
            incremental_solves,
            rate_updates,
            profiler,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fncc_cc::CcKind;
    use fncc_des::time::TimeDelta;
    use fncc_net::ids::{FlowId, HostId};
    use fncc_net::units::Bandwidth;

    const BW: Bandwidth = Bandwidth::gbps(100);
    const PROP: TimeDelta = TimeDelta::from_ns(1500);

    fn flow(id: u32, src: u32, dst: u32, size: u64, start_us: u64) -> FlowSpec {
        FlowSpec {
            id: FlowId(id),
            src: HostId(src),
            dst: HostId(dst),
            size,
            start: SimTime::from_us(start_us),
        }
    }

    #[test]
    fn uncontended_flow_has_unit_slowdown_under_ideal_model() {
        let topo = Topology::dumbbell(2, 3, BW, PROP);
        let r = FluidSim::new(topo.clone(), RateModel::ideal())
            .flows([flow(0, 0, 2, 1_000_000, 0)])
            .run()
            .unwrap();
        let s = r.mean_slowdown(&topo, Framing::default());
        assert!((s - 1.0).abs() < 0.02, "slowdown {s}");
        assert!(r.telemetry.all_flows_finished());
    }

    #[test]
    fn two_elephants_halve_throughput() {
        let topo = Topology::dumbbell(2, 3, BW, PROP);
        let size = 10_000_000u64;
        let r = FluidSim::new(topo.clone(), RateModel::ideal())
            .flows([flow(0, 0, 2, size, 0), flow(1, 1, 2, size, 0)])
            .run()
            .unwrap();
        // Both share the 100G bottleneck: each drains at 50G.
        let framing = Framing::default();
        let expect = framing.wire_bytes(size) as f64 * 8.0 / 50e9;
        for rec in r.telemetry.flow_records() {
            let fct = rec.fct().unwrap().as_secs_f64();
            assert!(
                (fct - expect).abs() / expect < 0.05,
                "fct {fct} vs {expect}"
            );
        }
    }

    #[test]
    fn later_arrival_triggers_reallocation() {
        let topo = Topology::dumbbell(2, 3, BW, PROP);
        let size = 10_000_000u64; // 800 µs alone at 100G
        let r = FluidSim::new(topo.clone(), RateModel::ideal())
            .flows([flow(0, 0, 2, size, 0), flow(1, 1, 2, size, 400)])
            .run()
            .unwrap();
        let rec0 = r.telemetry.flow_record(FlowId(0)).unwrap().clone();
        let rec1 = r.telemetry.flow_record(FlowId(1)).unwrap().clone();
        let (f0, f1) = (
            rec0.fct().unwrap().as_secs_f64(),
            rec1.fct().unwrap().as_secs_f64(),
        );
        // Flow 0 runs alone 400 µs, then shares; by max-min symmetry the
        // two equal-size flows see identical FCTs, but flow 0 leaves the
        // network first in absolute time.
        let solo = Framing::default().wire_bytes(size) as f64 * 8.0 / 100e9;
        assert!(f0 > solo && f1 > solo, "f0 {f0} f1 {f1} solo {solo}");
        assert!((f0 - f1).abs() / f0 < 1e-6, "symmetric FCTs: {f0} vs {f1}");
        assert!(
            rec0.finish.unwrap() < rec1.finish.unwrap(),
            "flow 0 exits first"
        );
        assert!(r.reallocations >= 3);
        assert_eq!(r.peak_active, 2);
    }

    #[test]
    fn scheme_models_order_mean_slowdown() {
        // Same contended workload under FNCC vs DCQCN models: DCQCN's
        // longer ramp must cost more slowdown.
        let topo = Topology::dumbbell(4, 3, BW, PROP);
        let flows: Vec<FlowSpec> = (0..4).map(|i| flow(i, i, 4, 500_000, 0)).collect();
        let run = |kind| {
            FluidSim::new(
                Topology::dumbbell(4, 3, BW, PROP),
                RateModel::paper_default(kind),
            )
            .flows(flows.clone())
            .run()
            .unwrap()
            .mean_slowdown(&topo, Framing::default())
        };
        let fncc = run(CcKind::Fncc);
        let dcqcn = run(CcKind::Dcqcn);
        assert!(fncc < dcqcn, "FNCC {fncc} vs DCQCN {dcqcn}");
    }

    #[test]
    fn empty_flow_set_is_fine() {
        let topo = Topology::star(4, BW, PROP);
        let r = FluidSim::new(topo, RateModel::ideal()).run().unwrap();
        assert_eq!(r.reallocations, 0);
        assert_eq!(r.peak_active, 0);
        assert_eq!(r.horizon, SimTime::ZERO);
    }

    #[test]
    fn incast_on_star_finishes_synchronously() {
        let n = 16u32;
        let topo = Topology::star(n + 1, BW, PROP);
        let flows: Vec<FlowSpec> = (0..n).map(|i| flow(i, i, n, 1_000_000, 0)).collect();
        let r = FluidSim::new(topo, RateModel::ideal())
            .flows(flows)
            .run()
            .unwrap();
        assert!(r.telemetry.all_flows_finished());
        // Equal shares of the receiver link: everyone completes together,
        // in two allocation rounds (start + batch completion).
        assert!(r.reallocations <= 3, "reallocations {}", r.reallocations);
        let fcts: Vec<f64> = r
            .telemetry
            .flow_records()
            .map(|rec| rec.fct().unwrap().as_secs_f64())
            .collect();
        let (min, max) = fcts
            .iter()
            .fold((f64::MAX, f64::MIN), |(lo, hi), &x| (lo.min(x), hi.max(x)));
        assert!((max - min) / max < 1e-6, "spread {min}..{max}");
    }

    /// Regression (warm start): a heavy churn run must serve most events
    /// from the incremental path and produce identical telemetry semantics
    /// (all flows finish, slowdowns ≥ 1).
    #[test]
    fn poisson_churn_uses_the_incremental_path() {
        let topo = Topology::fat_tree(4, BW, PROP);
        let flows = crate::scenarios::poisson_trace(
            topo.n_hosts,
            BW,
            0.5,
            400,
            crate::scenarios::Trace::WebSearch,
            7,
        );
        let r = FluidSim::new(topo.clone(), RateModel::paper_default(CcKind::Fncc))
            .flows(flows)
            .run()
            .unwrap();
        assert!(r.telemetry.all_flows_finished());
        assert_eq!(r.full_solves + r.incremental_solves, r.reallocations);
        assert!(
            r.incremental_solves > r.full_solves * 3,
            "incremental {} vs full {}",
            r.incremental_solves,
            r.full_solves
        );
        let s = r.mean_slowdown(&topo, Framing::default());
        assert!(s >= 1.0 && s.is_finite(), "slowdown {s}");
    }

    /// Regression (zero-rate guard): a zero-capacity link used to trip
    /// only a debug_assert and spin the clock to infinity in release; now
    /// it surfaces a descriptive error before the clock can run away.
    #[test]
    fn zero_capacity_link_surfaces_an_error() {
        let mut topo = Topology::star(4, BW, PROP);
        topo.host_ports[0].bw = Bandwidth::gbps(0);
        let err = match FluidSim::new(topo, RateModel::ideal())
            .flows([flow(0, 0, 1, 1_000_000, 0)])
            .run()
        {
            Err(e) => e,
            Ok(_) => panic!("zero-capacity run must error"),
        };
        assert!(err.message.contains("zero capacity"), "{}", err.message);
        let shown = format!("{err}");
        assert!(shown.contains("stalled"), "{shown}");
    }

    fn ev(at_us: u64, sw: u32, port: u8, change: CapacityChange) -> CapacityEvent {
        CapacityEvent {
            at: SimTime::from_us(at_us),
            switch: SwitchId(sw),
            port,
            change,
        }
    }

    /// A ToR uplink dies mid-transfer on a fat-tree: flows crossing it move
    /// to the surviving ECMP uplink and still finish; the telemetry counts
    /// them as rerouted.
    #[test]
    fn link_down_reroutes_over_surviving_ecmp() {
        let topo = Topology::fat_tree(4, BW, PROP);
        let size = 10_000_000u64; // ~800 µs alone at 100G
        let flows: Vec<FlowSpec> = (0..2).map(|i| flow(i, i, 14 + i, size, 0)).collect();
        let r = FluidSim::new(topo, RateModel::ideal())
            .flows(flows)
            .capacity_events([
                ev(100, 0, 2, CapacityChange::Down),
                ev(400, 0, 2, CapacityChange::Up),
            ])
            .run()
            .unwrap();
        assert!(r.telemetry.all_flows_finished());
        assert!(
            r.telemetry.counters.rerouted_flows >= 1,
            "rerouted {}",
            r.telemetry.counters.rerouted_flows
        );
    }

    /// A degraded bottleneck (Scale window) lengthens the FCT of a flow
    /// crossing it, and restoring the factor at the window end returns the
    /// link to full speed.
    #[test]
    fn degrade_window_slows_completion() {
        let run = |events: Vec<CapacityEvent>| {
            let topo = Topology::dumbbell(2, 3, BW, PROP);
            let r = FluidSim::new(topo, RateModel::ideal())
                .flows([flow(0, 0, 2, 10_000_000, 0)])
                .capacity_events(events)
                .run()
                .unwrap();
            let rec = r.telemetry.flow_record(FlowId(0)).unwrap().clone();
            rec.fct().unwrap().as_secs_f64()
        };
        let clean = run(vec![]);
        let degraded = run(vec![
            ev(100, 0, 2, CapacityChange::Scale(0.25)),
            ev(400, 0, 2, CapacityChange::Scale(4.0)),
        ]);
        // 300 µs at quarter speed costs ~225 µs of extra drain.
        assert!(
            degraded > clean + 150e-6,
            "degraded {degraded} vs clean {clean}"
        );
    }

    /// On a dumbbell the bottleneck has no ECMP alternative: a link-down
    /// strands the flow (remaining bits frozen) until the link-up revives
    /// it, and the outage shows up in the FCT.
    #[test]
    fn severed_flow_stalls_until_link_up() {
        let run = |events: Vec<CapacityEvent>| {
            let topo = Topology::dumbbell(2, 3, BW, PROP);
            FluidSim::new(topo, RateModel::ideal())
                .flows([flow(0, 0, 2, 10_000_000, 0)])
                .capacity_events(events)
                .run()
                .unwrap()
        };
        let clean = run(vec![]);
        let fct_clean = clean
            .telemetry
            .flow_record(FlowId(0))
            .unwrap()
            .fct()
            .unwrap()
            .as_secs_f64();
        let flapped = run(vec![
            ev(100, 0, 2, CapacityChange::Down),
            ev(500, 0, 2, CapacityChange::Up),
        ]);
        assert!(flapped.telemetry.all_flows_finished());
        let fct = flapped
            .telemetry
            .flow_record(FlowId(0))
            .unwrap()
            .fct()
            .unwrap()
            .as_secs_f64();
        // The 400 µs outage is dead time: FCT grows by roughly that much.
        assert!(
            (fct - fct_clean - 400e-6).abs() < 50e-6,
            "fct {fct} vs clean {fct_clean}"
        );
        // A stall is not a reroute — the flow resumed on its only path.
        assert_eq!(flapped.telemetry.counters.rerouted_flows, 0);
    }

    /// A permanent sever leaves the flow unfinished rather than hanging the
    /// event loop or inventing a completion.
    #[test]
    fn permanent_sever_leaves_flow_unfinished() {
        let topo = Topology::dumbbell(2, 3, BW, PROP);
        let r = FluidSim::new(topo, RateModel::ideal())
            .flows([flow(0, 0, 2, 10_000_000, 0)])
            .capacity_events([ev(100, 0, 2, CapacityChange::Down)])
            .run()
            .unwrap();
        assert!(!r.telemetry.all_flows_finished());
        assert!(r.telemetry.flow_record(FlowId(0)).unwrap().fct().is_none());
    }

    /// An arrival during an outage that severs its destination parks until
    /// the link returns, then drains normally.
    #[test]
    fn arrival_during_outage_waits_for_link_up() {
        let topo = Topology::dumbbell(2, 3, BW, PROP);
        let r = FluidSim::new(topo, RateModel::ideal())
            .flows([flow(0, 0, 2, 1_000_000, 200)])
            .capacity_events([
                ev(100, 0, 2, CapacityChange::Down),
                ev(600, 0, 2, CapacityChange::Up),
            ])
            .run()
            .unwrap();
        assert!(r.telemetry.all_flows_finished());
        let fct = r
            .telemetry
            .flow_record(FlowId(0))
            .unwrap()
            .fct()
            .unwrap()
            .as_secs_f64();
        // Born at 200 µs into a dead network, revived at 600 µs: the FCT
        // carries at least the 400 µs wait.
        assert!(fct > 400e-6, "fct {fct}");
    }

    /// Regression (framing satellite): the queue-delay model's base RTT
    /// must follow the configured framing, not a hardcoded 1518/70. With
    /// jumbo frames the standing-queue penalty of a contended mouse grows
    /// with the (larger) framing-derived RTT.
    #[test]
    fn queue_delay_follows_framing_override() {
        let run = |framing: Framing| {
            let topo = Topology::dumbbell(2, 3, BW, PROP);
            // An elephant saturates the bottleneck; a late mouse of the
            // same wire length under both framings pays the standing
            // queue. Sizes chosen so wire_bytes are identical.
            let elephant = 50_000_000u64;
            let mouse_payload = 10 * framing.mtu_payload as u64;
            let r = FluidSim::new(topo, RateModel::paper_default(CcKind::Dcqcn))
                .framing(framing)
                .flows([
                    flow(0, 0, 2, elephant, 0),
                    flow(1, 1, 2, mouse_payload, 300),
                ])
                .run()
                .unwrap();
            let rec = r.telemetry.flow_record(FlowId(1)).unwrap().clone();
            rec.fct().unwrap().as_secs_f64()
        };
        let standard = Framing::default();
        let jumbo = Framing {
            mtu_payload: 9000,
            header: standard.header,
            ack_bytes: standard.ack_bytes,
        };
        let fct_std = run(standard);
        let fct_jumbo = run(jumbo);
        // Same wire bits drain at the same shared rate, so the FCT gap is
        // the queue-delay term; the jumbo base RTT is ~6× larger.
        let topo = Topology::dumbbell(2, 3, BW, PROP);
        let rtt_std = topo
            .base_rtt(standard.mtu(), standard.ack_bytes)
            .as_secs_f64();
        let rtt_jumbo = topo.base_rtt(jumbo.mtu(), jumbo.ack_bytes).as_secs_f64();
        assert!(rtt_jumbo > 1.1 * rtt_std, "{rtt_jumbo} vs {rtt_std}");
        assert!(
            fct_jumbo > fct_std,
            "jumbo framing must lengthen the standing-queue delay: \
             {fct_jumbo} vs {fct_std}"
        );
    }
}
