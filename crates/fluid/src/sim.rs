//! The fluid event loop: advance time between flow arrivals/completions,
//! re-solving the max-min allocation at every active-set change.
//!
//! Between consecutive events every active flow drains at its allocated
//! rate, so the simulator's cost is `O(events · allocation)` regardless of
//! flow sizes or link speeds — the property that lets it run millions of
//! flows where the packet DES backend tops out at hundreds.
//!
//! FCT composition: a flow's completion time is
//!
//! ```text
//! finish = t_drained(wire bytes at allocated rates)
//!        + pipeline floor (first-frame store-and-forward latency)
//!        + queue_rtts · base_rtt · contention    (see RateModel)
//! ```
//!
//! where `contention = 1 − mean_rate / (η · path line rate)` measures how
//! much of its lifetime the flow spent sharing its path: an uncontended
//! flow drains at the scheme's full rate (contention 0, no queue to sit
//! behind), a flow halved by an elephant pays half the scheme's standing
//! queue. An uncontended flow under an ideal scheme scores a slowdown of
//! exactly 1.0 against [`Topology::ideal_fct`].

use crate::link::LinkMap;
use crate::maxmin::{Demand, WaterFiller};
use crate::model::RateModel;
use fncc_des::time::SimTime;
use fncc_net::config::FabricConfig;
use fncc_net::telemetry::{FlowRecord, Telemetry};
use fncc_net::topology::Topology;
use fncc_transport::FlowSpec;

/// Fabric framing parameters the fluid model needs. The default derives
/// from [`FabricConfig::paper_default`], so the two backends can never
/// silently disagree on wire-byte accounting.
#[derive(Clone, Copy, Debug)]
pub struct Framing {
    /// Payload bytes per full-size frame.
    pub mtu_payload: u32,
    /// Per-frame header overhead in bytes.
    pub header: u32,
}

impl Default for Framing {
    fn default() -> Self {
        Framing::from(&FabricConfig::paper_default())
    }
}

impl From<&FabricConfig> for Framing {
    fn from(cfg: &FabricConfig) -> Self {
        Framing {
            mtu_payload: cfg.mtu_payload(),
            header: cfg.data_header,
        }
    }
}

impl Framing {
    /// Bytes on the wire for `size` application bytes.
    #[inline]
    pub fn wire_bytes(&self, size: u64) -> u64 {
        let npkts = size.div_ceil(self.mtu_payload as u64).max(1);
        size + npkts * self.header as u64
    }
}

/// RTTs of continuous bottleneck saturation before a scheme's standing
/// queue is fully built (the `queue_rtts` penalty ramps linearly up to
/// this). Matches the packet backend's observed queue ramp on the elephant
/// microbenchmark (~tens of µs at a ~13 µs RTT).
const QUEUE_BUILD_RTTS: f64 = 4.0;

/// One live flow in the fluid state.
struct ActiveFlow {
    /// Index into the sorted spec array.
    spec_ix: u32,
    /// Wire bits still to drain.
    remaining_bits: f64,
    /// Total wire bits (for the mean-rate contention estimate).
    wire_bits: f64,
    /// Directed links on the path.
    path: Vec<u32>,
    /// Pipeline floor (first-frame store-and-forward latency), seconds.
    floor: f64,
    /// η-scaled path line rate — the rate an uncontended flow of this
    /// scheme would drain at (bits/s).
    fair_line: f64,
    /// Drain start (arrival) time, seconds.
    t_start: f64,
}

/// Result of a fluid run.
pub struct FluidResult {
    /// Per-flow lifetime records (compatible with the packet backend's
    /// telemetry, so `fncc_core::metrics::fct_slowdowns` applies directly).
    pub telemetry: Telemetry,
    /// Max-min re-allocations performed (the event count).
    pub reallocations: u64,
    /// Peak number of concurrently active flows.
    pub peak_active: usize,
    /// Simulated instant the last flow completed.
    pub horizon: SimTime,
}

impl FluidResult {
    /// Mean FCT slowdown (actual / contention-free ideal) over finished
    /// flows, the cross-backend comparison metric.
    pub fn mean_slowdown(&self, topo: &Topology, framing: Framing) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for rec in self.telemetry.flow_records() {
            let Some(fct) = rec.fct() else { continue };
            let ideal = topo.ideal_fct(
                rec.src,
                rec.dst,
                rec.flow,
                rec.size,
                framing.mtu_payload,
                framing.header,
            );
            sum += (fct.as_secs_f64() / ideal.as_secs_f64().max(f64::MIN_POSITIVE)).max(1.0);
            n += 1;
        }
        if n == 0 {
            f64::NAN
        } else {
            sum / n as f64
        }
    }
}

/// Flow-level simulator over a [`Topology`] under a [`RateModel`].
pub struct FluidSim {
    topo: Topology,
    links: LinkMap,
    model: RateModel,
    framing: Framing,
    flows: Vec<FlowSpec>,
}

impl FluidSim {
    /// A fluid simulation of `model` over `topo`.
    pub fn new(topo: Topology, model: RateModel) -> Self {
        let links = LinkMap::new(&topo);
        FluidSim {
            topo,
            links,
            model,
            framing: Framing::default(),
            flows: Vec::new(),
        }
    }

    /// Override framing parameters (defaults match the packet backend).
    pub fn framing(mut self, framing: Framing) -> Self {
        self.framing = framing;
        self
    }

    /// Add flows.
    pub fn flows(mut self, flows: impl IntoIterator<Item = FlowSpec>) -> Self {
        self.flows.extend(flows);
        self
    }

    /// The network description.
    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// Framing in effect.
    pub fn framing_params(&self) -> Framing {
        self.framing
    }

    /// Run every flow to completion and return the records.
    pub fn run(mut self) -> FluidResult {
        // Effective capacities: the scheme sustains η of each link.
        let eta = self.model.utilization;
        let capacity: Vec<f64> = self.links.capacities().iter().map(|&c| c * eta).collect();

        // Scheme standing-queue delay in seconds (0 when there are no flows).
        let base_rtt = if self.flows.is_empty() {
            0.0
        } else {
            self.topo.base_rtt(1518, 70).as_secs_f64()
        };
        let queue_delay = self.model.queue_rtts * base_rtt;

        self.flows.sort_by_key(|f| f.start);
        let specs = std::mem::take(&mut self.flows);

        let mut telemetry = Telemetry::new();
        for f in &specs {
            telemetry.flow_started(FlowRecord {
                flow: f.id,
                src: f.src,
                dst: f.dst,
                size: f.size,
                start: f.start,
                finish: None,
            });
        }

        let mut filler = WaterFiller::new(self.links.len());
        let mut rates: Vec<f64> = Vec::new();
        let mut active: Vec<ActiveFlow> = Vec::new();
        let mut next_arrival = 0usize;
        let mut t = 0.0f64; // seconds
        let mut reallocations = 0u64;
        let mut peak_active = 0usize;
        let mut horizon = SimTime::ZERO;
        // Completion indices scratch (collected per event).
        let mut finished: Vec<usize> = Vec::new();
        // Standing-queue state: since when each link has been continuously
        // saturated (NaN = not saturated), and the allocation epoch each
        // link was last part of (stale links reset their history).
        let mut sat_since: Vec<f64> = vec![f64::NAN; self.links.len()];
        let mut seen_epoch: Vec<u64> = vec![0; self.links.len()];
        let mut epoch = 0u64;

        while next_arrival < specs.len() || !active.is_empty() {
            let mut idle_jump = false;
            if active.is_empty() {
                // Jump the clock to the next arrival. The network was idle
                // over the gap, so any standing-queue history is stale.
                t = specs[next_arrival].start.as_secs_f64();
                idle_jump = true;
            }
            // Admit every flow whose start time has been reached.
            while next_arrival < specs.len() {
                let s = &specs[next_arrival];
                let start = s.start.as_secs_f64();
                if start > t + 1e-15 {
                    break;
                }
                let path = self.links.path_links(&self.topo, s.src, s.dst, s.id);
                let wire_bits = self.framing.wire_bytes(s.size) as f64 * 8.0;
                // Pipeline floor: ideal FCT minus pure streaming time at the
                // path bottleneck (what the fluid drain models).
                let ideal = self
                    .topo
                    .ideal_fct(
                        s.src,
                        s.dst,
                        s.id,
                        s.size,
                        self.framing.mtu_payload,
                        self.framing.header,
                    )
                    .as_secs_f64();
                let bottleneck = path
                    .iter()
                    .map(|&l| self.links.capacity(l))
                    .fold(f64::INFINITY, f64::min);
                let floor = (ideal - wire_bits / bottleneck).max(0.0);
                active.push(ActiveFlow {
                    spec_ix: next_arrival as u32,
                    remaining_bits: wire_bits,
                    wire_bits,
                    path,
                    floor,
                    fair_line: bottleneck * eta,
                    t_start: start,
                });
                next_arrival += 1;
            }
            peak_active = peak_active.max(active.len());

            // Re-solve the allocation for the current active set.
            let demands: Vec<Demand<'_>> = active
                .iter()
                .map(|f| Demand {
                    cap: f64::INFINITY,
                    path: &f.path,
                })
                .collect();
            filler.allocate(&capacity, &demands, &mut rates);
            reallocations += 1;

            // Track how long each link has been continuously saturated —
            // the proxy for whether a standing queue had time to build.
            // An idle-network clock jump is a discontinuity: bumping the
            // epoch twice makes every link read as freshly (re)activated,
            // so queues drained during the gap don't haunt the next burst.
            epoch += if idle_jump { 2 } else { 1 };
            for &l in filler.last_active_links() {
                let was_active = seen_epoch[l as usize] == epoch - 1;
                seen_epoch[l as usize] = epoch;
                let saturated = filler.residual(l) <= 0.01 * capacity[l as usize];
                if !saturated || !was_active {
                    sat_since[l as usize] = if saturated { t } else { f64::NAN };
                } else if sat_since[l as usize].is_nan() {
                    sat_since[l as usize] = t;
                }
            }

            // Earliest completion under these rates.
            let mut dt_fin = f64::INFINITY;
            for (f, &r) in active.iter().zip(&rates) {
                if r > 0.0 {
                    dt_fin = dt_fin.min(f.remaining_bits / r);
                }
            }
            debug_assert!(dt_fin.is_finite(), "active flow with zero rate");

            let t_arr = if next_arrival < specs.len() {
                specs[next_arrival].start.as_secs_f64()
            } else {
                f64::INFINITY
            };
            let t_next = (t + dt_fin).min(t_arr);
            let dt = t_next - t;

            // Drain.
            for (f, &r) in active.iter_mut().zip(&rates) {
                f.remaining_bits -= r * dt;
            }
            t = t_next;

            // Retire everything that completed at this instant (tolerance:
            // half a bit — below any meaningful transfer granularity).
            finished.clear();
            for (i, f) in active.iter().enumerate() {
                if f.remaining_bits <= 0.5 {
                    finished.push(i);
                }
            }
            for &i in finished.iter().rev() {
                let f = active.swap_remove(i);
                let spec = &specs[f.spec_ix as usize];
                let drain = (t - f.t_start).max(0.0);
                // Contention: how far the flow's lifetime-average rate fell
                // below the scheme's uncontended drain rate on this path.
                // Scales the standing-queue delay so idle-path flows (the
                // common case for mice) pay nothing.
                let mean_rate = if drain > 0.0 {
                    f.wire_bits / drain
                } else {
                    f.fair_line
                };
                let contention = (1.0 - mean_rate / f.fair_line).clamp(0.0, 1.0);
                // Queue build-up: the deepest standing queue on the path,
                // as the fraction of QUEUE_BUILD_RTTS the bottleneck has
                // been continuously saturated. Transient sharing (mice
                // colliding for microseconds) builds no queue; an elephant
                // holding a link saturated for many RTTs builds the
                // scheme's full standing queue.
                let mut sat_dur = 0.0f64;
                for &l in &f.path {
                    let since = sat_since[l as usize];
                    if !since.is_nan() {
                        sat_dur = sat_dur.max(t - since);
                    }
                }
                let buildup = if base_rtt > 0.0 {
                    (sat_dur / (QUEUE_BUILD_RTTS * base_rtt)).min(1.0)
                } else {
                    0.0
                };
                let fct_secs = drain + f.floor + queue_delay * contention * buildup;
                let finish = spec.start
                    + fncc_des::time::TimeDelta::from_secs_f64(fct_secs.max(f64::MIN_POSITIVE));
                telemetry.flow_finished(spec.id, finish);
                if finish > horizon {
                    horizon = finish;
                }
            }
        }

        FluidResult {
            telemetry,
            reallocations,
            peak_active,
            horizon,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fncc_cc::CcKind;
    use fncc_des::time::TimeDelta;
    use fncc_net::ids::{FlowId, HostId};
    use fncc_net::units::Bandwidth;

    const BW: Bandwidth = Bandwidth::gbps(100);
    const PROP: TimeDelta = TimeDelta::from_ns(1500);

    fn flow(id: u32, src: u32, dst: u32, size: u64, start_us: u64) -> FlowSpec {
        FlowSpec {
            id: FlowId(id),
            src: HostId(src),
            dst: HostId(dst),
            size,
            start: SimTime::from_us(start_us),
        }
    }

    #[test]
    fn uncontended_flow_has_unit_slowdown_under_ideal_model() {
        let topo = Topology::dumbbell(2, 3, BW, PROP);
        let r = FluidSim::new(topo.clone(), RateModel::ideal())
            .flows([flow(0, 0, 2, 1_000_000, 0)])
            .run();
        let s = r.mean_slowdown(&topo, Framing::default());
        assert!((s - 1.0).abs() < 0.02, "slowdown {s}");
        assert!(r.telemetry.all_flows_finished());
    }

    #[test]
    fn two_elephants_halve_throughput() {
        let topo = Topology::dumbbell(2, 3, BW, PROP);
        let size = 10_000_000u64;
        let r = FluidSim::new(topo.clone(), RateModel::ideal())
            .flows([flow(0, 0, 2, size, 0), flow(1, 1, 2, size, 0)])
            .run();
        // Both share the 100G bottleneck: each drains at 50G.
        let framing = Framing::default();
        let expect = framing.wire_bytes(size) as f64 * 8.0 / 50e9;
        for rec in r.telemetry.flow_records() {
            let fct = rec.fct().unwrap().as_secs_f64();
            assert!(
                (fct - expect).abs() / expect < 0.05,
                "fct {fct} vs {expect}"
            );
        }
    }

    #[test]
    fn later_arrival_triggers_reallocation() {
        let topo = Topology::dumbbell(2, 3, BW, PROP);
        let size = 10_000_000u64; // 800 µs alone at 100G
        let r = FluidSim::new(topo.clone(), RateModel::ideal())
            .flows([flow(0, 0, 2, size, 0), flow(1, 1, 2, size, 400)])
            .run();
        let rec0 = r.telemetry.flow_record(FlowId(0)).unwrap().clone();
        let rec1 = r.telemetry.flow_record(FlowId(1)).unwrap().clone();
        let (f0, f1) = (
            rec0.fct().unwrap().as_secs_f64(),
            rec1.fct().unwrap().as_secs_f64(),
        );
        // Flow 0 runs alone 400 µs, then shares; by max-min symmetry the
        // two equal-size flows see identical FCTs, but flow 0 leaves the
        // network first in absolute time.
        let solo = Framing::default().wire_bytes(size) as f64 * 8.0 / 100e9;
        assert!(f0 > solo && f1 > solo, "f0 {f0} f1 {f1} solo {solo}");
        assert!((f0 - f1).abs() / f0 < 1e-6, "symmetric FCTs: {f0} vs {f1}");
        assert!(
            rec0.finish.unwrap() < rec1.finish.unwrap(),
            "flow 0 exits first"
        );
        assert!(r.reallocations >= 3);
        assert_eq!(r.peak_active, 2);
    }

    #[test]
    fn scheme_models_order_mean_slowdown() {
        // Same contended workload under FNCC vs DCQCN models: DCQCN's
        // longer ramp must cost more slowdown.
        let topo = Topology::dumbbell(4, 3, BW, PROP);
        let flows: Vec<FlowSpec> = (0..4).map(|i| flow(i, i, 4, 500_000, 0)).collect();
        let run = |kind| {
            FluidSim::new(
                Topology::dumbbell(4, 3, BW, PROP),
                RateModel::paper_default(kind),
            )
            .flows(flows.clone())
            .run()
            .mean_slowdown(&topo, Framing::default())
        };
        let fncc = run(CcKind::Fncc);
        let dcqcn = run(CcKind::Dcqcn);
        assert!(fncc < dcqcn, "FNCC {fncc} vs DCQCN {dcqcn}");
    }

    #[test]
    fn empty_flow_set_is_fine() {
        let topo = Topology::star(4, BW, PROP);
        let r = FluidSim::new(topo, RateModel::ideal()).run();
        assert_eq!(r.reallocations, 0);
        assert_eq!(r.peak_active, 0);
        assert_eq!(r.horizon, SimTime::ZERO);
    }

    #[test]
    fn incast_on_star_finishes_synchronously() {
        let n = 16u32;
        let topo = Topology::star(n + 1, BW, PROP);
        let flows: Vec<FlowSpec> = (0..n).map(|i| flow(i, i, n, 1_000_000, 0)).collect();
        let r = FluidSim::new(topo, RateModel::ideal()).flows(flows).run();
        assert!(r.telemetry.all_flows_finished());
        // Equal shares of the receiver link: everyone completes together,
        // in two allocation rounds (start + batch completion).
        assert!(r.reallocations <= 3, "reallocations {}", r.reallocations);
        let fcts: Vec<f64> = r
            .telemetry
            .flow_records()
            .map(|rec| rec.fct().unwrap().as_secs_f64())
            .collect();
        let (min, max) = fcts
            .iter()
            .fold((f64::MAX, f64::MIN), |(lo, hi), &x| (lo.min(x), hi.max(x)));
        assert!((max - min) / max < 1e-6, "spread {min}..{max}");
    }
}
