//! Directed-link indexing over a [`Topology`].
//!
//! The fluid model sees the network as a set of *directed* links, each with
//! a capacity; a flow occupies the ordered set of links on its (ECMP-stable)
//! request path. This module flattens a [`Topology`] into dense link ids so
//! the allocator can use plain arrays:
//!
//! * link `h` for `h < n_hosts` is host `h`'s uplink (host → ToR);
//! * link `n_hosts + port_base[s] + p` is switch `s`'s egress port `p`
//!   (which covers both switch→switch links and the final switch→host hop).

use fncc_net::ids::{FlowId, HostId, NodeRef, SwitchId};
use fncc_net::topology::Topology;

/// Dense directed-link index over a topology.
#[derive(Clone, Debug)]
pub struct LinkMap {
    n_hosts: u32,
    /// Prefix sum of switch port counts: switch `s` owns ids
    /// `n_hosts + port_base[s] .. n_hosts + port_base[s+1]`.
    port_base: Vec<u32>,
    /// Capacity of every directed link, bits/s.
    capacity: Vec<f64>,
}

impl LinkMap {
    /// Build the link index for `topo`.
    pub fn new(topo: &Topology) -> Self {
        let n_hosts = topo.n_hosts;
        let mut port_base = Vec::with_capacity(topo.switches.len() + 1);
        let mut total = 0u32;
        for sw in &topo.switches {
            port_base.push(total);
            total += sw.ports.len() as u32;
        }
        port_base.push(total);

        let mut capacity = Vec::with_capacity((n_hosts + total) as usize);
        for hp in &topo.host_ports {
            capacity.push(hp.bw.as_f64());
        }
        for sw in &topo.switches {
            for p in &sw.ports {
                capacity.push(p.bw.as_f64());
            }
        }
        LinkMap {
            n_hosts,
            port_base,
            capacity,
        }
    }

    /// Number of directed links.
    #[inline]
    pub fn len(&self) -> usize {
        self.capacity.len()
    }

    /// True when the topology had no links (never for valid topologies).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.capacity.is_empty()
    }

    /// Capacity of link `id` in bits/s.
    #[inline]
    pub fn capacity(&self, id: u32) -> f64 {
        self.capacity[id as usize]
    }

    /// All capacities, indexed by link id.
    #[inline]
    pub fn capacities(&self) -> &[f64] {
        &self.capacity
    }

    /// Dense id of the egress at `node`, port `port`.
    #[inline]
    pub fn id_of(&self, node: NodeRef, port: u8) -> u32 {
        match node {
            NodeRef::Host(h) => h.0,
            NodeRef::Switch(s) => self.n_hosts + self.port_base[s.ix()] + port as u32,
        }
    }

    /// Reverse of [`Self::id_of`]: the `(node, egress port)` whose link is
    /// `id`. Host uplinks report port 0 (hosts have one port). Used by the
    /// hybrid backend to push fluid residual capacities onto the packet
    /// fabric's ports.
    pub fn node_of(&self, id: u32) -> (NodeRef, u8) {
        if id < self.n_hosts {
            return (NodeRef::Host(HostId(id)), 0);
        }
        let rel = id - self.n_hosts;
        // Last switch whose base is ≤ rel (ties skip port-less switches).
        let s = self.port_base.partition_point(|&b| b <= rel) - 1;
        (
            NodeRef::Switch(SwitchId(s as u32)),
            (rel - self.port_base[s]) as u8,
        )
    }

    /// The directed links on the request path of `(src → dst, flow)`, in
    /// path order (host uplink first, switch→host egress last).
    pub fn path_links(&self, topo: &Topology, src: HostId, dst: HostId, flow: FlowId) -> Vec<u32> {
        let mut out = Vec::new();
        self.path_links_into(topo, src, dst, flow, &mut out);
        out
    }

    /// [`Self::path_links`] into a caller-owned buffer (cleared first), so
    /// per-arrival hot paths reuse one allocation.
    pub fn path_links_into(
        &self,
        topo: &Topology,
        src: HostId,
        dst: HostId,
        flow: FlowId,
        out: &mut Vec<u32>,
    ) {
        out.clear();
        out.extend(
            topo.trace_path(src, dst, flow)
                .into_iter()
                .map(|(n, p)| self.id_of(n, p)),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fncc_des::time::TimeDelta;
    use fncc_net::ids::SwitchId;
    use fncc_net::units::Bandwidth;

    const BW: Bandwidth = Bandwidth::gbps(100);
    const PROP: TimeDelta = TimeDelta::from_ns(1500);

    #[test]
    fn ids_are_dense_and_disjoint() {
        let topo = Topology::dumbbell(2, 3, BW, PROP);
        let lm = LinkMap::new(&topo);
        // 3 host uplinks + (3 + 2 + 2) switch ports.
        assert_eq!(lm.len(), 3 + 7);
        let mut seen = std::collections::HashSet::new();
        for h in 0..topo.n_hosts {
            assert!(seen.insert(lm.id_of(NodeRef::Host(HostId(h)), 0)));
        }
        for (s, sw) in topo.switches.iter().enumerate() {
            for p in 0..sw.ports.len() as u8 {
                assert!(seen.insert(lm.id_of(NodeRef::Switch(SwitchId(s as u32)), p)));
            }
        }
        assert_eq!(seen.len(), lm.len());
        assert!(seen.iter().all(|&id| (id as usize) < lm.len()));
    }

    #[test]
    fn node_of_inverts_id_of() {
        for topo in [
            Topology::dumbbell(2, 3, BW, PROP),
            Topology::fat_tree(4, BW, PROP),
        ] {
            let lm = LinkMap::new(&topo);
            for h in 0..topo.n_hosts {
                let node = NodeRef::Host(HostId(h));
                assert_eq!(lm.node_of(lm.id_of(node, 0)), (node, 0));
            }
            for (s, sw) in topo.switches.iter().enumerate() {
                for p in 0..sw.ports.len() as u8 {
                    let node = NodeRef::Switch(SwitchId(s as u32));
                    assert_eq!(lm.node_of(lm.id_of(node, p)), (node, p));
                }
            }
        }
    }

    #[test]
    fn path_links_follow_trace() {
        let topo = Topology::dumbbell(2, 3, BW, PROP);
        let lm = LinkMap::new(&topo);
        let links = lm.path_links(&topo, HostId(0), HostId(2), FlowId(0));
        // host uplink + one egress per switch on the 3-switch chain.
        assert_eq!(links.len(), 4);
        assert_eq!(links[0], 0); // host 0's uplink id
        for &l in &links {
            assert!((lm.capacity(l) - BW.as_f64()).abs() < 1.0);
        }
    }

    #[test]
    fn fat_tree_paths_have_expected_length() {
        let topo = Topology::fat_tree(4, BW, PROP);
        let lm = LinkMap::new(&topo);
        // Intra-ToR: host uplink + ToR egress.
        assert_eq!(
            lm.path_links(&topo, HostId(0), HostId(1), FlowId(0)).len(),
            2
        );
        // Inter-pod: host + ToR + Agg + Core + Agg + ToR.
        assert_eq!(
            lm.path_links(&topo, HostId(0), HostId(15), FlowId(0)).len(),
            6
        );
    }
}
