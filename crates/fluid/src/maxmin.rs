//! Water-filling max-min fair allocation with per-flow rate caps.
//!
//! The classic progressive-filling algorithm: raise every unfrozen flow's
//! rate uniformly until a link saturates (or a flow hits its cap), freeze
//! the affected flows, subtract their share, repeat.
//!
//! The implementation leans on two structural facts. First, an unfrozen
//! link's saturation level is simply `remaining / users` — independent of
//! the current water level. Second, that quantity can only *increase* when
//! other flows freeze (a flow frozen at level `x ≤ remaining/users` leaves
//! `(remaining − x)/(users − 1) ≥ remaining/users`). Together they make a
//! *lazy min-heap* exact: pop the smallest recorded level, recompute it
//! fresh, and either accept it (it is still the global minimum) or push it
//! back with its new value. Every accepted pop freezes at least one link's
//! worth of flows, so the loop terminates after `O(links + flows)` heap
//! operations instead of the naive `O(rounds · links)` rescans.
//!
//! [`WaterFiller`] owns scratch buffers so the per-event hot path in
//! [`crate::sim::FluidSim`] allocates nothing; the free function
//! [`water_fill`] is the convenient one-shot wrapper used by tests.
//!
//! # Incremental mode
//!
//! [`WaterFiller::allocate`] solves from scratch and stays the reference
//! implementation. The *incremental* API ([`WaterFiller::begin_incremental`],
//! [`WaterFiller::add_flow`] / [`WaterFiller::remove_flow`] /
//! [`WaterFiller::rebalance`]) persists the converged solution across
//! events — per-slot rates, per-link residual capacity and binding level,
//! and the global freeze order — and warm-starts the next solve from it.
//!
//! The warm start is exact, not heuristic. Progressive filling freezes
//! flows in ascending level order, and an arrival/departure only perturbs
//! the *dirty* links on the changed flows' paths. For each dirty link we
//! replay its freeze history (its flows sorted by converged rate) under the
//! new membership and find the first water level θ at which it would now
//! saturate — additionally capped by the level at which it *used to* bind,
//! since a changed binding link invalidates its old freeze round. Below
//! `θ = min over dirty links`, the old process is untouched: every flow
//! frozen below θ keeps its rate, bit for bit. Flows at or above θ (plus
//! all pending additions) form the *residual* problem, re-solved by the
//! same lazy-heap algorithm over link state seeded from the persisted
//! solution. When the delta invalidates too much (a dirty link touches a
//! large fraction of all path entries — e.g. an incast receiver), the
//! rebalance falls back to a full solve over the persistent structure;
//! either way no `Demand` array or CSR is rebuilt per event. The property
//! tests in this module pin the incremental path to the one-shot oracle
//! over random arrival/departure sequences.

/// One flow's demand: an optional rate cap and the directed links it
/// crosses (ids into the capacity array).
#[derive(Clone, Debug)]
pub struct Demand<'a> {
    /// Upper bound on the flow's rate (bits/s); `f64::INFINITY` when only
    /// the links limit it.
    pub cap: f64,
    /// Directed links on the flow's path.
    pub path: &'a [u32],
}

/// Relative tie width for "same" saturation levels: one part per billion
/// (≈ 0.1 bit/s at 100 Gb/s) is far below physical meaning but merges
/// float-divergent equal bottlenecks, so symmetric workloads (permutation,
/// uniform incast) freeze in a handful of rounds.
const TIE_REL: f64 = 1e-9;

/// How a [`WaterFiller::rebalance`] call resolved the pending deltas.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rebalance {
    /// No flow was added or removed since the last rebalance.
    Noop,
    /// Warm start: only the residual above the divergence level re-solved.
    Incremental,
    /// The delta invalidated too much (or no converged solution existed);
    /// solved from scratch over the persistent structure.
    Full,
    /// Closed form: the event dirtied a single binding link whose members
    /// are bound by it alone, so the new level is `(capacity − Σ frozen)
    /// / k` with no progressive filling at all.
    SingleBottleneck,
}

/// Reusable progressive-filling allocator over a fixed link universe.
pub struct WaterFiller {
    n_links: usize,
    /// Per-link headroom not yet claimed by frozen flows.
    remaining: Vec<f64>,
    /// Per-link count of *unfrozen* flows.
    users: Vec<u32>,
    /// Per-link total flow count this run (snapshot of `users` at build).
    count: Vec<u32>,
    /// Per-link CSR fill cursor; after building, `cursor[l]` is one past
    /// link `l`'s slice in `link_flows` (slice start = cursor − count).
    cursor: Vec<u32>,
    /// Flow indices grouped by link (CSR payload).
    link_flows: Vec<u32>,
    /// Links used by at least one flow this run.
    active_links: Vec<u32>,
    /// Lazy min-heap of `(saturation level, link)`.
    heap: Vec<(f64, u32)>,
    frozen: Vec<bool>,
    by_cap: Vec<u32>,

    // ------------------------------------------------------------------
    // Incremental mode (see module docs). All fields below persist the
    // converged solution between `rebalance` calls; the one-shot
    // `allocate` never touches them.
    // ------------------------------------------------------------------
    /// Link capacities fixed at `begin_incremental`.
    inc_capacity: Vec<f64>,
    /// True once a converged solution exists to warm-start from.
    inc_ready: bool,
    /// Per-slot path (empty and pooled for reuse when the slot is free).
    slot_path: Vec<Vec<u32>>,
    /// Per-slot back-pointers: this flow's index inside each path link's
    /// `link_list`, enabling O(1) removal.
    slot_pos: Vec<Vec<u32>>,
    /// Per-slot converged rate (0 until first rebalanced).
    slot_rate: Vec<f64>,
    slot_alive: Vec<bool>,
    /// Bumped when a slot is freed; invalidates its `order` entries.
    slot_gen: Vec<u32>,
    /// Added since the last rebalance (no converged rate yet).
    slot_pending: Vec<bool>,
    free_slots: Vec<u32>,
    n_alive: usize,
    /// Σ path lengths over alive slots (the full-solve work estimate).
    total_entries: usize,
    /// Per-link flows crossing it, as `(slot, hop index into its path)`.
    link_list: Vec<Vec<(u32, u8)>>,
    /// Converged residual capacity: `capacity − Σ rates` of its flows.
    link_remaining: Vec<f64>,
    /// Level at which the link last froze flows (`∞` if it never bound).
    link_level: Vec<f64>,
    /// Links with at least one flow.
    inc_active: Vec<u32>,
    inc_active_pos: Vec<u32>,
    /// Links whose membership changed since the last rebalance.
    dirty: Vec<u32>,
    dirty_flag: Vec<bool>,
    pending_adds: Vec<u32>,
    /// Links that went from idle to carrying flows since last rebalance.
    activated: Vec<u32>,
    /// True while deltas are accumulating since the last rebalance.
    deltas_open: bool,
    /// Slots whose rate was (re)computed by the last rebalance.
    changed: Vec<u32>,
    // Residual-solve scratch (re-derived every rebalance). The solve runs
    // on dense per-event structures — a residual CSR over `link_flows`
    // (shared with the one-shot path) plus flat path copies — so the hot
    // loop touches compact arrays, not the persistent per-link Vecs.
    res_rem: Vec<f64>,
    res_users: Vec<u32>,
    res_links: Vec<u32>,
    res_path: Vec<u32>,
    res_off: Vec<u32>,
    link_mark: Vec<u64>,
    /// `res_state[slot] == res_epoch` ⇔ slot joined the current residual.
    res_state: Vec<u64>,
    res_epoch: u64,
    /// `res_member[slot] == rebalance_id` ⇔ slot joined this rebalance's
    /// residual (stable across expansion rounds, unlike `res_state`).
    res_member: Vec<u64>,
    /// Per-dirty-link divergence level, aligned with `dirty`.
    dirty_theta: Vec<f64>,
    /// Pre-solve binding level snapshot per link, for verification.
    old_level: Vec<f64>,
    old_mark: Vec<u64>,
    /// Monotone id of the current rebalance call.
    rebalance_id: u64,
    violations: Vec<u32>,
    bfs_mark: Vec<u64>,
    /// BFS frontier: `(link, recruit threshold)`.
    bfs_queue: Vec<(u32, f64)>,
    rate_scratch: Vec<f64>,
    /// Reciprocal table: `inv[u] = 1/u`, so `fill` multiplies instead of
    /// dividing in the innermost loop.
    inv: Vec<f64>,
    n_full_solves: u64,
    n_incremental_solves: u64,
    n_single_bottleneck_solves: u64,
}

impl WaterFiller {
    /// An allocator for a network of `n_links` directed links.
    pub fn new(n_links: usize) -> Self {
        WaterFiller {
            n_links,
            remaining: vec![0.0; n_links],
            users: vec![0; n_links],
            count: vec![0; n_links],
            cursor: vec![0; n_links],
            link_flows: Vec::new(),
            active_links: Vec::new(),
            heap: Vec::new(),
            frozen: Vec::new(),
            by_cap: Vec::new(),
            inc_capacity: Vec::new(),
            inc_ready: false,
            slot_path: Vec::new(),
            slot_pos: Vec::new(),
            slot_rate: Vec::new(),
            slot_alive: Vec::new(),
            slot_gen: Vec::new(),
            slot_pending: Vec::new(),
            free_slots: Vec::new(),
            n_alive: 0,
            total_entries: 0,
            link_list: Vec::new(),
            link_remaining: Vec::new(),
            link_level: Vec::new(),
            inc_active: Vec::new(),
            inc_active_pos: Vec::new(),
            dirty: Vec::new(),
            dirty_flag: Vec::new(),
            pending_adds: Vec::new(),
            activated: Vec::new(),
            deltas_open: false,
            changed: Vec::new(),
            res_rem: Vec::new(),
            res_users: Vec::new(),
            res_links: Vec::new(),
            res_path: Vec::new(),
            res_off: Vec::new(),
            link_mark: Vec::new(),
            res_state: Vec::new(),
            res_epoch: 0,
            res_member: Vec::new(),
            dirty_theta: Vec::new(),
            old_level: Vec::new(),
            old_mark: Vec::new(),
            rebalance_id: 0,
            violations: Vec::new(),
            bfs_mark: Vec::new(),
            bfs_queue: Vec::new(),
            rate_scratch: Vec::new(),
            inv: Vec::new(),
            n_full_solves: 0,
            n_incremental_solves: 0,
            n_single_bottleneck_solves: 0,
        }
    }

    /// Links that carried at least one flow in the last `allocate` call.
    #[inline]
    pub fn last_active_links(&self) -> &[u32] {
        &self.active_links
    }

    /// Capacity left unallocated on link `l` after the last `allocate`
    /// call (bits/s). Only meaningful for links in
    /// [`Self::last_active_links`]; a residual near zero means the link is
    /// saturated — it was a bottleneck in the max-min solution.
    #[inline]
    pub fn residual(&self, l: u32) -> f64 {
        self.remaining[l as usize]
    }

    /// Current saturation level of link `l` (`∞` once all its flows froze).
    #[inline]
    fn fill(&self, l: u32) -> f64 {
        let u = self.users[l as usize];
        if u == 0 {
            f64::INFINITY
        } else {
            self.remaining[l as usize].max(0.0) / u as f64
        }
    }

    #[inline]
    fn heap_push(&mut self, key: f64, l: u32) {
        self.heap.push((key, l));
        let mut i = self.heap.len() - 1;
        while i > 0 {
            let p = (i - 1) / 2;
            if self.heap[p].0 <= self.heap[i].0 {
                break;
            }
            self.heap.swap(i, p);
            i = p;
        }
    }

    #[inline]
    fn heap_pop(&mut self) -> Option<(f64, u32)> {
        let n = self.heap.len();
        if n == 0 {
            return None;
        }
        self.heap.swap(0, n - 1);
        let top = self.heap.pop();
        let n = self.heap.len();
        let mut i = 0;
        loop {
            let (a, b) = (2 * i + 1, 2 * i + 2);
            let mut m = i;
            if a < n && self.heap[a].0 < self.heap[m].0 {
                m = a;
            }
            if b < n && self.heap[b].0 < self.heap[m].0 {
                m = b;
            }
            if m == i {
                break;
            }
            self.heap.swap(i, m);
            i = m;
        }
        top
    }

    /// Max-min fair rates (bits/s) for `flows` over links with the given
    /// `capacity` (bits/s), written into `rates` (resized to match).
    /// Flows with empty paths get their cap (degenerate, defensive).
    pub fn allocate(&mut self, capacity: &[f64], flows: &[Demand<'_>], rates: &mut Vec<f64>) {
        assert_eq!(capacity.len(), self.n_links, "capacity array size mismatch");
        let nf = flows.len();
        rates.clear();
        rates.resize(nf, 0.0);
        if nf == 0 {
            return;
        }

        // Reset only the links the previous run touched.
        for &l in &self.active_links {
            self.users[l as usize] = 0;
        }
        self.active_links.clear();
        let mut total = 0u32;
        for f in flows {
            for &l in f.path {
                if self.users[l as usize] == 0 {
                    self.active_links.push(l);
                    self.remaining[l as usize] = capacity[l as usize];
                }
                self.users[l as usize] += 1;
                total += 1;
            }
        }

        // CSR flow lists per active link.
        self.link_flows.clear();
        self.link_flows.resize(total as usize, 0);
        let mut at = 0u32;
        for &l in &self.active_links {
            let n = self.users[l as usize];
            self.count[l as usize] = n;
            self.cursor[l as usize] = at;
            at += n;
        }
        for (i, f) in flows.iter().enumerate() {
            for &l in f.path {
                let c = self.cursor[l as usize];
                self.link_flows[c as usize] = i as u32;
                self.cursor[l as usize] = c + 1;
            }
        }
        // cursor[l] now points one past link l's slice.

        self.frozen.clear();
        self.frozen.resize(nf, false);
        // The cap ladder is only needed when some cap is finite; the fluid
        // hot path passes every cap as ∞, so skip the O(n log n) sort then.
        self.by_cap.clear();
        if flows.iter().any(|f| f.cap.is_finite()) {
            self.by_cap.extend(0..nf as u32);
            self.by_cap.sort_unstable_by(|&a, &b| {
                flows[a as usize]
                    .cap
                    .partial_cmp(&flows[b as usize].cap)
                    .expect("NaN cap")
            });
        }
        let ncap = self.by_cap.len();
        let mut cap_ix = 0usize;
        let mut unfrozen = nf;

        // Seed the lazy heap with every active link's saturation level.
        self.heap.clear();
        self.heap.reserve(self.active_links.len());
        for li in 0..self.active_links.len() {
            let l = self.active_links[li];
            let key = self.fill(l);
            self.heap_push(key, l);
        }

        macro_rules! freeze {
            ($i:expr, $at:expr) => {{
                let i = $i as usize;
                if !self.frozen[i] {
                    self.frozen[i] = true;
                    rates[i] = $at;
                    unfrozen -= 1;
                    for &l in flows[i].path {
                        self.remaining[l as usize] -= $at;
                        self.users[l as usize] -= 1;
                    }
                }
            }};
        }

        // Freeze every flow of link `l` at `level`.
        macro_rules! freeze_link {
            ($l:expr, $level:expr) => {{
                let l = $l as usize;
                let end = self.cursor[l];
                let begin = end - self.count[l];
                for ix in begin..end {
                    let i = self.link_flows[ix as usize];
                    freeze!(i, $level);
                }
            }};
        }

        while unfrozen > 0 {
            // True minimum saturation level via lazy re-evaluation: recorded
            // keys are lower bounds (levels only rise), so a popped entry
            // whose fresh value still beats the next key is the minimum.
            let mut min_link: Option<(f64, u32)> = None;
            while let Some((key, l)) = self.heap_pop() {
                let fresh = self.fill(l);
                if fresh.is_infinite() {
                    continue; // all its flows froze through other links
                }
                if fresh <= key * (1.0 + TIE_REL)
                    || self.heap.first().is_none_or(|&(next, _)| fresh <= next)
                {
                    min_link = Some((fresh, l));
                    break;
                }
                self.heap_push(fresh, l);
            }

            while cap_ix < ncap && self.frozen[self.by_cap[cap_ix] as usize] {
                cap_ix += 1;
            }
            let cap_limit = if cap_ix < ncap {
                flows[self.by_cap[cap_ix] as usize].cap
            } else {
                f64::INFINITY
            };

            match min_link {
                Some((link_limit, l)) if cap_limit > link_limit => {
                    // The bottleneck link saturates first. Also drain every
                    // other link tied at (numerically) the same level.
                    let tie = link_limit * (1.0 + TIE_REL) + 1e-30;
                    freeze_link!(l, link_limit);
                    while let Some(&(key, l2)) = self.heap.first() {
                        if key > tie {
                            break;
                        }
                        self.heap_pop();
                        let fresh = self.fill(l2);
                        if fresh.is_infinite() {
                            continue;
                        }
                        if fresh <= tie {
                            freeze_link!(l2, link_limit);
                        } else {
                            self.heap_push(fresh, l2);
                        }
                    }
                }
                Some((link_limit, l)) => {
                    // A cap binds first: put the link back, freeze every
                    // flow capped at or below this level.
                    self.heap_push(link_limit, l);
                    while cap_ix < ncap {
                        let i = self.by_cap[cap_ix];
                        if self.frozen[i as usize] {
                            cap_ix += 1;
                            continue;
                        }
                        if flows[i as usize].cap > cap_limit {
                            break;
                        }
                        freeze!(i, flows[i as usize].cap);
                        cap_ix += 1;
                    }
                }
                None if cap_limit.is_finite() => {
                    // Only capped, link-less flows remain.
                    while cap_ix < ncap {
                        let i = self.by_cap[cap_ix];
                        if !self.frozen[i as usize] {
                            freeze!(i, flows[i as usize].cap);
                        }
                        cap_ix += 1;
                    }
                }
                None => {
                    // No links, no finite caps: defensive fallback.
                    for i in 0..nf as u32 {
                        if !self.frozen[i as usize] {
                            let cap = flows[i as usize].cap.min(f64::MAX);
                            freeze!(i, cap);
                        }
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Incremental mode
    // ------------------------------------------------------------------

    /// Enter (or reset) incremental mode over fixed link `capacity`.
    /// Clears any previously persisted solution and slot state.
    pub fn begin_incremental(&mut self, capacity: &[f64]) {
        assert_eq!(capacity.len(), self.n_links, "capacity array size mismatch");
        self.inc_capacity.clear();
        self.inc_capacity.extend_from_slice(capacity);
        self.inc_ready = false;
        self.slot_path.clear();
        self.slot_pos.clear();
        self.slot_rate.clear();
        self.slot_alive.clear();
        self.slot_gen.clear();
        self.slot_pending.clear();
        self.free_slots.clear();
        self.n_alive = 0;
        self.total_entries = 0;
        self.link_list.clear();
        self.link_list.resize(self.n_links, Vec::new());
        self.link_remaining.clear();
        self.link_remaining.resize(self.n_links, 0.0);
        self.link_level.clear();
        self.link_level.resize(self.n_links, f64::INFINITY);
        self.inc_active.clear();
        self.inc_active_pos.clear();
        self.inc_active_pos.resize(self.n_links, u32::MAX);
        self.dirty.clear();
        self.dirty_flag.clear();
        self.dirty_flag.resize(self.n_links, false);
        self.pending_adds.clear();
        self.activated.clear();
        self.deltas_open = false;
        self.changed.clear();
        self.res_rem.resize(self.n_links, 0.0);
        self.res_users.resize(self.n_links, 0);
        self.link_mark.clear();
        self.link_mark.resize(self.n_links, 0);
        self.bfs_mark.clear();
        self.bfs_mark.resize(self.n_links, 0);
        self.old_level.clear();
        self.old_level.resize(self.n_links, f64::INFINITY);
        self.old_mark.clear();
        self.old_mark.resize(self.n_links, 0);
        self.res_state.clear();
        self.res_member.clear();
        self.res_epoch = 0;
        self.rebalance_id = 0;
        self.n_full_solves = 0;
        self.n_incremental_solves = 0;
        self.n_single_bottleneck_solves = 0;
        if self.inv.is_empty() {
            self.inv = (0..4096)
                .map(|u| {
                    if u == 0 {
                        f64::INFINITY
                    } else {
                        1.0 / u as f64
                    }
                })
                .collect();
        }
    }

    /// `1/u` from the table (division fallback above its range).
    #[inline]
    fn recip(&self, u: u32) -> f64 {
        match self.inv.get(u as usize) {
            Some(&r) => r,
            None => 1.0 / u as f64,
        }
    }

    #[inline]
    fn mark_dirty(&mut self, l: u32) {
        if !self.dirty_flag[l as usize] {
            self.dirty_flag[l as usize] = true;
            self.dirty.push(l);
        }
    }

    /// Adjust link `l`'s capacity mid-session (bits/s), e.g. to push a
    /// demand reservation: the hybrid backend sets the fluid capacity to
    /// line rate minus the foreground's measured load. If the link carries
    /// flows it is marked dirty and the next [`Self::rebalance`]
    /// redistributes; an idle link just remembers the new capacity for its
    /// next activation. Incremental mode only.
    pub fn set_capacity(&mut self, l: u32, cap: f64) {
        assert!(
            !self.inc_capacity.is_empty() || self.n_links == 0,
            "call begin_incremental first"
        );
        let li = l as usize;
        let old = self.inc_capacity[li];
        if old == cap {
            return;
        }
        self.inc_capacity[li] = cap;
        if !self.link_list[li].is_empty() {
            self.open_deltas();
            // Keep the converged-residual invariant `remaining = capacity
            // − Σ rates`; a deep cut can drive it negative until the
            // rebalance squeezes the flows back under the new capacity.
            self.link_remaining[li] += cap - old;
            self.mark_dirty(l);
        }
    }

    /// Register a new flow over `path` (uncapped). Returns its stable slot
    /// id, valid until [`Self::remove_flow`]. Its rate is assigned by the
    /// next [`Self::rebalance`].
    pub fn add_flow(&mut self, path: &[u32]) -> u32 {
        assert!(
            !self.inc_capacity.is_empty() || self.n_links == 0,
            "call begin_incremental first"
        );
        assert!(path.len() <= u8::MAX as usize + 1, "path too long");
        self.open_deltas();
        let slot = match self.free_slots.pop() {
            Some(s) => s,
            None => {
                let s = self.slot_path.len() as u32;
                self.slot_path.push(Vec::new());
                self.slot_pos.push(Vec::new());
                self.slot_rate.push(0.0);
                self.slot_alive.push(false);
                self.slot_gen.push(0);
                self.slot_pending.push(false);
                self.res_state.push(0);
                self.res_member.push(0);
                s
            }
        };
        let si = slot as usize;
        let mut path_v = std::mem::take(&mut self.slot_path[si]);
        let mut pos_v = std::mem::take(&mut self.slot_pos[si]);
        path_v.clear();
        pos_v.clear();
        for (hop, &l) in path.iter().enumerate() {
            let li = l as usize;
            if self.link_list[li].is_empty() {
                // Link (re)activates: no converged history applies to it.
                self.link_remaining[li] = self.inc_capacity[li];
                self.link_level[li] = f64::INFINITY;
                self.inc_active_pos[li] = self.inc_active.len() as u32;
                self.inc_active.push(l);
                self.activated.push(l);
            }
            pos_v.push(self.link_list[li].len() as u32);
            self.link_list[li].push((slot, hop as u8));
            path_v.push(l);
            self.mark_dirty(l);
        }
        self.slot_path[si] = path_v;
        self.slot_pos[si] = pos_v;
        self.slot_rate[si] = 0.0;
        self.slot_alive[si] = true;
        self.slot_pending[si] = true;
        self.pending_adds.push(slot);
        self.n_alive += 1;
        self.total_entries += path.len();
        slot
    }

    /// Retire the flow in `slot`. Its capacity share is refunded to its
    /// links; the next [`Self::rebalance`] redistributes it.
    pub fn remove_flow(&mut self, slot: u32) {
        let si = slot as usize;
        assert!(self.slot_alive[si], "remove_flow on a dead slot");
        self.open_deltas();
        let path_v = std::mem::take(&mut self.slot_path[si]);
        let pos_v = std::mem::take(&mut self.slot_pos[si]);
        let rate = self.slot_rate[si];
        for (&l, &pos) in path_v.iter().zip(&pos_v) {
            let li = l as usize;
            let list = &mut self.link_list[li];
            list.swap_remove(pos as usize);
            if (pos as usize) < list.len() {
                let (moved_slot, moved_hop) = list[pos as usize];
                self.slot_pos[moved_slot as usize][moved_hop as usize] = pos;
            }
            self.link_remaining[li] += rate;
            if list.is_empty() {
                // Deactivate: swap-remove from the active-link set.
                let p = self.inc_active_pos[li] as usize;
                self.inc_active.swap_remove(p);
                if p < self.inc_active.len() {
                    self.inc_active_pos[self.inc_active[p] as usize] = p as u32;
                }
                self.inc_active_pos[li] = u32::MAX;
            }
            self.mark_dirty(l);
        }
        self.total_entries -= path_v.len();
        // Return the (cleared) buffers to the slot for reuse.
        self.slot_path[si] = {
            let mut v = path_v;
            v.clear();
            v
        };
        self.slot_pos[si] = {
            let mut v = pos_v;
            v.clear();
            v
        };
        if self.slot_pending[si] {
            self.slot_pending[si] = false;
            let p = self.pending_adds.iter().position(|&s| s == slot).unwrap();
            self.pending_adds.swap_remove(p);
        }
        self.slot_alive[si] = false;
        self.slot_gen[si] = self.slot_gen[si].wrapping_add(1);
        self.slot_rate[si] = 0.0;
        self.free_slots.push(slot);
        self.n_alive -= 1;
    }

    /// Converged rate of the flow in `slot` (bits/s).
    #[inline]
    pub fn rate(&self, slot: u32) -> f64 {
        self.slot_rate[slot as usize]
    }

    /// The path registered for `slot`.
    #[inline]
    pub fn path(&self, slot: u32) -> &[u32] {
        &self.slot_path[slot as usize]
    }

    /// Slots whose rate was written by the last [`Self::rebalance`].
    #[inline]
    pub fn changed(&self) -> &[u32] {
        &self.changed
    }

    /// Links currently crossed by at least one flow (incremental mode).
    #[inline]
    pub fn incremental_active_links(&self) -> &[u32] {
        &self.inc_active
    }

    /// Converged residual capacity of link `l` in incremental mode
    /// (bits/s); near zero means the link is a saturated bottleneck.
    #[inline]
    pub fn link_residual(&self, l: u32) -> f64 {
        self.link_remaining[l as usize]
    }

    /// Alive flow count in incremental mode.
    #[inline]
    pub fn n_active(&self) -> usize {
        self.n_alive
    }

    /// Alive flows currently crossing link `l` (incremental mode).
    #[inline]
    pub fn link_flow_count(&self, l: u32) -> u32 {
        self.link_list[l as usize].len() as u32
    }

    /// Slots of the alive flows currently crossing link `l` (incremental
    /// mode). The hybrid coupler walks these to age-weight each flow's
    /// claim on a shared foreground link.
    #[inline]
    pub fn link_flows(&self, l: u32) -> impl Iterator<Item = u32> + '_ {
        self.link_list[l as usize].iter().map(|&(slot, _)| slot)
    }

    /// True when link `l` currently carries at least one flow (incremental
    /// mode); [`Self::link_residual`] is only meaningful for active links.
    #[inline]
    pub fn is_active(&self, l: u32) -> bool {
        self.inc_active_pos[l as usize] != u32::MAX
    }

    /// `(full, incremental)` solve counts since `begin_incremental`.
    #[inline]
    pub fn solve_stats(&self) -> (u64, u64) {
        (self.n_full_solves, self.n_incremental_solves)
    }

    /// Closed-form single-bottleneck solve count since `begin_incremental`
    /// (events absorbed without running progressive filling at all).
    #[inline]
    pub fn single_bottleneck_solves(&self) -> u64 {
        self.n_single_bottleneck_solves
    }

    /// Links whose converged residual/level changed in the last
    /// [`Self::rebalance`] (residual links plus the event's dirty links):
    /// the only links whose saturation state can have moved.
    #[inline]
    pub fn touched_links(&self) -> &[u32] {
        &self.res_links
    }

    /// Links that went from idle to carrying flows in the last event
    /// (their congestion history is meaningless and must be reset).
    #[inline]
    pub fn activated_links(&self) -> &[u32] {
        &self.activated
    }

    /// Begin a delta batch lazily: the first add/remove after a rebalance
    /// resets the per-event activation record.
    #[inline]
    fn open_deltas(&mut self) {
        if !self.deltas_open {
            self.deltas_open = true;
            self.activated.clear();
        }
    }

    /// The first water level at which the perturbed freeze process departs
    /// from the persisted one: for each dirty link, replay its freeze
    /// history under the new membership and find where it would now
    /// saturate, capped by the level at which it used to bind.
    fn divergence_level(&mut self) -> f64 {
        let mut theta = f64::INFINITY;
        let mut rates = std::mem::take(&mut self.rate_scratch);
        self.dirty_theta.clear();
        self.dirty_theta.resize(self.dirty.len(), f64::INFINITY);
        for di in 0..self.dirty.len() {
            let l = self.dirty[di] as usize;
            if self.link_list[l].is_empty() {
                continue; // deactivated: constrains nothing any more
            }
            rates.clear();
            let mut pending_users = 0u32;
            for &(s, _) in &self.link_list[l] {
                if self.slot_pending[s as usize] {
                    pending_users += 1; // freezes only in the residual
                } else {
                    rates.push(self.slot_rate[s as usize]);
                }
            }
            rates.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN rate"));
            let mut rem = self.inc_capacity[l];
            let mut users = (rates.len() + pending_users as usize) as u32;
            let mut theta_l = f64::INFINITY;
            for &r in &rates {
                let lvl = rem.max(0.0) / users as f64;
                if lvl <= r * (1.0 + TIE_REL) {
                    theta_l = lvl; // saturates before this flow would freeze
                    break;
                }
                rem -= r;
                users -= 1;
            }
            if theta_l.is_infinite() && pending_users > 0 {
                theta_l = rem.max(0.0) / pending_users as f64;
            }
            // If the link used to bind flows, its old freeze round is
            // invalid the moment its membership changes.
            theta_l = theta_l.min(self.link_level[l]);
            self.dirty_theta[di] = theta_l;
            theta = theta.min(theta_l);
        }
        self.rate_scratch = rates;
        theta
    }

    /// Floyd heapify over the whole `heap` buffer (O(n), vs n log n pushes).
    fn heapify(&mut self) {
        let n = self.heap.len();
        for i in (0..n / 2).rev() {
            let mut i = i;
            loop {
                let (a, b) = (2 * i + 1, 2 * i + 2);
                let mut m = i;
                if a < n && self.heap[a].0 < self.heap[m].0 {
                    m = a;
                }
                if b < n && self.heap[b].0 < self.heap[m].0 {
                    m = b;
                }
                if m == i {
                    break;
                }
                self.heap.swap(i, m);
                i = m;
            }
        }
    }

    /// Solve the residual subproblem over the slots currently collected in
    /// `self.changed` (whose `res_state` equals the current epoch). Link
    /// headroom is seeded from the persisted solution plus the residual
    /// flows' refunded converged rates, so prefix flows alone define the
    /// starting state; the solve then runs the same progressive filling as
    /// the one-shot oracle, over dense per-event CSR scratch. Updates
    /// rates, link residuals and binding levels in place.
    fn solve_residual(&mut self) {
        let m = self.changed.len();
        let epoch = self.res_epoch;
        self.res_links.clear();
        self.res_path.clear();
        self.res_off.clear();
        self.res_off.push(0);
        for ci in 0..m {
            let s = self.changed[ci] as usize;
            for hi in 0..self.slot_path[s].len() {
                let l = self.slot_path[s][hi];
                let li = l as usize;
                if self.link_mark[li] != epoch {
                    self.link_mark[li] = epoch;
                    self.res_rem[li] = self.link_remaining[li];
                    self.res_users[li] = 0;
                    self.res_links.push(l);
                    if self.old_mark[li] != self.rebalance_id {
                        // First touch this rebalance: snapshot the binding
                        // level the verification pass compares against.
                        self.old_mark[li] = self.rebalance_id;
                        self.old_level[li] = self.link_level[li];
                    }
                }
                // Refund the residual flow's converged share (0 for adds):
                // prefix flows alone define the starting headroom.
                self.res_rem[li] += self.slot_rate[s];
                self.res_users[li] += 1;
                self.res_path.push(l);
            }
            self.res_off.push(self.res_path.len() as u32);
        }

        // Residual CSR over the shared scratch arrays (`count`/`cursor`/
        // `link_flows` are rebuilt from scratch by every solve, one-shot
        // or incremental, so sharing them is safe).
        let total = self.res_path.len();
        self.link_flows.clear();
        self.link_flows.resize(total, 0);
        let mut at = 0u32;
        for li in 0..self.res_links.len() {
            let l = self.res_links[li] as usize;
            let n = self.res_users[l];
            self.count[l] = n;
            self.cursor[l] = at;
            at += n;
        }
        for ci in 0..m {
            let (b, e) = (self.res_off[ci] as usize, self.res_off[ci + 1] as usize);
            for pi in b..e {
                let l = self.res_path[pi] as usize;
                let c = self.cursor[l];
                self.link_flows[c as usize] = ci as u32;
                self.cursor[l] = c + 1;
            }
        }
        // cursor[l] now points one past link l's residual slice.

        self.frozen.clear();
        self.frozen.resize(m, false);
        self.heap.clear();
        for li in 0..self.res_links.len() {
            let l = self.res_links[li];
            let u = self.res_users[l as usize];
            self.link_level[l as usize] = f64::INFINITY;
            if u > 0 {
                let key = self.res_rem[l as usize].max(0.0) * self.recip(u);
                self.heap.push((key, l));
            }
        }
        self.heapify();

        let mut unfrozen = m;

        macro_rules! fill {
            ($l:expr) => {{
                let l = $l as usize;
                let u = self.res_users[l];
                if u == 0 {
                    f64::INFINITY
                } else {
                    self.res_rem[l].max(0.0) * self.recip(u)
                }
            }};
        }

        macro_rules! freeze_link {
            ($l:expr, $level:expr) => {{
                let l = $l as usize;
                self.link_level[l] = $level;
                let end = self.cursor[l];
                let begin = end - self.count[l];
                for ix in begin..end {
                    let f = self.link_flows[ix as usize] as usize;
                    if !self.frozen[f] {
                        self.frozen[f] = true;
                        self.slot_rate[self.changed[f] as usize] = $level;
                        unfrozen -= 1;
                        let (b, e) = (self.res_off[f] as usize, self.res_off[f + 1] as usize);
                        for pi in b..e {
                            let l2 = self.res_path[pi] as usize;
                            self.res_rem[l2] -= $level;
                            self.res_users[l2] -= 1;
                        }
                    }
                }
            }};
        }

        while unfrozen > 0 {
            let mut min_link: Option<(f64, u32)> = None;
            while let Some((key, l)) = self.heap_pop() {
                let fresh = fill!(l);
                if fresh.is_infinite() {
                    continue;
                }
                if fresh <= key * (1.0 + TIE_REL)
                    || self.heap.first().is_none_or(|&(next, _)| fresh <= next)
                {
                    min_link = Some((fresh, l));
                    break;
                }
                self.heap_push(fresh, l);
            }
            match min_link {
                Some((level, l)) => {
                    let tie = level * (1.0 + TIE_REL) + 1e-30;
                    freeze_link!(l, level);
                    while let Some(&(key, l2)) = self.heap.first() {
                        if key > tie {
                            break;
                        }
                        self.heap_pop();
                        let fresh = fill!(l2);
                        if fresh.is_infinite() {
                            continue;
                        }
                        if fresh <= tie {
                            freeze_link!(l2, level);
                        } else {
                            self.heap_push(fresh, l2);
                        }
                    }
                }
                None => {
                    // Only link-less (empty-path) flows remain; match the
                    // one-shot oracle's uncapped fallback.
                    for f in 0..m {
                        if !self.frozen[f] {
                            self.frozen[f] = true;
                            self.slot_rate[self.changed[f] as usize] = f64::MAX;
                            unfrozen -= 1;
                        }
                    }
                }
            }
        }

        // Persist the converged link state for the next warm start.
        for li in 0..self.res_links.len() {
            let l = self.res_links[li] as usize;
            self.link_remaining[l] = self.res_rem[l];
        }
    }

    /// Post-solve consistency check: a kept (non-residual) flow is valid
    /// only if no touched link now binds below its rate (it would need
    /// squeezing) and its old binding level did not move up or vanish (it
    /// would be entitled to more). Collects violating flows; an empty
    /// result proves the composed solution IS the global max-min solution
    /// (max-min allocations are unique, and every flow then has a
    /// saturated, level-consistent bottleneck).
    fn verify_residual(&mut self) -> bool {
        self.violations.clear();
        let rid = self.rebalance_id;
        for li in 0..self.res_links.len() {
            let l = self.res_links[li] as usize;
            let new_l = self.link_level[l];
            let old_l = self.old_level[l];
            if new_l.is_infinite() && old_l.is_infinite() {
                continue;
            }
            let rose = old_l.is_finite() && new_l > old_l * (1.0 + TIE_REL);
            for ix in 0..self.link_list[l].len() {
                let (s, _) = self.link_list[l][ix];
                let si = s as usize;
                if self.res_member[si] == rid {
                    continue; // re-solved already
                }
                let r = self.slot_rate[si];
                let squeeze = r > new_l * (1.0 + TIE_REL);
                let raise = rose && r >= old_l * (1.0 - TIE_REL);
                if squeeze || raise {
                    self.violations.push(s);
                }
            }
        }
        self.violations.is_empty()
    }

    /// Add flow `s` to the residual and queue its binding links as BFS
    /// frontier (non-binding links cannot transmit influence; they are
    /// still seeded as constraints by the solve).
    fn recruit(&mut self, s: u32) {
        let si = s as usize;
        self.res_member[si] = self.rebalance_id;
        self.changed.push(s);
        for hi in 0..self.slot_path[si].len() {
            let l = self.slot_path[si][hi];
            let lvl = self.link_level[l as usize];
            if lvl.is_finite() && self.bfs_mark[l as usize] != self.rebalance_id {
                self.bfs_mark[l as usize] = self.rebalance_id;
                self.bfs_queue.push((l, lvl));
            }
        }
    }

    /// Attempt the closed-form re-level of single dirty link `l`. Valid
    /// when `l` was already a binding bottleneck and every member at its
    /// level is bound by `l` alone (all other path links non-binding): the
    /// new level is `(capacity − Σ frozen-below rates) / k`, provided it
    /// stays above every frozen-below rate (freeze order unchanged) and a
    /// rate *increase* still fits inside each side link's headroom (they
    /// stay non-binding). Commits rates, residuals and the touched-links
    /// record itself and returns `true`; returns `false` untouched when
    /// any condition fails, falling back to the general solve.
    fn try_single_bottleneck(&mut self, l: u32) -> bool {
        let li = l as usize;
        let level = self.link_level[li];
        if self.link_list[li].is_empty() || !level.is_finite() {
            return false;
        }
        let at = level * (1.0 - TIE_REL);
        // Pass 1: split members into the k at-level flows the link binds
        // and the flows frozen below by their own bottlenecks.
        let mut k = 0u32;
        let mut frozen_sum = 0.0f64;
        let mut max_frozen = 0.0f64;
        for &(s, _) in &self.link_list[li] {
            let r = self.slot_rate[s as usize];
            if r >= at {
                k += 1;
            } else {
                frozen_sum += r;
                max_frozen = max_frozen.max(r);
            }
        }
        if k == 0 {
            return false;
        }
        let new_level = (self.inc_capacity[li] - frozen_sum).max(0.0) / k as f64;
        if new_level <= max_frozen * (1.0 + TIE_REL) {
            return false; // the freeze order would change
        }
        // Pass 2: validate the at-level members' side links and accumulate
        // the per-link rate delta (`res_rem`/`link_mark` double as the
        // event-scoped accumulator; any fallback path re-derives them).
        self.res_epoch += 1;
        let epoch = self.res_epoch;
        self.res_links.clear();
        for ix in 0..self.link_list[li].len() {
            let (s, _) = self.link_list[li][ix];
            let si = s as usize;
            let r = self.slot_rate[si];
            if r < at {
                continue;
            }
            for hi in 0..self.slot_path[si].len() {
                let l2 = self.slot_path[si][hi];
                if l2 == l {
                    continue;
                }
                let l2i = l2 as usize;
                if self.link_level[l2i].is_finite() {
                    return false; // a second binding link: cascade risk
                }
                if self.link_mark[l2i] != epoch {
                    self.link_mark[l2i] = epoch;
                    self.res_rem[l2i] = 0.0;
                    self.res_links.push(l2);
                }
                self.res_rem[l2i] += new_level - r;
            }
        }
        if new_level > level {
            for i in 0..self.res_links.len() {
                let l2i = self.res_links[i] as usize;
                if self.res_rem[l2i] * (1.0 + TIE_REL) >= self.link_remaining[l2i] {
                    return false; // a side link would newly saturate
                }
            }
        }
        // Commit: re-rate the k members, move their deltas off the side
        // links' headroom, and re-derive `l`'s own residual exactly.
        for ix in 0..self.link_list[li].len() {
            let (s, _) = self.link_list[li][ix];
            let si = s as usize;
            let r = self.slot_rate[si];
            if r < at {
                continue;
            }
            let delta = new_level - r;
            self.slot_rate[si] = new_level;
            self.changed.push(s);
            for hi in 0..self.slot_path[si].len() {
                let l2 = self.slot_path[si][hi];
                if l2 != l {
                    self.link_remaining[l2 as usize] -= delta;
                }
            }
        }
        self.link_level[li] = new_level;
        self.link_remaining[li] =
            (self.inc_capacity[li] - frozen_sum - new_level * k as f64).max(0.0);
        self.res_links.push(l);
        true
    }

    /// Expansion rounds before giving up on the warm start entirely.
    const MAX_VERIFY_ROUNDS: usize = 8;

    /// Re-solve after a batch of [`Self::add_flow`] / [`Self::remove_flow`]
    /// deltas. Only flows the perturbation can actually reach are
    /// re-frozen: each dirty link recruits the members above its own
    /// divergence level, influence then propagates solely through binding
    /// links into their bound sets, and a verification pass proves the
    /// kept rates still form the unique max-min solution — expanding the
    /// residual and re-solving when it cannot. [`Self::changed`] lists
    /// every slot whose rate was (re)written. Falls back to a full solve
    /// when the delta touches too large a fraction of the problem.
    pub fn rebalance(&mut self) -> Rebalance {
        self.changed.clear();
        self.deltas_open = false;
        // An empty-path add dirties no links but still needs its rate
        // assigned, so pending adds keep the event live.
        if self.dirty.is_empty() && self.pending_adds.is_empty() {
            return Rebalance::Noop;
        }
        self.rebalance_id += 1;
        let rid = self.rebalance_id;

        // Closed-form fast path: an event that dirtied exactly one link
        // (an incast receiver's demand reservation, a single-hop flow
        // departure) whose members are bound by that link alone re-levels
        // in O(members) with no progressive filling.
        if self.inc_ready && self.pending_adds.is_empty() && self.dirty.len() == 1 {
            let l = self.dirty[0];
            if self.try_single_bottleneck(l) {
                self.n_single_bottleneck_solves += 1;
                self.dirty_flag[l as usize] = false;
                self.dirty.clear();
                return Rebalance::SingleBottleneck;
            }
        }

        let dirty_entries: usize = self
            .dirty
            .iter()
            .map(|&l| self.link_list[l as usize].len())
            .sum();
        // Warm-starting pays off only when the dirty neighbourhood is a
        // small fraction of the whole problem; a wave arrival or an incast
        // receiver link invalidates most of it, so solve from scratch.
        let mut full = !self.inc_ready || 4 * dirty_entries > self.total_entries;

        if !full {
            self.divergence_level();
            // Seed the frontier: each dirty link recruits at its own
            // divergence level (the first level its freeze history departs
            // at); cascade links recruit their bound set.
            self.bfs_queue.clear();
            for di in 0..self.dirty.len() {
                let l = self.dirty[di];
                if !self.link_list[l as usize].is_empty() {
                    self.bfs_mark[l as usize] = rid;
                    self.bfs_queue.push((l, self.dirty_theta[di]));
                }
            }
            for pi in 0..self.pending_adds.len() {
                let s = self.pending_adds[pi];
                self.res_member[s as usize] = rid;
                self.changed.push(s);
            }
            let mut qi = 0;
            let mut rounds = 0usize;
            loop {
                // Drain the frontier, recruiting members at/above each
                // link's threshold.
                while qi < self.bfs_queue.len() {
                    let (l, thr) = self.bfs_queue[qi];
                    qi += 1;
                    let cut = thr * (1.0 - 2.0 * TIE_REL);
                    let li = l as usize;
                    for ix in 0..self.link_list[li].len() {
                        let (s, _) = self.link_list[li][ix];
                        let si = s as usize;
                        if self.res_member[si] != rid
                            && !self.slot_pending[si]
                            && self.slot_rate[si] >= cut
                        {
                            self.recruit(s);
                        }
                    }
                }
                self.res_epoch += 1;
                let epoch = self.res_epoch;
                for ci in 0..self.changed.len() {
                    self.res_state[self.changed[ci] as usize] = epoch;
                }
                self.solve_residual();
                rounds += 1;
                if self.verify_residual() {
                    break;
                }
                if rounds >= Self::MAX_VERIFY_ROUNDS {
                    full = true; // cascade would not localize; start over
                    break;
                }
                // Under-recruited: pull in the violating flows and resume
                // the BFS from their links.
                let viol = std::mem::take(&mut self.violations);
                for &s in &viol {
                    if self.res_member[s as usize] != rid {
                        self.recruit(s);
                    }
                }
                self.violations = viol;
            }
        }

        let kind = if full {
            self.res_epoch += 1;
            let epoch = self.res_epoch;
            self.changed.clear();
            for s in 0..self.slot_alive.len() {
                if self.slot_alive[s] {
                    self.res_state[s] = epoch;
                    self.res_member[s] = rid;
                    self.changed.push(s as u32);
                }
            }
            // A full solve re-derives every rate: refunding each flow's
            // converged share restores every link to raw capacity.
            self.solve_residual();
            self.n_full_solves += 1;
            Rebalance::Full
        } else {
            self.n_incremental_solves += 1;
            Rebalance::Incremental
        };
        self.inc_ready = true;

        // Dirty links whose saturation state may have moved without any
        // residual flow crossing them (pure-removal headroom refunds) are
        // still "touched" for the caller's congestion bookkeeping.
        let epoch = self.res_epoch;
        for di in 0..self.dirty.len() {
            let l = self.dirty[di];
            if self.link_mark[l as usize] != epoch {
                self.link_mark[l as usize] = epoch;
                self.res_links.push(l);
            }
        }

        for &s in &self.pending_adds {
            self.slot_pending[s as usize] = false;
        }
        self.pending_adds.clear();
        for &l in &self.dirty {
            self.dirty_flag[l as usize] = false;
        }
        self.dirty.clear();
        kind
    }
}

/// One-shot convenience wrapper over [`WaterFiller`].
pub fn water_fill(capacity: &[f64], flows: &[Demand<'_>]) -> Vec<f64> {
    let mut wf = WaterFiller::new(capacity.len());
    let mut rates = Vec::new();
    wf.allocate(capacity, flows, &mut rates);
    rates
}

/// Verify feasibility: per-link load relative to capacity. Returns the
/// worst relative overshoot (≤ 0 when feasible).
pub fn worst_oversubscription(capacity: &[f64], flows: &[Demand<'_>], rates: &[f64]) -> f64 {
    let mut load = vec![0.0f64; capacity.len()];
    for (f, &r) in flows.iter().zip(rates) {
        for &l in f.path {
            load[l as usize] += r;
        }
    }
    load.iter()
        .zip(capacity)
        .map(|(&ld, &cap)| if cap > 0.0 { ld / cap - 1.0 } else { 0.0 })
        .fold(f64::NEG_INFINITY, f64::max)
}

/// Verify Pareto optimality / max-min structure: every flow is either at
/// its cap or crosses at least one link whose load is within `tol` of its
/// capacity (a saturated bottleneck — no flow's rate can be raised without
/// lowering another's). Returns the first violating flow.
pub fn find_non_pareto_flow(
    capacity: &[f64],
    flows: &[Demand<'_>],
    rates: &[f64],
    tol: f64,
) -> Option<usize> {
    let mut load = vec![0.0f64; capacity.len()];
    for (f, &r) in flows.iter().zip(rates) {
        for &l in f.path {
            load[l as usize] += r;
        }
    }
    for (i, (f, &r)) in flows.iter().zip(rates).enumerate() {
        if r >= f.cap * (1.0 - tol) {
            continue; // capped
        }
        let bottlenecked = f
            .path
            .iter()
            .any(|&l| load[l as usize] >= capacity[l as usize] * (1.0 - tol));
        if !bottlenecked {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const G: f64 = 1e9;

    #[test]
    fn single_flow_gets_line_rate() {
        let caps = [100.0 * G, 100.0 * G];
        let path = [0u32, 1];
        let flows = [Demand {
            cap: f64::INFINITY,
            path: &path,
        }];
        let r = water_fill(&caps, &flows);
        assert!((r[0] - 100.0 * G).abs() < 1.0);
    }

    #[test]
    fn two_flows_share_bottleneck_equally() {
        let caps = [100.0 * G, 100.0 * G, 100.0 * G];
        let (pa, pb) = ([0u32, 2], [1u32, 2]);
        let flows = [
            Demand {
                cap: f64::INFINITY,
                path: &pa,
            },
            Demand {
                cap: f64::INFINITY,
                path: &pb,
            },
        ];
        let r = water_fill(&caps, &flows);
        assert!((r[0] - 50.0 * G).abs() < 1.0, "{r:?}");
        assert!((r[1] - 50.0 * G).abs() < 1.0, "{r:?}");
    }

    #[test]
    fn capped_flow_releases_share() {
        // Two flows on one 100G link; one capped at 20G → other gets 80G.
        let caps = [100.0 * G];
        let p = [0u32];
        let flows = [
            Demand {
                cap: 20.0 * G,
                path: &p,
            },
            Demand {
                cap: f64::INFINITY,
                path: &p,
            },
        ];
        let r = water_fill(&caps, &flows);
        assert!((r[0] - 20.0 * G).abs() < 1.0, "{r:?}");
        assert!((r[1] - 80.0 * G).abs() < 1.0, "{r:?}");
    }

    #[test]
    fn classic_maxmin_example() {
        // Three links a(10) b(10) c(4); flows: f0 over a+c, f1 over b+c,
        // f2 over a, f3 over b. Max-min: f0=f1=2 (c saturates), f2=f3=8.
        let caps = [10.0, 10.0, 4.0];
        let (p0, p1, p2, p3) = ([0u32, 2], [1u32, 2], [0u32], [1u32]);
        let flows = [
            Demand {
                cap: f64::INFINITY,
                path: &p0,
            },
            Demand {
                cap: f64::INFINITY,
                path: &p1,
            },
            Demand {
                cap: f64::INFINITY,
                path: &p2,
            },
            Demand {
                cap: f64::INFINITY,
                path: &p3,
            },
        ];
        let r = water_fill(&caps, &flows);
        assert!(
            (r[0] - 2.0).abs() < 1e-9 && (r[1] - 2.0).abs() < 1e-9,
            "{r:?}"
        );
        assert!(
            (r[2] - 8.0).abs() < 1e-9 && (r[3] - 8.0).abs() < 1e-9,
            "{r:?}"
        );
        assert!(worst_oversubscription(&caps, &flows, &r) < 1e-9);
        assert_eq!(find_non_pareto_flow(&caps, &flows, &r, 1e-9), None);
    }

    #[test]
    fn incast_divides_receiver_link() {
        let n = 64usize;
        let caps: Vec<f64> = (0..n + 1).map(|_| 100.0 * G).collect();
        let paths: Vec<[u32; 2]> = (0..n).map(|i| [i as u32, n as u32]).collect();
        let flows: Vec<Demand<'_>> = paths
            .iter()
            .map(|p| Demand {
                cap: f64::INFINITY,
                path: p,
            })
            .collect();
        let r = water_fill(&caps, &flows);
        for &x in &r {
            assert!((x - 100.0 * G / n as f64).abs() < 1.0, "{x}");
        }
    }

    #[test]
    fn cascade_of_bottlenecks_resolves_in_order() {
        // Chain where freeing one bottleneck reveals the next: link 0 has
        // 4 flows (25 each), link 1 has flows {3} plus two private flows
        // at higher shares.
        let caps = [100.0, 90.0];
        let (p_a, p_b, p_ab) = ([0u32], [1u32], [0u32, 1]);
        let flows = [
            Demand {
                cap: f64::INFINITY,
                path: &p_a,
            },
            Demand {
                cap: f64::INFINITY,
                path: &p_a,
            },
            Demand {
                cap: f64::INFINITY,
                path: &p_a,
            },
            Demand {
                cap: f64::INFINITY,
                path: &p_ab,
            },
            Demand {
                cap: f64::INFINITY,
                path: &p_b,
            },
            Demand {
                cap: f64::INFINITY,
                path: &p_b,
            },
        ];
        let r = water_fill(&caps, &flows);
        // Link 0 saturates at 25 for its four flows; link 1 then has
        // 90 − 25 = 65 left for two flows → 32.5 each.
        for i in 0..4 {
            assert!((r[i] - 25.0).abs() < 1e-9, "{r:?}");
        }
        assert!((r[4] - 32.5).abs() < 1e-9, "{r:?}");
        assert!((r[5] - 32.5).abs() < 1e-9, "{r:?}");
        assert!(worst_oversubscription(&caps, &flows, &r) < 1e-9);
        assert_eq!(find_non_pareto_flow(&caps, &flows, &r, 1e-9), None);
    }

    #[test]
    fn filler_reuse_is_consistent() {
        let caps = [10.0, 10.0, 4.0];
        let mut wf = WaterFiller::new(3);
        let mut rates = Vec::new();
        // First run with one shape…
        let p_all = [0u32, 1, 2];
        let flows = [Demand {
            cap: f64::INFINITY,
            path: &p_all,
        }];
        wf.allocate(&caps, &flows, &mut rates);
        assert!((rates[0] - 4.0).abs() < 1e-9);
        // …then a different shape reusing the scratch state.
        let (p0, p1) = ([0u32], [0u32, 1]);
        let flows = [
            Demand {
                cap: f64::INFINITY,
                path: &p0,
            },
            Demand {
                cap: 3.0,
                path: &p1,
            },
        ];
        wf.allocate(&caps, &flows, &mut rates);
        assert!((rates[1] - 3.0).abs() < 1e-9, "{rates:?}");
        assert!((rates[0] - 7.0).abs() < 1e-9, "{rates:?}");
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert!(water_fill(&[1.0 * G], &[]).is_empty());
        let flows = [Demand {
            cap: 5.0 * G,
            path: &[][..],
        }];
        let r = water_fill(&[1.0 * G], &flows);
        assert!(
            (r[0] - 5.0 * G).abs() < 1.0,
            "empty-path flow takes its cap: {r:?}"
        );
    }

    #[test]
    fn detectors_flag_bad_allocations() {
        let caps = [10.0];
        let p = [0u32];
        let flows = [
            Demand {
                cap: f64::INFINITY,
                path: &p,
            },
            Demand {
                cap: f64::INFINITY,
                path: &p,
            },
        ];
        // Oversubscribed by 50%.
        assert!(worst_oversubscription(&caps, &flows, &[7.5, 7.5]) > 0.49);
        // Feasible but not Pareto-optimal (link only half full).
        assert_eq!(
            find_non_pareto_flow(&caps, &flows, &[2.5, 2.5], 1e-9),
            Some(0)
        );
    }

    /// Compare every alive incremental rate against a from-scratch
    /// `allocate` oracle over the same flow set.
    fn assert_matches_oracle(wf: &WaterFiller, caps: &[f64], alive: &[(u32, Vec<u32>)], ctx: &str) {
        let demands: Vec<Demand<'_>> = alive
            .iter()
            .map(|(_, p)| Demand {
                cap: f64::INFINITY,
                path: p,
            })
            .collect();
        let oracle = water_fill(caps, &demands);
        for ((slot, _), &want) in alive.iter().zip(&oracle) {
            let got = wf.rate(*slot);
            let rel = (got - want).abs() / want.max(f64::MIN_POSITIVE);
            assert!(
                rel <= 1e-9,
                "{ctx}: slot {slot} rate {got} vs oracle {want} (rel {rel:.3e})"
            );
        }
        // The incremental solution must be feasible and Pareto on its own.
        let rates: Vec<f64> = alive.iter().map(|(s, _)| wf.rate(*s)).collect();
        assert!(
            worst_oversubscription(caps, &demands, &rates) < 1e-6,
            "{ctx}: oversubscribed"
        );
        assert_eq!(
            find_non_pareto_flow(caps, &demands, &rates, 1e-6),
            None,
            "{ctx}: not Pareto-optimal"
        );
    }

    #[test]
    fn incremental_single_add_and_remove_match_oracle() {
        let caps = [10.0, 10.0, 4.0];
        let mut wf = WaterFiller::new(3);
        wf.begin_incremental(&caps);
        let mut alive: Vec<(u32, Vec<u32>)> = Vec::new();
        for path in [vec![0u32, 2], vec![1u32, 2], vec![0u32], vec![1u32]] {
            let s = wf.add_flow(&path);
            alive.push((s, path));
            wf.rebalance();
            assert_matches_oracle(&wf, &caps, &alive, "add");
        }
        // Classic max-min example state: f0=f1=2, f2=f3=8.
        assert!((wf.rate(alive[0].0) - 2.0).abs() < 1e-9);
        assert!((wf.rate(alive[2].0) - 8.0).abs() < 1e-9);
        // Remove the shared-bottleneck flow f0: f1 takes all of link 2.
        let (s0, _) = alive.remove(0);
        wf.remove_flow(s0);
        wf.rebalance();
        assert_matches_oracle(&wf, &caps, &alive, "remove");
        assert!((wf.rate(alive[0].0) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn incremental_pure_removal_without_binding_changes_nothing() {
        // Two flows on disjoint halves of a 2-link net; removing one must
        // not touch the other (empty changed set).
        let caps = [10.0, 10.0];
        let mut wf = WaterFiller::new(2);
        wf.begin_incremental(&caps);
        let a = wf.add_flow(&[0]);
        let b = wf.add_flow(&[1]);
        wf.rebalance();
        wf.remove_flow(a);
        let kind = wf.rebalance();
        assert_eq!(kind, Rebalance::Incremental);
        assert!(wf.changed().is_empty(), "{:?}", wf.changed());
        assert!((wf.rate(b) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn incremental_removal_of_bottlenecked_peer_raises_share() {
        // The case the divergence cap exists for: the departing flow's
        // link was binding, so its peers must be re-frozen even though the
        // link's *new* saturation level sits above their old rates.
        let caps = [9.0];
        let mut wf = WaterFiller::new(1);
        wf.begin_incremental(&caps);
        let s: Vec<u32> = (0..3).map(|_| wf.add_flow(&[0])).collect();
        wf.rebalance();
        for &x in &s {
            assert!((wf.rate(x) - 3.0).abs() < 1e-9);
        }
        wf.remove_flow(s[0]);
        // A departure dirtying a single binding link is exactly the
        // closed-form case: no progressive filling runs at all.
        assert_eq!(wf.rebalance(), Rebalance::SingleBottleneck);
        assert!((wf.rate(s[1]) - 4.5).abs() < 1e-9, "{}", wf.rate(s[1]));
        assert!((wf.rate(s[2]) - 4.5).abs() < 1e-9);
        assert_eq!(wf.single_bottleneck_solves(), 1);
    }

    #[test]
    fn set_capacity_reservation_takes_single_bottleneck_path() {
        // Incast: 8 sources through one receiver link (id 8). A foreground
        // demand reservation shrinks the receiver link; the re-level is
        // the closed form, both down and back up.
        let n = 8usize;
        let caps: Vec<f64> = vec![100.0; n + 1];
        let mut wf = WaterFiller::new(n + 1);
        wf.begin_incremental(&caps);
        let mut alive: Vec<(u32, Vec<u32>)> = Vec::new();
        for i in 0..n {
            let p = vec![i as u32, n as u32];
            let s = wf.add_flow(&p);
            alive.push((s, p));
        }
        wf.rebalance();
        assert_matches_oracle(&wf, &caps, &alive, "initial");
        let mut caps2 = caps.clone();
        caps2[n] = 40.0;
        wf.set_capacity(n as u32, 40.0);
        assert_eq!(wf.rebalance(), Rebalance::SingleBottleneck);
        assert_matches_oracle(&wf, &caps2, &alive, "reserve");
        assert_eq!(wf.changed().len(), n);
        assert!(wf.touched_links().contains(&(n as u32)));
        // Releasing part of the reservation re-levels upward the same way
        // (the per-source side links keep ample headroom).
        caps2[n] = 80.0;
        wf.set_capacity(n as u32, 80.0);
        assert_eq!(wf.rebalance(), Rebalance::SingleBottleneck);
        assert_matches_oracle(&wf, &caps2, &alive, "release");
        assert_eq!(wf.single_bottleneck_solves(), 2);
        for (s, _) in &alive {
            assert!((wf.rate(*s) - 10.0).abs() < 1e-9);
        }
        // No-op capacity write: nothing dirtied, nothing solved.
        wf.set_capacity(n as u32, 80.0);
        assert_eq!(wf.rebalance(), Rebalance::Noop);
    }

    #[test]
    fn set_capacity_falls_back_when_freeze_order_changes() {
        // Sources 0 (5 Gb/s), 1, 2 through receiver link 3: flow 0 is
        // frozen below the receiver level by its own narrow source link.
        let caps = [5.0, 100.0, 100.0, 30.0];
        let mut wf = WaterFiller::new(4);
        wf.begin_incremental(&caps);
        let mut alive: Vec<(u32, Vec<u32>)> = Vec::new();
        for i in 0..3u32 {
            let p = vec![i, 3];
            let s = wf.add_flow(&p);
            alive.push((s, p));
        }
        wf.rebalance();
        assert!((wf.rate(alive[0].0) - 5.0).abs() < 1e-9);
        assert!((wf.rate(alive[1].0) - 12.5).abs() < 1e-9);
        // A cut that keeps the new level above the frozen flow's rate
        // preserves the freeze order: closed form applies.
        let mut caps2 = caps.to_vec();
        caps2[3] = 21.0;
        wf.set_capacity(3, 21.0);
        assert_eq!(wf.rebalance(), Rebalance::SingleBottleneck);
        assert_matches_oracle(&wf, &caps2, &alive, "valid cut");
        assert!((wf.rate(alive[1].0) - 8.0).abs() < 1e-9);
        // A cut below the frozen rate reorders the freeze: general solve.
        caps2[3] = 12.0;
        wf.set_capacity(3, 12.0);
        assert_ne!(wf.rebalance(), Rebalance::SingleBottleneck);
        assert_matches_oracle(&wf, &caps2, &alive, "deep cut");
        assert!((wf.rate(alive[0].0) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_raise_beyond_side_headroom_falls_back() {
        // Flow a crosses links {0, 2}, flow b crosses {0, 1}; link 1 binds
        // b, link 2 binds a, link 0 binds nobody. Raising link 2 far above
        // link 0's headroom would make link 0 binding — not expressible in
        // the closed form, so the general solve must run.
        let caps = [100.0, 4.0, 10.0];
        let mut wf = WaterFiller::new(3);
        wf.begin_incremental(&caps);
        let a = wf.add_flow(&[0, 2]);
        let b = wf.add_flow(&[0, 1]);
        wf.rebalance();
        assert!((wf.rate(a) - 10.0).abs() < 1e-9);
        assert!((wf.rate(b) - 4.0).abs() < 1e-9);
        wf.set_capacity(2, 200.0);
        assert_ne!(wf.rebalance(), Rebalance::SingleBottleneck);
        let caps2 = [100.0, 4.0, 200.0];
        let alive = vec![(a, vec![0u32, 2]), (b, vec![0u32, 1])];
        assert_matches_oracle(&wf, &caps2, &alive, "raise");
        assert!((wf.rate(a) - 96.0).abs() < 1e-9);
    }

    #[test]
    fn incremental_batches_and_slot_reuse_match_oracle() {
        let caps = [8.0, 12.0, 20.0, 5.0];
        let mut wf = WaterFiller::new(4);
        wf.begin_incremental(&caps);
        let mut alive: Vec<(u32, Vec<u32>)> = Vec::new();
        // Batch add (forces a full solve on first rebalance).
        for path in [vec![0u32, 2], vec![1u32, 2], vec![2u32, 3], vec![3u32]] {
            let s = wf.add_flow(&path);
            alive.push((s, path));
        }
        wf.rebalance();
        assert_matches_oracle(&wf, &caps, &alive, "batch add");
        // Same-event add + remove, exercising slot reuse.
        let (dead, _) = alive.remove(1);
        wf.remove_flow(dead);
        let p = vec![0u32, 3];
        let s = wf.add_flow(&p);
        assert_eq!(s, dead, "freed slot is reused");
        alive.push((s, p));
        wf.rebalance();
        assert_matches_oracle(&wf, &caps, &alive, "add+remove batch");
        // Add-then-remove before any rebalance is a clean no-op flow.
        let ghost = wf.add_flow(&[1]);
        wf.remove_flow(ghost);
        wf.rebalance();
        assert_matches_oracle(&wf, &caps, &alive, "ghost flow");
    }

    #[test]
    fn incremental_empty_path_flow_gets_uncapped_rate() {
        // Degenerate but defensive, matching the oracle's uncapped
        // fallback: an empty-path flow dirties no links yet must still be
        // rated by the next rebalance (not left pending at 0).
        let mut wf = WaterFiller::new(2);
        wf.begin_incremental(&[10.0, 10.0]);
        let a = wf.add_flow(&[]);
        assert_ne!(wf.rebalance(), Rebalance::Noop);
        assert_eq!(wf.rate(a), f64::MAX);
        assert_eq!(wf.rebalance(), Rebalance::Noop);
        // begin_incremental starts a fresh session, counters included.
        wf.begin_incremental(&[10.0, 10.0]);
        assert_eq!(wf.solve_stats(), (0, 0));
    }

    /// The tentpole property test: random arrival/departure sequences over
    /// random link sets, every rebalance pinned to the from-scratch oracle
    /// within 1e-9 relative rate error (plus feasibility + Pareto checks).
    #[test]
    fn incremental_matches_oracle_over_random_sequences() {
        let mut seed = 0xD1CE_F00D_5EED_1234u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let (mut n_inc, mut n_full, mut n_sb) = (0u64, 0u64, 0u64);
        for trial in 0..12 {
            let nl = 8 + (next() % 24) as usize;
            // A mix of equal capacities (tie-heavy, like uniform fabrics)
            // and random ones (many distinct bottleneck levels).
            let mut caps: Vec<f64> = (0..nl)
                .map(|_| {
                    if trial % 2 == 0 {
                        100.0
                    } else {
                        (1 + next() % 100) as f64
                    }
                })
                .collect();
            let mut wf = WaterFiller::new(nl);
            wf.begin_incremental(&caps);
            let mut alive: Vec<(u32, Vec<u32>)> = Vec::new();
            for event in 0..120 {
                if next() % 8 == 0 {
                    // Capacity perturbation (a reservation push): a lone
                    // single-link delta, the fast path's natural shape.
                    let l = (next() % nl as u64) as usize;
                    caps[l] = (1 + next() % 100) as f64;
                    wf.set_capacity(l as u32, caps[l]);
                } else {
                    // Batched events now and then; removals at ~40%.
                    let batch = 1 + (next() % 3) as usize;
                    for _ in 0..batch {
                        if !alive.is_empty() && next() % 5 < 2 {
                            let ix = (next() % alive.len() as u64) as usize;
                            let (slot, _) = alive.swap_remove(ix);
                            wf.remove_flow(slot);
                        } else {
                            let len = 1 + (next() % 4) as usize;
                            let mut p: Vec<u32> =
                                (0..len).map(|_| (next() % nl as u64) as u32).collect();
                            p.sort_unstable();
                            p.dedup();
                            let s = wf.add_flow(&p);
                            alive.push((s, p));
                        }
                    }
                }
                wf.rebalance();
                assert_matches_oracle(&wf, &caps, &alive, &format!("trial {trial} ev {event}"));
            }
            let (f, i) = wf.solve_stats();
            n_full += f;
            n_inc += i;
            n_sb += wf.single_bottleneck_solves();
        }
        // The sequences must exercise every path, or the test is vacuous.
        assert!(n_inc > 100, "incremental path barely exercised: {n_inc}");
        assert!(n_full > 10, "full fallback never exercised: {n_full}");
        assert!(n_sb > 0, "single-bottleneck path never exercised: {n_sb}");
    }

    #[test]
    fn random_demands_stay_feasible_and_pareto() {
        // Deterministic pseudo-random stress over a 3-tier-ish link set.
        let mut seed = 0x0123_4567_89AB_CDEFu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for trial in 0..50 {
            let nl = 20 + (next() % 30) as usize;
            let caps: Vec<f64> = (0..nl).map(|_| (1 + next() % 100) as f64).collect();
            let nf = 1 + (next() % 200) as usize;
            let paths: Vec<Vec<u32>> = (0..nf)
                .map(|_| {
                    let len = 1 + (next() % 5) as usize;
                    let mut p: Vec<u32> = (0..len).map(|_| (next() % nl as u64) as u32).collect();
                    p.sort_unstable();
                    p.dedup();
                    p
                })
                .collect();
            let flows: Vec<Demand<'_>> = paths
                .iter()
                .map(|p| {
                    let cap = if next() % 3 == 0 {
                        (1 + next() % 50) as f64
                    } else {
                        f64::INFINITY
                    };
                    Demand { cap, path: p }
                })
                .collect();
            let r = water_fill(&caps, &flows);
            assert!(
                worst_oversubscription(&caps, &flows, &r) < 1e-6,
                "trial {trial} oversubscribed"
            );
            assert_eq!(
                find_non_pareto_flow(&caps, &flows, &r, 1e-6),
                None,
                "trial {trial} not Pareto-optimal"
            );
        }
    }
}
