//! Water-filling max-min fair allocation with per-flow rate caps.
//!
//! The classic progressive-filling algorithm: raise every unfrozen flow's
//! rate uniformly until a link saturates (or a flow hits its cap), freeze
//! the affected flows, subtract their share, repeat.
//!
//! The implementation leans on two structural facts. First, an unfrozen
//! link's saturation level is simply `remaining / users` — independent of
//! the current water level. Second, that quantity can only *increase* when
//! other flows freeze (a flow frozen at level `x ≤ remaining/users` leaves
//! `(remaining − x)/(users − 1) ≥ remaining/users`). Together they make a
//! *lazy min-heap* exact: pop the smallest recorded level, recompute it
//! fresh, and either accept it (it is still the global minimum) or push it
//! back with its new value. Every accepted pop freezes at least one link's
//! worth of flows, so the loop terminates after `O(links + flows)` heap
//! operations instead of the naive `O(rounds · links)` rescans.
//!
//! [`WaterFiller`] owns scratch buffers so the per-event hot path in
//! [`crate::sim::FluidSim`] allocates nothing; the free function
//! [`water_fill`] is the convenient one-shot wrapper used by tests.

/// One flow's demand: an optional rate cap and the directed links it
/// crosses (ids into the capacity array).
#[derive(Clone, Debug)]
pub struct Demand<'a> {
    /// Upper bound on the flow's rate (bits/s); `f64::INFINITY` when only
    /// the links limit it.
    pub cap: f64,
    /// Directed links on the flow's path.
    pub path: &'a [u32],
}

/// Relative tie width for "same" saturation levels: one part per billion
/// (≈ 0.1 bit/s at 100 Gb/s) is far below physical meaning but merges
/// float-divergent equal bottlenecks, so symmetric workloads (permutation,
/// uniform incast) freeze in a handful of rounds.
const TIE_REL: f64 = 1e-9;

/// Reusable progressive-filling allocator over a fixed link universe.
pub struct WaterFiller {
    n_links: usize,
    /// Per-link headroom not yet claimed by frozen flows.
    remaining: Vec<f64>,
    /// Per-link count of *unfrozen* flows.
    users: Vec<u32>,
    /// Per-link total flow count this run (snapshot of `users` at build).
    count: Vec<u32>,
    /// Per-link CSR fill cursor; after building, `cursor[l]` is one past
    /// link `l`'s slice in `link_flows` (slice start = cursor − count).
    cursor: Vec<u32>,
    /// Flow indices grouped by link (CSR payload).
    link_flows: Vec<u32>,
    /// Links used by at least one flow this run.
    active_links: Vec<u32>,
    /// Lazy min-heap of `(saturation level, link)`.
    heap: Vec<(f64, u32)>,
    frozen: Vec<bool>,
    by_cap: Vec<u32>,
}

impl WaterFiller {
    /// An allocator for a network of `n_links` directed links.
    pub fn new(n_links: usize) -> Self {
        WaterFiller {
            n_links,
            remaining: vec![0.0; n_links],
            users: vec![0; n_links],
            count: vec![0; n_links],
            cursor: vec![0; n_links],
            link_flows: Vec::new(),
            active_links: Vec::new(),
            heap: Vec::new(),
            frozen: Vec::new(),
            by_cap: Vec::new(),
        }
    }

    /// Links that carried at least one flow in the last `allocate` call.
    #[inline]
    pub fn last_active_links(&self) -> &[u32] {
        &self.active_links
    }

    /// Capacity left unallocated on link `l` after the last `allocate`
    /// call (bits/s). Only meaningful for links in
    /// [`Self::last_active_links`]; a residual near zero means the link is
    /// saturated — it was a bottleneck in the max-min solution.
    #[inline]
    pub fn residual(&self, l: u32) -> f64 {
        self.remaining[l as usize]
    }

    /// Current saturation level of link `l` (`∞` once all its flows froze).
    #[inline]
    fn fill(&self, l: u32) -> f64 {
        let u = self.users[l as usize];
        if u == 0 {
            f64::INFINITY
        } else {
            self.remaining[l as usize].max(0.0) / u as f64
        }
    }

    #[inline]
    fn heap_push(&mut self, key: f64, l: u32) {
        self.heap.push((key, l));
        let mut i = self.heap.len() - 1;
        while i > 0 {
            let p = (i - 1) / 2;
            if self.heap[p].0 <= self.heap[i].0 {
                break;
            }
            self.heap.swap(i, p);
            i = p;
        }
    }

    #[inline]
    fn heap_pop(&mut self) -> Option<(f64, u32)> {
        let n = self.heap.len();
        if n == 0 {
            return None;
        }
        self.heap.swap(0, n - 1);
        let top = self.heap.pop();
        let n = self.heap.len();
        let mut i = 0;
        loop {
            let (a, b) = (2 * i + 1, 2 * i + 2);
            let mut m = i;
            if a < n && self.heap[a].0 < self.heap[m].0 {
                m = a;
            }
            if b < n && self.heap[b].0 < self.heap[m].0 {
                m = b;
            }
            if m == i {
                break;
            }
            self.heap.swap(i, m);
            i = m;
        }
        top
    }

    /// Max-min fair rates (bits/s) for `flows` over links with the given
    /// `capacity` (bits/s), written into `rates` (resized to match).
    /// Flows with empty paths get their cap (degenerate, defensive).
    pub fn allocate(&mut self, capacity: &[f64], flows: &[Demand<'_>], rates: &mut Vec<f64>) {
        assert_eq!(capacity.len(), self.n_links, "capacity array size mismatch");
        let nf = flows.len();
        rates.clear();
        rates.resize(nf, 0.0);
        if nf == 0 {
            return;
        }

        // Reset only the links the previous run touched.
        for &l in &self.active_links {
            self.users[l as usize] = 0;
        }
        self.active_links.clear();
        let mut total = 0u32;
        for f in flows {
            for &l in f.path {
                if self.users[l as usize] == 0 {
                    self.active_links.push(l);
                    self.remaining[l as usize] = capacity[l as usize];
                }
                self.users[l as usize] += 1;
                total += 1;
            }
        }

        // CSR flow lists per active link.
        self.link_flows.clear();
        self.link_flows.resize(total as usize, 0);
        let mut at = 0u32;
        for &l in &self.active_links {
            let n = self.users[l as usize];
            self.count[l as usize] = n;
            self.cursor[l as usize] = at;
            at += n;
        }
        for (i, f) in flows.iter().enumerate() {
            for &l in f.path {
                let c = self.cursor[l as usize];
                self.link_flows[c as usize] = i as u32;
                self.cursor[l as usize] = c + 1;
            }
        }
        // cursor[l] now points one past link l's slice.

        self.frozen.clear();
        self.frozen.resize(nf, false);
        // The cap ladder is only needed when some cap is finite; the fluid
        // hot path passes every cap as ∞, so skip the O(n log n) sort then.
        self.by_cap.clear();
        if flows.iter().any(|f| f.cap.is_finite()) {
            self.by_cap.extend(0..nf as u32);
            self.by_cap.sort_unstable_by(|&a, &b| {
                flows[a as usize]
                    .cap
                    .partial_cmp(&flows[b as usize].cap)
                    .expect("NaN cap")
            });
        }
        let ncap = self.by_cap.len();
        let mut cap_ix = 0usize;
        let mut unfrozen = nf;

        // Seed the lazy heap with every active link's saturation level.
        self.heap.clear();
        self.heap.reserve(self.active_links.len());
        for li in 0..self.active_links.len() {
            let l = self.active_links[li];
            let key = self.fill(l);
            self.heap_push(key, l);
        }

        macro_rules! freeze {
            ($i:expr, $at:expr) => {{
                let i = $i as usize;
                if !self.frozen[i] {
                    self.frozen[i] = true;
                    rates[i] = $at;
                    unfrozen -= 1;
                    for &l in flows[i].path {
                        self.remaining[l as usize] -= $at;
                        self.users[l as usize] -= 1;
                    }
                }
            }};
        }

        // Freeze every flow of link `l` at `level`.
        macro_rules! freeze_link {
            ($l:expr, $level:expr) => {{
                let l = $l as usize;
                let end = self.cursor[l];
                let begin = end - self.count[l];
                for ix in begin..end {
                    let i = self.link_flows[ix as usize];
                    freeze!(i, $level);
                }
            }};
        }

        while unfrozen > 0 {
            // True minimum saturation level via lazy re-evaluation: recorded
            // keys are lower bounds (levels only rise), so a popped entry
            // whose fresh value still beats the next key is the minimum.
            let mut min_link: Option<(f64, u32)> = None;
            while let Some((key, l)) = self.heap_pop() {
                let fresh = self.fill(l);
                if fresh.is_infinite() {
                    continue; // all its flows froze through other links
                }
                if fresh <= key * (1.0 + TIE_REL)
                    || self.heap.first().is_none_or(|&(next, _)| fresh <= next)
                {
                    min_link = Some((fresh, l));
                    break;
                }
                self.heap_push(fresh, l);
            }

            while cap_ix < ncap && self.frozen[self.by_cap[cap_ix] as usize] {
                cap_ix += 1;
            }
            let cap_limit = if cap_ix < ncap {
                flows[self.by_cap[cap_ix] as usize].cap
            } else {
                f64::INFINITY
            };

            match min_link {
                Some((link_limit, l)) if cap_limit > link_limit => {
                    // The bottleneck link saturates first. Also drain every
                    // other link tied at (numerically) the same level.
                    let tie = link_limit * (1.0 + TIE_REL) + 1e-30;
                    freeze_link!(l, link_limit);
                    while let Some(&(key, l2)) = self.heap.first() {
                        if key > tie {
                            break;
                        }
                        self.heap_pop();
                        let fresh = self.fill(l2);
                        if fresh.is_infinite() {
                            continue;
                        }
                        if fresh <= tie {
                            freeze_link!(l2, link_limit);
                        } else {
                            self.heap_push(fresh, l2);
                        }
                    }
                }
                Some((link_limit, l)) => {
                    // A cap binds first: put the link back, freeze every
                    // flow capped at or below this level.
                    self.heap_push(link_limit, l);
                    while cap_ix < ncap {
                        let i = self.by_cap[cap_ix];
                        if self.frozen[i as usize] {
                            cap_ix += 1;
                            continue;
                        }
                        if flows[i as usize].cap > cap_limit {
                            break;
                        }
                        freeze!(i, flows[i as usize].cap);
                        cap_ix += 1;
                    }
                }
                None if cap_limit.is_finite() => {
                    // Only capped, link-less flows remain.
                    while cap_ix < ncap {
                        let i = self.by_cap[cap_ix];
                        if !self.frozen[i as usize] {
                            freeze!(i, flows[i as usize].cap);
                        }
                        cap_ix += 1;
                    }
                }
                None => {
                    // No links, no finite caps: defensive fallback.
                    for i in 0..nf as u32 {
                        if !self.frozen[i as usize] {
                            let cap = flows[i as usize].cap.min(f64::MAX);
                            freeze!(i, cap);
                        }
                    }
                }
            }
        }
    }
}

/// One-shot convenience wrapper over [`WaterFiller`].
pub fn water_fill(capacity: &[f64], flows: &[Demand<'_>]) -> Vec<f64> {
    let mut wf = WaterFiller::new(capacity.len());
    let mut rates = Vec::new();
    wf.allocate(capacity, flows, &mut rates);
    rates
}

/// Verify feasibility: per-link load relative to capacity. Returns the
/// worst relative overshoot (≤ 0 when feasible).
pub fn worst_oversubscription(capacity: &[f64], flows: &[Demand<'_>], rates: &[f64]) -> f64 {
    let mut load = vec![0.0f64; capacity.len()];
    for (f, &r) in flows.iter().zip(rates) {
        for &l in f.path {
            load[l as usize] += r;
        }
    }
    load.iter()
        .zip(capacity)
        .map(|(&ld, &cap)| if cap > 0.0 { ld / cap - 1.0 } else { 0.0 })
        .fold(f64::NEG_INFINITY, f64::max)
}

/// Verify Pareto optimality / max-min structure: every flow is either at
/// its cap or crosses at least one link whose load is within `tol` of its
/// capacity (a saturated bottleneck — no flow's rate can be raised without
/// lowering another's). Returns the first violating flow.
pub fn find_non_pareto_flow(
    capacity: &[f64],
    flows: &[Demand<'_>],
    rates: &[f64],
    tol: f64,
) -> Option<usize> {
    let mut load = vec![0.0f64; capacity.len()];
    for (f, &r) in flows.iter().zip(rates) {
        for &l in f.path {
            load[l as usize] += r;
        }
    }
    for (i, (f, &r)) in flows.iter().zip(rates).enumerate() {
        if r >= f.cap * (1.0 - tol) {
            continue; // capped
        }
        let bottlenecked = f
            .path
            .iter()
            .any(|&l| load[l as usize] >= capacity[l as usize] * (1.0 - tol));
        if !bottlenecked {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const G: f64 = 1e9;

    #[test]
    fn single_flow_gets_line_rate() {
        let caps = [100.0 * G, 100.0 * G];
        let path = [0u32, 1];
        let flows = [Demand {
            cap: f64::INFINITY,
            path: &path,
        }];
        let r = water_fill(&caps, &flows);
        assert!((r[0] - 100.0 * G).abs() < 1.0);
    }

    #[test]
    fn two_flows_share_bottleneck_equally() {
        let caps = [100.0 * G, 100.0 * G, 100.0 * G];
        let (pa, pb) = ([0u32, 2], [1u32, 2]);
        let flows = [
            Demand {
                cap: f64::INFINITY,
                path: &pa,
            },
            Demand {
                cap: f64::INFINITY,
                path: &pb,
            },
        ];
        let r = water_fill(&caps, &flows);
        assert!((r[0] - 50.0 * G).abs() < 1.0, "{r:?}");
        assert!((r[1] - 50.0 * G).abs() < 1.0, "{r:?}");
    }

    #[test]
    fn capped_flow_releases_share() {
        // Two flows on one 100G link; one capped at 20G → other gets 80G.
        let caps = [100.0 * G];
        let p = [0u32];
        let flows = [
            Demand {
                cap: 20.0 * G,
                path: &p,
            },
            Demand {
                cap: f64::INFINITY,
                path: &p,
            },
        ];
        let r = water_fill(&caps, &flows);
        assert!((r[0] - 20.0 * G).abs() < 1.0, "{r:?}");
        assert!((r[1] - 80.0 * G).abs() < 1.0, "{r:?}");
    }

    #[test]
    fn classic_maxmin_example() {
        // Three links a(10) b(10) c(4); flows: f0 over a+c, f1 over b+c,
        // f2 over a, f3 over b. Max-min: f0=f1=2 (c saturates), f2=f3=8.
        let caps = [10.0, 10.0, 4.0];
        let (p0, p1, p2, p3) = ([0u32, 2], [1u32, 2], [0u32], [1u32]);
        let flows = [
            Demand {
                cap: f64::INFINITY,
                path: &p0,
            },
            Demand {
                cap: f64::INFINITY,
                path: &p1,
            },
            Demand {
                cap: f64::INFINITY,
                path: &p2,
            },
            Demand {
                cap: f64::INFINITY,
                path: &p3,
            },
        ];
        let r = water_fill(&caps, &flows);
        assert!(
            (r[0] - 2.0).abs() < 1e-9 && (r[1] - 2.0).abs() < 1e-9,
            "{r:?}"
        );
        assert!(
            (r[2] - 8.0).abs() < 1e-9 && (r[3] - 8.0).abs() < 1e-9,
            "{r:?}"
        );
        assert!(worst_oversubscription(&caps, &flows, &r) < 1e-9);
        assert_eq!(find_non_pareto_flow(&caps, &flows, &r, 1e-9), None);
    }

    #[test]
    fn incast_divides_receiver_link() {
        let n = 64usize;
        let caps: Vec<f64> = (0..n + 1).map(|_| 100.0 * G).collect();
        let paths: Vec<[u32; 2]> = (0..n).map(|i| [i as u32, n as u32]).collect();
        let flows: Vec<Demand<'_>> = paths
            .iter()
            .map(|p| Demand {
                cap: f64::INFINITY,
                path: p,
            })
            .collect();
        let r = water_fill(&caps, &flows);
        for &x in &r {
            assert!((x - 100.0 * G / n as f64).abs() < 1.0, "{x}");
        }
    }

    #[test]
    fn cascade_of_bottlenecks_resolves_in_order() {
        // Chain where freeing one bottleneck reveals the next: link 0 has
        // 4 flows (25 each), link 1 has flows {3} plus two private flows
        // at higher shares.
        let caps = [100.0, 90.0];
        let (p_a, p_b, p_ab) = ([0u32], [1u32], [0u32, 1]);
        let flows = [
            Demand {
                cap: f64::INFINITY,
                path: &p_a,
            },
            Demand {
                cap: f64::INFINITY,
                path: &p_a,
            },
            Demand {
                cap: f64::INFINITY,
                path: &p_a,
            },
            Demand {
                cap: f64::INFINITY,
                path: &p_ab,
            },
            Demand {
                cap: f64::INFINITY,
                path: &p_b,
            },
            Demand {
                cap: f64::INFINITY,
                path: &p_b,
            },
        ];
        let r = water_fill(&caps, &flows);
        // Link 0 saturates at 25 for its four flows; link 1 then has
        // 90 − 25 = 65 left for two flows → 32.5 each.
        for i in 0..4 {
            assert!((r[i] - 25.0).abs() < 1e-9, "{r:?}");
        }
        assert!((r[4] - 32.5).abs() < 1e-9, "{r:?}");
        assert!((r[5] - 32.5).abs() < 1e-9, "{r:?}");
        assert!(worst_oversubscription(&caps, &flows, &r) < 1e-9);
        assert_eq!(find_non_pareto_flow(&caps, &flows, &r, 1e-9), None);
    }

    #[test]
    fn filler_reuse_is_consistent() {
        let caps = [10.0, 10.0, 4.0];
        let mut wf = WaterFiller::new(3);
        let mut rates = Vec::new();
        // First run with one shape…
        let p_all = [0u32, 1, 2];
        let flows = [Demand {
            cap: f64::INFINITY,
            path: &p_all,
        }];
        wf.allocate(&caps, &flows, &mut rates);
        assert!((rates[0] - 4.0).abs() < 1e-9);
        // …then a different shape reusing the scratch state.
        let (p0, p1) = ([0u32], [0u32, 1]);
        let flows = [
            Demand {
                cap: f64::INFINITY,
                path: &p0,
            },
            Demand {
                cap: 3.0,
                path: &p1,
            },
        ];
        wf.allocate(&caps, &flows, &mut rates);
        assert!((rates[1] - 3.0).abs() < 1e-9, "{rates:?}");
        assert!((rates[0] - 7.0).abs() < 1e-9, "{rates:?}");
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert!(water_fill(&[1.0 * G], &[]).is_empty());
        let flows = [Demand {
            cap: 5.0 * G,
            path: &[][..],
        }];
        let r = water_fill(&[1.0 * G], &flows);
        assert!(
            (r[0] - 5.0 * G).abs() < 1.0,
            "empty-path flow takes its cap: {r:?}"
        );
    }

    #[test]
    fn detectors_flag_bad_allocations() {
        let caps = [10.0];
        let p = [0u32];
        let flows = [
            Demand {
                cap: f64::INFINITY,
                path: &p,
            },
            Demand {
                cap: f64::INFINITY,
                path: &p,
            },
        ];
        // Oversubscribed by 50%.
        assert!(worst_oversubscription(&caps, &flows, &[7.5, 7.5]) > 0.49);
        // Feasible but not Pareto-optimal (link only half full).
        assert_eq!(
            find_non_pareto_flow(&caps, &flows, &[2.5, 2.5], 1e-9),
            Some(0)
        );
    }

    #[test]
    fn random_demands_stay_feasible_and_pareto() {
        // Deterministic pseudo-random stress over a 3-tier-ish link set.
        let mut seed = 0x0123_4567_89AB_CDEFu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for trial in 0..50 {
            let nl = 20 + (next() % 30) as usize;
            let caps: Vec<f64> = (0..nl).map(|_| (1 + next() % 100) as f64).collect();
            let nf = 1 + (next() % 200) as usize;
            let paths: Vec<Vec<u32>> = (0..nf)
                .map(|_| {
                    let len = 1 + (next() % 5) as usize;
                    let mut p: Vec<u32> = (0..len).map(|_| (next() % nl as u64) as u32).collect();
                    p.sort_unstable();
                    p.dedup();
                    p
                })
                .collect();
            let flows: Vec<Demand<'_>> = paths
                .iter()
                .map(|p| {
                    let cap = if next() % 3 == 0 {
                        (1 + next() % 50) as f64
                    } else {
                        f64::INFINITY
                    };
                    Demand { cap, path: p }
                })
                .collect();
            let r = water_fill(&caps, &flows);
            assert!(
                worst_oversubscription(&caps, &flows, &r) < 1e-6,
                "trial {trial} oversubscribed"
            );
            assert_eq!(
                find_non_pareto_flow(&caps, &flows, &r, 1e-6),
                None,
                "trial {trial} not Pareto-optimal"
            );
        }
    }
}
