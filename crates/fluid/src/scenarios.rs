//! Large-scale scenario builders for the fluid backend.
//!
//! These produce plain [`FlowSpec`] sets, so they also feed the packet
//! backend at small scale — which is exactly what the cross-validation
//! suite does. The scales here (10k–1M flows) are fluid-only territory.

use fncc_des::rng::DetRng;
use fncc_des::time::{SimTime, TimeDelta};
use fncc_net::ids::{FlowId, HostId};
use fncc_net::units::Bandwidth;
use fncc_transport::FlowSpec;
use fncc_workloads::arrivals::{poisson_flows, PoissonConfig};
use fncc_workloads::distributions::{fb_hadoop, web_search};
use fncc_workloads::patterns::permutation;

/// Which flow-size trace a large-scale run draws from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trace {
    /// DCTCP WebSearch (mice-heavy with elephant tail).
    WebSearch,
    /// Facebook Hadoop.
    FbHadoop,
    /// Fixed-size flows (microbenchmark style).
    Fixed(u64),
}

/// Repeated random-permutation waves: every host sends `size` bytes to a
/// distinct peer, a fresh derangement every `gap`, `waves` times over.
/// Total flows = `waves · n_hosts`.
pub fn permutation_waves(
    n_hosts: u32,
    size: u64,
    waves: u32,
    gap: TimeDelta,
    seed: u64,
) -> Vec<FlowSpec> {
    let mut flows = Vec::with_capacity((waves * n_hosts) as usize);
    for w in 0..waves {
        let start = SimTime::ZERO + gap * w as u64;
        let wave = permutation(n_hosts, size, start, seed.wrapping_add(w as u64));
        flows.extend(wave.into_iter().map(|mut f| {
            f.id = FlowId(w * n_hosts + f.id.0);
            f
        }));
    }
    flows
}

/// Incast storm: `fan_in` senders (cycling over hosts ≠ receiver) each fire
/// `size` bytes at `receiver`, a new storm wave every `gap`, `waves` times.
/// Total flows = `waves · fan_in`.
pub fn incast_storm(
    n_hosts: u32,
    receiver: HostId,
    fan_in: u32,
    size: u64,
    waves: u32,
    gap: TimeDelta,
) -> Vec<FlowSpec> {
    assert!(n_hosts >= 2 && receiver.0 < n_hosts);
    let mut flows = Vec::with_capacity((waves * fan_in) as usize);
    let senders: Vec<u32> = (0..n_hosts).filter(|&h| h != receiver.0).collect();
    for w in 0..waves {
        let start = SimTime::ZERO + gap * w as u64;
        for i in 0..fan_in {
            let src = senders[(i as usize + w as usize) % senders.len()];
            flows.push(FlowSpec {
                id: FlowId(w * fan_in + i),
                src: HostId(src),
                dst: receiver,
                size,
                start,
            });
        }
    }
    flows
}

/// Heavy-tailed Poisson arrivals at `load` average link utilization with
/// sizes from `trace` — the §5.5 workload at fluid scale.
pub fn poisson_trace(
    n_hosts: u32,
    line: Bandwidth,
    load: f64,
    n_flows: u32,
    trace: Trace,
    seed: u64,
) -> Vec<FlowSpec> {
    let cfg = PoissonConfig {
        n_hosts,
        line,
        load,
        n_flows,
        first_id: 0,
        start: SimTime::ZERO,
        seed,
    };
    match trace {
        Trace::WebSearch => poisson_flows(&cfg, &web_search()),
        Trace::FbHadoop => poisson_flows(&cfg, &fb_hadoop()),
        Trace::Fixed(size) => {
            // Poisson arrivals with deterministic sizes: reuse the arrival
            // process, overwrite the sampled sizes.
            let mut flows = poisson_flows(&cfg, &web_search());
            for f in &mut flows {
                f.size = size;
            }
            flows
        }
    }
}

/// Uniform random pairs with exponential arrivals — a quick generator for
/// stress runs that sidesteps CDF sampling cost entirely.
pub fn uniform_pairs(
    n_hosts: u32,
    n_flows: u32,
    size: u64,
    mean_gap: TimeDelta,
    seed: u64,
) -> Vec<FlowSpec> {
    assert!(n_hosts >= 2);
    let mut rng = DetRng::new(seed, 0xF1D);
    let mut t = SimTime::ZERO;
    (0..n_flows)
        .map(|k| {
            t += TimeDelta::from_secs_f64(rng.exp(mean_gap.as_secs_f64()));
            let src = rng.below(n_hosts as u64) as u32;
            let mut dst = rng.below(n_hosts as u64 - 1) as u32;
            if dst >= src {
                dst += 1;
            }
            FlowSpec {
                id: FlowId(k),
                src: HostId(src),
                dst: HostId(dst),
                size,
                start: t,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_waves_count_and_ids() {
        let flows = permutation_waves(16, 1000, 5, TimeDelta::from_us(10), 1);
        assert_eq!(flows.len(), 80);
        let mut ids: Vec<u32> = flows.iter().map(|f| f.id.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..80).collect::<Vec<_>>());
        for f in &flows {
            assert_ne!(f.src, f.dst);
        }
    }

    #[test]
    fn incast_storm_targets_receiver() {
        let flows = incast_storm(16, HostId(3), 10, 5000, 4, TimeDelta::from_us(50));
        assert_eq!(flows.len(), 40);
        for f in &flows {
            assert_eq!(f.dst, HostId(3));
            assert_ne!(f.src, HostId(3));
        }
        // Waves are spaced by the gap.
        assert_eq!(flows[0].start, SimTime::ZERO);
        assert_eq!(flows[39].start, SimTime::ZERO + TimeDelta::from_us(150));
    }

    #[test]
    fn poisson_trace_fixed_sizes() {
        let flows = poisson_trace(16, Bandwidth::gbps(100), 0.5, 200, Trace::Fixed(4096), 7);
        assert_eq!(flows.len(), 200);
        assert!(flows.iter().all(|f| f.size == 4096));
    }

    #[test]
    fn uniform_pairs_are_valid_and_ordered() {
        let flows = uniform_pairs(32, 500, 10_000, TimeDelta::from_us(1), 3);
        assert_eq!(flows.len(), 500);
        for w in flows.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
        for f in &flows {
            assert_ne!(f.src, f.dst);
            assert!(f.src.0 < 32 && f.dst.0 < 32);
        }
    }
}
