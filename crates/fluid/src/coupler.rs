//! The background half of the hybrid fluid↔packet co-simulation: a
//! *stepping* fluid engine the hybrid driver can interleave with a packet
//! DES.
//!
//! [`crate::FluidSim`] owns its clock and runs to completion;
//! [`BackgroundFluid`] exposes the same physics (max-min shares under a
//! [`RateModel`], identical retire-time FCT composition) as an
//! event-at-a-time engine:
//!
//! * [`BackgroundFluid::next_event`] reports the next fluid event boundary
//!   (arrival or projected completion) so the driver can co-advance the
//!   DES exactly that far;
//! * [`BackgroundFluid::advance_to`] drains background flows up to a
//!   wall-of-simulation instant, never past it;
//! * [`BackgroundFluid::reserve`] feeds measured *foreground* (packet)
//!   throughput back as a per-link demand reservation — the water-filler
//!   sees a shrunken capacity via its dirty-link delta API, and a
//!   reservation touching a single contended link takes the closed-form
//!   single-bottleneck fast path;
//! * [`BackgroundFluid::background_load`] reports the aggregate background
//!   rate on a link, from which the driver derives the *residual* capacity
//!   it pushes onto the DES ports.

use crate::link::LinkMap;
use crate::maxmin::{Rebalance, WaterFiller};
use crate::model::RateModel;
use crate::sim::{path_avoiding, repath_flows, SlotState, CONTENDED_FRAC, QUEUE_BUILD_RTTS};
use crate::{CapacityChange, CapacityEvent, FluidError, FluidResult, Framing};
use fncc_des::time::SimTime;
use fncc_net::ids::NodeRef;
use fncc_net::telemetry::{FlowRecord, Telemetry};
use fncc_net::topology::Topology;
use fncc_obs::{HistId, PhaseId, Profiler, TraceEvent, TraceSink};
use fncc_transport::FlowSpec;

/// Floor on a reserved link's background capacity, as a fraction of its
/// unreserved (η-scaled) capacity. Keeps a fully-reserved link from
/// starving background flows into the zero-rate error path; the sliver
/// models the fair share a saturating foreground burst cannot actually
/// deny a competing long flow.
const RESERVE_FLOOR: f64 = 0.02;

/// Stepping fluid engine for the background-flow partition of a hybrid
/// run. Construct with every background flow up front; the driver then
/// alternates [`Self::advance_to`] with DES chunks, exchanging
/// reservations and residuals at event boundaries.
pub struct BackgroundFluid {
    topo: Topology,
    links: LinkMap,
    model: RateModel,
    framing: Framing,
    /// All background flows, sorted by start time.
    specs: Vec<FlowSpec>,
    next_arrival: usize,
    filler: WaterFiller,
    slots: Vec<SlotState>,
    active: Vec<u32>,
    path_buf: Vec<u32>,
    /// Fluid clock, seconds.
    t: f64,
    base_rtt: f64,
    queue_delay: f64,
    eta: f64,
    /// η-scaled link capacities with no foreground reservation.
    capacity_base: Vec<f64>,
    /// Current foreground demand reservation per link, bits/s.
    reservation: Vec<f64>,
    /// Capacity currently presented to the water-filler per link
    /// (`capacity_base` minus the η-scaled reservation, floored).
    eff_capacity: Vec<f64>,
    /// Since when each link has been continuously saturated (NaN = not).
    sat_since: Vec<f64>,
    /// Scheduled capacity events (scenario faults), sorted by time.
    fevents: Vec<CapacityEvent>,
    next_fault: usize,
    /// Per-link capacity factor from `Scale` fault events (composes
    /// multiplicatively with foreground reservations).
    factor: Vec<f64>,
    /// Per-switch-port dead flags from `Down`/`Up` fault events.
    dead: Vec<Vec<bool>>,
    n_dead: usize,
    /// Flows parked because the dead set severs their destination.
    stalled: Vec<SlotState>,
    /// Links whose allocation changed since the last [`Self::take_touched`].
    touched: Vec<u32>,
    touched_flag: Vec<bool>,
    /// A reservation changed capacities since the last rebalance.
    needs_resolve: bool,
    telemetry: Telemetry,
    profiler: Profiler,
    ph_solve: PhaseId,
    h_resolve: HistId,
    reallocations: u64,
    rate_updates: u64,
    peak_active: usize,
    horizon: SimTime,
}

impl BackgroundFluid {
    /// A stepping fluid engine over `topo` under `model`, pre-loaded with
    /// the full background flow set. Rejects zero-capacity links up front
    /// (same contract as [`crate::FluidSim::run`]).
    pub fn new(
        topo: Topology,
        model: RateModel,
        framing: Framing,
        mut flows: Vec<FlowSpec>,
        trace: bool,
    ) -> Result<Self, FluidError> {
        let links = LinkMap::new(&topo);
        let eta = model.utilization;
        let capacity_base: Vec<f64> = links.capacities().iter().map(|&c| c * eta).collect();
        if !flows.is_empty() {
            if let Some(l) = capacity_base.iter().position(|&c| c <= 0.0) {
                return Err(FluidError {
                    flow: None,
                    message: format!(
                        "link {l} has zero capacity; no background flow crossing it \
                         can ever finish (zero-bandwidth link in a hand-written \
                         scenario?)"
                    ),
                });
            }
        }
        let base_rtt = if flows.is_empty() {
            0.0
        } else {
            topo.base_rtt(framing.mtu(), framing.ack_bytes)
                .as_secs_f64()
        };
        let queue_delay = model.queue_rtts * base_rtt;
        flows.sort_by_key(|f| f.start);

        let mut telemetry = Telemetry::new();
        if trace {
            telemetry.trace = TraceSink::with_capacity(TraceSink::DEFAULT_CAPACITY);
        }
        let h_resolve = telemetry.metrics.histogram("bg_resolve_set_size");
        for f in &flows {
            telemetry.flow_started(FlowRecord {
                flow: f.id,
                src: f.src,
                dst: f.dst,
                size: f.size,
                start: f.start,
                finish: None,
            });
        }
        let mut filler = WaterFiller::new(links.len());
        filler.begin_incremental(&capacity_base);
        let mut profiler = Profiler::from_env();
        let ph_solve = profiler.phase("bg_fluid_solve");
        let n = links.len();
        let dead = topo
            .switches
            .iter()
            .map(|sw| vec![false; sw.ports.len()])
            .collect();
        Ok(BackgroundFluid {
            topo,
            links,
            model,
            framing,
            specs: flows,
            next_arrival: 0,
            filler,
            slots: Vec::new(),
            active: Vec::new(),
            path_buf: Vec::new(),
            t: 0.0,
            base_rtt,
            queue_delay,
            eta,
            eff_capacity: capacity_base.clone(),
            capacity_base,
            reservation: vec![0.0; n],
            sat_since: vec![f64::NAN; n],
            fevents: Vec::new(),
            next_fault: 0,
            factor: vec![1.0; n],
            dead,
            n_dead: 0,
            stalled: Vec::new(),
            touched: Vec::new(),
            touched_flag: vec![false; n],
            needs_resolve: false,
            telemetry,
            profiler,
            ph_solve,
            h_resolve,
            reallocations: 0,
            rate_updates: 0,
            peak_active: 0,
            horizon: SimTime::ZERO,
        })
    }

    /// Schedule link-fault capacity events (sorted internally by time).
    /// Same semantics as [`crate::FluidSim::capacity_events`]: `Down`/`Up`
    /// fail and restore the physical link with rerouting, `Scale`
    /// multiplies one egress direction's capacity and composes with
    /// foreground reservations.
    pub fn capacity_events(&mut self, events: impl IntoIterator<Item = CapacityEvent>) {
        self.fevents.extend(events);
        self.fevents.sort_by_key(|e| e.at);
    }

    /// Current fluid clock, seconds.
    #[inline]
    pub fn now(&self) -> f64 {
        self.t
    }

    /// Number of background flows still draining, parked behind a link
    /// failure, or yet to arrive.
    #[inline]
    pub fn remaining_flows(&self) -> usize {
        self.active.len() + self.stalled.len() + (self.specs.len() - self.next_arrival)
    }

    /// Peak number of concurrently active background flows so far.
    #[inline]
    pub fn peak_active(&self) -> usize {
        self.peak_active
    }

    /// The dense link index shared with the driver (for translating link
    /// ids to `(node, port)` residual pushes).
    #[inline]
    pub fn link_map(&self) -> &LinkMap {
        &self.links
    }

    /// The next fluid event boundary (arrival or earliest projected
    /// completion), or `None` when every background flow has finished.
    /// Resolves any pending reservation first so projections use current
    /// shares.
    pub fn next_event(&mut self) -> Option<f64> {
        if self.needs_resolve {
            // A stale-rate projection would hand the driver a wrong
            // boundary; re-solve eagerly (errors surface in advance_to).
            let _ = self.resolve();
        }
        let t_arr = self
            .specs
            .get(self.next_arrival)
            .map(|s| s.start.as_secs_f64());
        let t_flt = self
            .fevents
            .get(self.next_fault)
            .map(|e| e.at.as_secs_f64());
        let mut t_fin = f64::INFINITY;
        for &slot in &self.active {
            let st = &self.slots[slot as usize];
            if st.rate > 0.0 {
                t_fin = t_fin.min(st.last_sync + st.remaining_bits.max(0.0) / st.rate);
            }
        }
        let t_next = t_arr
            .unwrap_or(f64::INFINITY)
            .min(t_flt.unwrap_or(f64::INFINITY))
            .min(t_fin);
        t_next.is_finite().then_some(t_next)
    }

    /// Advance the background fluid to `t_target` (seconds), admitting and
    /// retiring every flow whose event falls at or before it. The clock
    /// lands exactly on `t_target`.
    pub fn advance_to(&mut self, t_target: f64) -> Result<(), FluidError> {
        if self.needs_resolve {
            self.resolve()?;
        }
        loop {
            let t_arr = self
                .specs
                .get(self.next_arrival)
                .map_or(f64::INFINITY, |s| s.start.as_secs_f64());
            let t_flt = self
                .fevents
                .get(self.next_fault)
                .map_or(f64::INFINITY, |e| e.at.as_secs_f64());
            let mut t_fin = f64::INFINITY;
            for &slot in &self.active {
                let st = &self.slots[slot as usize];
                t_fin = t_fin.min(st.last_sync + st.remaining_bits.max(0.0) / st.rate);
            }
            let t_next = t_arr.min(t_fin).min(t_flt);
            if t_next > t_target {
                break;
            }
            self.t = t_next;
            if t_flt <= t_next {
                self.apply_faults_due();
                self.resolve()?;
            }
            if t_arr <= t_next {
                self.admit_due();
                self.resolve()?;
            }
            if self.retire_due() {
                self.resolve()?;
            }
        }
        if t_target > self.t {
            self.t = t_target;
        }
        Ok(())
    }

    /// Feed measured foreground throughput on link `l` back as a demand
    /// reservation (bits/s of raw link bandwidth). The background sees
    /// `η · (raw − load)`, floored at a sliver of the unreserved capacity;
    /// the capacity delta rides the water-filler's dirty-link API and is
    /// applied at the next resolve.
    pub fn reserve(&mut self, l: u32, load_bits_per_sec: f64) {
        self.reservation[l as usize] = load_bits_per_sec.max(0.0);
        self.update_eff(l);
    }

    /// Recompute the capacity presented to the water-filler for link `l`:
    /// fault-scaled base minus the η-scaled foreground reservation,
    /// floored at a sliver of the (scaled) unreserved capacity.
    fn update_eff(&mut self, l: u32) {
        let li = l as usize;
        let base = self.capacity_base[li] * self.factor[li];
        let eff = (base - self.eta * self.reservation[li])
            .max(RESERVE_FLOOR * base)
            .max(self.capacity_base[li] * 1e-9);
        if eff != self.eff_capacity[li] {
            self.eff_capacity[li] = eff;
            self.filler.set_capacity(l, eff);
            self.needs_resolve = true;
        }
    }

    /// Apply every fault event at or before the current clock: `Scale`
    /// adjusts the link's capacity factor; `Down`/`Up` flip the dead flags
    /// on both directions of the physical link and re-walk every flow's
    /// route (moving, stalling, or reviving them — same machinery as
    /// [`crate::FluidSim`]).
    fn apply_faults_due(&mut self) {
        let to_ps = |secs: f64| (secs * 1e12).round() as u64;
        let mut links_flipped = false;
        while let Some(&ev) = self.fevents.get(self.next_fault) {
            if ev.at.as_secs_f64() > self.t + 1e-15 {
                break;
            }
            self.next_fault += 1;
            match ev.change {
                CapacityChange::Scale(f) => {
                    let l = self.links.id_of(NodeRef::Switch(ev.switch), ev.port);
                    self.factor[l as usize] *= f;
                    self.update_eff(l);
                }
                CapacityChange::Down | CapacityChange::Up => {
                    let down = matches!(ev.change, CapacityChange::Down);
                    let port = ev.port as usize;
                    let sw = &self.topo.switches[ev.switch.ix()];
                    if self.dead[ev.switch.ix()][port] != down {
                        self.dead[ev.switch.ix()][port] = down;
                        self.n_dead = if down {
                            self.n_dead + 1
                        } else {
                            self.n_dead - 1
                        };
                    }
                    if let NodeRef::Switch(s2) = sw.ports[port].peer {
                        let p2 = sw.ports[port].peer_port as usize;
                        if self.dead[s2.ix()][p2] != down {
                            self.dead[s2.ix()][p2] = down;
                            self.n_dead = if down {
                                self.n_dead + 1
                            } else {
                                self.n_dead - 1
                            };
                        }
                    }
                    if self.telemetry.trace.enabled() {
                        self.telemetry.trace.record(if down {
                            TraceEvent::LinkDown {
                                t_ps: to_ps(self.t),
                                sw: ev.switch.0,
                                port: ev.port,
                            }
                        } else {
                            TraceEvent::LinkUp {
                                t_ps: to_ps(self.t),
                                sw: ev.switch.0,
                                port: ev.port,
                            }
                        });
                    }
                    links_flipped = true;
                }
            }
        }
        if links_flipped {
            repath_flows(
                &self.topo,
                &self.links,
                &self.dead,
                &self.specs,
                &mut self.filler,
                &mut self.slots,
                &mut self.active,
                &mut self.stalled,
                &mut self.telemetry,
                self.t,
            );
            self.needs_resolve = true;
        }
    }

    /// Aggregate background rate currently allocated across link `l`,
    /// bits/s (0 for idle links). The driver's residual push to the DES is
    /// `raw − background_load`.
    pub fn background_load(&self, l: u32) -> f64 {
        if !self.filler.is_active(l) {
            return 0.0;
        }
        let li = l as usize;
        (self.eff_capacity[li] - self.filler.link_residual(l)).max(0.0)
    }

    /// Drain the set of links whose background allocation changed since
    /// the last call into `out` (cleared first).
    pub fn take_touched(&mut self, out: &mut Vec<u32>) {
        out.clear();
        for &l in &self.touched {
            self.touched_flag[l as usize] = false;
        }
        out.append(&mut self.touched);
    }

    /// Closed-form single-bottleneck re-solves taken so far (the incast
    /// fast path; see [`WaterFiller::single_bottleneck_solves`]).
    #[inline]
    pub fn single_bottleneck_solves(&self) -> u64 {
        self.filler.single_bottleneck_solves()
    }

    /// Background flows currently draining across link `l`. The hybrid
    /// driver uses this to derive the foreground's max-min fair
    /// entitlement on a shared link.
    #[inline]
    pub fn active_flows_on(&self, l: u32) -> u32 {
        self.filler.link_flow_count(l)
    }

    /// [`Self::background_load`] with each flow's claim phased in from
    /// `floor` (fraction of its converged share) to 1 linearly over `ramp`
    /// seconds of flow age. A packet transport ramps through slow-start
    /// and standing-queue delay before reaching its converged share; the
    /// steady-state fluid model jumps there instantly. The hybrid driver
    /// reads this ramped view so the residual capacity it pushes onto
    /// foreground DES links reflects what a packet background would
    /// actually be taking.
    pub fn ramped_load_on(&self, l: u32, now: f64, ramp: f64, floor: f64) -> f64 {
        if !self.filler.is_active(l) {
            return 0.0;
        }
        if ramp <= 0.0 {
            return self.background_load(l);
        }
        self.filler
            .link_flows(l)
            .map(|slot| {
                let st = &self.slots[slot as usize];
                let age = (now - st.t_start).max(0.0);
                let w = (floor + age / ramp).min(1.0);
                self.filler.rate(slot) * w
            })
            .sum()
    }

    /// Age-ramped weight of the background flows whose standing queue
    /// physically forms *at* link `l`: the flows for which `l` is the
    /// first saturated link along their path. Traffic queues where it
    /// first meets a full link; every link downstream of that bottleneck
    /// receives already-shaped arrivals and holds no extra queue, so a
    /// hybrid driver must size a link's shadow queue from these flows
    /// only — summing over every contended link would count one queue
    /// several times along a shared path.
    pub fn ramped_queue_weight_on(&self, l: u32, now: f64, ramp: f64, floor: f64) -> f64 {
        if !self.filler.is_active(l) {
            return 0.0;
        }
        let sat = |k: u32| self.filler.link_residual(k) <= 0.01 * self.eff_capacity[k as usize];
        if !sat(l) {
            return 0.0;
        }
        self.filler
            .link_flows(l)
            .map(|slot| {
                let first = self.filler.path(slot).iter().copied().find(|&k| sat(k));
                if first != Some(l) {
                    return 0.0;
                }
                if ramp <= 0.0 {
                    return 1.0;
                }
                let age = (now - self.slots[slot as usize].t_start).max(0.0);
                (floor + age / ramp).min(1.0)
            })
            .sum()
    }

    /// Age-weighted flow count on link `l` under the same ramp as
    /// [`Self::ramped_load_on`] — the background's effective head count
    /// when splitting a shared link's fair entitlement with the
    /// foreground.
    pub fn ramped_weight_on(&self, l: u32, now: f64, ramp: f64, floor: f64) -> f64 {
        if !self.filler.is_active(l) {
            return 0.0;
        }
        if ramp <= 0.0 {
            return self.filler.link_flow_count(l) as f64;
        }
        self.filler
            .link_flows(l)
            .map(|slot| {
                let age = (now - self.slots[slot as usize].t_start).max(0.0);
                (floor + age / ramp).min(1.0)
            })
            .sum()
    }

    /// Finish the run: package telemetry and solver statistics. Flows
    /// still draining stay unfinished in the records (the hybrid driver
    /// stops at a scenario horizon, like the DES).
    pub fn into_result(self) -> FluidResult {
        let (full_solves, incremental_solves) = self.filler.solve_stats();
        FluidResult {
            telemetry: self.telemetry,
            reallocations: self.reallocations,
            peak_active: self.peak_active,
            horizon: self.horizon,
            full_solves,
            incremental_solves,
            rate_updates: self.rate_updates,
            profiler: self.profiler,
        }
    }

    /// Admit every not-yet-started flow with `start ≤ now`.
    fn admit_due(&mut self) {
        let to_ps = |secs: f64| (secs * 1e12).round() as u64;
        while self.next_arrival < self.specs.len() {
            let s = &self.specs[self.next_arrival];
            let start = s.start.as_secs_f64();
            if start > self.t + 1e-15 {
                break;
            }
            self.links
                .path_links_into(&self.topo, s.src, s.dst, s.id, &mut self.path_buf);
            let wire_bits = self.framing.wire_bytes(s.size) as f64 * 8.0;
            let ideal = self
                .topo
                .ideal_fct(
                    s.src,
                    s.dst,
                    s.id,
                    s.size,
                    self.framing.mtu_payload,
                    self.framing.header,
                )
                .as_secs_f64();
            let bottleneck = self
                .path_buf
                .iter()
                .map(|&l| self.links.capacity(l))
                .fold(f64::INFINITY, f64::min);
            let floor = (ideal - wire_bits / bottleneck).max(0.0);
            let st = SlotState {
                spec_ix: self.next_arrival as u32,
                remaining_bits: wire_bits,
                wire_bits,
                floor,
                fair_line: bottleneck * self.eta,
                t_start: start,
                last_sync: self.t,
                rate: 0.0,
                max_cont: 0.0,
            };
            if self.telemetry.trace.enabled() {
                self.telemetry.trace.record(TraceEvent::FluidFlowAdd {
                    t_ps: to_ps(self.t),
                    flow: s.id.0,
                });
            }
            self.next_arrival += 1;
            // Under an active link failure the pristine path may be dead:
            // reroute over the surviving ECMP members or park the flow
            // until a link-up reconnects its destination. n_dead == 0
            // keeps fault-free runs on the exact pre-fault code path.
            if self.n_dead > 0 {
                let mut route_buf = Vec::new();
                let s = &self.specs[st.spec_ix as usize];
                if path_avoiding(
                    &self.topo,
                    &self.links,
                    &self.dead,
                    s.src,
                    s.dst,
                    s.id,
                    &mut route_buf,
                )
                .is_none()
                {
                    self.stalled.push(st);
                    continue;
                }
                if route_buf != self.path_buf {
                    self.telemetry.note_rerouted(s.id);
                }
                self.path_buf = route_buf;
            }
            let slot = self.filler.add_flow(&self.path_buf) as usize;
            if slot >= self.slots.len() {
                self.slots.resize(slot + 1, SlotState::default());
            }
            self.slots[slot] = st;
            self.active.push(slot as u32);
        }
        self.peak_active = self.peak_active.max(self.active.len());
    }

    /// Warm-started re-solve; sync the drain state of every slot whose
    /// rate moved and update saturation + touched-link tracking.
    fn resolve(&mut self) -> Result<(), FluidError> {
        self.needs_resolve = false;
        let to_ps = |secs: f64| (secs * 1e12).round() as u64;
        if self.telemetry.trace.enabled() {
            self.telemetry.trace.record(TraceEvent::SolveBegin {
                t_ps: to_ps(self.t),
                active: self.active.len() as u32,
            });
        }
        let full_before = self.filler.solve_stats().0;
        let span = self.profiler.begin();
        let outcome = self.filler.rebalance();
        self.profiler.end(self.ph_solve, span);
        if outcome != Rebalance::Noop {
            self.reallocations += 1;
            self.rate_updates += self.filler.changed().len() as u64;
            self.telemetry
                .metrics
                .observe(self.h_resolve, self.filler.changed().len() as u64);
        }
        if self.telemetry.trace.enabled() {
            self.telemetry.trace.record(TraceEvent::SolveEnd {
                t_ps: to_ps(self.t),
                full: self.filler.solve_stats().0 > full_before,
                changed: self.filler.changed().len() as u32,
            });
        }
        for &slot in self.filler.changed() {
            let st = &mut self.slots[slot as usize];
            if st.rate > 0.0 {
                st.remaining_bits -= st.rate * (self.t - st.last_sync);
            }
            if st.rate > 0.0 && st.rate < st.fair_line * CONTENDED_FRAC {
                st.max_cont = st.max_cont.max(self.t - st.last_sync);
            }
            st.last_sync = self.t;
            st.rate = self.filler.rate(slot);
            if st.rate <= 0.0 {
                let spec = &self.specs[st.spec_ix as usize];
                return Err(FluidError {
                    flow: Some(spec.id),
                    message: format!(
                        "background flow {:?} ({:?} → {:?}) was allocated a zero rate \
                         and can never finish (zero-capacity link, or a foreground \
                         reservation starved its path?)",
                        spec.id, spec.src, spec.dst
                    ),
                });
            }
        }
        for &l in self.filler.activated_links() {
            self.sat_since[l as usize] = f64::NAN;
            if !self.touched_flag[l as usize] {
                self.touched_flag[l as usize] = true;
                self.touched.push(l);
            }
        }
        for &l in self.filler.touched_links() {
            let li = l as usize;
            let saturated = self.filler.link_residual(l) <= 0.01 * self.eff_capacity[li];
            if !saturated {
                self.sat_since[li] = f64::NAN;
            } else if self.sat_since[li].is_nan() {
                self.sat_since[li] = self.t;
            }
            if !self.touched_flag[li] {
                self.touched_flag[li] = true;
                self.touched.push(l);
            }
        }
        Ok(())
    }

    /// Retire every active flow projected to finish at or before `now`
    /// (FCT composition identical to [`crate::FluidSim`], including the
    /// duration→η stretch and standing-queue term). Returns whether
    /// anything retired (the caller re-solves to redistribute shares).
    fn retire_due(&mut self) -> bool {
        let to_ps = |secs: f64| (secs * 1e12).round() as u64;
        let t = self.t;
        let mut any = false;
        let mut i = self.active.len();
        while i > 0 {
            i -= 1;
            let slot = self.active[i];
            let st = &self.slots[slot as usize];
            let fin = st.last_sync + st.remaining_bits.max(0.0) / st.rate;
            if fin > t + 0.5 / st.rate {
                continue;
            }
            let spec = &self.specs[st.spec_ix as usize];
            let mut drain = (t - st.t_start).max(0.0);
            let mean_rate = if drain > 0.0 {
                st.wire_bits / drain
            } else {
                st.fair_line
            };
            let contention = (1.0 - mean_rate / st.fair_line).clamp(0.0, 1.0);
            let mut sustained = st.max_cont;
            if st.rate > 0.0 && st.rate < st.fair_line * CONTENDED_FRAC {
                sustained = sustained.max(t - st.last_sync);
            }
            let birth = if drain > 0.0 {
                ((sustained / drain - 0.8) / 0.2).clamp(0.0, 1.0)
            } else {
                0.0
            };
            let eta_hook = self
                .model
                .effective_eta(sustained, self.base_rtt, contention);
            let eta_eff = self.eta + (eta_hook - self.eta) * birth;
            if eta_eff < self.eta {
                drain *= self.eta / eta_eff;
            }
            let mut sat_dur = 0.0f64;
            for &l in self.filler.path(slot) {
                let since = self.sat_since[l as usize];
                if !since.is_nan() {
                    sat_dur = sat_dur.max(t - since);
                }
            }
            let buildup = if self.base_rtt > 0.0 {
                (sat_dur / (QUEUE_BUILD_RTTS * self.base_rtt)).min(1.0)
            } else {
                0.0
            };
            let fct_secs = drain + st.floor + self.queue_delay * contention * buildup;
            let finish = spec.start
                + fncc_des::time::TimeDelta::from_secs_f64(fct_secs.max(f64::MIN_POSITIVE));
            self.telemetry.flow_finished(spec.id, finish);
            if finish > self.horizon {
                self.horizon = finish;
            }
            if self.telemetry.trace.enabled() {
                self.telemetry.trace.record(TraceEvent::FluidFlowRemove {
                    t_ps: to_ps(t),
                    flow: spec.id.0,
                });
            }
            self.filler.remove_flow(slot);
            self.active.swap_remove(i);
            any = true;
        }
        any
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FluidSim;
    use fncc_cc::CcKind;
    use fncc_des::time::TimeDelta;
    use fncc_net::ids::{FlowId, HostId};
    use fncc_net::units::Bandwidth;

    const BW: Bandwidth = Bandwidth::gbps(100);
    const PROP: TimeDelta = TimeDelta::from_ns(1500);

    fn flow(id: u32, src: u32, dst: u32, size: u64, start_us: u64) -> FlowSpec {
        FlowSpec {
            id: FlowId(id),
            src: HostId(src),
            dst: HostId(dst),
            size,
            start: SimTime::ZERO + TimeDelta::from_us(start_us),
        }
    }

    /// With no reservations, stepping through in arbitrary chunk sizes
    /// reproduces FluidSim's FCTs exactly.
    #[test]
    fn matches_fluid_sim_without_reservations() {
        let topo = Topology::dumbbell(4, 3, BW, PROP);
        let flows: Vec<FlowSpec> = (0..8)
            .map(|i| {
                flow(
                    i,
                    i % 4,
                    (i + 1) % 4,
                    1_000_000 + 37_000 * i as u64,
                    23 * i as u64,
                )
            })
            .collect();
        let reference = FluidSim::new(topo.clone(), RateModel::paper_default(CcKind::Fncc))
            .flows(flows.clone())
            .run()
            .unwrap();

        let mut bg = BackgroundFluid::new(
            topo,
            RateModel::paper_default(CcKind::Fncc),
            Framing::default(),
            flows,
            false,
        )
        .unwrap();
        // Step in ragged 7 µs chunks well past the horizon.
        for k in 1..=400u32 {
            bg.advance_to(k as f64 * 7e-6).unwrap();
        }
        assert_eq!(bg.remaining_flows(), 0);
        let got = bg.into_result();
        let want: Vec<_> = reference
            .telemetry
            .flow_records()
            .map(|r| (r.flow, r.finish))
            .collect();
        let have: Vec<_> = got
            .telemetry
            .flow_records()
            .map(|r| (r.flow, r.finish))
            .collect();
        assert_eq!(want, have);
    }

    /// next_event reports arrivals and completions; advance_to never
    /// crosses the target.
    #[test]
    fn next_event_brackets_advance() {
        let topo = Topology::dumbbell(2, 3, BW, PROP);
        let flows = vec![flow(0, 0, 1, 500_000, 5), flow(1, 1, 0, 500_000, 50)];
        let mut bg =
            BackgroundFluid::new(topo, RateModel::ideal(), Framing::default(), flows, false)
                .unwrap();
        let first = bg.next_event().unwrap();
        assert!((first - 5e-6).abs() < 1e-12, "first event is the arrival");
        bg.advance_to(4e-6).unwrap();
        assert_eq!(bg.remaining_flows(), 2);
        assert!((bg.now() - 4e-6).abs() < 1e-15);
        while let Some(ev) = bg.next_event() {
            bg.advance_to(ev).unwrap();
        }
        assert_eq!(bg.remaining_flows(), 0);
    }

    /// A reservation shrinks the background share (longer drain) and
    /// feeds the single-bottleneck fast path when one contended link is
    /// dirtied; releasing it restores the full rate.
    #[test]
    fn reservation_slows_background_and_takes_fast_path() {
        let topo = Topology::dumbbell(2, 3, BW, PROP);
        // One elephant across the dumbbell, draining alone.
        let flows = vec![flow(0, 0, 1, 12_500_000, 0)]; // 100 Mbit
        let mut bg =
            BackgroundFluid::new(topo, RateModel::ideal(), Framing::default(), flows, false)
                .unwrap();
        bg.advance_to(100e-6).unwrap();
        let uplink = 0u32; // host 0's uplink
        let unreserved = bg.background_load(uplink);
        assert!(unreserved > 0.9 * BW.as_f64(), "elephant fills the link");

        // Foreground claims 60% of the uplink's raw bandwidth.
        bg.reserve(uplink, 0.6 * BW.as_f64());
        bg.advance_to(150e-6).unwrap();
        let reserved = bg.background_load(uplink);
        assert!(
            reserved < 0.45 * BW.as_f64(),
            "background squeezed to the residual, got {reserved:.3e}"
        );
        assert!(
            bg.single_bottleneck_solves() >= 1,
            "reservation rode the fast path"
        );

        let mut touched = Vec::new();
        bg.take_touched(&mut touched);
        assert!(
            touched.contains(&uplink),
            "reserved link reported as touched"
        );
        bg.take_touched(&mut touched);
        assert!(touched.is_empty(), "take_touched drains");

        // Release: the elephant speeds back up and eventually finishes.
        bg.reserve(uplink, 0.0);
        while let Some(ev) = bg.next_event() {
            bg.advance_to(ev).unwrap();
        }
        assert_eq!(bg.remaining_flows(), 0);
        let res = bg.into_result();
        let rec = res.telemetry.flow_records().next().unwrap();
        assert!(rec.finish.is_some());
    }

    /// Reserving the entire link floors the background at a sliver
    /// instead of erroring out with a zero rate.
    #[test]
    fn full_reservation_floors_not_starves() {
        let topo = Topology::dumbbell(2, 3, BW, PROP);
        let flows = vec![flow(0, 0, 1, 1_000_000, 0)];
        let mut bg =
            BackgroundFluid::new(topo, RateModel::ideal(), Framing::default(), flows, false)
                .unwrap();
        bg.advance_to(1e-6).unwrap();
        bg.reserve(0, 2.0 * BW.as_f64()); // over-reserve
        bg.advance_to(2e-6).unwrap();
        let load = bg.background_load(0);
        assert!(load > 0.0, "background keeps a sliver");
        assert!(load <= RESERVE_FLOOR * BW.as_f64() * 1.01);
    }
}
