//! Per-scheme steady-state rate models.
//!
//! The fluid backend abstracts a congestion-control scheme into two
//! steady-state parameters, the standard reduction used by flow-level CC
//! studies (e.g. the inter-DC fluid models in Zeng's survey and FairQ's
//! fair-share analysis):
//!
//! * `utilization` — the fraction of a saturated link the scheme actually
//!   sustains. Window-law schemes with an explicit target (HPCC's η, which
//!   FNCC inherits) leave `1 − η` headroom by design; rate-based schemes
//!   (DCQCN, RoCC) fill the link and absorb the error in queues instead.
//! * `queue_rtts` — the standing-queue delay a flow crossing a *contended*
//!   path pays, in units of the network base RTT. The packet backend shows
//!   this is where scheme differences actually land for short flows: every
//!   scheme starts senders at line rate, so mice on idle paths finish at
//!   ideal speed regardless of scheme, while mice sharing a bottleneck
//!   with elephants queue behind the scheme's standing buffer — shallow
//!   for FNCC/HPCC (INT-driven, early reaction), deep for DCQCN (ECN
//!   threshold + CNP delay). The simulator scales this penalty by how
//!   contended each flow's path actually was (see `FluidSim`), so it
//!   vanishes on idle paths.
//!
//! These are deliberately coarse: the fluid backend trades per-packet
//! effects (PFC pauses, INT staleness, ECN marking noise) for five to six
//! orders of magnitude in speed. The cross-validation suite in `tests/`
//! pins the resulting FCT-slowdown error against the packet DES backend.

use fncc_cc::CcKind;

/// Steady-state fluid model of one congestion-control scheme.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RateModel {
    /// Scheme this model stands in for.
    pub kind: CcKind,
    /// Sustained fraction of bottleneck capacity in `(0, 1]`.
    pub utilization: f64,
    /// Standing-queue delay on a fully-contended path, in base RTTs.
    pub queue_rtts: f64,
}

/// Measured steady-state parameters of one scheme — the two [`RateModel`]
/// knobs, without the scheme tag. Produced by `fncc-repro calibrate` (see
/// `fncc_experiments::calibrate`), persisted in the `fncc.calibration/v1`
/// artifact, and consumed through [`CalibrationSet`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Calibration {
    /// Sustained fraction of bottleneck capacity in `(0, 1]`.
    pub utilization: f64,
    /// Standing-queue delay on a fully-contended path, in base RTTs.
    pub queue_rtts: f64,
}

impl Calibration {
    /// Check the model invariants: `utilization ∈ (0, 1]`, `queue_rtts`
    /// finite and non-negative.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.utilization > 0.0 && self.utilization <= 1.0) {
            return Err(format!(
                "utilization must be in (0,1], got {}",
                self.utilization
            ));
        }
        if !(self.queue_rtts >= 0.0 && self.queue_rtts.is_finite()) {
            return Err(format!(
                "queue_rtts must be finite and >= 0, got {}",
                self.queue_rtts
            ));
        }
        Ok(())
    }
}

/// A complete six-scheme calibration: one [`Calibration`] per [`CcKind`],
/// stored densely in [`CcKind::ALL`] order. `Copy` on purpose — a set is
/// 12 floats, so scenario overrides and backends can carry one by value.
///
/// Construction goes through [`CalibrationSet::new`]/[`CalibrationSet::set`],
/// which enforce the per-scheme invariants, so a loaded set is always safe
/// to feed to [`RateModel::from_calibration`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CalibrationSet {
    entries: [Calibration; CcKind::ALL.len()],
}

impl CalibrationSet {
    /// A set from per-scheme entries in [`CcKind::ALL`] order. Errors when
    /// any entry violates the model invariants.
    pub fn new(entries: [Calibration; CcKind::ALL.len()]) -> Result<Self, String> {
        for (kind, e) in CcKind::ALL.iter().zip(&entries) {
            e.validate().map_err(|m| format!("{kind}: {m}"))?;
        }
        Ok(CalibrationSet { entries })
    }

    /// The calibration that reproduces [`RateModel::paper_default`] for
    /// every scheme — the zero-IO default, regenerated from the checked-in
    /// `CALIBRATION.json` artifact (the sync is pinned by
    /// `tests/calibration.rs`).
    pub fn paper() -> Self {
        let mut entries = [Calibration {
            utilization: 1.0,
            queue_rtts: 0.0,
        }; CcKind::ALL.len()];
        for kind in CcKind::ALL {
            let m = RateModel::paper_default(kind);
            entries[kind.index()] = Calibration {
                utilization: m.utilization,
                queue_rtts: m.queue_rtts,
            };
        }
        CalibrationSet { entries }
    }

    /// The entry for `kind`.
    pub fn get(&self, kind: CcKind) -> Calibration {
        self.entries[kind.index()]
    }

    /// Replace the entry for `kind`, enforcing the invariants.
    pub fn set(&mut self, kind: CcKind, entry: Calibration) -> Result<(), String> {
        entry.validate().map_err(|m| format!("{kind}: {m}"))?;
        self.entries[kind.index()] = entry;
        Ok(())
    }

    /// Iterate `(kind, entry)` pairs in [`CcKind::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (CcKind, Calibration)> + '_ {
        CcKind::ALL.iter().map(|&k| (k, self.get(k)))
    }
}

impl RateModel {
    /// The calibrated model for `kind`.
    ///
    /// These constants are **regenerated from the checked-in
    /// `CALIBRATION.json`** (produced by `fncc-repro calibrate`, which
    /// measures each scheme against the packet DES on the calibration
    /// scenario bank — see `DESIGN.md` §RateModel calibration). They are
    /// kept inline so the fluid backend needs no IO; `tests/calibration.rs`
    /// pins the two representations together.
    ///
    /// The measured shape matches the schemes' designs: window-law schemes
    /// with an explicit target (HPCC's η, which FNCC inherits) sustain
    /// ~0.95 of the link, the delay-based schemes ~0.97, and the rate-based
    /// ones fill it. FNCC's return-path INT holds the shallowest standing
    /// queue, HPCC's one-RTT-stale INT slightly deeper, the RTT-gradient
    /// schemes deeper still, and DCQCN's ECN threshold + CNP pipeline the
    /// deepest (the ordering of the paper's Figs. 9/13 queue plots).
    pub fn paper_default(kind: CcKind) -> Self {
        let (utilization, queue_rtts) = match kind {
            CcKind::Fncc => (0.95, 0.4),
            CcKind::Hpcc => (0.95, 0.6),
            CcKind::Swift => (0.97, 1.2),
            CcKind::Timely => (0.97, 1.6),
            CcKind::Rocc => (1.0, 2.4),
            CcKind::Dcqcn => (1.0, 3.2),
        };
        RateModel {
            kind,
            utilization,
            queue_rtts,
        }
    }

    /// The model for `kind` from a measured [`CalibrationSet`] — how the
    /// fluid backend runs with `fncc-repro calibrate` output instead of the
    /// baked-in defaults.
    pub fn from_calibration(kind: CcKind, cal: &CalibrationSet) -> Self {
        let e = cal.get(kind);
        RateModel {
            kind,
            utilization: e.utilization,
            queue_rtts: e.queue_rtts,
        }
    }

    /// An idealized transport: full utilization, no queueing delay.
    /// Useful as the "speed-of-light" baseline in capacity-planning sweeps.
    pub fn ideal() -> Self {
        RateModel {
            kind: CcKind::Fncc,
            utilization: 1.0,
            queue_rtts: 0.0,
        }
    }

    /// Override the utilization (clamped to `(0, 1]`).
    pub fn with_utilization(mut self, eta: f64) -> Self {
        assert!(
            eta > 0.0 && eta <= 1.0,
            "utilization must be in (0,1], got {eta}"
        );
        self.utilization = eta;
        self
    }

    /// Override the standing-queue delay.
    pub fn with_queue_rtts(mut self, rtts: f64) -> Self {
        assert!(rtts >= 0.0 && rtts.is_finite());
        self.queue_rtts = rtts;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_cover_all_schemes() {
        for kind in CcKind::ALL {
            let m = RateModel::paper_default(kind);
            assert_eq!(m.kind, kind);
            assert!(m.utilization > 0.0 && m.utilization <= 1.0);
            assert!(m.queue_rtts >= 0.0);
        }
    }

    #[test]
    fn fncc_keeps_the_shallowest_queue() {
        let f = RateModel::paper_default(CcKind::Fncc);
        for other in CcKind::ALL.into_iter().filter(|&k| k != CcKind::Fncc) {
            assert!(
                f.queue_rtts < RateModel::paper_default(other).queue_rtts,
                "{other:?}"
            );
        }
    }

    #[test]
    fn paper_calibration_reproduces_paper_default() {
        let cal = CalibrationSet::paper();
        for kind in CcKind::ALL {
            assert_eq!(
                RateModel::from_calibration(kind, &cal),
                RateModel::paper_default(kind),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn calibration_set_rejects_invalid_entries() {
        let mut cal = CalibrationSet::paper();
        let bad_util = Calibration {
            utilization: 0.0,
            queue_rtts: 1.0,
        };
        assert!(cal.set(CcKind::Hpcc, bad_util).is_err());
        let bad_queue = Calibration {
            utilization: 0.9,
            queue_rtts: -0.1,
        };
        assert!(cal.set(CcKind::Hpcc, bad_queue).is_err());
        let nan_queue = Calibration {
            utilization: 0.9,
            queue_rtts: f64::NAN,
        };
        assert!(cal.set(CcKind::Hpcc, nan_queue).is_err());
        // The failed sets left the entry untouched.
        assert_eq!(cal, CalibrationSet::paper());
        // A valid replacement goes through and round-trips via get.
        let ok = Calibration {
            utilization: 0.9,
            queue_rtts: 0.7,
        };
        cal.set(CcKind::Hpcc, ok).unwrap();
        assert_eq!(cal.get(CcKind::Hpcc), ok);
        assert_eq!(
            RateModel::from_calibration(CcKind::Hpcc, &cal).queue_rtts,
            0.7
        );
    }

    #[test]
    fn calibration_set_iterates_in_all_order() {
        let cal = CalibrationSet::paper();
        let kinds: Vec<CcKind> = cal.iter().map(|(k, _)| k).collect();
        assert_eq!(kinds, CcKind::ALL.to_vec());
    }

    #[test]
    fn builders_validate() {
        let m = RateModel::ideal()
            .with_utilization(0.9)
            .with_queue_rtts(2.5);
        assert_eq!(m.utilization, 0.9);
        assert_eq!(m.queue_rtts, 2.5);
    }

    #[test]
    #[should_panic]
    fn zero_utilization_rejected() {
        let _ = RateModel::ideal().with_utilization(0.0);
    }
}
