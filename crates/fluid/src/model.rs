//! Per-scheme steady-state rate models.
//!
//! The fluid backend abstracts a congestion-control scheme into two
//! steady-state parameters, the standard reduction used by flow-level CC
//! studies (e.g. the inter-DC fluid models in Zeng's survey and FairQ's
//! fair-share analysis):
//!
//! * `utilization` — the fraction of a saturated link the scheme actually
//!   sustains. Window-law schemes with an explicit target (HPCC's η, which
//!   FNCC inherits) leave `1 − η` headroom by design; rate-based schemes
//!   (DCQCN, RoCC) fill the link and absorb the error in queues instead.
//! * `queue_rtts` — the standing-queue delay a flow crossing a *contended*
//!   path pays, in units of the network base RTT. The packet backend shows
//!   this is where scheme differences actually land for short flows: every
//!   scheme starts senders at line rate, so mice on idle paths finish at
//!   ideal speed regardless of scheme, while mice sharing a bottleneck
//!   with elephants queue behind the scheme's standing buffer — shallow
//!   for FNCC/HPCC (INT-driven, early reaction), deep for DCQCN (ECN
//!   threshold + CNP delay). The simulator scales this penalty by how
//!   contended each flow's path actually was (see `FluidSim`), so it
//!   vanishes on idle paths.
//!
//! These are deliberately coarse: the fluid backend trades per-packet
//! effects (PFC pauses, INT staleness, ECN marking noise) for five to six
//! orders of magnitude in speed. The cross-validation suite in `tests/`
//! pins the resulting FCT-slowdown error against the packet DES backend.

use fncc_cc::CcKind;

/// Steady-state fluid model of one congestion-control scheme.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RateModel {
    /// Scheme this model stands in for.
    pub kind: CcKind,
    /// Sustained fraction of bottleneck capacity in `(0, 1]`.
    pub utilization: f64,
    /// Standing-queue delay on a fully-contended path, in base RTTs.
    pub queue_rtts: f64,
}

impl RateModel {
    /// The calibrated model for `kind`.
    ///
    /// `utilization` mirrors each scheme's published steady-state target
    /// (HPCC/FNCC: η = 0.95; Swift/Timely: delay-based, ~0.97 effective;
    /// DCQCN/RoCC: rate-based, fill the link). `queue_rtts` is calibrated
    /// against the packet backend on the §5.5 fat-tree workloads (see the
    /// cross-validation suite): FNCC's return-path INT holds the shallowest
    /// queues, HPCC's one-RTT-stale INT slightly deeper, the RTT-gradient
    /// schemes deeper still, and DCQCN's ECN threshold + CNP pipeline the
    /// deepest (the ordering of the paper's Figs. 9/13 queue plots).
    pub fn paper_default(kind: CcKind) -> Self {
        let (utilization, queue_rtts) = match kind {
            CcKind::Fncc => (0.95, 0.4),
            CcKind::Hpcc => (0.95, 0.6),
            CcKind::Swift => (0.97, 1.2),
            CcKind::Timely => (0.97, 1.6),
            CcKind::Rocc => (1.0, 2.4),
            CcKind::Dcqcn => (1.0, 3.2),
        };
        RateModel {
            kind,
            utilization,
            queue_rtts,
        }
    }

    /// An idealized transport: full utilization, no queueing delay.
    /// Useful as the "speed-of-light" baseline in capacity-planning sweeps.
    pub fn ideal() -> Self {
        RateModel {
            kind: CcKind::Fncc,
            utilization: 1.0,
            queue_rtts: 0.0,
        }
    }

    /// Override the utilization (clamped to `(0, 1]`).
    pub fn with_utilization(mut self, eta: f64) -> Self {
        assert!(
            eta > 0.0 && eta <= 1.0,
            "utilization must be in (0,1], got {eta}"
        );
        self.utilization = eta;
        self
    }

    /// Override the standing-queue delay.
    pub fn with_queue_rtts(mut self, rtts: f64) -> Self {
        assert!(rtts >= 0.0 && rtts.is_finite());
        self.queue_rtts = rtts;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_cover_all_schemes() {
        for kind in [
            CcKind::Fncc,
            CcKind::Hpcc,
            CcKind::Dcqcn,
            CcKind::Rocc,
            CcKind::Timely,
            CcKind::Swift,
        ] {
            let m = RateModel::paper_default(kind);
            assert_eq!(m.kind, kind);
            assert!(m.utilization > 0.0 && m.utilization <= 1.0);
            assert!(m.queue_rtts >= 0.0);
        }
    }

    #[test]
    fn fncc_keeps_the_shallowest_queue() {
        let f = RateModel::paper_default(CcKind::Fncc);
        for other in [
            CcKind::Hpcc,
            CcKind::Dcqcn,
            CcKind::Rocc,
            CcKind::Timely,
            CcKind::Swift,
        ] {
            assert!(
                f.queue_rtts < RateModel::paper_default(other).queue_rtts,
                "{other:?}"
            );
        }
    }

    #[test]
    fn builders_validate() {
        let m = RateModel::ideal()
            .with_utilization(0.9)
            .with_queue_rtts(2.5);
        assert_eq!(m.utilization, 0.9);
        assert_eq!(m.queue_rtts, 2.5);
    }

    #[test]
    #[should_panic]
    fn zero_utilization_rejected() {
        let _ = RateModel::ideal().with_utilization(0.0);
    }
}
