//! Per-scheme steady-state rate models.
//!
//! The fluid backend abstracts a congestion-control scheme into two
//! steady-state parameters, the standard reduction used by flow-level CC
//! studies (e.g. the inter-DC fluid models in Zeng's survey and FairQ's
//! fair-share analysis):
//!
//! * `utilization` — the fraction of a saturated link the scheme actually
//!   sustains. Window-law schemes with an explicit target (HPCC's η, which
//!   FNCC inherits) leave `1 − η` headroom by design; rate-based schemes
//!   (DCQCN, RoCC) fill the link and absorb the error in queues instead.
//! * `queue_rtts` — the standing-queue delay a flow crossing a *contended*
//!   path pays, in units of the network base RTT. The packet backend shows
//!   this is where scheme differences actually land for short flows: every
//!   scheme starts senders at line rate, so mice on idle paths finish at
//!   ideal speed regardless of scheme, while mice sharing a bottleneck
//!   with elephants queue behind the scheme's standing buffer — shallow
//!   for FNCC/HPCC (INT-driven, early reaction), deep for DCQCN (ECN
//!   threshold + CNP delay). The simulator scales this penalty by how
//!   contended each flow's path actually was (see `FluidSim`), so it
//!   vanishes on idle paths.
//!
//! These are deliberately coarse: the fluid backend trades per-packet
//! effects (PFC pauses, INT staleness, ECN marking noise) for five to six
//! orders of magnitude in speed. The cross-validation suite in `tests/`
//! pins the resulting FCT-slowdown error against the packet DES backend.

use fncc_cc::CcKind;

/// Duration-dependent utilization decay for schemes whose control law
/// degrades under *contended sustained* saturation (Timely: competing
/// RTT-gradient controllers synchronize into a deep oscillation once a
/// shared bottleneck stays saturated for many RTTs, sustaining far less
/// than the short-horizon utilization; a solo drain settles fine). Short
/// flows never reach the regime and keep the headline `utilization`; long
/// drains decay linearly toward `eta_sustained` between `onset_rtts` and
/// `ramp_rtts` of drain duration, scaled by how contended the drain was
/// (`eta_sustained` is the fully-contended asymptote).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DurationEta {
    /// Utilization a drain converges to once fully in the oscillating
    /// regime, in `(0, 1]` (below the headline `utilization`).
    pub eta_sustained: f64,
    /// Drain duration (in base RTTs) below which the decay has no effect.
    pub onset_rtts: f64,
    /// Drain duration (in base RTTs) at which the decay is complete.
    pub ramp_rtts: f64,
}

/// Steady-state fluid model of one congestion-control scheme.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RateModel {
    /// Scheme this model stands in for.
    pub kind: CcKind,
    /// Sustained fraction of bottleneck capacity in `(0, 1]`.
    pub utilization: f64,
    /// Standing-queue delay on a fully-contended path, in base RTTs.
    pub queue_rtts: f64,
    /// Duration→effective-η hook for schemes that cannot hold their
    /// short-horizon utilization under sustained saturation (`None` for
    /// every scheme but Timely). A per-scheme structural property, not a
    /// calibrated knob: [`RateModel::from_calibration`] applies the same
    /// table as [`RateModel::paper_default`].
    pub duration_eta: Option<DurationEta>,
}

/// Measured steady-state parameters of one scheme — the two [`RateModel`]
/// knobs, without the scheme tag. Produced by `fncc-repro calibrate` (see
/// `fncc_experiments::calibrate`), persisted in the `fncc.calibration/v1`
/// artifact, and consumed through [`CalibrationSet`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Calibration {
    /// Sustained fraction of bottleneck capacity in `(0, 1]`.
    pub utilization: f64,
    /// Standing-queue delay on a fully-contended path, in base RTTs.
    pub queue_rtts: f64,
}

impl Calibration {
    /// Check the model invariants: `utilization ∈ (0, 1]`, `queue_rtts`
    /// finite and non-negative.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.utilization > 0.0 && self.utilization <= 1.0) {
            return Err(format!(
                "utilization must be in (0,1], got {}",
                self.utilization
            ));
        }
        if !(self.queue_rtts >= 0.0 && self.queue_rtts.is_finite()) {
            return Err(format!(
                "queue_rtts must be finite and >= 0, got {}",
                self.queue_rtts
            ));
        }
        Ok(())
    }
}

/// A complete calibration: one [`Calibration`] per scheme in
/// [`CcKind::ALL`], stored densely in that order. `Copy` on purpose — a
/// set is two floats per scheme, so scenario overrides and backends can
/// carry one by value. The array is sized by `CcKind::ALL.len()`, so a
/// newly listed scheme extends every set automatically.
///
/// Construction goes through [`CalibrationSet::new`]/[`CalibrationSet::set`],
/// which enforce the per-scheme invariants, so a loaded set is always safe
/// to feed to [`RateModel::from_calibration`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CalibrationSet {
    entries: [Calibration; CcKind::ALL.len()],
}

impl CalibrationSet {
    /// A set from per-scheme entries in [`CcKind::ALL`] order. Errors when
    /// any entry violates the model invariants.
    pub fn new(entries: [Calibration; CcKind::ALL.len()]) -> Result<Self, String> {
        for (kind, e) in CcKind::ALL.iter().zip(&entries) {
            e.validate().map_err(|m| format!("{kind}: {m}"))?;
        }
        Ok(CalibrationSet { entries })
    }

    /// The calibration that reproduces [`RateModel::paper_default`] for
    /// every scheme — the zero-IO default, regenerated from the checked-in
    /// `CALIBRATION.json` artifact (the sync is pinned by
    /// `tests/calibration.rs`).
    pub fn paper() -> Self {
        let mut entries = [Calibration {
            utilization: 1.0,
            queue_rtts: 0.0,
        }; CcKind::ALL.len()];
        for kind in CcKind::ALL {
            let m = RateModel::paper_default(kind);
            entries[kind.index()] = Calibration {
                utilization: m.utilization,
                queue_rtts: m.queue_rtts,
            };
        }
        CalibrationSet { entries }
    }

    /// The entry for `kind`.
    pub fn get(&self, kind: CcKind) -> Calibration {
        self.entries[kind.index()]
    }

    /// Replace the entry for `kind`, enforcing the invariants.
    pub fn set(&mut self, kind: CcKind, entry: Calibration) -> Result<(), String> {
        entry.validate().map_err(|m| format!("{kind}: {m}"))?;
        self.entries[kind.index()] = entry;
        Ok(())
    }

    /// Iterate `(kind, entry)` pairs in [`CcKind::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (CcKind, Calibration)> + '_ {
        CcKind::ALL.iter().map(|&k| (k, self.get(k)))
    }
}

impl RateModel {
    /// The calibrated model for `kind`.
    ///
    /// These constants are **regenerated from the checked-in
    /// `CALIBRATION.json`** (produced by `fncc-repro calibrate`, which
    /// measures each scheme against the packet DES on the calibration
    /// scenario bank — see `DESIGN.md` §RateModel calibration). They are
    /// kept inline so the fluid backend needs no IO; `tests/calibration.rs`
    /// pins the two representations together.
    ///
    /// The measured shape matches the schemes' designs: window-law schemes
    /// with an explicit target (HPCC's η, which FNCC inherits) sustain
    /// ~0.95 of the link, the delay-based schemes ~0.97, and the rate-based
    /// ones fill it. FNCC's return-path INT holds the shallowest standing
    /// queue, HPCC's one-RTT-stale INT slightly deeper, the RTT-gradient
    /// schemes deeper still, and DCQCN's ECN threshold + CNP pipeline the
    /// deepest (the ordering of the paper's Figs. 9/13 queue plots).
    pub fn paper_default(kind: CcKind) -> Self {
        let (utilization, queue_rtts) = match kind {
            CcKind::Fncc => (0.95, 0.4),
            CcKind::Hpcc => (0.95, 0.6),
            CcKind::FairQ => (0.95, 0.8),
            CcKind::Swift => (0.97, 1.2),
            CcKind::Timely => (0.97, 1.6),
            CcKind::Rocc => (1.0, 2.4),
            CcKind::Dcqcn => (1.0, 3.2),
            CcKind::Throttle => (1.0, 3.6),
        };
        RateModel {
            kind,
            utilization,
            queue_rtts,
            duration_eta: Self::duration_eta_default(kind),
        }
    }

    /// The structural duration→η decay per scheme (see [`DurationEta`]).
    /// Only Timely needs one: the packet DES shows its gradient control
    /// sustaining ~0.6 of the bottleneck on multi-MB drains while every
    /// other scheme holds its headline utilization.
    fn duration_eta_default(kind: CcKind) -> Option<DurationEta> {
        match kind {
            CcKind::Timely => Some(DurationEta {
                eta_sustained: 0.41,
                onset_rtts: 4.0,
                ramp_rtts: 16.0,
            }),
            _ => None,
        }
    }

    /// The model for `kind` from a measured [`CalibrationSet`] — how the
    /// fluid backend runs with `fncc-repro calibrate` output instead of the
    /// baked-in defaults.
    pub fn from_calibration(kind: CcKind, cal: &CalibrationSet) -> Self {
        let e = cal.get(kind);
        RateModel {
            kind,
            utilization: e.utilization,
            queue_rtts: e.queue_rtts,
            duration_eta: Self::duration_eta_default(kind),
        }
    }

    /// An idealized transport: full utilization, no queueing delay.
    /// Useful as the "speed-of-light" baseline in capacity-planning sweeps.
    pub fn ideal() -> Self {
        RateModel {
            kind: CcKind::Fncc,
            utilization: 1.0,
            queue_rtts: 0.0,
            duration_eta: None,
        }
    }

    /// Effective utilization of a drain that lasted `duration` seconds at
    /// contention level `contention ∈ [0, 1]` (the fraction by which the
    /// flow's mean rate fell below the scheme's uncontended drain rate):
    /// the headline `utilization` for short or uncontended flows, decaying
    /// linearly toward the scheme's fully-contended sustained value
    /// between `onset_rtts` and `ramp_rtts` of drain duration (identity
    /// for schemes without a [`DurationEta`]).
    pub fn effective_eta(&self, duration: f64, base_rtt: f64, contention: f64) -> f64 {
        let Some(d) = self.duration_eta else {
            return self.utilization;
        };
        if base_rtt <= 0.0 || d.ramp_rtts <= d.onset_rtts {
            return self.utilization;
        }
        let rtts = duration / base_rtt;
        let w = ((rtts - d.onset_rtts) / (d.ramp_rtts - d.onset_rtts)).clamp(0.0, 1.0)
            * contention.clamp(0.0, 1.0);
        self.utilization + (d.eta_sustained - self.utilization) * w
    }

    /// Override the utilization (clamped to `(0, 1]`).
    pub fn with_utilization(mut self, eta: f64) -> Self {
        assert!(
            eta > 0.0 && eta <= 1.0,
            "utilization must be in (0,1], got {eta}"
        );
        self.utilization = eta;
        self
    }

    /// Override the standing-queue delay.
    pub fn with_queue_rtts(mut self, rtts: f64) -> Self {
        assert!(rtts >= 0.0 && rtts.is_finite());
        self.queue_rtts = rtts;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_cover_all_schemes() {
        for kind in CcKind::ALL {
            let m = RateModel::paper_default(kind);
            assert_eq!(m.kind, kind);
            assert!(m.utilization > 0.0 && m.utilization <= 1.0);
            assert!(m.queue_rtts >= 0.0);
        }
    }

    #[test]
    fn fncc_keeps_the_shallowest_queue() {
        let f = RateModel::paper_default(CcKind::Fncc);
        for other in CcKind::ALL.into_iter().filter(|&k| k != CcKind::Fncc) {
            assert!(
                f.queue_rtts < RateModel::paper_default(other).queue_rtts,
                "{other:?}"
            );
        }
    }

    #[test]
    fn paper_calibration_reproduces_paper_default() {
        let cal = CalibrationSet::paper();
        for kind in CcKind::ALL {
            assert_eq!(
                RateModel::from_calibration(kind, &cal),
                RateModel::paper_default(kind),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn calibration_set_rejects_invalid_entries() {
        let mut cal = CalibrationSet::paper();
        let bad_util = Calibration {
            utilization: 0.0,
            queue_rtts: 1.0,
        };
        assert!(cal.set(CcKind::Hpcc, bad_util).is_err());
        let bad_queue = Calibration {
            utilization: 0.9,
            queue_rtts: -0.1,
        };
        assert!(cal.set(CcKind::Hpcc, bad_queue).is_err());
        let nan_queue = Calibration {
            utilization: 0.9,
            queue_rtts: f64::NAN,
        };
        assert!(cal.set(CcKind::Hpcc, nan_queue).is_err());
        // The failed sets left the entry untouched.
        assert_eq!(cal, CalibrationSet::paper());
        // A valid replacement goes through and round-trips via get.
        let ok = Calibration {
            utilization: 0.9,
            queue_rtts: 0.7,
        };
        cal.set(CcKind::Hpcc, ok).unwrap();
        assert_eq!(cal.get(CcKind::Hpcc), ok);
        assert_eq!(
            RateModel::from_calibration(CcKind::Hpcc, &cal).queue_rtts,
            0.7
        );
    }

    #[test]
    fn calibration_set_iterates_in_all_order() {
        let cal = CalibrationSet::paper();
        let kinds: Vec<CcKind> = cal.iter().map(|(k, _)| k).collect();
        assert_eq!(kinds, CcKind::ALL.to_vec());
    }

    #[test]
    fn duration_eta_decays_only_for_timely() {
        let base_rtt = 13e-6;
        for kind in CcKind::ALL {
            let m = RateModel::paper_default(kind);
            assert_eq!(
                m.effective_eta(0.0, base_rtt, 1.0),
                m.utilization,
                "{kind:?}"
            );
            let sustained = m.effective_eta(1.0, base_rtt, 1.0);
            if kind == CcKind::Timely {
                let d = m.duration_eta.unwrap();
                assert!((sustained - d.eta_sustained).abs() < 1e-12);
                // Midway through the ramp sits strictly between the bounds.
                let mid =
                    m.effective_eta(base_rtt * (d.onset_rtts + d.ramp_rtts) / 2.0, base_rtt, 1.0);
                assert!(sustained < mid && mid < m.utilization);
                // An uncontended drain never decays, however long it runs.
                assert_eq!(m.effective_eta(1.0, base_rtt, 0.0), m.utilization);
                // Half contention decays halfway to the sustained value.
                let half = m.effective_eta(1.0, base_rtt, 0.5);
                assert!((half - (m.utilization + d.eta_sustained) / 2.0).abs() < 1e-12);
            } else {
                assert_eq!(m.duration_eta, None, "{kind:?}");
                assert_eq!(sustained, m.utilization, "{kind:?}");
            }
        }
        // Degenerate base RTT: the hook is inert, not a division by zero.
        let t = RateModel::paper_default(CcKind::Timely);
        assert_eq!(t.effective_eta(1.0, 0.0, 1.0), t.utilization);
    }

    #[test]
    fn builders_validate() {
        let m = RateModel::ideal()
            .with_utilization(0.9)
            .with_queue_rtts(2.5);
        assert_eq!(m.utilization, 0.9);
        assert_eq!(m.queue_rtts, 2.5);
    }

    #[test]
    #[should_panic]
    fn zero_utilization_rejected() {
        let _ = RateModel::ideal().with_utilization(0.0);
    }
}
