//! Property tests: the water-filling allocator produces *feasible* (no
//! link oversubscribed) and *Pareto-optimal / max-min* (every uncapped
//! flow pinned by a saturated bottleneck) rates for arbitrary demand sets,
//! both on synthetic link sets and over real topologies' routed paths.

use fncc_des::time::TimeDelta;
use fncc_fluid::{find_non_pareto_flow, water_fill, worst_oversubscription, Demand, LinkMap};
use fncc_net::ids::{FlowId, HostId};
use fncc_net::topology::Topology;
use fncc_net::units::Bandwidth;
use proptest::prelude::*;

const TOL: f64 = 1e-6;

proptest! {
    /// Arbitrary synthetic networks: random capacities, random paths,
    /// random (sometimes finite) caps.
    #[test]
    fn synthetic_allocations_feasible_and_pareto(
        caps_raw in proptest::collection::vec(1u64..1000, 4..40),
        flow_raw in proptest::collection::vec((0u64..1_000_000, 1u64..6, 0u64..100), 1..120),
    ) {
        let nl = caps_raw.len();
        let capacity: Vec<f64> = caps_raw.iter().map(|&c| c as f64 * 1e8).collect();
        // Derive each flow's path from its hash fields, dedup'd.
        let paths: Vec<Vec<u32>> = flow_raw
            .iter()
            .map(|&(h, len, _)| {
                let mut p: Vec<u32> =
                    (0..len).map(|k| ((h.wrapping_mul(31).wrapping_add(k * 7919)) % nl as u64) as u32).collect();
                p.sort_unstable();
                p.dedup();
                p
            })
            .collect();
        let flows: Vec<Demand<'_>> = flow_raw
            .iter()
            .zip(&paths)
            .map(|(&(_, _, cap_sel), p)| Demand {
                cap: if cap_sel < 30 { (cap_sel + 1) as f64 * 1e9 } else { f64::INFINITY },
                path: p,
            })
            .collect();
        let rates = water_fill(&capacity, &flows);
        prop_assert!(rates.iter().all(|r| r.is_finite() && *r >= 0.0));
        let over = worst_oversubscription(&capacity, &flows, &rates);
        prop_assert!(over < TOL, "oversubscribed by {over}");
        prop_assert_eq!(find_non_pareto_flow(&capacity, &flows, &rates, TOL), None);
    }

    /// Real routed paths: random flow sets over the k=4 fat-tree with ECMP.
    #[test]
    fn fat_tree_allocations_feasible_and_pareto(
        endpoints in proptest::collection::vec((0u32..16, 0u32..16, 0u32..10_000), 1..80),
    ) {
        let topo = Topology::fat_tree(4, Bandwidth::gbps(100), TimeDelta::from_ns(1500));
        let links = LinkMap::new(&topo);
        let paths: Vec<Vec<u32>> = endpoints
            .iter()
            .filter(|&&(s, d, _)| s != d)
            .map(|&(s, d, f)| links.path_links(&topo, HostId(s), HostId(d), FlowId(f)))
            .collect();
        prop_assume!(!paths.is_empty());
        let flows: Vec<Demand<'_>> =
            paths.iter().map(|p| Demand { cap: f64::INFINITY, path: p }).collect();
        let rates = water_fill(links.capacities(), &flows);
        let over = worst_oversubscription(links.capacities(), &flows, &rates);
        prop_assert!(over < TOL, "oversubscribed by {over}");
        prop_assert_eq!(find_non_pareto_flow(links.capacities(), &flows, &rates, TOL), None);
        // On a 1:1 fat-tree no flow can beat its NIC, and every flow gets
        // something.
        for (&r, p) in rates.iter().zip(&paths) {
            prop_assert!(r > 0.0);
            let nic = links.capacity(p[0]);
            prop_assert!(r <= nic * (1.0 + TOL), "rate {r} above NIC {nic}");
        }
    }

    /// Max-min dominance: splitting one flow's traffic onto a second flow
    /// with the same path never *raises* the original flow's rate.
    #[test]
    fn adding_a_flow_never_helps_existing_sharers(
        n_before in 1usize..20,
    ) {
        let caps = [100e9f64, 100e9];
        let p = [0u32, 1];
        let mk = |n: usize| -> Vec<f64> {
            let flows: Vec<Demand<'_>> =
                (0..n).map(|_| Demand { cap: f64::INFINITY, path: &p }).collect();
            water_fill(&caps, &flows)
        };
        let before = mk(n_before);
        let after = mk(n_before + 1);
        prop_assert!(after[0] <= before[0] * (1.0 + TOL));
    }
}

/// Star incast: n flows into one host split the receiver link evenly —
/// the allocator's answer matches the closed form exactly.
#[test]
fn star_incast_matches_closed_form() {
    for n in [1u32, 2, 7, 32] {
        let topo = Topology::star(n + 1, Bandwidth::gbps(100), TimeDelta::from_us(1));
        let links = LinkMap::new(&topo);
        let paths: Vec<Vec<u32>> = (0..n)
            .map(|i| links.path_links(&topo, HostId(i), HostId(n), FlowId(i)))
            .collect();
        let flows: Vec<Demand<'_>> = paths
            .iter()
            .map(|p| Demand {
                cap: f64::INFINITY,
                path: p,
            })
            .collect();
        let rates = water_fill(links.capacities(), &flows);
        let expect = 100e9 / n as f64;
        for &r in &rates {
            assert!((r - expect).abs() / expect < 1e-9, "n={n}: {r} vs {expect}");
        }
    }
}
