#![warn(missing_docs)]
//! `fncc-hybrid` — the fluid↔packet co-simulation engine.
//!
//! A hybrid run partitions a scenario's flows into two halves that share
//! one network:
//!
//! * **Background** flows (the fleet-scale bulk: elephants, steady
//!   transfers) drain in a [`BackgroundFluid`] — incremental max-min
//!   water-filling under a calibrated [`RateModel`], costing one solver
//!   delta per arrival/finish instead of millions of packet events.
//! * **Foreground** flows (incast victims, latency-sensitive mice,
//!   anything being measured at packet fidelity) run in the full packet
//!   DES: the same [`DcHost`] transport, CC schemes, PFC, and switch
//!   model as the pure packet backend.
//!
//! The two halves are coupled bidirectionally at *synchronization
//! boundaries* — fluid event times (arrival/finish) capped by a maximum
//! sync interval:
//!
//! * fluid → packet: the background's standing queue on each contended
//!   link — its ramped share of the scheme's calibrated `queue_rtts`,
//!   attributed to the first saturated link of each flow's path — is
//!   pushed onto the DES port as a **shadow backlog**
//!   ([`fncc_net::fabric::Fabric::set_port_backlog`]). Foreground
//!   congestion control then senses the fluid half through its native
//!   signals (INT `qLen`, ECN marks, RoCC rate advertisements, inflated
//!   RTT) and frames queue behind it in FIFO order, exactly as behind a
//!   packet competitor. An alternative hard mode
//!   ([`HybridConfig::residual_cap`]) instead caps the port's drain rate
//!   at the **residual** capacity the background leaves
//!   ([`fncc_net::fabric::Fabric::set_port_drain`]);
//! * packet → fluid: measured foreground throughput per link (from port
//!   byte counters, with hysteresis) is fed back as a **demand
//!   reservation** ([`BackgroundFluid::reserve`]), shrinking the
//!   capacity the water-filler shares out. A reservation dirtying a
//!   single contended link takes the closed-form single-bottleneck
//!   re-solve — the incast fast path.
//!
//! Newborn flows on both halves phase their fair-share entitlement in
//! over [`HybridConfig::ramp_rtts`]: a flow that just started holds its
//! initial window, not its converged max-min share, and the coupling
//! must not hand it one. The same ramp (from a floor of zero) governs
//! how fast a newborn's standing-queue contribution builds.
//!
//! The result is packet-level fidelity where it matters at a cost that
//! scales with foreground traffic plus background *events*, not
//! background *packets*.

use fncc_cc::CcKind;
use fncc_des::engine::Engine;
use fncc_des::time::{SimTime, TimeDelta};
use fncc_fluid::{BackgroundFluid, CapacityEvent, FluidError, FluidResult, Framing, RateModel};
use fncc_net::config::FabricConfig;
use fncc_net::fabric::{Ev, Fabric};
use fncc_net::ids::{HostId, NodeRef};
use fncc_net::telemetry::Telemetry;
use fncc_net::topology::Topology;
use fncc_net::units::Bandwidth;
use fncc_obs::{CounterId, TraceEvent, TraceSink};
use fncc_transport::{
    apply_cc_features, make_algo, DcHost, FlowSpec, HostTimer, RecoveryConfig, TransportConfig,
};

/// Knobs for the coupling loop. The defaults match the paper-default
/// packet fabric; scenarios normally only toggle `trace`.
#[derive(Debug, Clone, Copy)]
pub struct HybridConfig {
    /// Maximum interval between fluid↔packet synchronizations. Fluid
    /// events (arrivals/finishes) always force a boundary; this cap
    /// bounds how stale a reservation or residual can get between them.
    pub max_sync: TimeDelta,
    /// Relative hysteresis on foreground-throughput reservations: a
    /// link's reservation is only re-pushed when the measured load moved
    /// by more than this fraction of the link's raw bandwidth. Damps
    /// solver churn from packet-scale rate jitter.
    pub hysteresis: f64,
    /// Cumulative-ACK granularity for the foreground transport (§3.2.3's
    /// `m`).
    pub ack_every: u32,
    /// Fair-share ramp length in base-RTTs. A packet flow does not claim
    /// its converged max-min share at birth — it climbs through window
    /// growth and an already-built standing queue. Both halves' flows
    /// therefore phase their *entitlement weight* in linearly over this
    /// many RTTs when the coupling splits a shared link; `0` disables the
    /// ramp (instant fair share).
    pub ramp_rtts: f64,
    /// Entitlement weight a flow holds at birth (fraction of its mature
    /// weight); the linear ramp runs from this floor up to 1.
    pub ramp_floor: f64,
    /// Scale on the background's *shadow queue*: the standing queue the
    /// background would hold on a contended link
    /// (`queue_rtts · base_rtt · capacity`, from the calibrated
    /// [`RateModel`]), weighted by the background's ramped share of the
    /// link, is pushed onto the DES port as a phantom backlog
    /// ([`fncc_net::fabric::Fabric::set_port_backlog`]). Foreground
    /// congestion control then reacts to the fluid half's queue exactly
    /// as it would to a packet competitor's: through INT `qLen`, ECN
    /// marks, RoCC rate advertisements and inflated RTT. `0` disables
    /// the shadow queue.
    pub shadow_queue: f64,
    /// Subtracted from the scheme's `queue_rtts` before sizing the shadow
    /// queue (clamped at zero). Useful with `residual_cap`: the shallow
    /// part of a standing queue is already implied by the drain-rate
    /// cap, so only the excess depth needs shadowing.
    pub shadow_offset_rtts: f64,
    /// Push residual-capacity caps onto DES ports (the hard bandwidth
    /// side of the fluid→packet coupling). Off by default: with the
    /// shadow queue active, a hard cap double-counts the background's
    /// pressure — the foreground is throttled once by the inflated
    /// congestion signals and again by the shrunken port. The cap is the
    /// right tool when the shadow queue is disabled (`shadow_queue: 0`)
    /// or when the foreground must never exceed its fluid share even
    /// transiently (strict bandwidth-conservation studies).
    pub residual_cap: bool,
    /// Arm the flight-recorder trace on both halves (hybrid coupling
    /// events land in the foreground sink).
    pub trace: bool,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            max_sync: TimeDelta::from_us(100),
            hysteresis: 0.02,
            ack_every: 1,
            ramp_rtts: 4.0,
            ramp_floor: 0.25,
            shadow_queue: 1.0,
            shadow_offset_rtts: 0.0,
            residual_cap: false,
            trace: false,
        }
    }
}

/// Outcome of a completed hybrid run: the packet half's telemetry, the
/// fluid half's result, and the coupling statistics.
pub struct HybridResult {
    /// Foreground (packet DES) telemetry: flow records, counters,
    /// metrics, trace ring.
    pub fg: Telemetry,
    /// Background (fluid) result: flow records, solver statistics,
    /// profiler.
    pub bg: FluidResult,
    /// Fluid↔packet synchronization boundaries taken.
    pub syncs: u64,
    /// Foreground-demand reservations pushed into the water-filler.
    pub reservations: u64,
    /// Residual-capacity pushes onto DES ports.
    pub residual_pushes: u64,
    /// Shadow-queue backlog pushes onto DES ports.
    pub backlog_pushes: u64,
    /// Closed-form single-bottleneck re-solves (incast fast path).
    pub single_bottleneck_solves: u64,
    /// Packet events dispatched by the foreground DES.
    pub fg_events: u64,
    /// Peak concurrently-active background flows.
    pub peak_bg_active: usize,
}

/// One foreground link's coupling state, indexed alongside `fg_links`.
#[derive(Debug, Clone, Copy)]
struct FgLink {
    /// Dense directed-link id (shared with the fluid [`BackgroundFluid`]).
    link: u32,
    /// The DES port this link drains through.
    node: NodeRef,
    port: u8,
    /// Raw (unscaled) link bandwidth, bits/s.
    raw_bps: f64,
    /// Port byte counter at the last sync.
    last_tx: u64,
    /// Last reservation pushed into the fluid half, bits/s.
    last_reserved: f64,
    /// Last shadow-queue backlog pushed onto the DES port, bytes.
    last_backlog: u64,
    /// Foreground flows currently alive across this link.
    n_fg: u32,
    /// A foreground flow was admitted on this link at the current
    /// boundary (no throughput measurement exists for it yet).
    fresh: bool,
}

/// The co-simulation engine: a packet DES carrying the foreground flows
/// and a stepping fluid model carrying the background, advanced in
/// lockstep with bidirectional capacity exchange.
pub struct HybridSim {
    eng: Engine<Fabric<DcHost>>,
    bg: BackgroundFluid,
    cfg: HybridConfig,
    /// The network description, kept for analysis (ideal FCT, paths).
    pub topo: Topology,
    /// The CC scheme both halves are calibrated to.
    pub kind: CcKind,
    /// Coupling state for every link a foreground flow traverses.
    fg_links: Vec<FgLink>,
    /// Dense link id → index into `fg_links` (`u32::MAX` = not foreground).
    fg_index: Vec<u32>,
    /// Foreground flow specs (for lifecycle tracking at boundaries).
    fg_specs: Vec<FlowSpec>,
    /// Per-spec list of `fg_links` indices on that flow's data path.
    fg_flow_links: Vec<Vec<u32>>,
    /// Scratch: per-`fg_links` age-ramped foreground entitlement weight,
    /// rebuilt at every boundary.
    fg_w: Vec<f64>,
    /// Entitlement ramp length in seconds (`ramp_rtts · base_rtt`).
    ramp: f64,
    /// The background's full-contention standing-queue delay in seconds
    /// (`queue_rtts · base_rtt · shadow_queue`, from the calibrated rate
    /// model).
    queue_debt: f64,
    /// Spec indices sorted by start time; `next_fg_admit` walks it.
    fg_order: Vec<u32>,
    next_fg_admit: usize,
    /// Spec indices of foreground flows admitted but not yet finished.
    fg_active: Vec<u32>,
    touched_buf: Vec<u32>,
    last_sync: SimTime,
    syncs: u64,
    reservations: u64,
    residual_pushes: u64,
    backlog_pushes: u64,
    c_syncs: CounterId,
    c_reservations: CounterId,
    c_residuals: CounterId,
    c_backlogs: CounterId,
}

impl HybridSim {
    /// Build a hybrid simulation: `foreground` flows go to the packet
    /// DES, `background` flows to the fluid model (rates under `model`,
    /// which should be calibrated for `kind`). Fails like the fluid
    /// backend on zero-capacity links.
    pub fn new(
        topo: Topology,
        kind: CcKind,
        foreground: Vec<FlowSpec>,
        background: Vec<FlowSpec>,
        model: RateModel,
        cfg: HybridConfig,
    ) -> Result<Self, FluidError> {
        Self::new_faulted(
            topo,
            kind,
            foreground,
            background,
            model,
            cfg,
            |_| {},
            None,
            Vec::new(),
        )
    }

    /// [`Self::new`] with scenario faults applied to both halves:
    /// `mutate_fabric` injects link faults into the foreground DES config
    /// (the caller lowers its scenario-level fault specs there), `recovery`
    /// arms go-back-N loss recovery on the foreground transport, and
    /// `bg_faults` are the same faults lowered to fluid capacity events
    /// for the background half.
    #[allow(clippy::too_many_arguments)]
    pub fn new_faulted(
        topo: Topology,
        kind: CcKind,
        foreground: Vec<FlowSpec>,
        background: Vec<FlowSpec>,
        model: RateModel,
        cfg: HybridConfig,
        mutate_fabric: impl FnOnce(&mut FabricConfig),
        recovery: Option<RecoveryConfig>,
        bg_faults: Vec<CapacityEvent>,
    ) -> Result<Self, FluidError> {
        let mut fabric_cfg = FabricConfig::paper_default();
        let line = topo.host_ports[0].bw;
        let base_rtt = topo.base_rtt(fabric_cfg.mtu, fabric_cfg.ack_base);
        apply_cc_features(&mut fabric_cfg, kind, line);
        mutate_fabric(&mut fabric_cfg);
        let cc = make_algo(kind, line, base_rtt);
        let framing = Framing::from(&fabric_cfg);

        let queue_debt = (model.queue_rtts - cfg.shadow_offset_rtts).max(0.0)
            * base_rtt.as_secs_f64()
            * cfg.shadow_queue
            * newcomer_queue_scale(kind);
        let mut bg = BackgroundFluid::new(topo.clone(), model, framing, background, cfg.trace)?;
        bg.capacity_events(bg_faults);

        let mut tcfg = TransportConfig::new(cc).with_ack_every(cfg.ack_every);
        tcfg.recovery = recovery;
        let hosts: Vec<DcHost> = (0..topo.n_hosts)
            .map(|_| DcHost::new(tcfg.clone()))
            .collect();
        let mut fabric = Fabric::new(&topo, fabric_cfg, hosts);
        if cfg.trace {
            fabric.telemetry.trace = TraceSink::with_capacity(TraceSink::DEFAULT_CAPACITY);
        }
        let c_syncs = fabric.telemetry.metrics.counter("hybrid_syncs");
        let c_reservations = fabric.telemetry.metrics.counter("hybrid_reservations");
        let c_residuals = fabric.telemetry.metrics.counter("hybrid_residual_pushes");
        let c_backlogs = fabric.telemetry.metrics.counter("hybrid_backlog_pushes");

        // The foreground link set: every directed link some foreground
        // flow's data path crosses. Only these links exchange
        // reservations and residuals — background-only links never touch
        // the DES, and foreground-only links never dirty the solver.
        let links = bg.link_map();
        let mut fg_index = vec![u32::MAX; links.len()];
        let mut fg_links = Vec::new();
        let mut fg_flow_links = Vec::with_capacity(foreground.len());
        let mut buf = Vec::new();
        for f in &foreground {
            links.path_links_into(&topo, f.src, f.dst, f.id, &mut buf);
            let mut ixs = Vec::with_capacity(buf.len());
            for &l in &buf {
                if fg_index[l as usize] == u32::MAX {
                    fg_index[l as usize] = fg_links.len() as u32;
                    let (node, port) = links.node_of(l);
                    fg_links.push(FgLink {
                        link: l,
                        node,
                        port,
                        raw_bps: links.capacities()[l as usize],
                        last_tx: 0,
                        last_reserved: 0.0,
                        last_backlog: 0,
                        n_fg: 0,
                        fresh: false,
                    });
                }
                ixs.push(fg_index[l as usize]);
            }
            fg_flow_links.push(ixs);
        }
        let mut fg_order: Vec<u32> = (0..foreground.len() as u32).collect();
        fg_order.sort_by_key(|&i| foreground[i as usize].start);

        for f in &foreground {
            fabric.hosts[f.src.ix()].add_flow(f.clone());
        }
        let mut eng = Engine::new(fabric);
        for (t, ev) in eng.model.startup_events() {
            eng.schedule(t, ev);
        }
        for f in &foreground {
            eng.schedule(
                f.start,
                Ev::HostTimer {
                    host: f.src,
                    timer: HostTimer::FlowStart(f.id),
                },
            );
        }

        let fg_w = vec![0.0; fg_links.len()];
        let ramp = cfg.ramp_rtts * base_rtt.as_secs_f64();
        Ok(HybridSim {
            eng,
            bg,
            cfg,
            topo,
            kind,
            fg_links,
            fg_index,
            fg_specs: foreground,
            fg_flow_links,
            fg_w,
            ramp,
            queue_debt,
            fg_order,
            next_fg_admit: 0,
            fg_active: Vec::new(),
            touched_buf: Vec::new(),
            last_sync: SimTime::ZERO,
            syncs: 0,
            reservations: 0,
            residual_pushes: 0,
            backlog_pushes: 0,
            c_syncs,
            c_reservations,
            c_residuals,
            c_backlogs,
        })
    }

    /// Current simulation time (both halves agree at sync boundaries).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.last_sync.max(self.eng.now())
    }

    /// Packet events dispatched so far by the foreground DES.
    #[inline]
    pub fn fg_events(&self) -> u64 {
        self.eng.events_processed()
    }

    /// Background flows still draining or yet to arrive.
    #[inline]
    pub fn remaining_background(&self) -> usize {
        self.bg.remaining_flows()
    }

    /// Whether every foreground flow has finished.
    pub fn foreground_done(&self) -> bool {
        let t = &self.eng.model.telemetry;
        t.flow_count() > 0 && t.all_flows_finished()
    }

    /// The foreground fabric's telemetry (flow records accumulate here
    /// during the run).
    #[inline]
    pub fn telemetry(&self) -> &Telemetry {
        &self.eng.model.telemetry
    }

    /// The live foreground fabric (ports, switches, pause counters).
    #[inline]
    pub fn fabric(&self) -> &Fabric<DcHost> {
        &self.eng.model
    }

    /// Links on some foreground path (the coupling surface).
    #[inline]
    pub fn fg_link_count(&self) -> usize {
        self.fg_links.len()
    }

    /// Co-advance both halves to `horizon`. Synchronization boundaries
    /// fall on every fluid event (background arrival or finish) and on
    /// every foreground flow start, capped at [`HybridConfig::max_sync`];
    /// the final boundary lands exactly on `horizon`. Errors out only if
    /// the fluid half starves (zero-rate background flow), leaving the
    /// clock at the last good boundary.
    pub fn run_until(&mut self, horizon: SimTime) -> Result<(), FluidError> {
        if self.syncs == 0 {
            // Initial boundary: admit time-zero arrivals on both halves
            // and seed reservations/residuals before any packet moves.
            self.sync_at(self.last_sync)?;
        }
        let mut cursor = self.last_sync;
        while cursor < horizon {
            let mut t_next = (cursor + self.cfg.max_sync).min(horizon);
            if let Some(fe) = self.bg.next_event() {
                let fe = SimTime::ZERO + TimeDelta::from_secs_f64(fe);
                if fe > cursor && fe < t_next {
                    t_next = fe;
                }
            }
            if let Some(&s) = self.fg_order.get(self.next_fg_admit) {
                let start = self.fg_specs[s as usize].start;
                if start > cursor && start < t_next {
                    t_next = start;
                }
            }
            if t_next <= cursor {
                // Degenerate rounding (a fluid event landed exactly on the
                // boundary): force minimal progress.
                t_next = (cursor + TimeDelta::from_ns(1)).min(horizon);
                if t_next <= cursor {
                    break;
                }
            }
            self.eng.run_until(t_next);
            self.sync_at(t_next)?;
            cursor = t_next;
        }
        Ok(())
    }

    /// Run in `chunk`-capped steps until every flow in *both* halves has
    /// finished or `cap` is reached; returns true if everything finished.
    pub fn run_to_completion(
        &mut self,
        chunk: TimeDelta,
        cap: SimTime,
    ) -> Result<bool, FluidError> {
        let mut t = self.last_sync;
        loop {
            let done = self.foreground_done() && self.bg.remaining_flows() == 0;
            if done {
                return Ok(true);
            }
            if t >= cap {
                return Ok(self.foreground_done() && self.bg.remaining_flows() == 0);
            }
            t = (t + chunk).min(cap);
            self.run_until(t)?;
        }
    }

    /// One synchronization boundary at time `t`:
    ///
    /// 1. advance the fluid half to `t` (background arrivals/finishes);
    /// 2. update foreground membership (admit starts ≤ `t`, retire
    ///    finished flows) and push per-link demand reservations — the
    ///    measured foreground throughput since the last boundary, capped
    ///    at the foreground's max-min entitlement
    ///    `raw · w_fg / (w_fg + w_bg)` where both weights are the
    ///    age-ramped flow counts ([`HybridConfig::ramp_rtts`]): a flow's
    ///    claim phases in from `ramp_floor` to 1 over the ramp, so
    ///    newcomers on either side displace incumbents gradually — the
    ///    way window growth and standing queues make them in the packet
    ///    fabric — instead of snapping to the converged fair share
    ///    (freshly admitted foreground flows have no measurement yet and
    ///    reserve their full — ramped — entitlement);
    /// 3. re-solve and push the residual capacity of every touched
    ///    foreground link onto its DES port.
    fn sync_at(&mut self, t: SimTime) -> Result<(), FluidError> {
        let t_ps = t.as_ps();
        self.bg.advance_to(t.as_secs_f64())?;

        // Foreground membership: admit starts ≤ t, retire finished flows.
        for fl in &mut self.fg_links {
            fl.fresh = false;
        }
        while let Some(&s) = self.fg_order.get(self.next_fg_admit) {
            if self.fg_specs[s as usize].start > t {
                break;
            }
            for &i in &self.fg_flow_links[s as usize] {
                self.fg_links[i as usize].n_fg += 1;
                self.fg_links[i as usize].fresh = true;
            }
            self.fg_active.push(s);
            self.next_fg_admit += 1;
        }
        let mut k = self.fg_active.len();
        while k > 0 {
            k -= 1;
            let s = self.fg_active[k] as usize;
            let done = self
                .eng
                .model
                .telemetry
                .flow_record(self.fg_specs[s].id)
                .is_some_and(|r| r.finish.is_some());
            if done {
                for &i in &self.fg_flow_links[s] {
                    self.fg_links[i as usize].n_fg -= 1;
                }
                self.fg_active.swap_remove(k);
            }
        }

        // Age-ramped foreground entitlement weights for this boundary.
        let now_s = t.as_secs_f64();
        for w in &mut self.fg_w {
            *w = 0.0;
        }
        for &s in &self.fg_active {
            let age = (t - self.fg_specs[s as usize].start).as_secs_f64();
            let w = if self.ramp > 0.0 {
                (self.cfg.ramp_floor + age / self.ramp).min(1.0)
            } else {
                1.0
            };
            for &i in &self.fg_flow_links[s as usize] {
                self.fg_w[i as usize] += w;
            }
        }

        let dt = (t - self.last_sync).as_secs_f64();
        let mut n_res = 0u32;
        let mut n_back = 0u32;
        for i in 0..self.fg_links.len() {
            let fl = self.fg_links[i];
            let mut measured = fl.last_reserved;
            if dt > 0.0 {
                let tx = match fl.node {
                    NodeRef::Host(h) => self.eng.model.host_ports[h.ix()].tx_bytes,
                    NodeRef::Switch(s) => {
                        self.eng.model.switches[s.ix()].ports[fl.port as usize].tx_bytes
                    }
                };
                measured = (tx - fl.last_tx) as f64 * 8.0 / dt;
                self.fg_links[i].last_tx = tx;
            }
            let w_bg = self
                .bg
                .ramped_weight_on(fl.link, now_s, self.ramp, self.cfg.ramp_floor);
            let w_fg = self.fg_w[i];
            let target = if fl.n_fg == 0 {
                0.0
            } else {
                let cap = if w_fg + w_bg > 0.0 {
                    fl.raw_bps * w_fg / (w_fg + w_bg)
                } else {
                    fl.raw_bps
                };
                if fl.fresh {
                    cap
                } else if self.cfg.residual_cap {
                    measured.min(cap)
                } else {
                    // Signals-only coupling: the foreground takes what its
                    // CC earns against the shadow queue; reserve exactly
                    // that so the fluid half yields the same bandwidth a
                    // packet background would.
                    measured
                }
            };
            // The background's shadow queue on this link: its ramped
            // share of the scheme's calibrated standing queue, surfaced
            // to the DES as a phantom backlog so foreground CC sees the
            // fluid half's congestion through its native signals. Sized
            // from the flows whose queue physically forms here (first
            // saturated link on their path), not every flow crossing.
            if self.queue_debt > 0.0 {
                // Queue weight ramps from zero, not from the entitlement
                // floor: a newborn flow claims bandwidth immediately (its
                // initial window is in flight) but its standing-queue
                // contribution starts empty and builds over the ramp.
                let qw_bg = self
                    .bg
                    .ramped_queue_weight_on(fl.link, now_s, self.ramp, 0.0);
                let bg_frac = if qw_bg > 0.0 {
                    qw_bg / (qw_bg + w_fg)
                } else {
                    0.0
                };
                let full = self.queue_debt * fl.raw_bps / 8.0;
                let backlog = (full * bg_frac) as u64;
                if (backlog as f64 - fl.last_backlog as f64).abs() > self.cfg.hysteresis * full {
                    self.eng.model.set_port_backlog(fl.node, fl.port, backlog);
                    self.fg_links[i].last_backlog = backlog;
                    n_back += 1;
                    if self.eng.model.telemetry.trace.enabled() {
                        self.eng
                            .model
                            .telemetry
                            .trace
                            .record(TraceEvent::HybridBacklog {
                                t_ps,
                                link: fl.link,
                                backlog_bytes: backlog,
                            });
                    }
                }
            }
            if (target - fl.last_reserved).abs() > self.cfg.hysteresis * fl.raw_bps {
                self.bg.reserve(fl.link, target);
                self.fg_links[i].last_reserved = target;
                n_res += 1;
                if self.eng.model.telemetry.trace.enabled() {
                    self.eng
                        .model
                        .telemetry
                        .trace
                        .record(TraceEvent::HybridReserve {
                            t_ps,
                            link: fl.link,
                            load_bps: target,
                        });
                }
            }
        }
        // Re-solve under the new reservations (no time passes).
        self.bg.advance_to(t.as_secs_f64())?;

        self.bg.take_touched(&mut self.touched_buf);
        let mut n_resid = 0u32;
        for k in 0..self.touched_buf.len() {
            let l = self.touched_buf[k];
            let i = self.fg_index[l as usize];
            if i == u32::MAX {
                continue;
            }
            if !self.cfg.residual_cap {
                continue;
            }
            let fl = self.fg_links[i as usize];
            let residual = (fl.raw_bps - self.bg.background_load(l)).max(0.0);
            self.eng.model.set_port_drain(
                fl.node,
                fl.port,
                Bandwidth::bps((residual.round() as u64).max(1)),
            );
            n_resid += 1;
            if self.eng.model.telemetry.trace.enabled() {
                self.eng
                    .model
                    .telemetry
                    .trace
                    .record(TraceEvent::HybridResidual {
                        t_ps,
                        link: l,
                        residual_bps: residual,
                    });
            }
        }

        self.syncs += 1;
        self.reservations += n_res as u64;
        self.residual_pushes += n_resid as u64;
        self.backlog_pushes += n_back as u64;
        let m = &mut self.eng.model.telemetry.metrics;
        m.inc(self.c_syncs, 1);
        m.inc(self.c_reservations, n_res as u64);
        m.inc(self.c_residuals, n_resid as u64);
        m.inc(self.c_backlogs, n_back as u64);
        if self.eng.model.telemetry.trace.enabled() {
            self.eng
                .model
                .telemetry
                .trace
                .record(TraceEvent::HybridSync {
                    t_ps,
                    reservations: n_res,
                    residuals: n_resid,
                });
        }
        self.last_sync = t;
        Ok(())
    }

    /// Finish the run: split out both halves' telemetry and the coupling
    /// statistics.
    pub fn into_result(mut self) -> HybridResult {
        let fg_events = self.eng.events_processed();
        let single_bottleneck_solves = self.bg.single_bottleneck_solves();
        let peak_bg_active = self.bg.peak_active();
        let fg = std::mem::replace(&mut self.eng.model.telemetry, Telemetry::new());
        let bg = self.bg.into_result();
        HybridResult {
            fg,
            bg,
            syncs: self.syncs,
            reservations: self.reservations,
            residual_pushes: self.residual_pushes,
            backlog_pushes: self.backlog_pushes,
            single_bottleneck_solves,
            fg_events,
            peak_bg_active,
        }
    }
}

/// How much of the background's calibrated standing queue
/// ([`RateModel::queue_rtts`]) a *foreground* flow actually pays when it
/// joins the link. `queue_rtts` measures the steady-state depth; what a
/// newcomer experiences depends on how the scheme yields:
///
/// * window-law schemes with an explicit target (HPCC) cut their windows
///   within one RTT of the INT `qLen` rising, so a newcomer sees the
///   queue drain ahead of it and pays well under the standing depth;
/// * FNCC's return-path INT and Swift's delay target yield fast enough
///   that the standing depth is what you pay — scale 1;
/// * Timely's RTT-gradient convergence is slower than its standing depth
///   suggests: a newcomer also eats the incumbents' overshoot while the
///   gradient settles;
/// * RoCC's advertised fair rate recovers over many controller periods,
///   so a newcomer pays the full depth *plus* the rate-recovery lag;
/// * FairQ divides the fair window by the receiver-echoed flow count the
///   moment a newcomer raises `N`, so incumbents shed load within a
///   round and the newcomer pays less than the standing depth;
/// * Throttle only reacts to CNPs and restores on a fixed timer, so a
///   newcomer eats the standing queue plus the restore-lag overshoot.
///
/// These factors are measured against the packet DES on the conformance
/// cells (`tests/hybrid_conformance.rs`), the same way the rate-model
/// constants are calibrated.
fn newcomer_queue_scale(kind: CcKind) -> f64 {
    match kind {
        CcKind::Fncc => 1.0,
        CcKind::Hpcc => 0.35,
        CcKind::Dcqcn => 1.0,
        CcKind::Rocc => 2.8,
        CcKind::Timely => 1.4,
        CcKind::Swift => 1.0,
        CcKind::FairQ => 0.35,
        CcKind::Throttle => 1.8,
    }
}

/// Partition helper used by scenario front-ends: `true` if `flow` should
/// run at packet fidelity given a foreground size threshold and an
/// explicit victim-host set. Kept here so every caller (backend,
/// benches, tests) classifies identically.
pub fn is_foreground(flow: &FlowSpec, size_below: Option<u64>, to_hosts: &[HostId]) -> bool {
    if let Some(cut) = size_below {
        if flow.size < cut {
            return true;
        }
    }
    to_hosts.contains(&flow.dst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fncc_net::ids::FlowId;

    const BW: Bandwidth = Bandwidth::gbps(100);
    const PROP: TimeDelta = TimeDelta::from_ns(1500);

    fn dumbbell(n: u32) -> Topology {
        Topology::dumbbell(n, 3, BW, PROP)
    }

    fn flow(id: u32, src: u32, dst: u32, size: u64, start_us: u64) -> FlowSpec {
        FlowSpec {
            id: FlowId(id),
            src: HostId(src),
            dst: HostId(dst),
            size,
            start: SimTime::ZERO + TimeDelta::from_us(start_us),
        }
    }

    /// A pure-DES reference built from the same primitives (no fncc-core
    /// here: that crate sits above us).
    fn pure_des(topo: Topology, kind: CcKind, flows: &[FlowSpec], horizon: SimTime) -> Telemetry {
        let mut fabric_cfg = FabricConfig::paper_default();
        let line = topo.host_ports[0].bw;
        let base_rtt = topo.base_rtt(fabric_cfg.mtu, fabric_cfg.ack_base);
        apply_cc_features(&mut fabric_cfg, kind, line);
        let cc = make_algo(kind, line, base_rtt);
        let tcfg = TransportConfig::new(cc);
        let hosts: Vec<DcHost> = (0..topo.n_hosts)
            .map(|_| DcHost::new(tcfg.clone()))
            .collect();
        let mut fabric = Fabric::new(&topo, fabric_cfg, hosts);
        for f in flows {
            fabric.hosts[f.src.ix()].add_flow(f.clone());
        }
        let mut eng = Engine::new(fabric);
        for (t, ev) in eng.model.startup_events() {
            eng.schedule(t, ev);
        }
        for f in flows {
            eng.schedule(
                f.start,
                Ev::HostTimer {
                    host: f.src,
                    timer: HostTimer::FlowStart(f.id),
                },
            );
        }
        eng.run_until(horizon);
        std::mem::replace(&mut eng.model.telemetry, Telemetry::new())
    }

    fn fcts(t: &Telemetry) -> Vec<(FlowId, Option<SimTime>)> {
        let mut v: Vec<_> = t.flow_records().map(|r| (r.flow, r.finish)).collect();
        v.sort_by_key(|(f, _)| f.0);
        v
    }

    /// With an empty background, the hybrid engine IS the packet DES:
    /// no residual ever lands on a port, so FCTs match exactly.
    #[test]
    fn empty_background_matches_pure_des() {
        let fg = vec![flow(0, 0, 2, 500_000, 0), flow(1, 1, 2, 500_000, 10)];
        let horizon = SimTime::from_ms(2);
        let want = fcts(&pure_des(dumbbell(3), CcKind::Fncc, &fg, horizon));
        let mut h = HybridSim::new(
            dumbbell(3),
            CcKind::Fncc,
            fg,
            Vec::new(),
            RateModel::paper_default(CcKind::Fncc),
            HybridConfig::default(),
        )
        .unwrap();
        h.run_until(horizon).unwrap();
        assert!(h.foreground_done());
        let r = h.into_result();
        assert_eq!(fcts(&r.fg), want);
        assert_eq!(r.residual_pushes, 0, "no background → no residual pushes");
        assert_eq!(r.backlog_pushes, 0, "no background → no shadow queue");
        assert!(r.syncs > 0);
    }

    /// A background elephant sharing a *saturating* foreground flow's
    /// path squeezes it under the hard residual-capacity mode (the mode
    /// built for foregrounds that contend for throughput rather than
    /// latency): the fg FCT stretches vs. an empty-background run and
    /// the reverse coupling reserves fg demand.
    #[test]
    fn background_elephant_squeezes_foreground() {
        let fg = vec![flow(0, 0, 2, 2_000_000, 0)];
        let bg = vec![flow(1_000, 1, 2, 12_500_000, 0)]; // 100 Mbit elephant, same bottleneck
        let horizon = SimTime::from_ms(10);
        let cfg = HybridConfig {
            residual_cap: true,
            ..HybridConfig::default()
        };

        let mut alone = HybridSim::new(
            dumbbell(3),
            CcKind::Fncc,
            fg.clone(),
            Vec::new(),
            RateModel::paper_default(CcKind::Fncc),
            cfg,
        )
        .unwrap();
        alone.run_until(horizon).unwrap();
        let fct_alone = fcts(&alone.into_result().fg)[0].1.unwrap();

        let mut h = HybridSim::new(
            dumbbell(3),
            CcKind::Fncc,
            fg,
            bg,
            RateModel::paper_default(CcKind::Fncc),
            cfg,
        )
        .unwrap();
        h.run_until(horizon).unwrap();
        let r = h.into_result();
        let fct_shared = fcts(&r.fg)[0].1.unwrap();
        assert!(r.residual_pushes > 0, "elephant must cap the shared port");
        assert!(r.reservations > 0, "fg demand must reach the water-filler");
        // Fair sharing with one competitor roughly halves the fg drain
        // rate; require a clearly-fair stretch but not a starved one.
        let lo = SimTime::ZERO + TimeDelta::from_secs_f64(fct_alone.as_secs_f64() * 1.3);
        let hi = SimTime::ZERO + TimeDelta::from_secs_f64(fct_alone.as_secs_f64() * 3.0);
        let shared_t = SimTime::ZERO + TimeDelta::from_secs_f64(fct_shared.as_secs_f64());
        assert!(
            shared_t > lo && shared_t < hi,
            "fg FCT should roughly double behind one fair-sharing elephant \
             ({fct_alone:?} alone vs {fct_shared:?} shared)"
        );
        // And the elephant itself must have been slowed by the fg demand:
        // alone it drains 100 Mbit in ~1 ms; squeezed it takes longer.
        let bg_rec = r.bg.telemetry.flow_records().next().unwrap();
        let bg_fct = bg_rec.fct().expect("elephant finishes inside horizon");
        assert!(
            bg_fct > TimeDelta::from_us(1100),
            "fg demand must slow the elephant (got {bg_fct:?})"
        );
    }

    /// The coupling emits trace events and metrics when armed.
    #[test]
    fn trace_records_hybrid_events() {
        let fg = vec![flow(0, 0, 2, 200_000, 0)];
        let bg = vec![flow(100, 1, 2, 12_500_000, 0)];
        let mut h = HybridSim::new(
            dumbbell(3),
            CcKind::Fncc,
            fg,
            bg,
            RateModel::paper_default(CcKind::Fncc),
            HybridConfig {
                trace: true,
                ..HybridConfig::default()
            },
        )
        .unwrap();
        h.run_until(SimTime::from_ms(2)).unwrap();
        let r = h.into_result();
        let kinds: Vec<&str> = r.fg.trace.events().map(|e| e.kind()).collect();
        assert!(kinds.contains(&"hybrid_sync"));
        assert!(kinds.contains(&"hybrid_reserve"));
        assert!(kinds.contains(&"hybrid_backlog"));
        let m: Vec<(String, u64)> =
            r.fg.metrics
                .counters()
                .map(|(n, v)| (n.to_string(), v))
                .collect();
        let get = |name: &str| m.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap();
        assert_eq!(get("hybrid_syncs"), r.syncs);
        assert_eq!(get("hybrid_reservations"), r.reservations);
        assert_eq!(get("hybrid_residual_pushes"), r.residual_pushes);
        assert_eq!(get("hybrid_backlog_pushes"), r.backlog_pushes);
    }

    /// The hard residual-capacity mode still works when selected: with
    /// the shadow queue off, the fluid load lands as drain-rate caps.
    #[test]
    fn residual_cap_mode_pushes_port_caps() {
        let fg = vec![flow(0, 0, 2, 200_000, 0)];
        let bg = vec![flow(100, 1, 2, 12_500_000, 0)];
        let mut h = HybridSim::new(
            dumbbell(3),
            CcKind::Fncc,
            fg,
            bg,
            RateModel::paper_default(CcKind::Fncc),
            HybridConfig {
                trace: true,
                residual_cap: true,
                shadow_queue: 0.0,
                ..HybridConfig::default()
            },
        )
        .unwrap();
        h.run_until(SimTime::from_ms(2)).unwrap();
        let r = h.into_result();
        assert!(r.residual_pushes > 0, "elephant must cap the shared port");
        assert_eq!(r.backlog_pushes, 0, "shadow queue disabled");
        let kinds: Vec<&str> = r.fg.trace.events().map(|e| e.kind()).collect();
        assert!(kinds.contains(&"hybrid_residual"));
    }

    /// Two identical runs produce byte-identical foreground FCTs and
    /// coupling counters (determinism is a hard guarantee).
    #[test]
    fn hybrid_runs_are_deterministic() {
        let run = || {
            let fg = vec![flow(0, 0, 3, 400_000, 0), flow(1, 1, 3, 300_000, 7)];
            let bg = vec![flow(10, 2, 3, 50_000_000, 0), flow(11, 3, 0, 25_000_000, 3)];
            let mut h = HybridSim::new(
                dumbbell(4),
                CcKind::Hpcc,
                fg,
                bg,
                RateModel::paper_default(CcKind::Hpcc),
                HybridConfig::default(),
            )
            .unwrap();
            h.run_until(SimTime::from_ms(6)).unwrap();
            let r = h.into_result();
            (fcts(&r.fg), r.syncs, r.reservations, r.backlog_pushes)
        };
        assert_eq!(run(), run());
    }

    /// run_to_completion drains both halves.
    #[test]
    fn run_to_completion_drains_both_halves() {
        let fg = vec![flow(0, 0, 2, 100_000, 0)];
        let bg = vec![flow(1, 1, 2, 1_000_000, 0)];
        let mut h = HybridSim::new(
            dumbbell(3),
            CcKind::Swift,
            fg,
            bg,
            RateModel::paper_default(CcKind::Swift),
            HybridConfig::default(),
        )
        .unwrap();
        let done = h
            .run_to_completion(TimeDelta::from_us(200), SimTime::from_ms(20))
            .unwrap();
        assert!(done);
        assert_eq!(h.remaining_background(), 0);
    }

    #[test]
    fn is_foreground_classifies_by_size_and_victim() {
        let f = flow(0, 0, 2, 10_000, 0);
        assert!(is_foreground(&f, Some(100_000), &[]));
        assert!(!is_foreground(&f, Some(10_000), &[]), "cut is exclusive");
        assert!(is_foreground(&f, None, &[HostId(2)]));
        assert!(!is_foreground(&f, None, &[HostId(1)]));
    }
}
