//! Typed identifiers for hosts, switches, flows and node references.

use core::fmt;

/// Identifier of a host (end-station with a single NIC port).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub u32);

/// Identifier of a switch.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SwitchId(pub u32);

/// Identifier of a flow (one RDMA QP / RC connection).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u32);

/// A reference to either kind of node.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeRef {
    /// End host.
    Host(HostId),
    /// Switch.
    Switch(SwitchId),
}

impl HostId {
    /// Index into host-indexed vectors.
    #[inline]
    pub fn ix(self) -> usize {
        self.0 as usize
    }
}

impl SwitchId {
    /// Index into switch-indexed vectors.
    #[inline]
    pub fn ix(self) -> usize {
        self.0 as usize
    }
}

impl FlowId {
    /// Index into flow-indexed vectors.
    #[inline]
    pub fn ix(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}
impl fmt::Debug for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sw{}", self.0)
    }
}
impl fmt::Debug for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}
impl fmt::Debug for NodeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeRef::Host(h) => write!(f, "{h:?}"),
            NodeRef::Switch(s) => write!(f, "{s:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", HostId(3)), "h3");
        assert_eq!(format!("{:?}", SwitchId(1)), "sw1");
        assert_eq!(format!("{:?}", FlowId(9)), "f9");
        assert_eq!(format!("{:?}", NodeRef::Host(HostId(2))), "h2");
        assert_eq!(format!("{:?}", NodeRef::Switch(SwitchId(0))), "sw0");
    }

    #[test]
    fn indices() {
        assert_eq!(HostId(7).ix(), 7);
        assert_eq!(SwitchId(7).ix(), 7);
        assert_eq!(FlowId(7).ix(), 7);
    }
}
