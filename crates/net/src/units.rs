//! Bandwidth and byte-size units with exact time conversions.

use core::fmt;
use fncc_des::time::TimeDelta;

/// Link bandwidth in bits per second.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bandwidth(u64);

impl Bandwidth {
    /// From raw bits per second.
    #[inline]
    pub const fn bps(b: u64) -> Self {
        Bandwidth(b)
    }
    /// From gigabits per second (the paper's unit).
    #[inline]
    pub const fn gbps(g: u64) -> Self {
        Bandwidth(g * 1_000_000_000)
    }
    /// From megabits per second.
    #[inline]
    pub const fn mbps(m: u64) -> Self {
        Bandwidth(m * 1_000_000)
    }

    /// Raw bits per second.
    #[inline]
    pub const fn as_bps(self) -> u64 {
        self.0
    }
    /// As floating-point bits per second (for rate arithmetic in CC).
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
    /// As gigabits per second.
    #[inline]
    pub fn as_gbps_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Serialization time of `bytes` at this bandwidth, rounded up to a
    /// whole picosecond (so nonzero frames always take nonzero time).
    #[inline]
    pub fn tx_time(self, bytes: u64) -> TimeDelta {
        debug_assert!(self.0 > 0, "zero bandwidth");
        let ps = ((bytes as u128) * 8 * 1_000_000_000_000u128).div_ceil(self.0 as u128);
        TimeDelta::from_ps(ps as u64)
    }

    /// Bytes transferable in `d` at this bandwidth (floor).
    #[inline]
    pub fn bytes_in(self, d: TimeDelta) -> u64 {
        ((self.0 as u128 * d.as_ps() as u128) / (8 * 1_000_000_000_000u128)) as u64
    }

    /// Bandwidth–delay product in bytes for a round-trip time `rtt`.
    #[inline]
    pub fn bdp_bytes(self, rtt: TimeDelta) -> u64 {
        self.bytes_in(rtt)
    }
}

impl fmt::Debug for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}Gbps", self.as_gbps_f64())
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}Gbps", self.as_gbps_f64())
    }
}

/// Byte quantities with KB/MB constructors (binary thousands as in the
/// paper's plots, i.e. 1 KB = 1000 B is *not* used — switch buffers are
/// quoted in KiB-style units; we use 1 KB = 1024 B like the OMNeT defaults).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteSize(u64);

impl ByteSize {
    /// From raw bytes.
    #[inline]
    pub const fn bytes(b: u64) -> Self {
        ByteSize(b)
    }
    /// From kilobytes (1024 B).
    #[inline]
    pub const fn kb(k: u64) -> Self {
        ByteSize(k * 1024)
    }
    /// From megabytes (1024² B).
    #[inline]
    pub const fn mb(m: u64) -> Self {
        ByteSize(m * 1024 * 1024)
    }
    /// Raw bytes.
    #[inline]
    pub const fn as_bytes(self) -> u64 {
        self.0
    }
    /// As kilobytes (floating point) — the unit of the queue-length plots.
    #[inline]
    pub fn as_kb_f64(self) -> f64 {
        self.0 as f64 / 1024.0
    }
}

impl fmt::Debug for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}B", self.0)
    }
}

/// Ethernet + IP + UDP + IB BTH overhead carried by every RoCEv2 data frame.
pub const DATA_HEADER_BYTES: u32 = 62;
/// Base size of an ACK frame (headers + AETH), before INT records.
pub const ACK_BASE_BYTES: u32 = 70;
/// Size of one INT record appended by a switch (64 bits per Fig. 7).
pub const INT_RECORD_BYTES: u32 = 8;
/// Size of a PFC pause/resume control frame.
pub const PFC_FRAME_BYTES: u32 = 64;
/// Size of a DCQCN congestion-notification packet.
pub const CNP_BYTES: u32 = 64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Bandwidth::gbps(100).as_bps(), 100_000_000_000);
        assert_eq!(Bandwidth::mbps(40).as_bps(), 40_000_000);
        assert_eq!(ByteSize::kb(500).as_bytes(), 512_000);
        assert_eq!(ByteSize::mb(32).as_bytes(), 33_554_432);
        assert!((ByteSize::kb(3).as_kb_f64() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn tx_time_exact_values() {
        // 1250 bytes at 10 Gb/s = 1 us exactly.
        assert_eq!(Bandwidth::gbps(10).tx_time(1250), TimeDelta::from_us(1));
        // 1518 bytes at 100 Gb/s = 121.44 ns = 121440 ps.
        assert_eq!(
            Bandwidth::gbps(100).tx_time(1518),
            TimeDelta::from_ps(121_440)
        );
        // One byte at 400 Gb/s = 20 ps.
        assert_eq!(Bandwidth::gbps(400).tx_time(1), TimeDelta::from_ps(20));
    }

    #[test]
    fn tx_time_rounds_up_never_zero() {
        // 1 byte at an absurdly high rate still takes ≥ 1 ps.
        assert!(Bandwidth::bps(u64::MAX / 2).tx_time(1).as_ps() >= 1);
        assert_eq!(Bandwidth::gbps(100).tx_time(0), TimeDelta::ZERO);
    }

    #[test]
    fn bytes_in_inverts_tx_time() {
        let bw = Bandwidth::gbps(100);
        for bytes in [1u64, 64, 1518, 1_000_000] {
            let t = bw.tx_time(bytes);
            let back = bw.bytes_in(t);
            assert!(
                back >= bytes && back <= bytes + 1,
                "bytes {bytes} back {back}"
            );
        }
    }

    #[test]
    fn bdp_matches_paper_scale() {
        // ~12 us RTT at 100 Gb/s ≈ 150 KB BDP (the paper's dumbbell).
        let bdp = Bandwidth::gbps(100).bdp_bytes(TimeDelta::from_us(12));
        assert_eq!(bdp, 150_000);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Bandwidth::gbps(400)), "400Gbps");
        assert_eq!(format!("{:?}", ByteSize::bytes(10)), "10B");
    }
}
