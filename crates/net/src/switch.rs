//! The switch data plane (Fig. 8): parser, ingress accounting + PFC,
//! routing, RED/ECN, `All_INT_Table` management and INT insertion
//! (Algorithm 1), and the RoCC PI fair-rate controller.

use crate::config::{FabricConfig, IntInsertion};
use crate::ids::{HostId, NodeRef, SwitchId};
use crate::packet::{IntRecord, Packet, PacketKind};
use crate::pool::PacketPool;
use crate::port::Port;
use crate::routing::{flow_hash, without_ports, CompiledRoutes, RoutingTable};
use crate::telemetry::Telemetry;
use crate::topology::SwitchSpec;
use crate::units::PFC_FRAME_BYTES;
use fncc_des::rng::DetRng;
use fncc_des::time::SimTime;
use fncc_obs::TraceEvent;

/// Actions a switch asks the fabric to perform after handling an event
/// (the fabric owns event scheduling; the switch stays scheduler-agnostic
/// and therefore easy to unit-test).
#[derive(Debug)]
pub enum SwitchOutput {
    /// Start serializing on `port`; `TxDone` is due after `tx_after` (the
    /// frame is in `ports[port].in_flight`). The serialization time rides
    /// along so the consumer never has to reload switch state.
    StartTx {
        /// Egress port index.
        port: u8,
        /// The frame's serialization time at this port's rate.
        tx_after: fncc_des::TimeDelta,
    },
    /// Deliver `pkt` to `peer` after `prop` (the egress port's propagation
    /// delay, copied here for the same reason).
    Deliver {
        /// Egress port the frame left through.
        port: u8,
        /// Receiving node.
        peer: NodeRef,
        /// Receiving port index.
        peer_port: u8,
        /// One-way propagation delay of the link.
        prop: fncc_des::TimeDelta,
        /// The frame.
        pkt: Box<Packet>,
    },
}

/// A live switch.
pub struct Switch {
    /// This switch's id.
    pub id: SwitchId,
    /// Egress ports.
    pub ports: Vec<Port>,
    /// Forwarding table as constructed (kept for inspection via
    /// [`Switch::route`]; forwarding uses the compiled copy below, so the
    /// field is private to keep the two from diverging).
    route: RoutingTable,
    /// Digit-compiled forwarding table (hot-path lookups; same results).
    croute: CompiledRoutes,
    /// Total buffered bytes (shared-buffer occupancy). Per-port PFC
    /// accounting, the `All_INT_Table` and RoCC state live on [`Port`].
    pub buffered: u64,
    /// ECN marking randomness.
    ecn_rng: DetRng,
    /// Per-port link-down state; `n_dead` gates every fault-path branch so
    /// a healthy run costs one integer compare per forwarded frame.
    dead: Vec<bool>,
    /// Number of `true` entries in `dead`.
    n_dead: usize,
    /// Per-egress-port random-loss probability (0 = off), active only
    /// inside a `RandomLoss` fault window.
    loss_prob: Vec<f64>,
    /// Number of ports with nonzero `loss_prob`.
    n_lossy: usize,
    /// Random-loss drawing. Seeded from the fabric seed on a stream
    /// distinct from ECN marking; drawn from only inside loss windows, so
    /// fault-free runs consume an identical random sequence to before.
    loss_rng: DetRng,
}

impl Switch {
    /// Instantiate from a topology description.
    pub fn new(id: SwitchId, spec: &SwitchSpec, cfg: &FabricConfig) -> Switch {
        let ports: Vec<Port> = spec.ports.iter().map(Port::from_spec).collect();
        let n_ports = ports.len();
        Switch {
            id,
            ports,
            croute: CompiledRoutes::compile(&spec.route),
            route: spec.route.clone(),
            buffered: 0,
            ecn_rng: DetRng::new(cfg.seed, 0x0057_17C4 ^ id.0 as u64),
            dead: vec![false; n_ports],
            n_dead: 0,
            loss_prob: vec![0.0; n_ports],
            n_lossy: 0,
            loss_rng: DetRng::new(cfg.seed, 0x00FA_17D5 ^ id.0 as u64),
        }
    }

    /// True while egress `port`'s link is down.
    #[inline]
    pub fn port_dead(&self, port: u8) -> bool {
        self.dead[port as usize]
    }

    /// Rebuild the compiled forwarding table from the pristine route minus
    /// the currently-dead ports.
    fn recompile_routes(&mut self) {
        self.croute = if self.n_dead == 0 {
            CompiledRoutes::compile(&self.route)
        } else {
            CompiledRoutes::compile(&without_ports(&self.route, &self.dead))
        };
    }

    /// The link on egress `port` fails: destroy every queued frame (the
    /// one mid-serialization is discarded at its `TxDone`), reset the
    /// port's PFC state (the peer is unreachable, so no pause can ever be
    /// released over this wire again), and recompile routing around the
    /// port. Frames already propagating still arrive at the peer — the
    /// fabric fails both directions of a link, so the peer tears its
    /// reverse port down the same way.
    pub fn link_down(
        &mut self,
        now: SimTime,
        port: u8,
        cfg: &FabricConfig,
        telem: &mut Telemetry,
        pool: &mut PacketPool,
        out: &mut Vec<SwitchOutput>,
    ) {
        let pi = port as usize;
        if self.dead[pi] {
            return;
        }
        self.dead[pi] = true;
        self.n_dead += 1;
        if telem.trace.enabled() {
            telem.trace.record(TraceEvent::LinkDown {
                t_ps: now.as_ps(),
                sw: self.id.0,
                port,
            });
        }
        for pkt in self.ports[pi].purge_queues() {
            if !pkt.kind.is_control() {
                let ip = pkt.in_port as usize;
                self.ports[ip].ingress_bytes -= pkt.accounted as u64;
                self.buffered -= pkt.accounted as u64;
                telem.counters.fault_drops += 1;
                if telem.trace.enabled() {
                    telem.trace.record(TraceEvent::FaultDrop {
                        t_ps: now.as_ps(),
                        sw: self.id.0,
                        port,
                        flow: pkt.flow.0,
                        size: pkt.size,
                    });
                }
            }
            pool.put(pkt);
        }
        let p = &mut self.ports[pi];
        p.paused = false;
        if let Some(t0) = p.paused_since.take() {
            telem.note_pause_episode(now.since(t0));
        }
        p.upstream_paused = false;
        self.recompile_routes();
        // The purge may have drained other ingress ports below the PFC
        // resume threshold; issue the pending resumes now rather than
        // waiting for an unrelated departure.
        if cfg.pfc.enabled {
            for ip in 0..self.ports.len() {
                if !self.dead[ip] {
                    self.maybe_resume_upstream(ip, now, cfg, telem, pool, out);
                }
            }
        }
    }

    /// A previously-downed link on egress `port` is restored: the port
    /// rejoins routing. Queues are empty (nothing routed here while dead),
    /// so there is nothing else to rebuild.
    pub fn link_up(&mut self, now: SimTime, port: u8, telem: &mut Telemetry) {
        let pi = port as usize;
        if !self.dead[pi] {
            return;
        }
        self.dead[pi] = false;
        self.n_dead -= 1;
        if telem.trace.enabled() {
            telem.trace.record(TraceEvent::LinkUp {
                t_ps: now.as_ps(),
                sw: self.id.0,
                port,
            });
        }
        self.recompile_routes();
    }

    /// Set egress `port`'s random-loss probability (0 clears it). Only
    /// called at `RandomLoss` fault-window boundaries.
    pub fn set_loss(&mut self, port: u8, prob: f64) {
        let pi = port as usize;
        if self.loss_prob[pi] > 0.0 {
            self.n_lossy -= 1;
        }
        if prob > 0.0 {
            self.n_lossy += 1;
        }
        self.loss_prob[pi] = prob;
    }

    /// The forwarding table this switch was built with.
    pub fn route(&self) -> &RoutingTable {
        &self.route
    }

    /// Snapshot a port's live INT record.
    #[inline]
    fn live_int(&self, port: u8, now: SimTime) -> IntRecord {
        let p = &self.ports[port as usize];
        IntRecord {
            bandwidth: p.drain_bw(),
            ts: now,
            tx_bytes: p.tx_bytes,
            qlen: p.signal_qlen(),
        }
    }

    /// Periodic `All_INT_Table` refresh (Fig. 8 "Management" module).
    pub fn refresh_int_table(&mut self, now: SimTime) {
        for p in &mut self.ports {
            p.int_rec = IntRecord {
                bandwidth: p.drain_bw(),
                ts: now,
                tx_bytes: p.tx_bytes,
                qlen: p.signal_qlen(),
            };
        }
    }

    /// One RoCC PI-controller step over every port.
    pub fn rocc_step(&mut self, cfg: &FabricConfig) {
        let Some(rc) = &cfg.rocc else { return };
        for p in &mut self.ports {
            let q = p.signal_qlen() as f64;
            let r = p.rocc_rate - rc.gain_p * (q - rc.qref) - rc.gain_d * (q - p.rocc_prev_q);
            p.rocc_rate = r.clamp(rc.min_rate, p.drain_bw().as_f64());
            p.rocc_prev_q = q;
        }
    }

    /// Handle an arriving frame on `in_port`. Control frames flip the pause
    /// state; everything else is routed and queued. Emits follow-up actions
    /// into `out`; consumed frames (PFC, drops) return to `pool`.
    #[allow(clippy::too_many_arguments)]
    pub fn on_arrive(
        &mut self,
        now: SimTime,
        in_port: u8,
        mut pkt: Box<Packet>,
        cfg: &FabricConfig,
        telem: &mut Telemetry,
        pool: &mut PacketPool,
        out: &mut Vec<SwitchOutput>,
    ) {
        match pkt.kind {
            PacketKind::PfcPause => {
                let p = &mut self.ports[in_port as usize];
                p.paused = true;
                p.pause_rx += 1;
                if p.paused_since.is_none() {
                    p.paused_since = Some(now);
                }
                if telem.trace.enabled() {
                    telem.trace.record(TraceEvent::PfcPause {
                        t_ps: now.as_ps(),
                        node: self.id.0,
                        port: in_port,
                        tx: false,
                        at_host: false,
                    });
                }
                pool.put(pkt);
                return;
            }
            PacketKind::PfcResume => {
                let p = &mut self.ports[in_port as usize];
                p.paused = false;
                if let Some(t0) = p.paused_since.take() {
                    telem.note_pause_episode(now.since(t0));
                }
                if telem.trace.enabled() {
                    telem.trace.record(TraceEvent::PfcResume {
                        t_ps: now.as_ps(),
                        node: self.id.0,
                        port: in_port,
                        tx: false,
                        at_host: false,
                    });
                }
                pool.put(pkt);
                self.maybe_start_tx(in_port, now, cfg, out);
                return;
            }
            _ => {}
        }

        // Shared-buffer admission.
        if self.buffered + pkt.size as u64 > cfg.buffer_bytes {
            telem.counters.drops += 1;
            if telem.trace.enabled() {
                telem.trace.record(TraceEvent::Drop {
                    t_ps: now.as_ps(),
                    sw: self.id.0,
                    port: in_port,
                    flow: pkt.flow.0,
                    size: pkt.size,
                });
            }
            pool.put(pkt);
            return;
        }

        // Port input engine (Algorithm 1 lines 2–4): remember the ingress
        // port — used for PFC accounting on all frames and for the
        // All_INT_Table lookup on ACKs. The accounted size is pinned here
        // because INT insertion grows the frame before departure.
        pkt.in_port = in_port;
        pkt.accounted = pkt.size;
        self.ports[in_port as usize].ingress_bytes += pkt.size as u64;
        self.buffered += pkt.size as u64;

        // Ingress pipeline: routing. The healthy path is a single compiled
        // lookup; with dead links present the lookup may fail (severed
        // destination) and a successful one is compared against the
        // pristine route to count rerouted flows.
        let h = flow_hash(pkt.src, pkt.dst, pkt.flow);
        let out_port = if self.n_dead == 0 {
            self.croute.egress(pkt.dst, h)
        } else {
            match self.croute.try_egress(pkt.dst, h) {
                Some(op) => {
                    if !pkt.kind.is_control() && op != self.route.egress(pkt.dst, h) {
                        telem.note_rerouted(pkt.flow);
                    }
                    op
                }
                None => {
                    self.fault_drop(now, in_port, pkt, telem, pool);
                    return;
                }
            }
        };
        debug_assert_ne!(out_port, in_port, "routing loop at {:?}", self.id);

        // Random-loss fault window: frames bound for a lossy egress drop
        // with the configured probability, from a seed-derived stream.
        if self.n_lossy > 0
            && !pkt.kind.is_control()
            && self.loss_prob[out_port as usize] > 0.0
            && self.loss_rng.chance(self.loss_prob[out_port as usize])
        {
            self.fault_drop(now, out_port, pkt, telem, pool);
            return;
        }

        // RED/ECN marking on data frames (DCQCN), against the egress queue
        // depth seen at enqueue.
        if cfg.ecn.enabled && pkt.kind == PacketKind::Data {
            let q = self.ports[out_port as usize].signal_qlen();
            let p_mark = cfg.ecn.mark_probability(q);
            if p_mark > 0.0 && self.ecn_rng.chance(p_mark) {
                pkt.ecn = true;
                telem.counters.ecn_marks += 1;
                if telem.trace.enabled() {
                    telem.trace.record(TraceEvent::EcnMark {
                        t_ps: now.as_ps(),
                        sw: self.id.0,
                        port: out_port,
                        flow: pkt.flow.0,
                        queue_bytes: q,
                    });
                }
            }
        }

        let (flow, size) = (pkt.flow.0, pkt.size);
        self.ports[out_port as usize].enqueue(pkt);
        if telem.trace.enabled() {
            telem.trace.record(TraceEvent::Enqueue {
                t_ps: now.as_ps(),
                sw: self.id.0,
                port: out_port,
                flow,
                size,
                queue_bytes: self.ports[out_port as usize].queue_bytes,
            });
        }

        // PFC: pause the upstream once this ingress crosses the threshold.
        if cfg.pfc.enabled
            && !self.ports[in_port as usize].upstream_paused
            && self.ports[in_port as usize].ingress_bytes > cfg.pfc.threshold
        {
            self.ports[in_port as usize].upstream_paused = true;
            self.ports[in_port as usize].pause_tx += 1;
            telem.counters.pfc_pause_tx += 1;
            if telem.trace.enabled() {
                telem.trace.record(TraceEvent::PfcPause {
                    t_ps: now.as_ps(),
                    node: self.id.0,
                    port: in_port,
                    tx: true,
                    at_host: false,
                });
            }
            let frame = pool.pfc(PacketKind::PfcPause, PFC_FRAME_BYTES, now);
            self.ports[in_port as usize].enqueue_ctrl(frame);
            self.maybe_start_tx(in_port, now, cfg, out);
        }

        self.maybe_start_tx(out_port, now, cfg, out);
    }

    /// Destroy an admitted frame because of a link fault (severed
    /// destination or random loss): release the ingress accounting taken
    /// at admission, attribute the drop to the fault, recycle the frame.
    fn fault_drop(
        &mut self,
        now: SimTime,
        port: u8,
        pkt: Box<Packet>,
        telem: &mut Telemetry,
        pool: &mut PacketPool,
    ) {
        self.ports[pkt.in_port as usize].ingress_bytes -= pkt.size as u64;
        self.buffered -= pkt.size as u64;
        telem.counters.fault_drops += 1;
        if telem.trace.enabled() {
            telem.trace.record(TraceEvent::FaultDrop {
                t_ps: now.as_ps(),
                sw: self.id.0,
                port,
                flow: pkt.flow.0,
                size: pkt.size,
            });
        }
        pool.put(pkt);
    }

    /// PFC hysteresis: if ingress `ip` holds its upstream paused and has
    /// drained below the resume threshold, send the XON.
    fn maybe_resume_upstream(
        &mut self,
        ip: usize,
        now: SimTime,
        cfg: &FabricConfig,
        telem: &mut Telemetry,
        pool: &mut PacketPool,
        out: &mut Vec<SwitchOutput>,
    ) {
        if self.ports[ip].upstream_paused
            && self.ports[ip].ingress_bytes + cfg.pfc.resume_offset <= cfg.pfc.threshold
        {
            self.ports[ip].upstream_paused = false;
            self.ports[ip].resume_tx += 1;
            telem.counters.pfc_resume_tx += 1;
            if telem.trace.enabled() {
                telem.trace.record(TraceEvent::PfcResume {
                    t_ps: now.as_ps(),
                    node: self.id.0,
                    port: ip as u8,
                    tx: true,
                    at_host: false,
                });
            }
            let frame = pool.pfc(PacketKind::PfcResume, PFC_FRAME_BYTES, now);
            self.ports[ip].enqueue_ctrl(frame);
            self.maybe_start_tx(ip as u8, now, cfg, out);
        }
    }

    /// A frame finished serializing on `port`: deliver it to the peer,
    /// release buffer accounting, maybe un-pause the upstream, start the
    /// next frame.
    pub fn on_tx_done(
        &mut self,
        now: SimTime,
        port: u8,
        cfg: &FabricConfig,
        telem: &mut Telemetry,
        pool: &mut PacketPool,
        out: &mut Vec<SwitchOutput>,
    ) {
        let pkt = self.ports[port as usize]
            .in_flight
            .take()
            .expect("TxDone with empty in_flight");

        if !pkt.kind.is_control() {
            self.ports[port as usize].tx_bytes += pkt.size as u64;
            // The frame was dequeued when serialization began; its departure
            // is recorded here, once it is fully on the wire.
            if telem.trace.enabled() {
                telem.trace.record(TraceEvent::Dequeue {
                    t_ps: now.as_ps(),
                    sw: self.id.0,
                    port,
                    flow: pkt.flow.0,
                    size: pkt.size,
                    queue_bytes: self.ports[port as usize].queue_bytes,
                });
            }
            let ip = pkt.in_port as usize;
            self.ports[ip].ingress_bytes -= pkt.accounted as u64;
            self.buffered -= pkt.accounted as u64;
            // PFC hysteresis: un-pause the upstream once drained enough.
            if cfg.pfc.enabled {
                self.maybe_resume_upstream(ip, now, cfg, telem, pool, out);
            }
        }

        // The link died while this frame was serializing: it never reaches
        // the peer. (Accounting above already released its buffer share.)
        if self.n_dead > 0 && self.dead[port as usize] {
            if !pkt.kind.is_control() {
                telem.counters.fault_drops += 1;
                if telem.trace.enabled() {
                    telem.trace.record(TraceEvent::FaultDrop {
                        t_ps: now.as_ps(),
                        sw: self.id.0,
                        port,
                        flow: pkt.flow.0,
                        size: pkt.size,
                    });
                }
            }
            pool.put(pkt);
            self.maybe_start_tx(port, now, cfg, out);
            return;
        }

        let p = &mut self.ports[port as usize];
        out.push(SwitchOutput::Deliver {
            port,
            peer: p.peer,
            peer_port: p.peer_port,
            prop: p.wire_delay(now),
            pkt,
        });
        self.maybe_start_tx(port, now, cfg, out);
    }

    /// If `port` is idle and has an eligible frame, run the output engine
    /// (Algorithm 1 lines 6–10: INT insertion; RoCC stamping) and start
    /// serialization.
    pub fn maybe_start_tx(
        &mut self,
        port: u8,
        now: SimTime,
        cfg: &FabricConfig,
        out: &mut Vec<SwitchOutput>,
    ) {
        if !self.ports[port as usize].idle() {
            return;
        }
        let Some(mut pkt) = self.ports[port as usize].dequeue() else {
            return;
        };
        self.output_engine(&mut pkt, port, now, cfg);
        let p = &mut self.ports[port as usize];
        let tx_after = p.tx_time(pkt.size as u64 + cfg.wire_overhead as u64);
        p.in_flight = Some(pkt);
        out.push(SwitchOutput::StartTx { port, tx_after });
    }

    /// The output engine: INT insertion per the configured mode, RoCC rate
    /// stamping.
    fn output_engine(&mut self, pkt: &mut Packet, out_port: u8, now: SimTime, cfg: &FabricConfig) {
        match (cfg.int, pkt.kind) {
            // HPCC: every data frame picks up the INT of the egress port it
            // is leaving through.
            (IntInsertion::OnData, PacketKind::Data) => {
                let rec = self.read_int(out_port, now, cfg);
                pkt.push_int(rec);
                pkt.path_xor ^= (self.id.0 as u16) & 0x0FFF;
            }
            // FNCC (Algorithm 1 lines 7–9): every ACK picks up
            // `All_INT_Table[ack.input_port]` — the request-path egress
            // queue the corresponding data packets flow through.
            (IntInsertion::OnAck, PacketKind::Ack) => {
                let rec = self.read_int(pkt.in_port, now, cfg);
                pkt.push_int(rec);
                // Fig. 7 pathID: XOR of all switch ids along the path.
                pkt.path_xor ^= (self.id.0 as u16) & 0x0FFF;
            }
            _ => {}
        }
        if cfg.rocc.is_some() && pkt.kind == PacketKind::Data {
            pkt.rocc_rate = pkt.rocc_rate.min(self.ports[out_port as usize].rocc_rate);
        }
    }

    /// Read a port's INT record: live, or from the periodic table.
    #[inline]
    fn read_int(&self, port: u8, now: SimTime, cfg: &FabricConfig) -> IntRecord {
        if cfg.int_refresh.is_some() {
            self.ports[port as usize].int_rec
        } else {
            self.live_int(port, now)
        }
    }

    /// Serialization time of the frame currently in flight on `port`.
    pub fn tx_time_of_in_flight(&mut self, port: u8, cfg: &FabricConfig) -> fncc_des::TimeDelta {
        let p = &mut self.ports[port as usize];
        let bytes = p.in_flight.as_ref().expect("no frame in flight").size as u64
            + cfg.wire_overhead as u64;
        p.tx_time(bytes)
    }
}

/// Convenience for tests and analysis: the egress port a switch would pick.
pub fn egress_for(sw: &Switch, src: HostId, dst: HostId, flow: crate::ids::FlowId) -> u8 {
    sw.croute.egress(dst, flow_hash(src, dst, flow))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::FlowId;
    use crate::topology::Topology;
    use crate::units::Bandwidth;
    use fncc_des::time::TimeDelta;

    fn test_cfg() -> FabricConfig {
        FabricConfig::paper_default()
    }

    /// A 2-sender dumbbell's first switch: ports 0,1 = hosts; port 2 = uplink.
    fn sw0() -> Switch {
        let topo = Topology::dumbbell(2, 3, Bandwidth::gbps(100), TimeDelta::from_us(1));
        Switch::new(SwitchId(0), &topo.switches[0], &test_cfg())
    }

    fn data(flow: u32, src: u32, dst: u32, size: u32) -> Box<Packet> {
        Packet::data(
            FlowId(flow),
            HostId(src),
            HostId(dst),
            0,
            size - 62,
            size,
            SimTime::ZERO,
        )
    }

    fn drain_tx(
        sw: &mut Switch,
        port: u8,
        cfg: &FabricConfig,
        telem: &mut Telemetry,
    ) -> Vec<Packet> {
        // Repeatedly complete transmissions on `port` until it goes idle,
        // collecting delivered frames.
        let mut pool = PacketPool::new();
        let mut delivered = Vec::new();
        loop {
            if sw.ports[port as usize].idle() {
                break;
            }
            let mut out = Vec::new();
            sw.on_tx_done(SimTime::from_us(1), port, cfg, telem, &mut pool, &mut out);
            for o in out {
                if let SwitchOutput::Deliver { pkt, .. } = o {
                    delivered.push(*pkt);
                }
            }
        }
        delivered
    }

    #[test]
    fn routes_data_to_uplink_and_starts_tx() {
        let mut sw = sw0();
        let cfg = test_cfg();
        let mut telem = Telemetry::new();
        let mut pool = PacketPool::new();
        let mut out = Vec::new();
        sw.on_arrive(
            SimTime::ZERO,
            0,
            data(0, 0, 2, 1000),
            &cfg,
            &mut telem,
            &mut pool,
            &mut out,
        );
        assert!(matches!(
            out.as_slice(),
            [SwitchOutput::StartTx { port: 2, .. }]
        ));
        assert!(sw.ports[2].in_flight.is_some());
        assert_eq!(sw.ports[0].ingress_bytes, 1000);
        assert_eq!(sw.buffered, 1000);
    }

    #[test]
    fn tx_done_delivers_to_peer_and_releases_buffer() {
        let mut sw = sw0();
        let cfg = test_cfg();
        let mut telem = Telemetry::new();
        let mut pool = PacketPool::new();
        let mut out = Vec::new();
        sw.on_arrive(
            SimTime::ZERO,
            0,
            data(0, 0, 2, 1000),
            &cfg,
            &mut telem,
            &mut pool,
            &mut out,
        );
        out.clear();
        sw.on_tx_done(
            SimTime::from_us(1),
            2,
            &cfg,
            &mut telem,
            &mut pool,
            &mut out,
        );
        match &out[0] {
            SwitchOutput::Deliver { peer, pkt, .. } => {
                assert!(matches!(peer, NodeRef::Switch(SwitchId(1))));
                assert_eq!(pkt.size, 1000);
            }
            other => panic!("expected Deliver, got {other:?}"),
        }
        assert_eq!(sw.ports[0].ingress_bytes, 0);
        assert_eq!(sw.buffered, 0);
        assert_eq!(sw.ports[2].tx_bytes, 1000);
    }

    #[test]
    fn hpcc_mode_appends_int_to_data() {
        let mut sw = sw0();
        let mut cfg = test_cfg();
        cfg.int = IntInsertion::OnData;
        let mut telem = Telemetry::new();
        let mut pool = PacketPool::new();
        let mut out = Vec::new();
        sw.on_arrive(
            SimTime::from_us(3),
            0,
            data(0, 0, 2, 1000),
            &cfg,
            &mut telem,
            &mut pool,
            &mut out,
        );
        let pkt = sw.ports[2].in_flight.as_ref().unwrap();
        assert_eq!(pkt.int.len(), 1);
        assert_eq!(pkt.size, 1008, "INT grows the frame");
        let rec = pkt.int.as_slice()[0];
        assert_eq!(rec.ts, SimTime::from_us(3));
        assert_eq!(rec.qlen, 0, "dequeued immediately, queue empty behind it");
    }

    #[test]
    fn fncc_mode_appends_request_path_int_to_ack() {
        let mut sw = sw0();
        let mut cfg = test_cfg();
        cfg.int = IntInsertion::OnAck;
        let mut telem = Telemetry::new();
        let mut pool = PacketPool::new();

        // Build request-path state: two data frames head out port 2; one is
        // in flight, one queued (queue_bytes = 1000).
        let mut out = Vec::new();
        sw.on_arrive(
            SimTime::ZERO,
            0,
            data(0, 0, 2, 1000),
            &cfg,
            &mut telem,
            &mut pool,
            &mut out,
        );
        sw.on_arrive(
            SimTime::ZERO,
            0,
            data(0, 0, 2, 1000),
            &cfg,
            &mut telem,
            &mut pool,
            &mut out,
        );
        assert_eq!(sw.ports[2].queue_bytes, 1000);

        // An ACK for flow 0 arrives on port 2 (the data egress) heading to
        // host 0: it must pick up port 2's INT (the request-path queue).
        let ack = Packet::ack(FlowId(0), HostId(2), HostId(0), 1000, 70, SimTime::ZERO);
        out.clear();
        sw.on_arrive(
            SimTime::from_us(5),
            2,
            ack,
            &cfg,
            &mut telem,
            &mut pool,
            &mut out,
        );
        let pkt = sw.ports[0].in_flight.as_ref().unwrap();
        assert_eq!(pkt.kind, PacketKind::Ack);
        assert_eq!(pkt.int.len(), 1);
        let rec = pkt.int.as_slice()[0];
        assert_eq!(
            rec.qlen, 1000,
            "ACK carries the data-path egress queue depth"
        );
        assert_eq!(pkt.size, 78);
        // Data frames in FNCC mode carry no INT.
        let d = sw.ports[2].in_flight.as_ref().unwrap();
        assert_eq!(d.int.len(), 0);
    }

    #[test]
    fn periodic_int_table_lags_live_state() {
        let mut sw = sw0();
        let mut cfg = test_cfg();
        cfg.int = IntInsertion::OnAck;
        cfg.int_refresh = Some(TimeDelta::from_us(10));
        let mut telem = Telemetry::new();
        let mut pool = PacketPool::new();

        // Refresh at t=0 with empty queues, then build a queue.
        sw.refresh_int_table(SimTime::ZERO);
        let mut out = Vec::new();
        sw.on_arrive(
            SimTime::ZERO,
            0,
            data(0, 0, 2, 1000),
            &cfg,
            &mut telem,
            &mut pool,
            &mut out,
        );
        sw.on_arrive(
            SimTime::ZERO,
            0,
            data(0, 0, 2, 1000),
            &cfg,
            &mut telem,
            &mut pool,
            &mut out,
        );

        let ack = Packet::ack(FlowId(0), HostId(2), HostId(0), 0, 70, SimTime::ZERO);
        out.clear();
        sw.on_arrive(
            SimTime::from_us(5),
            2,
            ack,
            &cfg,
            &mut telem,
            &mut pool,
            &mut out,
        );
        let pkt = sw.ports[0].in_flight.as_ref().unwrap();
        assert_eq!(pkt.int.as_slice()[0].qlen, 0, "stale table value");

        // After a refresh, a second ACK sees the queue.
        sw.refresh_int_table(SimTime::from_us(10));
        let ack2 = Packet::ack(FlowId(0), HostId(2), HostId(0), 0, 70, SimTime::ZERO);
        out.clear();
        // port 0 is busy with ack1; drain it first.
        drain_tx(&mut sw, 0, &cfg, &mut telem);
        sw.on_arrive(
            SimTime::from_us(11),
            2,
            ack2,
            &cfg,
            &mut telem,
            &mut pool,
            &mut out,
        );
        let pkt2 = sw.ports[0].in_flight.as_ref().unwrap();
        assert_eq!(pkt2.int.as_slice()[0].qlen, 1000);
    }

    #[test]
    fn pfc_pause_sent_when_ingress_crosses_threshold() {
        let mut sw = sw0();
        let mut cfg = test_cfg();
        cfg.pfc.threshold = 2500; // tiny threshold for the test
        let mut telem = Telemetry::new();
        let mut pool = PacketPool::new();
        let mut out = Vec::new();
        // Three 1000B frames from host 0: after the third, ingress 0 holds
        // 3000 > 2500 (the first is in flight but still accounted).
        for _ in 0..3 {
            sw.on_arrive(
                SimTime::ZERO,
                0,
                data(0, 0, 2, 1000),
                &cfg,
                &mut telem,
                &mut pool,
                &mut out,
            );
        }
        assert!(sw.ports[0].upstream_paused);
        assert_eq!(sw.ports[0].pause_tx, 1);
        assert_eq!(telem.counters.pfc_pause_tx, 1);
        // The pause frame is in flight on port 0 (control priority).
        assert_eq!(
            sw.ports[0].in_flight.as_ref().unwrap().kind,
            PacketKind::PfcPause
        );
        // No duplicate pause while already paused.
        sw.on_arrive(
            SimTime::ZERO,
            0,
            data(0, 0, 2, 1000),
            &cfg,
            &mut telem,
            &mut pool,
            &mut out,
        );
        assert_eq!(sw.ports[0].pause_tx, 1);
    }

    #[test]
    fn pfc_resume_after_draining() {
        let mut sw = sw0();
        let mut cfg = test_cfg();
        cfg.pfc.threshold = 1500;
        cfg.pfc.resume_offset = 500;
        let mut telem = Telemetry::new();
        let mut pool = PacketPool::new();
        let mut out = Vec::new();
        for _ in 0..2 {
            sw.on_arrive(
                SimTime::ZERO,
                0,
                data(0, 0, 2, 1000),
                &cfg,
                &mut telem,
                &mut pool,
                &mut out,
            );
        }
        assert!(sw.ports[0].upstream_paused);
        // Drain the uplink: after both data frames leave, ingress drops to 0
        // → resume emitted.
        drain_tx(&mut sw, 2, &cfg, &mut telem);
        assert!(!sw.ports[0].upstream_paused);
        assert_eq!(sw.ports[0].resume_tx, 1);
        assert_eq!(telem.counters.pfc_resume_tx, 1);
    }

    #[test]
    fn receiving_pause_stops_data_not_control() {
        let mut sw = sw0();
        let cfg = test_cfg();
        let mut telem = Telemetry::new();
        let mut pool = PacketPool::new();
        let mut out = Vec::new();
        // Pause arrives on the uplink (port 2).
        sw.on_arrive(
            SimTime::ZERO,
            2,
            Packet::pfc(PacketKind::PfcPause, 64, SimTime::ZERO),
            &cfg,
            &mut telem,
            &mut pool,
            &mut out,
        );
        assert!(sw.ports[2].paused);
        assert_eq!(sw.ports[2].pause_rx, 1);
        // Data for the uplink queues but does not start.
        sw.on_arrive(
            SimTime::ZERO,
            0,
            data(0, 0, 2, 1000),
            &cfg,
            &mut telem,
            &mut pool,
            &mut out,
        );
        assert!(sw.ports[2].idle());
        assert_eq!(sw.ports[2].queue_bytes, 1000);
        // Resume restarts it.
        out.clear();
        sw.on_arrive(
            SimTime::ZERO,
            2,
            Packet::pfc(PacketKind::PfcResume, 64, SimTime::ZERO),
            &cfg,
            &mut telem,
            &mut pool,
            &mut out,
        );
        assert!(!sw.ports[2].paused);
        assert!(sw.ports[2].in_flight.is_some());
    }

    #[test]
    fn buffer_exhaustion_drops_without_pfc() {
        let mut sw = sw0();
        let mut cfg = test_cfg();
        cfg.pfc = crate::config::PfcConfig::disabled();
        cfg.buffer_bytes = 2048;
        let mut telem = Telemetry::new();
        let mut pool = PacketPool::new();
        let mut out = Vec::new();
        sw.on_arrive(
            SimTime::ZERO,
            0,
            data(0, 0, 2, 1000),
            &cfg,
            &mut telem,
            &mut pool,
            &mut out,
        );
        sw.on_arrive(
            SimTime::ZERO,
            0,
            data(0, 0, 2, 1000),
            &cfg,
            &mut telem,
            &mut pool,
            &mut out,
        );
        sw.on_arrive(
            SimTime::ZERO,
            0,
            data(0, 0, 2, 1000),
            &cfg,
            &mut telem,
            &mut pool,
            &mut out,
        );
        assert_eq!(telem.counters.drops, 1);
        assert_eq!(sw.buffered, 2000);
    }

    #[test]
    fn ecn_marks_above_kmax() {
        let mut sw = sw0();
        let mut cfg = test_cfg();
        cfg.ecn = crate::config::EcnConfig {
            enabled: true,
            kmin: 0,
            kmax: 1,
            pmax: 1.0,
        };
        let mut telem = Telemetry::new();
        let mut pool = PacketPool::new();
        let mut out = Vec::new();
        // First frame: queue empty at enqueue, then it dequeues immediately.
        sw.on_arrive(
            SimTime::ZERO,
            0,
            data(0, 0, 2, 1000),
            &cfg,
            &mut telem,
            &mut pool,
            &mut out,
        );
        // Second frame sees 0 queued (first is in flight, not queued)… build
        // real queue with a third.
        sw.on_arrive(
            SimTime::ZERO,
            0,
            data(0, 0, 2, 1000),
            &cfg,
            &mut telem,
            &mut pool,
            &mut out,
        );
        sw.on_arrive(
            SimTime::ZERO,
            0,
            data(0, 0, 2, 1000),
            &cfg,
            &mut telem,
            &mut pool,
            &mut out,
        );
        assert!(telem.counters.ecn_marks >= 1);
    }

    #[test]
    fn rocc_controller_lowers_rate_under_queue() {
        let mut sw = sw0();
        let mut cfg = test_cfg();
        cfg.rocc = Some(crate::config::RoccSwitchConfig::default_for(
            Bandwidth::gbps(100),
        ));
        let line = 100e9;
        assert_eq!(sw.ports[2].rocc_rate, line);
        // Simulate a standing queue above qref.
        let mut telem = Telemetry::new();
        let mut pool = PacketPool::new();
        let mut out = Vec::new();
        for _ in 0..200 {
            sw.on_arrive(
                SimTime::ZERO,
                0,
                data(0, 0, 2, 1400),
                &cfg,
                &mut telem,
                &mut pool,
                &mut out,
            );
        }
        for _ in 0..10 {
            sw.rocc_step(&cfg);
        }
        assert!(
            sw.ports[2].rocc_rate < line,
            "rate should fall under congestion"
        );
        // Completing the in-flight frame starts the next one, which picks up
        // the lowered stamp at its output-engine pass.
        out.clear();
        sw.on_tx_done(
            SimTime::from_us(1),
            2,
            &cfg,
            &mut telem,
            &mut pool,
            &mut out,
        );
        let pkt = sw.ports[2].in_flight.as_ref().unwrap();
        assert!(pkt.rocc_rate < line);
    }

    #[test]
    fn rocc_rate_recovers_when_queue_drains() {
        let mut sw = sw0();
        let mut cfg = test_cfg();
        cfg.rocc = Some(crate::config::RoccSwitchConfig::default_for(
            Bandwidth::gbps(100),
        ));
        sw.ports[2].rocc_rate = 10e9;
        // Queue empty → integral term pushes the rate back up.
        for _ in 0..10_000 {
            sw.rocc_step(&cfg);
        }
        assert!(
            sw.ports[2].rocc_rate > 99e9,
            "rate {} should recover",
            sw.ports[2].rocc_rate
        );
    }

    #[test]
    fn path_xor_accumulates_switch_ids_on_ack() {
        let mut cfg = test_cfg();
        cfg.int = IntInsertion::OnAck;
        let mut telem = Telemetry::new();
        let mut pool = PacketPool::new();
        let topo = Topology::dumbbell(2, 3, Bandwidth::gbps(100), TimeDelta::from_us(1));
        // Pass one ACK through sw1 then sw0 (reverse path order).
        let mut xor_acc = 0u16;
        let mut ack = Packet::ack(FlowId(0), HostId(2), HostId(0), 0, 70, SimTime::ZERO);
        for swid in [1u32, 0] {
            let mut sw = Switch::new(SwitchId(swid), &topo.switches[swid as usize], &cfg);
            let mut out = Vec::new();
            let in_port = if swid == 1 { 1 } else { 2 };
            sw.on_arrive(
                SimTime::from_us(1),
                in_port,
                ack,
                &cfg,
                &mut telem,
                &mut pool,
                &mut out,
            );
            ack = sw.ports[0].in_flight.take().expect("ack in flight");
            xor_acc ^= swid as u16;
            assert_eq!(ack.path_xor, xor_acc, "after sw{swid}");
        }
        assert_eq!(ack.int.len(), 2);
    }

    #[test]
    fn link_down_purges_queue_and_discards_in_flight_at_tx_done() {
        let mut sw = sw0();
        let cfg = test_cfg();
        let mut telem = Telemetry::new();
        let mut pool = PacketPool::new();
        let mut out = Vec::new();
        // Two frames: one in flight on the uplink, one queued behind it.
        for _ in 0..2 {
            sw.on_arrive(
                SimTime::ZERO,
                0,
                data(0, 0, 2, 1000),
                &cfg,
                &mut telem,
                &mut pool,
                &mut out,
            );
        }
        assert_eq!(sw.buffered, 2000);
        out.clear();
        sw.link_down(
            SimTime::from_us(1),
            2,
            &cfg,
            &mut telem,
            &mut pool,
            &mut out,
        );
        assert!(sw.port_dead(2));
        // The queued frame is destroyed immediately, accounting released.
        assert_eq!(telem.counters.fault_drops, 1);
        assert_eq!(sw.buffered, 1000, "in-flight frame still accounted");
        assert_eq!(sw.ports[2].queue_bytes, 0);
        // Its TxDone discards instead of delivering.
        out.clear();
        sw.on_tx_done(
            SimTime::from_us(2),
            2,
            &cfg,
            &mut telem,
            &mut pool,
            &mut out,
        );
        assert!(
            !out.iter()
                .any(|o| matches!(o, SwitchOutput::Deliver { .. })),
            "dead port must not deliver"
        );
        assert_eq!(telem.counters.fault_drops, 2);
        assert_eq!(sw.buffered, 0);
        assert_eq!(sw.ports[0].ingress_bytes, 0);
    }

    #[test]
    fn link_down_severs_destination_and_drops_arrivals() {
        let mut sw = sw0();
        let cfg = test_cfg();
        let mut telem = Telemetry::new();
        let mut pool = PacketPool::new();
        let mut out = Vec::new();
        sw.link_down(SimTime::ZERO, 2, &cfg, &mut telem, &mut pool, &mut out);
        // Host 2 sits behind the dead uplink: the frame is destroyed, not
        // routed (and `egress` would have panicked on Unreachable).
        sw.on_arrive(
            SimTime::ZERO,
            0,
            data(0, 0, 2, 1000),
            &cfg,
            &mut telem,
            &mut pool,
            &mut out,
        );
        assert_eq!(telem.counters.fault_drops, 1);
        assert_eq!(sw.buffered, 0, "admission accounting rolled back");
        assert_eq!(sw.ports[0].ingress_bytes, 0);
        // Local delivery (host 1, port 1) still works.
        out.clear();
        sw.on_arrive(
            SimTime::ZERO,
            0,
            data(1, 0, 1, 1000),
            &cfg,
            &mut telem,
            &mut pool,
            &mut out,
        );
        assert!(matches!(
            out.as_slice(),
            [SwitchOutput::StartTx { port: 1, .. }]
        ));
    }

    #[test]
    fn link_up_restores_routing() {
        let mut sw = sw0();
        let cfg = test_cfg();
        let mut telem = Telemetry::new();
        let mut pool = PacketPool::new();
        let mut out = Vec::new();
        sw.link_down(SimTime::ZERO, 2, &cfg, &mut telem, &mut pool, &mut out);
        sw.link_up(SimTime::from_us(1), 2, &mut telem);
        assert!(!sw.port_dead(2));
        sw.on_arrive(
            SimTime::from_us(2),
            0,
            data(0, 0, 2, 1000),
            &cfg,
            &mut telem,
            &mut pool,
            &mut out,
        );
        assert!(matches!(
            out.as_slice(),
            [SwitchOutput::StartTx { port: 2, .. }]
        ));
        assert_eq!(telem.counters.fault_drops, 0);
    }

    #[test]
    fn ecmp_reroutes_around_dead_uplink_and_counts_flows() {
        // Fat-tree k=4 ToR 0: ports 0,1 = hosts, ports 2,3 = ECMP uplinks.
        let topo = Topology::fat_tree(4, Bandwidth::gbps(100), TimeDelta::from_us(1));
        let cfg = test_cfg();
        let mut sw = Switch::new(SwitchId(0), &topo.switches[0], &cfg);
        let mut telem = Telemetry::new();
        let mut pool = PacketPool::new();
        let mut out = Vec::new();
        // Find a flow that pristine-routes via port 2.
        let flow = (0..64)
            .map(FlowId)
            .find(|f| egress_for(&sw, HostId(0), HostId(15), *f) == 2)
            .expect("some flow hashes onto port 2");
        sw.link_down(SimTime::ZERO, 2, &cfg, &mut telem, &mut pool, &mut out);
        let mut pkt = data(flow.0, 0, 15, 1000);
        pkt.flow = flow;
        sw.on_arrive(SimTime::ZERO, 0, pkt, &cfg, &mut telem, &mut pool, &mut out);
        assert!(
            matches!(out.as_slice(), [SwitchOutput::StartTx { port: 3, .. }]),
            "survivor uplink takes over: {out:?}"
        );
        assert_eq!(telem.counters.rerouted_flows, 1);
        // Second frame of the same flow does not recount.
        let mut pkt = data(flow.0, 0, 15, 1000);
        pkt.flow = flow;
        sw.on_arrive(SimTime::ZERO, 0, pkt, &cfg, &mut telem, &mut pool, &mut out);
        assert_eq!(telem.counters.rerouted_flows, 1);
    }

    #[test]
    fn random_loss_window_drops_with_certainty_probability() {
        let mut sw = sw0();
        let cfg = test_cfg();
        let mut telem = Telemetry::new();
        let mut pool = PacketPool::new();
        let mut out = Vec::new();
        sw.set_loss(2, 1.0);
        sw.on_arrive(
            SimTime::ZERO,
            0,
            data(0, 0, 2, 1000),
            &cfg,
            &mut telem,
            &mut pool,
            &mut out,
        );
        assert_eq!(telem.counters.fault_drops, 1);
        assert_eq!(sw.buffered, 0);
        // Clearing the window restores forwarding.
        sw.set_loss(2, 0.0);
        out.clear();
        sw.on_arrive(
            SimTime::ZERO,
            0,
            data(0, 0, 2, 1000),
            &cfg,
            &mut telem,
            &mut pool,
            &mut out,
        );
        assert!(matches!(
            out.as_slice(),
            [SwitchOutput::StartTx { port: 2, .. }]
        ));
    }

    #[test]
    fn egress_for_is_deterministic() {
        let sw = sw0();
        let a = egress_for(&sw, HostId(0), HostId(2), FlowId(0));
        let b = egress_for(&sw, HostId(0), HostId(2), FlowId(0));
        assert_eq!(a, b);
        assert_eq!(a, 2);
    }
}
