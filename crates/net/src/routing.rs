//! Routing: per-destination tables with symmetric ECMP (Fig. 5) and
//! spanning-tree unique paths (Fig. 6).
//!
//! **Symmetry** (Observation 2 of the paper): an ACK must traverse exactly
//! the reverse of its data packet's path so that FNCC's return-path INT
//! describes the request path. Two mechanisms guarantee this:
//!
//! 1. The ECMP hash is computed over the *direction-normalised* five-tuple
//!    (`min(src,dst), max(src,dst), flow`), so a flow's data and ACK frames
//!    hash identically.
//! 2. Next-hop lists are built in a canonical order and indexed by a fixed
//!    *digit* of the hash per topology level (`level`), mirroring the
//!    "symmetric routing table" of Fig. 5. With the canonical fat-tree
//!    wiring in [`crate::topology`], the up-path choices made by the data
//!    packet are exactly reproduced (in reverse) by the ACK.

use crate::ids::{FlowId, HostId};
use fncc_des::rng::splitmix64;

/// Bits of the path hash consumed per ECMP level.
const LEVEL_DIGIT_BITS: u32 = 8;

/// Direction-normalised flow hash: identical for a data packet
/// (`src → dst`) and its ACK (`dst → src`).
#[inline]
pub fn flow_hash(a: HostId, b: HostId, flow: FlowId) -> u64 {
    let (lo, hi) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
    splitmix64(((lo as u64) << 40) ^ ((hi as u64) << 16) ^ (flow.0 as u64) ^ 0x5bd1_e995)
}

/// How a switch forwards towards one destination host.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RouteEntry {
    /// Destination unreachable (configuration error if ever hit).
    Unreachable,
    /// Single next hop.
    Single(u8),
    /// Equal-cost set; `level` selects which hash digit picks the member.
    Ecmp {
        /// Candidate egress ports in canonical (symmetric) order.
        ports: Vec<u8>,
        /// Topology level of this choice point (0 = first up-hop, …).
        level: u8,
    },
}

/// Routing state of one switch.
#[derive(Clone, Debug)]
pub enum RoutingTable {
    /// Classic per-destination table (dumbbell, line, fat-tree).
    PerDst(Vec<RouteEntry>),
    /// Spanning-tree routing: `trees[t][dst]` = egress port within tree `t`;
    /// the flow hash picks the tree (Fig. 6 / TCP-Bolt style).
    Trees(Vec<Vec<u8>>),
}

impl RoutingTable {
    /// Like [`RoutingTable::egress`], but `None` for unreachable
    /// destinations — link faults can legitimately sever a destination at
    /// runtime, which must drop the frame rather than panic.
    #[inline]
    pub fn try_egress(&self, dst: HostId, h: u64) -> Option<u8> {
        match self {
            RoutingTable::PerDst(entries) => match &entries[dst.ix()] {
                RouteEntry::Unreachable => None,
                RouteEntry::Single(p) => Some(*p),
                RouteEntry::Ecmp { ports, level } => {
                    let digit =
                        (h >> (LEVEL_DIGIT_BITS * *level as u32)) & ((1 << LEVEL_DIGIT_BITS) - 1);
                    Some(ports[(digit as usize) % ports.len()])
                }
            },
            RoutingTable::Trees(trees) => {
                let t = (h as usize) % trees.len();
                Some(trees[t][dst.ix()])
            }
        }
    }

    /// Select the egress port towards `dst` for a frame with path hash `h`.
    ///
    /// Panics on unreachable destinations — that is a topology-construction
    /// bug, not a runtime condition.
    #[inline]
    pub fn egress(&self, dst: HostId, h: u64) -> u8 {
        match self {
            RoutingTable::PerDst(entries) => match &entries[dst.ix()] {
                RouteEntry::Unreachable => panic!("no route to {dst:?}"),
                RouteEntry::Single(p) => *p,
                RouteEntry::Ecmp { ports, level } => {
                    let digit =
                        (h >> (LEVEL_DIGIT_BITS * *level as u32)) & ((1 << LEVEL_DIGIT_BITS) - 1);
                    ports[(digit as usize) % ports.len()]
                }
            },
            RoutingTable::Trees(trees) => {
                let t = (h as usize) % trees.len();
                trees[t][dst.ix()]
            }
        }
    }
}

/// `rt` with every route steered around the `dead` egress ports: ECMP
/// member lists shrink to the survivors (hash digits then re-index the
/// smaller canonical list), single or fully-emptied routes become
/// [`RouteEntry::Unreachable`]. `Trees` routing has no alternate paths
/// within a tree and is returned unchanged — spanning-tree topologies do
/// not support link faults.
pub fn without_ports(rt: &RoutingTable, dead: &[bool]) -> RoutingTable {
    let is_dead = |p: u8| dead.get(p as usize).copied().unwrap_or(false);
    match rt {
        RoutingTable::PerDst(entries) => RoutingTable::PerDst(
            entries
                .iter()
                .map(|e| match e {
                    RouteEntry::Unreachable => RouteEntry::Unreachable,
                    RouteEntry::Single(p) if is_dead(*p) => RouteEntry::Unreachable,
                    RouteEntry::Single(p) => RouteEntry::Single(*p),
                    RouteEntry::Ecmp { ports, level } => {
                        let live: Vec<u8> =
                            ports.iter().copied().filter(|p| !is_dead(*p)).collect();
                        match live.len() {
                            0 => RouteEntry::Unreachable,
                            1 => RouteEntry::Single(live[0]),
                            _ => RouteEntry::Ecmp {
                                ports: live,
                                level: *level,
                            },
                        }
                    }
                })
                .collect(),
        ),
        RoutingTable::Trees(_) => rt.clone(),
    }
}

/// One egress lookup under a set of dead ports, without materializing the
/// filtered table: exactly what [`without_ports`] + [`RoutingTable::try_egress`]
/// would return, hop by hop. The fluid backend walks paths with this so its
/// failure-aware rerouting picks the *same* surviving ECMP member as the
/// packet engine's recompiled tables (the hash digit re-indexes the shrunken
/// canonical list), keeping the two backends' post-fault paths identical.
pub fn egress_avoiding(
    rt: &RoutingTable,
    dst: HostId,
    h: u64,
    is_dead: impl Fn(u8) -> bool,
) -> Option<u8> {
    match rt {
        RoutingTable::PerDst(entries) => match &entries[dst.ix()] {
            RouteEntry::Unreachable => None,
            RouteEntry::Single(p) => (!is_dead(*p)).then_some(*p),
            RouteEntry::Ecmp { ports, level } => {
                let live = ports.iter().filter(|&&p| !is_dead(p)).count();
                if live == 0 {
                    return None;
                }
                let digit =
                    (h >> (LEVEL_DIGIT_BITS * *level as u32)) & ((1 << LEVEL_DIGIT_BITS) - 1);
                ports
                    .iter()
                    .filter(|&&p| !is_dead(p))
                    .nth(digit as usize % live)
                    .copied()
            }
        },
        // Trees routing has no alternates within a tree; faults don't
        // steer it (mirrors `without_ports`).
        RoutingTable::Trees(_) => Some(rt.egress(dst, h)),
    }
}

/// A [`RoutingTable`] compiled for the hot path.
///
/// `PerDst` tables resolve to one load pair per lookup: per destination a
/// packed `(level, table)` word, then a 256-entry digit→port byte table
/// shared between destinations with the same choice set (`Single` entries
/// compile to a constant table). This replaces two pointer chases and a
/// hardware division per forwarded frame with two dependent loads.
/// `Trees` tables keep the original lookup (full-hash modulo over the tree
/// count does not digit-compile); they are off the workload hot path.
#[derive(Clone, Debug)]
pub enum CompiledRoutes {
    /// Digit-compiled per-destination tables.
    PerDst {
        /// Per destination: `level << 16 | table index`, or `u32::MAX` for
        /// unreachable.
        dst: Vec<u32>,
        /// Digit→port tables, 256 bytes each, deduplicated.
        tables: Vec<[u8; 256]>,
    },
    /// Uncompiled fallback (spanning-tree routing).
    Raw(RoutingTable),
}

impl CompiledRoutes {
    /// Compile a routing table. Lookup results are bit-identical to
    /// [`RoutingTable::egress`] for every `(dst, h)`.
    pub fn compile(rt: &RoutingTable) -> CompiledRoutes {
        let RoutingTable::PerDst(entries) = rt else {
            return CompiledRoutes::Raw(rt.clone());
        };
        let mut tables: Vec<[u8; 256]> = Vec::new();
        let mut dst = Vec::with_capacity(entries.len());
        let intern = |t: [u8; 256], tables: &mut Vec<[u8; 256]>| -> u32 {
            match tables.iter().position(|x| x == &t) {
                Some(ix) => ix as u32,
                None => {
                    tables.push(t);
                    tables.len() as u32 - 1
                }
            }
        };
        for e in entries {
            dst.push(match e {
                RouteEntry::Unreachable => u32::MAX,
                RouteEntry::Single(p) => intern([*p; 256], &mut tables),
                RouteEntry::Ecmp { ports, level } => {
                    let mut t = [0u8; 256];
                    for (digit, slot) in t.iter_mut().enumerate() {
                        *slot = ports[digit % ports.len()];
                    }
                    ((*level as u32) << 16) | intern(t, &mut tables)
                }
            });
        }
        assert!(
            tables.len() <= 0xFFFF,
            "too many distinct ECMP tables to digit-compile ({})",
            tables.len()
        );
        CompiledRoutes::PerDst { dst, tables }
    }

    /// Like [`CompiledRoutes::egress`], but `None` for unreachable
    /// destinations (a destination severed by link faults).
    #[inline]
    pub fn try_egress(&self, dst: HostId, h: u64) -> Option<u8> {
        match self {
            CompiledRoutes::PerDst { dst: d, tables } => {
                let packed = d[dst.ix()];
                if packed == u32::MAX {
                    return None;
                }
                let level = packed >> 16;
                let digit = (h >> (LEVEL_DIGIT_BITS * level)) & 0xFF;
                Some(tables[(packed & 0xFFFF) as usize][digit as usize])
            }
            CompiledRoutes::Raw(rt) => rt.try_egress(dst, h),
        }
    }

    /// Select the egress port towards `dst` for a frame with path hash `h`.
    /// Panics on unreachable destinations, like [`RoutingTable::egress`].
    #[inline]
    pub fn egress(&self, dst: HostId, h: u64) -> u8 {
        match self {
            CompiledRoutes::PerDst { dst: d, tables } => {
                let packed = d[dst.ix()];
                assert_ne!(packed, u32::MAX, "no route to {dst:?}");
                let level = packed >> 16;
                let digit = (h >> (LEVEL_DIGIT_BITS * level)) & 0xFF;
                tables[(packed & 0xFFFF) as usize][digit as usize]
            }
            CompiledRoutes::Raw(rt) => rt.egress(dst, h),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_hash_is_direction_symmetric() {
        for s in 0..20u32 {
            for d in 0..20u32 {
                for f in 0..5u32 {
                    assert_eq!(
                        flow_hash(HostId(s), HostId(d), FlowId(f)),
                        flow_hash(HostId(d), HostId(s), FlowId(f)),
                    );
                }
            }
        }
    }

    #[test]
    fn flow_hash_differs_across_flows() {
        let h0 = flow_hash(HostId(0), HostId(1), FlowId(0));
        let h1 = flow_hash(HostId(0), HostId(1), FlowId(1));
        assert_ne!(h0, h1);
    }

    #[test]
    fn flow_hash_differs_across_pairs() {
        let mut seen = std::collections::HashSet::new();
        for s in 0..10u32 {
            for d in (s + 1)..10u32 {
                seen.insert(flow_hash(HostId(s), HostId(d), FlowId(0)));
            }
        }
        assert_eq!(seen.len(), 45, "hash collisions across 45 distinct pairs");
    }

    #[test]
    fn single_route_ignores_hash() {
        let rt = RoutingTable::PerDst(vec![RouteEntry::Single(3)]);
        assert_eq!(rt.egress(HostId(0), 0), 3);
        assert_eq!(rt.egress(HostId(0), u64::MAX), 3);
    }

    #[test]
    fn ecmp_uses_level_digit() {
        let rt = RoutingTable::PerDst(vec![RouteEntry::Ecmp {
            ports: vec![10, 11, 12, 13],
            level: 1,
        }]);
        // Digit 1 = bits 8..16 of the hash.
        let h = 0x0000_0200u64; // digit0 = 0, digit1 = 2
        assert_eq!(rt.egress(HostId(0), h), 12);
        let h = 0x0000_0501u64; // digit1 = 5 → 5 % 4 = 1
        assert_eq!(rt.egress(HostId(0), h), 11);
    }

    #[test]
    fn ecmp_spreads_over_all_members() {
        let rt = RoutingTable::PerDst(vec![RouteEntry::Ecmp {
            ports: vec![0, 1, 2, 3],
            level: 0,
        }]);
        let mut hit = [false; 4];
        for f in 0..200u32 {
            let h = flow_hash(HostId(0), HostId(1), FlowId(f));
            hit[rt.egress(HostId(0), h) as usize] = true;
        }
        assert!(
            hit.iter().all(|&b| b),
            "ECMP never chose some member: {hit:?}"
        );
    }

    #[test]
    #[should_panic]
    fn unreachable_panics() {
        let rt = RoutingTable::PerDst(vec![RouteEntry::Unreachable]);
        rt.egress(HostId(0), 0);
    }

    #[test]
    fn compiled_routes_match_interpreted_lookup() {
        let rt = RoutingTable::PerDst(vec![
            RouteEntry::Single(3),
            RouteEntry::Ecmp {
                ports: vec![10, 11, 12],
                level: 1,
            },
            RouteEntry::Ecmp {
                ports: vec![4, 5, 6, 7],
                level: 0,
            },
            RouteEntry::Single(3), // dedups with entry 0
        ]);
        let c = CompiledRoutes::compile(&rt);
        for dst in 0..4u32 {
            for f in 0..500u32 {
                let h = flow_hash(HostId(dst), HostId(100), FlowId(f));
                assert_eq!(c.egress(HostId(dst), h), rt.egress(HostId(dst), h));
            }
        }
        if let CompiledRoutes::PerDst { tables, .. } = &c {
            assert_eq!(tables.len(), 3, "identical entries share one table");
        } else {
            panic!("PerDst must digit-compile");
        }
    }

    #[test]
    #[should_panic]
    fn compiled_unreachable_panics() {
        let c = CompiledRoutes::compile(&RoutingTable::PerDst(vec![RouteEntry::Unreachable]));
        c.egress(HostId(0), 0);
    }

    #[test]
    fn compiled_trees_fall_back_to_raw() {
        let rt = RoutingTable::Trees(vec![vec![1], vec![2], vec![3]]);
        let c = CompiledRoutes::compile(&rt);
        for f in 0..100u32 {
            let h = flow_hash(HostId(0), HostId(0), FlowId(f));
            assert_eq!(c.egress(HostId(0), h), rt.egress(HostId(0), h));
        }
    }

    #[test]
    fn without_ports_shrinks_ecmp_and_severs_singles() {
        let rt = RoutingTable::PerDst(vec![
            RouteEntry::Single(2),
            RouteEntry::Single(3),
            RouteEntry::Ecmp {
                ports: vec![2, 3],
                level: 0,
            },
            RouteEntry::Ecmp {
                ports: vec![4, 5],
                level: 1,
            },
        ]);
        let mut dead = vec![false; 6];
        dead[2] = true;
        let f = without_ports(&rt, &dead);
        let RoutingTable::PerDst(e) = &f else {
            panic!("PerDst expected")
        };
        assert_eq!(e[0], RouteEntry::Unreachable);
        assert_eq!(e[1], RouteEntry::Single(3));
        assert_eq!(e[2], RouteEntry::Single(3), "one survivor degenerates");
        assert_eq!(
            e[3],
            RouteEntry::Ecmp {
                ports: vec![4, 5],
                level: 1
            },
            "untouched sets survive whole"
        );
        // No dead ports: identity.
        let id = without_ports(&rt, &[false; 6]);
        let RoutingTable::PerDst(e) = &id else {
            panic!("PerDst expected")
        };
        assert_eq!(
            e[2],
            RouteEntry::Ecmp {
                ports: vec![2, 3],
                level: 0
            }
        );
    }

    #[test]
    fn egress_avoiding_matches_recompiled_tables() {
        let rt = RoutingTable::PerDst(vec![
            RouteEntry::Single(2),
            RouteEntry::Unreachable,
            RouteEntry::Ecmp {
                ports: vec![2, 3, 4, 5],
                level: 1,
            },
            RouteEntry::Ecmp {
                ports: vec![4, 5],
                level: 0,
            },
        ]);
        // Every dead-set over ports 2..=5, every dst, many hashes: the
        // per-lookup filter must agree with the recompiled table exactly.
        for mask in 0u8..16 {
            let mut dead = vec![false; 6];
            for p in 0..4 {
                dead[p + 2] = mask & (1 << p) != 0;
            }
            let filtered = without_ports(&rt, &dead);
            for dst in 0..4u32 {
                for f in 0..100u32 {
                    let h = flow_hash(HostId(dst), HostId(50), FlowId(f));
                    assert_eq!(
                        egress_avoiding(&rt, HostId(dst), h, |p| dead[p as usize]),
                        filtered.try_egress(HostId(dst), h),
                        "mask {mask:04b} dst {dst} flow {f}"
                    );
                }
            }
        }
    }

    #[test]
    fn try_egress_is_none_only_when_unreachable() {
        let rt = RoutingTable::PerDst(vec![RouteEntry::Unreachable, RouteEntry::Single(7)]);
        let c = CompiledRoutes::compile(&rt);
        assert_eq!(rt.try_egress(HostId(0), 0), None);
        assert_eq!(c.try_egress(HostId(0), 0), None);
        assert_eq!(rt.try_egress(HostId(1), 0), Some(7));
        assert_eq!(c.try_egress(HostId(1), 0), Some(7));
    }

    #[test]
    fn tree_routing_selects_by_hash() {
        let rt = RoutingTable::Trees(vec![vec![1], vec![2], vec![3]]);
        let mut seen = std::collections::HashSet::new();
        for f in 0..100u32 {
            let h = flow_hash(HostId(0), HostId(0), FlowId(f));
            seen.insert(rt.egress(HostId(0), h));
        }
        assert_eq!(seen, [1u8, 2, 3].into_iter().collect());
    }
}
