//! Packet recycling: a free-list pool of `Box<Packet>`.
//!
//! Packets are created and destroyed millions of times per run — one
//! malloc/free pair per frame was a measurable slice of the hot path, and
//! worse, fresh boxes scatter across the heap while recycled ones stay
//! cache-hot. The pool hands out boxes from a free list and takes them
//! back at every point a frame leaves the simulation (delivery to a host,
//! PFC consumption, buffer drop).
//!
//! The constructors mirror [`Packet::data`]/[`Packet::ack`]/[`Packet::cnp`]/
//! [`Packet::pfc`] exactly: every field of a recycled box is reset to what
//! the corresponding constructor writes, except that the INT stack is
//! cleared by length only — records beyond `len` are unobservable through
//! the [`crate::packet::IntStack`] API, so stale entries are never read.

use crate::ids::{FlowId, HostId};
use crate::packet::{Packet, PacketKind};
use fncc_des::time::SimTime;

/// A free-list of packet boxes with allocation accounting.
#[derive(Default)]
pub struct PacketPool {
    // The boxes themselves are the currency here — frames circulate as
    // `Box<Packet>` through queues and events, so the free list must hold
    // boxes (moving `Packet` by value would copy ~400 B per put/take).
    #[allow(clippy::vec_box)]
    free: Vec<Box<Packet>>,
    fresh: u64,
    recycled: u64,
}

impl PacketPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Boxes created fresh (pool misses) so far.
    pub fn fresh_allocs(&self) -> u64 {
        self.fresh
    }

    /// Boxes served from the free list so far.
    pub fn recycled(&self) -> u64 {
        self.recycled
    }

    /// Boxes currently parked in the free list.
    pub fn free_len(&self) -> usize {
        self.free.len()
    }

    /// Return a box to the free list.
    #[inline]
    pub fn put(&mut self, pkt: Box<Packet>) {
        self.free.push(pkt);
    }

    /// A box with unspecified contents; the caller must set every field.
    #[inline]
    fn take(&mut self) -> Box<Packet> {
        match self.free.pop() {
            Some(p) => {
                self.recycled += 1;
                p
            }
            None => {
                self.fresh += 1;
                Packet::data(FlowId(0), HostId(0), HostId(0), 0, 0, 0, SimTime::ZERO)
            }
        }
    }

    /// Reset every non-INT field to the constructors' shared defaults.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn reset(
        pkt: &mut Packet,
        kind: PacketKind,
        flow: FlowId,
        src: HostId,
        dst: HostId,
        seq: u64,
        size: u32,
        payload: u32,
        now: SimTime,
    ) {
        pkt.kind = kind;
        pkt.flow = flow;
        pkt.src = src;
        pkt.dst = dst;
        pkt.seq = seq;
        pkt.size = size;
        pkt.payload = payload;
        pkt.sent_at = now;
        pkt.ecn = false;
        pkt.int.clear();
        pkt.concurrent_flows = 0;
        pkt.path_xor = 0;
        pkt.rocc_rate = f64::INFINITY;
        pkt.in_port = 0;
        pkt.accounted = 0;
        pkt.last_of_flow = false;
    }

    /// Pooled equivalent of [`Packet::data`].
    #[allow(clippy::too_many_arguments)]
    pub fn data(
        &mut self,
        flow: FlowId,
        src: HostId,
        dst: HostId,
        seq: u64,
        payload: u32,
        wire_size: u32,
        now: SimTime,
    ) -> Box<Packet> {
        let mut p = self.take();
        Self::reset(
            &mut p,
            PacketKind::Data,
            flow,
            src,
            dst,
            seq,
            wire_size,
            payload,
            now,
        );
        p
    }

    /// Pooled equivalent of [`Packet::ack`].
    pub fn ack(
        &mut self,
        flow: FlowId,
        src: HostId,
        dst: HostId,
        ack_seq: u64,
        base_size: u32,
        now: SimTime,
    ) -> Box<Packet> {
        let mut p = self.take();
        Self::reset(
            &mut p,
            PacketKind::Ack,
            flow,
            src,
            dst,
            ack_seq,
            base_size,
            0,
            now,
        );
        p
    }

    /// Pooled equivalent of [`Packet::cnp`].
    pub fn cnp(
        &mut self,
        flow: FlowId,
        src: HostId,
        dst: HostId,
        size: u32,
        now: SimTime,
    ) -> Box<Packet> {
        let mut p = self.take();
        Self::reset(&mut p, PacketKind::Cnp, flow, src, dst, 0, size, 0, now);
        p
    }

    /// Pooled equivalent of [`Packet::pfc`].
    pub fn pfc(&mut self, kind: PacketKind, size: u32, now: SimTime) -> Box<Packet> {
        debug_assert!(kind.is_control());
        let mut p = self.take();
        Self::reset(
            &mut p,
            kind,
            FlowId(u32::MAX),
            HostId(u32::MAX),
            HostId(u32::MAX),
            0,
            size,
            0,
            now,
        );
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::IntRecord;
    use crate::units::Bandwidth;

    #[test]
    fn pooled_constructors_match_fresh_ones() {
        let mut pool = PacketPool::new();
        let now = SimTime::from_us(3);
        let a = pool.data(FlowId(1), HostId(2), HostId(3), 40, 100, 162, now);
        let b = Packet::data(FlowId(1), HostId(2), HostId(3), 40, 100, 162, now);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let a = pool.ack(FlowId(1), HostId(3), HostId(2), 140, 70, now);
        let b = Packet::ack(FlowId(1), HostId(3), HostId(2), 140, 70, now);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let a = pool.cnp(FlowId(1), HostId(3), HostId(2), 64, now);
        let b = Packet::cnp(FlowId(1), HostId(3), HostId(2), 64, now);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let a = pool.pfc(PacketKind::PfcPause, 64, now);
        let b = Packet::pfc(PacketKind::PfcPause, 64, now);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn recycled_box_is_fully_reset() {
        let mut pool = PacketPool::new();
        let mut p = pool.data(
            FlowId(7),
            HostId(0),
            HostId(1),
            0,
            1456,
            1518,
            SimTime::ZERO,
        );
        // Dirty every mutable bit of state a switch or host can touch.
        p.push_int(IntRecord {
            bandwidth: Bandwidth::gbps(100),
            ts: SimTime::from_us(9),
            tx_bytes: 77,
            qlen: 12,
        });
        p.ecn = true;
        p.concurrent_flows = 9;
        p.path_xor = 0xabc;
        p.rocc_rate = 5e9;
        p.in_port = 3;
        p.accounted = 1526;
        p.last_of_flow = true;
        pool.put(p);
        assert_eq!(pool.free_len(), 1);
        let q = pool.data(FlowId(1), HostId(2), HostId(3), 40, 100, 162, SimTime::ZERO);
        let fresh = Packet::data(FlowId(1), HostId(2), HostId(3), 40, 100, 162, SimTime::ZERO);
        assert_eq!(format!("{:?}", q.int.as_slice()), "[]");
        assert_eq!(q.int.wire_bytes(), 0);
        // Everything observable matches a fresh construction.
        assert_eq!(q.kind, fresh.kind);
        assert_eq!(q.seq, fresh.seq);
        assert_eq!(q.size, fresh.size);
        assert_eq!(q.payload, fresh.payload);
        assert!(!q.ecn && !q.last_of_flow);
        assert_eq!(q.concurrent_flows, 0);
        assert_eq!(q.path_xor, 0);
        assert!(q.rocc_rate.is_infinite());
        assert_eq!((q.in_port, q.accounted), (0, 0));
        assert_eq!(pool.recycled(), 1);
        assert_eq!(pool.fresh_allocs(), 1);
    }
}
