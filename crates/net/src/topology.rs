//! Topology construction: the paper's dumbbell (Fig. 10), the hop-location
//! lines of Fig. 11, the three-level fat-tree of §5.5, a star, and
//! spanning-tree routing (Fig. 6) for arbitrary topologies.
//!
//! A [`Topology`] is a pure description — nodes, ports, link parameters and
//! routing tables — consumed by [`crate::fabric::Fabric`] to instantiate the
//! live simulation, and by analysis code (path tracing, ideal FCT, base-RTT
//! computation).

use crate::ids::{FlowId, HostId, NodeRef, SwitchId};
use crate::routing::{flow_hash, RouteEntry, RoutingTable};
use crate::units::Bandwidth;
use fncc_des::time::TimeDelta;
use std::collections::VecDeque;

/// One side of a link: who is at the other end and the link's parameters.
#[derive(Clone, Debug)]
pub struct PortSpec {
    /// Node at the far end.
    pub peer: NodeRef,
    /// Port index at the far end.
    pub peer_port: u8,
    /// Link bandwidth (both directions run at the same rate).
    pub bw: Bandwidth,
    /// One-way propagation delay.
    pub prop: TimeDelta,
}

/// A switch: its ports and its routing table.
#[derive(Clone, Debug)]
pub struct SwitchSpec {
    /// Ports in index order.
    pub ports: Vec<PortSpec>,
    /// Forwarding state.
    pub route: RoutingTable,
}

/// Which builder produced the topology (used in reports).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopologyKind {
    /// Fig. 10: N senders at the first switch of a chain, receiver at the last.
    Dumbbell,
    /// Fig. 11: senders attached at arbitrary switches of a chain.
    Line,
    /// Three-level fat-tree with parameter k.
    FatTree(u32),
    /// Two-level leaf–spine (leaves, spines).
    LeafSpine(u32, u32),
    /// Single switch.
    Star,
    /// Anything else.
    Custom,
}

/// A complete network description.
#[derive(Clone, Debug)]
pub struct Topology {
    /// Builder provenance.
    pub kind: TopologyKind,
    /// Hosts are numbered `0..n_hosts`; each has exactly one port (port 0).
    pub n_hosts: u32,
    /// Host NIC link descriptions, indexed by host id.
    pub host_ports: Vec<PortSpec>,
    /// Switches, indexed by switch id.
    pub switches: Vec<SwitchSpec>,
}

impl Topology {
    /// Number of switches.
    pub fn n_switches(&self) -> usize {
        self.switches.len()
    }

    /// Check structural invariants: every port's peer points back at it with
    /// matching link parameters. Panics with a description on violation.
    pub fn validate(&self) {
        assert_eq!(self.host_ports.len(), self.n_hosts as usize);
        let peer_spec = |node: NodeRef, port: u8| -> &PortSpec {
            match node {
                NodeRef::Host(h) => {
                    assert_eq!(port, 0, "host {h:?} has a single port");
                    &self.host_ports[h.ix()]
                }
                NodeRef::Switch(s) => &self.switches[s.ix()].ports[port as usize],
            }
        };
        let check = |me: NodeRef, my_port: u8, spec: &PortSpec| {
            let back = peer_spec(spec.peer, spec.peer_port);
            assert!(
                matches!((back.peer, me), (NodeRef::Host(a), NodeRef::Host(b)) if a == b)
                    || matches!((back.peer, me), (NodeRef::Switch(a), NodeRef::Switch(b)) if a == b),
                "{me:?}:{my_port} -> {:?}:{} does not point back",
                spec.peer,
                spec.peer_port
            );
            assert_eq!(
                back.peer_port, my_port,
                "{me:?}:{my_port} peer-port mismatch"
            );
            assert_eq!(back.bw, spec.bw, "{me:?}:{my_port} asymmetric bandwidth");
            assert_eq!(back.prop, spec.prop, "{me:?}:{my_port} asymmetric delay");
        };
        for (h, spec) in self.host_ports.iter().enumerate() {
            check(NodeRef::Host(HostId(h as u32)), 0, spec);
        }
        for (s, sw) in self.switches.iter().enumerate() {
            for (p, spec) in sw.ports.iter().enumerate() {
                check(NodeRef::Switch(SwitchId(s as u32)), p as u8, spec);
            }
        }
    }

    /// Trace the request path of a flow: `(node, egress port)` pairs starting
    /// at the source host and ending when the destination host is reached.
    /// The destination host itself is not included.
    pub fn trace_path(&self, src: HostId, dst: HostId, flow: FlowId) -> Vec<(NodeRef, u8)> {
        assert_ne!(src, dst, "flow to self");
        let h = flow_hash(src, dst, flow);
        let mut path = vec![(NodeRef::Host(src), 0u8)];
        let mut cur = self.host_ports[src.ix()].peer;
        let mut hops = 0;
        loop {
            hops += 1;
            assert!(hops < 64, "routing loop tracing {src:?}->{dst:?}");
            match cur {
                NodeRef::Host(hh) => {
                    assert_eq!(hh, dst, "path reached wrong host");
                    return path;
                }
                NodeRef::Switch(s) => {
                    let sw = &self.switches[s.ix()];
                    let out = sw.route.egress(dst, h);
                    path.push((cur, out));
                    cur = sw.ports[out as usize].peer;
                }
            }
        }
    }

    /// The switches on a flow's request path, in order.
    pub fn path_switches(&self, src: HostId, dst: HostId, flow: FlowId) -> Vec<SwitchId> {
        self.trace_path(src, dst, flow)
            .into_iter()
            .filter_map(|(n, _)| match n {
                NodeRef::Switch(s) => Some(s),
                NodeRef::Host(_) => None,
            })
            .collect()
    }

    /// Bandwidth of the link out of `node` port `port`.
    fn port_spec(&self, node: NodeRef, port: u8) -> &PortSpec {
        match node {
            NodeRef::Host(h) => &self.host_ports[h.ix()],
            NodeRef::Switch(s) => &self.switches[s.ix()].ports[port as usize],
        }
    }

    /// One-way latency of a single full-size frame of `bytes` along the
    /// request path (store-and-forward: serialize at every hop + propagate).
    pub fn one_way_latency(&self, src: HostId, dst: HostId, flow: FlowId, bytes: u32) -> TimeDelta {
        let mut total = TimeDelta::ZERO;
        for (node, port) in self.trace_path(src, dst, flow) {
            let spec = self.port_spec(node, port);
            total += spec.bw.tx_time(bytes as u64) + spec.prop;
        }
        total
    }

    /// Base round-trip time for a flow: a full MTU frame out plus an ACK of
    /// `ack_bytes` back, on an idle network.
    pub fn flow_base_rtt(
        &self,
        src: HostId,
        dst: HostId,
        flow: FlowId,
        mtu: u32,
        ack_bytes: u32,
    ) -> TimeDelta {
        self.one_way_latency(src, dst, flow, mtu) + self.one_way_latency(dst, src, flow, ack_bytes)
    }

    /// Network-wide base RTT: the maximum [`Self::flow_base_rtt`] over all
    /// (or, for big networks, a diameter-covering sample of) host pairs.
    /// HPCC/FNCC use this as the window normalisation constant `T`.
    pub fn base_rtt(&self, mtu: u32, ack_bytes: u32) -> TimeDelta {
        let n = self.n_hosts;
        let mut max = TimeDelta::ZERO;
        let pairs: Vec<(u32, u32)> = if n <= 64 {
            (0..n)
                .flat_map(|a| (0..n).filter(move |&b| b != a).map(move |b| (a, b)))
                .collect()
        } else {
            // Sample host 0 against everyone plus a diagonal sweep; in the
            // regular topologies we build, the diameter is hit by host 0 vs
            // the farthest pod already.
            (1..n)
                .map(|b| (0, b))
                .chain((1..n).map(|a| (a, n - 1)).filter(|&(a, b)| a != b))
                .collect()
        };
        for (a, b) in pairs {
            let r = self.flow_base_rtt(HostId(a), HostId(b), FlowId(0), mtu, ack_bytes);
            if r > max {
                max = r;
            }
        }
        max
    }

    /// Minimum link bandwidth along a flow's request path (its line rate).
    pub fn path_bandwidth(&self, src: HostId, dst: HostId, flow: FlowId) -> Bandwidth {
        self.trace_path(src, dst, flow)
            .iter()
            .map(|&(n, p)| self.port_spec(n, p).bw)
            .min()
            .expect("empty path")
    }

    /// Ideal (contention-free) flow completion time for `size` application
    /// bytes from `src` to `dst`: the last byte's arrival at the receiver on
    /// an empty network, assuming full-MTU segmentation and store-and-forward
    /// pipelining:
    /// `FCT = size_wire/B_min + Σ_hops(MTU/B_hop + prop) − MTU/B_first…`
    ///
    /// Concretely: the first frame pipelines through every hop; subsequent
    /// bytes stream at the bottleneck rate.
    pub fn ideal_fct(
        &self,
        src: HostId,
        dst: HostId,
        flow: FlowId,
        size: u64,
        mtu_payload: u32,
        header: u32,
    ) -> TimeDelta {
        let path = self.trace_path(src, dst, flow);
        let npkts = size.div_ceil(mtu_payload as u64).max(1);
        let wire_total = size + npkts * header as u64;
        let first_frame = (size.min(mtu_payload as u64) + header as u64).max(header as u64);
        let bottleneck = self.path_bandwidth(src, dst, flow);
        // First frame pipelines hop by hop…
        let mut t = TimeDelta::ZERO;
        for (n, p) in &path {
            let spec = self.port_spec(*n, *p);
            t += spec.bw.tx_time(first_frame) + spec.prop;
        }
        // …and the remaining bytes stream behind it at the bottleneck.
        t + bottleneck.tx_time(wire_total - first_frame)
    }

    // ------------------------------------------------------------------
    // Builders
    // ------------------------------------------------------------------

    /// Fig. 10 dumbbell: `n_senders` hosts at switch 0, a chain of
    /// `m_switches`, and one receiver (host id `n_senders`) at the last
    /// switch. All links at `bw` with `prop` one-way delay.
    pub fn dumbbell(n_senders: u32, m_switches: u32, bw: Bandwidth, prop: TimeDelta) -> Topology {
        let attach = vec![0usize; n_senders as usize];
        let mut t = Self::line(m_switches, &attach, bw, prop);
        t.kind = TopologyKind::Dumbbell;
        t
    }

    /// Fig. 11 generalised line: a chain of `m_switches`; sender `i` attaches
    /// to switch `sender_attach[i]`; the single receiver (host id
    /// `sender_attach.len()`) attaches to the last switch.
    ///
    /// * first-hop congestion: `&[0, 0]`
    /// * middle-hop congestion (m=3): `&[0, 1]`
    /// * last-hop congestion (m=3): `&[0, 2]`
    pub fn line(
        m_switches: u32,
        sender_attach: &[usize],
        bw: Bandwidth,
        prop: TimeDelta,
    ) -> Topology {
        assert!(m_switches >= 1);
        let m = m_switches as usize;
        assert!(
            sender_attach.iter().all(|&a| a < m),
            "attachment beyond chain"
        );
        let n_senders = sender_attach.len() as u32;
        let receiver = HostId(n_senders);
        let n_hosts = n_senders + 1;

        // Assign port indices per switch: host ports first, then chain links.
        let mut ports: Vec<Vec<PortSpec>> = vec![Vec::new(); m];
        let mut host_ports: Vec<PortSpec> = Vec::with_capacity(n_hosts as usize);
        // placeholder filled below
        host_ports.resize(
            n_hosts as usize,
            PortSpec {
                peer: NodeRef::Host(HostId(0)),
                peer_port: 0,
                bw,
                prop,
            },
        );

        for (i, &a) in sender_attach.iter().enumerate() {
            let p = ports[a].len() as u8;
            ports[a].push(PortSpec {
                peer: NodeRef::Host(HostId(i as u32)),
                peer_port: 0,
                bw,
                prop,
            });
            host_ports[i] = PortSpec {
                peer: NodeRef::Switch(SwitchId(a as u32)),
                peer_port: p,
                bw,
                prop,
            };
        }
        // Receiver at the last switch.
        {
            let a = m - 1;
            let p = ports[a].len() as u8;
            ports[a].push(PortSpec {
                peer: NodeRef::Host(receiver),
                peer_port: 0,
                bw,
                prop,
            });
            host_ports[receiver.ix()] = PortSpec {
                peer: NodeRef::Switch(SwitchId(a as u32)),
                peer_port: p,
                bw,
                prop,
            };
        }
        // Chain links j <-> j+1.
        let mut next_port: Vec<Option<u8>> = vec![None; m];
        let mut prev_port: Vec<Option<u8>> = vec![None; m];
        for j in 0..m.saturating_sub(1) {
            let pj = ports[j].len() as u8;
            let pk = ports[j + 1].len() as u8;
            ports[j].push(PortSpec {
                peer: NodeRef::Switch(SwitchId((j + 1) as u32)),
                peer_port: pk,
                bw,
                prop,
            });
            ports[j + 1].push(PortSpec {
                peer: NodeRef::Switch(SwitchId(j as u32)),
                peer_port: pj,
                bw,
                prop,
            });
            next_port[j] = Some(pj);
            prev_port[j + 1] = Some(pk);
        }

        // Routing: towards the receiver go "right", towards sender i go
        // "left" until its attachment switch, then its host port.
        let mut switches = Vec::with_capacity(m);
        for j in 0..m {
            let mut entries = Vec::with_capacity(n_hosts as usize);
            for hid in 0..n_hosts {
                let h = HostId(hid);
                let entry = if h == receiver {
                    if j == m - 1 {
                        RouteEntry::Single(host_port_on(&ports[j], h))
                    } else {
                        RouteEntry::Single(next_port[j].unwrap())
                    }
                } else {
                    let a = sender_attach[hid as usize];
                    use std::cmp::Ordering;
                    match a.cmp(&j) {
                        Ordering::Equal => RouteEntry::Single(host_port_on(&ports[j], h)),
                        Ordering::Less => RouteEntry::Single(prev_port[j].unwrap()),
                        Ordering::Greater => RouteEntry::Single(next_port[j].unwrap()),
                    }
                };
                entries.push(entry);
            }
            switches.push(SwitchSpec {
                ports: ports[j].clone(),
                route: RoutingTable::PerDst(entries),
            });
        }

        let t = Topology {
            kind: TopologyKind::Line,
            n_hosts,
            host_ports,
            switches,
        };
        t.validate();
        t
    }

    /// Single-switch star over `n_hosts`.
    pub fn star(n_hosts: u32, bw: Bandwidth, prop: TimeDelta) -> Topology {
        assert!(n_hosts >= 2);
        let mut ports = Vec::with_capacity(n_hosts as usize);
        let mut host_ports = Vec::with_capacity(n_hosts as usize);
        for h in 0..n_hosts {
            ports.push(PortSpec {
                peer: NodeRef::Host(HostId(h)),
                peer_port: 0,
                bw,
                prop,
            });
            host_ports.push(PortSpec {
                peer: NodeRef::Switch(SwitchId(0)),
                peer_port: h as u8,
                bw,
                prop,
            });
        }
        let entries = (0..n_hosts).map(|h| RouteEntry::Single(h as u8)).collect();
        let t = Topology {
            kind: TopologyKind::Star,
            n_hosts,
            host_ports,
            switches: vec![SwitchSpec {
                ports,
                route: RoutingTable::PerDst(entries),
            }],
        };
        t.validate();
        t
    }

    /// Three-level fat-tree with parameter `k` (even): `k³/4` hosts,
    /// `k²/2 + k²/4` switches, canonical wiring so symmetric ECMP holds
    /// (see [`crate::routing`]). The paper uses k=8 (128 hosts) with all
    /// links at 100 Gb/s and 1.5 µs propagation delay (1:1 oversubscription).
    pub fn fat_tree(k: u32, bw: Bandwidth, prop: TimeDelta) -> Topology {
        assert!(k >= 2 && k.is_multiple_of(2), "fat-tree k must be even");
        let half = k / 2;
        let hosts_per_pod = half * half;
        let n_hosts = k * hosts_per_pod;
        let n_tor = k * half;
        let n_agg = k * half;
        let n_core = half * half;
        let tor_id = |p: u32, t: u32| SwitchId(p * half + t);
        let agg_id = |p: u32, a: u32| SwitchId(n_tor + p * half + a);
        let core_id = |j: u32| SwitchId(n_tor + n_agg + j);
        let host_id = |p: u32, t: u32, i: u32| HostId(p * hosts_per_pod + t * half + i);
        let pod_of = |h: HostId| h.0 / hosts_per_pod;
        let tor_of = |h: HostId| (h.0 % hosts_per_pod) / half;
        let slot_of = |h: HostId| h.0 % half;

        let mut host_ports = vec![
            PortSpec {
                peer: NodeRef::Host(HostId(0)),
                peer_port: 0,
                bw,
                prop
            };
            n_hosts as usize
        ];
        let mut switches: Vec<SwitchSpec> = Vec::with_capacity((n_tor + n_agg + n_core) as usize);

        // ToR switches.
        for p in 0..k {
            for t in 0..half {
                let mut ports = Vec::with_capacity(k as usize);
                for i in 0..half {
                    let h = host_id(p, t, i);
                    ports.push(PortSpec {
                        peer: NodeRef::Host(h),
                        peer_port: 0,
                        bw,
                        prop,
                    });
                    host_ports[h.ix()] = PortSpec {
                        peer: NodeRef::Switch(tor_id(p, t)),
                        peer_port: i as u8,
                        bw,
                        prop,
                    };
                }
                for a in 0..half {
                    ports.push(PortSpec {
                        peer: NodeRef::Switch(agg_id(p, a)),
                        peer_port: t as u8,
                        bw,
                        prop,
                    });
                }
                let mut entries = Vec::with_capacity(n_hosts as usize);
                for hid in 0..n_hosts {
                    let h = HostId(hid);
                    entries.push(if pod_of(h) == p && tor_of(h) == t {
                        RouteEntry::Single(slot_of(h) as u8)
                    } else {
                        RouteEntry::Ecmp {
                            ports: (half as u8..k as u8).collect(),
                            level: 0,
                        }
                    });
                }
                switches.push(SwitchSpec {
                    ports,
                    route: RoutingTable::PerDst(entries),
                });
            }
        }
        // Aggregation switches.
        for p in 0..k {
            for a in 0..half {
                let mut ports = Vec::with_capacity(k as usize);
                for t in 0..half {
                    ports.push(PortSpec {
                        peer: NodeRef::Switch(tor_id(p, t)),
                        peer_port: (half + a) as u8,
                        bw,
                        prop,
                    });
                }
                for c in 0..half {
                    ports.push(PortSpec {
                        peer: NodeRef::Switch(core_id(a * half + c)),
                        peer_port: p as u8,
                        bw,
                        prop,
                    });
                }
                let mut entries = Vec::with_capacity(n_hosts as usize);
                for hid in 0..n_hosts {
                    let h = HostId(hid);
                    entries.push(if pod_of(h) == p {
                        RouteEntry::Single(tor_of(h) as u8)
                    } else {
                        RouteEntry::Ecmp {
                            ports: (half as u8..k as u8).collect(),
                            level: 1,
                        }
                    });
                }
                switches.push(SwitchSpec {
                    ports,
                    route: RoutingTable::PerDst(entries),
                });
            }
        }
        // Core switches.
        for j in 0..n_core {
            let a = j / half;
            let mut ports = Vec::with_capacity(k as usize);
            for p in 0..k {
                ports.push(PortSpec {
                    peer: NodeRef::Switch(agg_id(p, a)),
                    peer_port: (half + (j % half)) as u8,
                    bw,
                    prop,
                });
            }
            let mut entries = Vec::with_capacity(n_hosts as usize);
            for hid in 0..n_hosts {
                entries.push(RouteEntry::Single(pod_of(HostId(hid)) as u8));
            }
            switches.push(SwitchSpec {
                ports,
                route: RoutingTable::PerDst(entries),
            });
        }

        let t = Topology {
            kind: TopologyKind::FatTree(k),
            n_hosts,
            host_ports,
            switches,
        };
        t.validate();
        t
    }

    /// Two-level leaf–spine: `leaves` leaf switches with `hosts_per_leaf`
    /// hosts each, every leaf wired to every one of `spines` spine switches.
    /// All links run at `bw`, so the fabric oversubscription ratio is
    /// `hosts_per_leaf / spines` — pick `hosts_per_leaf > spines` for an
    /// oversubscribed fabric (e.g. 8 hosts over 2 spines = 4:1).
    ///
    /// Routing is symmetric ECMP exactly as in the fat-tree's lower levels:
    /// the leaf's up-choice uses hash digit 0 over uplinks in canonical
    /// (spine-index) order, so a flow's ACKs retrace its data path and
    /// FNCC's return-path INT stays valid.
    pub fn leaf_spine(
        leaves: u32,
        spines: u32,
        hosts_per_leaf: u32,
        bw: Bandwidth,
        prop: TimeDelta,
    ) -> Topology {
        assert!(leaves >= 2 && spines >= 1 && hosts_per_leaf >= 1);
        assert!(
            hosts_per_leaf + spines <= u8::MAX as u32 + 1,
            "leaf port count exceeds u8 port indices"
        );
        assert!(leaves <= u8::MAX as u32 + 1, "spine port count exceeds u8");
        let n_hosts = leaves * hosts_per_leaf;
        let leaf_id = |l: u32| SwitchId(l);
        let spine_id = |s: u32| SwitchId(leaves + s);
        let leaf_of = |h: HostId| h.0 / hosts_per_leaf;
        let slot_of = |h: HostId| h.0 % hosts_per_leaf;

        let mut host_ports = vec![
            PortSpec {
                peer: NodeRef::Host(HostId(0)),
                peer_port: 0,
                bw,
                prop
            };
            n_hosts as usize
        ];
        let mut switches: Vec<SwitchSpec> = Vec::with_capacity((leaves + spines) as usize);

        // Leaf switches: host ports first, then one uplink per spine.
        for l in 0..leaves {
            let mut ports = Vec::with_capacity((hosts_per_leaf + spines) as usize);
            for i in 0..hosts_per_leaf {
                let h = HostId(l * hosts_per_leaf + i);
                ports.push(PortSpec {
                    peer: NodeRef::Host(h),
                    peer_port: 0,
                    bw,
                    prop,
                });
                host_ports[h.ix()] = PortSpec {
                    peer: NodeRef::Switch(leaf_id(l)),
                    peer_port: i as u8,
                    bw,
                    prop,
                };
            }
            for s in 0..spines {
                ports.push(PortSpec {
                    peer: NodeRef::Switch(spine_id(s)),
                    peer_port: l as u8,
                    bw,
                    prop,
                });
            }
            let mut entries = Vec::with_capacity(n_hosts as usize);
            for hid in 0..n_hosts {
                let h = HostId(hid);
                entries.push(if leaf_of(h) == l {
                    RouteEntry::Single(slot_of(h) as u8)
                } else {
                    RouteEntry::Ecmp {
                        ports: (hosts_per_leaf as u8..(hosts_per_leaf + spines) as u8).collect(),
                        level: 0,
                    }
                });
            }
            switches.push(SwitchSpec {
                ports,
                route: RoutingTable::PerDst(entries),
            });
        }
        // Spine switches: port l goes to leaf l.
        for s in 0..spines {
            let mut ports = Vec::with_capacity(leaves as usize);
            for l in 0..leaves {
                ports.push(PortSpec {
                    peer: NodeRef::Switch(leaf_id(l)),
                    peer_port: (hosts_per_leaf + s) as u8,
                    bw,
                    prop,
                });
            }
            let entries = (0..n_hosts)
                .map(|hid| RouteEntry::Single(leaf_of(HostId(hid)) as u8))
                .collect();
            switches.push(SwitchSpec {
                ports,
                route: RoutingTable::PerDst(entries),
            });
        }

        let t = Topology {
            kind: TopologyKind::LeafSpine(leaves, spines),
            n_hosts,
            host_ports,
            switches,
        };
        t.validate();
        t
    }

    /// Dragonfly (§3.1 Observation 2): `groups` groups of `routers_per_group`
    /// routers, full mesh inside each group, one global link per group pair
    /// assigned round-robin to routers, `hosts_per_router` hosts each.
    /// Routed over `n_trees` spanning trees (the Fig. 6 mechanism) so data
    /// and ACK paths stay identical.
    ///
    /// Requires `groups − 1 ≤ routers_per_group · something` only loosely:
    /// global links are distributed round-robin, so any `groups ≥ 2` works.
    pub fn dragonfly(
        groups: u32,
        routers_per_group: u32,
        hosts_per_router: u32,
        bw: Bandwidth,
        prop: TimeDelta,
        n_trees: usize,
    ) -> Topology {
        assert!(groups >= 2 && routers_per_group >= 1 && hosts_per_router >= 1);
        let a = routers_per_group;
        let n_sw = groups * a;
        let n_hosts = n_sw * hosts_per_router;
        let router = |g: u32, r: u32| SwitchId(g * a + r);

        // Adjacency (switch pairs), then ports.
        let mut links: Vec<(SwitchId, SwitchId)> = Vec::new();
        // Intra-group full mesh.
        for g in 0..groups {
            for r1 in 0..a {
                for r2 in (r1 + 1)..a {
                    links.push((router(g, r1), router(g, r2)));
                }
            }
        }
        // One global link per group pair, round-robin over routers.
        let mut next_router = vec![0u32; groups as usize];
        for g1 in 0..groups {
            for g2 in (g1 + 1)..groups {
                let r1 = next_router[g1 as usize] % a;
                let r2 = next_router[g2 as usize] % a;
                next_router[g1 as usize] += 1;
                next_router[g2 as usize] += 1;
                links.push((router(g1, r1), router(g2, r2)));
            }
        }

        let mut host_ports = vec![
            PortSpec {
                peer: NodeRef::Host(HostId(0)),
                peer_port: 0,
                bw,
                prop
            };
            n_hosts as usize
        ];
        let mut ports: Vec<Vec<PortSpec>> = vec![Vec::new(); n_sw as usize];
        for s in 0..n_sw {
            for i in 0..hosts_per_router {
                let h = HostId(s * hosts_per_router + i);
                let p = ports[s as usize].len() as u8;
                ports[s as usize].push(PortSpec {
                    peer: NodeRef::Host(h),
                    peer_port: 0,
                    bw,
                    prop,
                });
                host_ports[h.ix()] = PortSpec {
                    peer: NodeRef::Switch(SwitchId(s)),
                    peer_port: p,
                    bw,
                    prop,
                };
            }
        }
        for &(s1, s2) in &links {
            let p1 = ports[s1.ix()].len() as u8;
            let p2 = ports[s2.ix()].len() as u8;
            ports[s1.ix()].push(PortSpec {
                peer: NodeRef::Switch(s2),
                peer_port: p2,
                bw,
                prop,
            });
            ports[s2.ix()].push(PortSpec {
                peer: NodeRef::Switch(s1),
                peer_port: p1,
                bw,
                prop,
            });
        }

        let switches = ports
            .into_iter()
            .map(|p| SwitchSpec {
                ports: p,
                route: RoutingTable::PerDst(vec![RouteEntry::Unreachable; n_hosts as usize]),
            })
            .collect();

        let t = Topology {
            kind: TopologyKind::Custom,
            n_hosts,
            host_ports,
            switches,
        }
        .with_spanning_trees(n_trees);
        t.validate();
        t
    }

    /// Jellyfish (§3.1 Observation 2): `n_switches` switches wired as a
    /// random `degree`-regular graph (stub matching, retried until simple
    /// and connected), `hosts_per_switch` hosts each, routed over
    /// `n_trees` spanning trees — the Fig. 6 mechanism, which keeps data
    /// and ACK paths identical on an otherwise unstructured topology.
    pub fn jellyfish(
        n_switches: u32,
        degree: u32,
        hosts_per_switch: u32,
        bw: Bandwidth,
        prop: TimeDelta,
        seed: u64,
        n_trees: usize,
    ) -> Topology {
        assert!(n_switches >= 2 && degree >= 2 && hosts_per_switch >= 1);
        assert!(
            (n_switches * degree).is_multiple_of(2),
            "n_switches * degree must be even for a regular graph"
        );
        assert!(degree < n_switches, "degree must be below switch count");
        let mut rng = fncc_des::rng::DetRng::new(seed, 0x1E11F);

        // Random regular graph by stub matching; retry on self-loops,
        // parallel edges or disconnection.
        let n = n_switches as usize;
        let edges: Vec<(u32, u32)> = 'outer: loop {
            let mut stubs: Vec<u32> = (0..n_switches)
                .flat_map(|s| std::iter::repeat_n(s, degree as usize))
                .collect();
            rng.shuffle(&mut stubs);
            let mut used = std::collections::HashSet::new();
            let mut edges = Vec::with_capacity(stubs.len() / 2);
            for pair in stubs.chunks_exact(2) {
                let (a, b) = (pair[0].min(pair[1]), pair[0].max(pair[1]));
                if a == b || !used.insert((a, b)) {
                    continue 'outer; // self-loop or multi-edge: retry
                }
                edges.push((a, b));
            }
            // Connectivity check (union of edges spans all switches).
            let mut adj = vec![Vec::new(); n];
            for &(a, b) in &edges {
                adj[a as usize].push(b as usize);
                adj[b as usize].push(a as usize);
            }
            let mut seen = vec![false; n];
            let mut stack = vec![0usize];
            seen[0] = true;
            while let Some(s) = stack.pop() {
                for &t in &adj[s] {
                    if !seen[t] {
                        seen[t] = true;
                        stack.push(t);
                    }
                }
            }
            if seen.iter().all(|&v| v) {
                break edges;
            }
        };

        // Ports: hosts first, then network links in edge order.
        let n_hosts = n_switches * hosts_per_switch;
        let mut host_ports = vec![
            PortSpec {
                peer: NodeRef::Host(HostId(0)),
                peer_port: 0,
                bw,
                prop
            };
            n_hosts as usize
        ];
        let mut ports: Vec<Vec<PortSpec>> = vec![Vec::new(); n];
        for s in 0..n_switches {
            for i in 0..hosts_per_switch {
                let h = HostId(s * hosts_per_switch + i);
                let p = ports[s as usize].len() as u8;
                ports[s as usize].push(PortSpec {
                    peer: NodeRef::Host(h),
                    peer_port: 0,
                    bw,
                    prop,
                });
                host_ports[h.ix()] = PortSpec {
                    peer: NodeRef::Switch(SwitchId(s)),
                    peer_port: p,
                    bw,
                    prop,
                };
            }
        }
        for &(a, b) in &edges {
            let pa = ports[a as usize].len() as u8;
            let pb = ports[b as usize].len() as u8;
            ports[a as usize].push(PortSpec {
                peer: NodeRef::Switch(SwitchId(b)),
                peer_port: pb,
                bw,
                prop,
            });
            ports[b as usize].push(PortSpec {
                peer: NodeRef::Switch(SwitchId(a)),
                peer_port: pa,
                bw,
                prop,
            });
        }

        let switches = ports
            .into_iter()
            .map(|p| SwitchSpec {
                ports: p,
                // Placeholder; replaced by spanning trees below.
                route: RoutingTable::PerDst(vec![RouteEntry::Unreachable; n_hosts as usize]),
            })
            .collect();

        let t = Topology {
            kind: TopologyKind::Custom,
            n_hosts,
            host_ports,
            switches,
        }
        .with_spanning_trees(n_trees);
        t.validate();
        t
    }

    /// Replace every switch's routing table with spanning-tree routing
    /// (Fig. 6): `n_trees` BFS trees rooted at distinct switches; a flow's
    /// hash picks the tree, and within a tree every path is unique — so data
    /// and ACK paths are identical by construction.
    pub fn with_spanning_trees(mut self, n_trees: usize) -> Topology {
        assert!(n_trees >= 1);
        let n_sw = self.switches.len();
        assert!(n_sw >= 1);
        // Build switch-level adjacency: (switch, port) -> peer switch.
        // Tree edges are chosen among switch-switch links; host links are
        // leaves present in every tree.
        let mut trees_per_switch: Vec<Vec<Vec<u8>>> = vec![Vec::new(); n_sw];
        for t in 0..n_trees {
            let root = t % n_sw;
            // BFS over switches from the root, remembering the port used to
            // reach each switch (towards-parent port).
            let mut parent_port: Vec<Option<u8>> = vec![None; n_sw]; // my port towards parent
            let mut visited = vec![false; n_sw];
            let mut order = VecDeque::new();
            visited[root] = true;
            order.push_back(root);
            let mut bfs: Vec<usize> = Vec::with_capacity(n_sw);
            while let Some(s) = order.pop_front() {
                bfs.push(s);
                // Rotate port scan order by tree index for path diversity.
                let nports = self.switches[s].ports.len();
                for off in 0..nports {
                    let p = (off + t) % nports;
                    if let NodeRef::Switch(peer) = self.switches[s].ports[p].peer {
                        if !visited[peer.ix()] {
                            visited[peer.ix()] = true;
                            parent_port[peer.ix()] = Some(self.switches[s].ports[p].peer_port);
                            order.push_back(peer.ix());
                        }
                    }
                }
            }
            assert!(visited.iter().all(|&v| v), "switch graph is disconnected");

            // Within the tree, compute next-hop-towards-host for every
            // switch by BFS from each host's attachment point along tree
            // edges only.
            let tree_edge = |s: usize, p: u8| -> Option<usize> {
                match self.switches[s].ports[p as usize].peer {
                    NodeRef::Switch(peer) => {
                        let q = self.switches[s].ports[p as usize].peer_port;
                        // Edge (s,p)<->(peer,q) is in the tree iff one side
                        // reaches its parent through it.
                        if parent_port[s] == Some(p) || parent_port[peer.ix()] == Some(q) {
                            Some(peer.ix())
                        } else {
                            None
                        }
                    }
                    NodeRef::Host(_) => None,
                }
            };

            let mut table: Vec<Vec<u8>> = vec![vec![0; self.n_hosts as usize]; n_sw];
            for h in 0..self.n_hosts {
                let _ = HostId(h);
                let attach = match self.host_ports[h as usize].peer {
                    NodeRef::Switch(s) => s.ix(),
                    NodeRef::Host(_) => panic!("host attached to host"),
                };
                let attach_port = self.host_ports[h as usize].peer_port;
                // towards[s] = egress port at s on the unique tree path to h.
                let mut towards: Vec<Option<u8>> = vec![None; n_sw];
                towards[attach] = Some(attach_port);
                let mut q = VecDeque::new();
                q.push_back(attach);
                while let Some(s) = q.pop_front() {
                    for p in 0..self.switches[s].ports.len() as u8 {
                        if let Some(peer) = tree_edge(s, p) {
                            if towards[peer].is_none() {
                                towards[peer] = Some(self.switches[s].ports[p as usize].peer_port);
                                q.push_back(peer);
                            }
                        }
                    }
                }
                for s in 0..n_sw {
                    table[s][h as usize] = towards[s].expect("host unreachable in spanning tree");
                }
            }
            for (s, tbl) in table.into_iter().enumerate() {
                trees_per_switch[s].push(tbl);
            }
        }
        for (s, trees) in trees_per_switch.into_iter().enumerate() {
            self.switches[s].route = RoutingTable::Trees(trees);
        }
        self
    }
}

fn host_port_on(ports: &[PortSpec], h: HostId) -> u8 {
    ports
        .iter()
        .position(|p| matches!(p.peer, NodeRef::Host(x) if x == h))
        .expect("host not attached here") as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    const BW: Bandwidth = Bandwidth::gbps(100);
    const PROP: TimeDelta = TimeDelta::from_us(2); // 1.5us rounded for tests

    #[test]
    fn dumbbell_shape() {
        let t = Topology::dumbbell(2, 3, BW, PROP);
        assert_eq!(t.n_hosts, 3);
        assert_eq!(t.n_switches(), 3);
        // sw0: 2 host ports + uplink; sw1: 2 chain ports; sw2: receiver + chain.
        assert_eq!(t.switches[0].ports.len(), 3);
        assert_eq!(t.switches[1].ports.len(), 2);
        assert_eq!(t.switches[2].ports.len(), 2);
    }

    #[test]
    fn dumbbell_paths() {
        let t = Topology::dumbbell(2, 3, BW, PROP);
        let path = t.path_switches(HostId(0), HostId(2), FlowId(0));
        assert_eq!(path, vec![SwitchId(0), SwitchId(1), SwitchId(2)]);
        // Reverse path visits the same switches reversed.
        let back = t.path_switches(HostId(2), HostId(0), FlowId(0));
        assert_eq!(back, vec![SwitchId(2), SwitchId(1), SwitchId(0)]);
    }

    #[test]
    fn line_attachment_paths() {
        // Fig. 11b: sender1 joins at the last switch.
        let t = Topology::line(3, &[0, 2], BW, PROP);
        assert_eq!(
            t.path_switches(HostId(0), HostId(2), FlowId(0)),
            vec![SwitchId(0), SwitchId(1), SwitchId(2)]
        );
        assert_eq!(
            t.path_switches(HostId(1), HostId(2), FlowId(0)),
            vec![SwitchId(2)]
        );
        // And middle-hop attach.
        let t = Topology::line(3, &[0, 1], BW, PROP);
        assert_eq!(
            t.path_switches(HostId(1), HostId(2), FlowId(0)),
            vec![SwitchId(1), SwitchId(2)]
        );
    }

    #[test]
    fn line_routes_between_senders() {
        let t = Topology::line(3, &[0, 2], BW, PROP);
        // sender1 -> sender0 goes left along the chain.
        assert_eq!(
            t.path_switches(HostId(1), HostId(0), FlowId(0)),
            vec![SwitchId(2), SwitchId(1), SwitchId(0)]
        );
    }

    #[test]
    fn star_paths_are_single_hop() {
        let t = Topology::star(5, BW, PROP);
        for a in 0..5u32 {
            for b in 0..5u32 {
                if a != b {
                    assert_eq!(
                        t.path_switches(HostId(a), HostId(b), FlowId(0)),
                        vec![SwitchId(0)]
                    );
                }
            }
        }
    }

    #[test]
    fn fat_tree_counts() {
        let t = Topology::fat_tree(4, BW, PROP);
        assert_eq!(t.n_hosts, 16);
        assert_eq!(t.n_switches(), 8 + 8 + 4);
        let t8 = Topology::fat_tree(8, BW, PROP);
        assert_eq!(t8.n_hosts, 128);
        assert_eq!(t8.n_switches(), 32 + 32 + 16);
    }

    #[test]
    fn fat_tree_intra_tor_path() {
        let t = Topology::fat_tree(4, BW, PROP);
        // hosts 0 and 1 share ToR 0.
        assert_eq!(
            t.path_switches(HostId(0), HostId(1), FlowId(0)),
            vec![SwitchId(0)]
        );
    }

    #[test]
    fn fat_tree_inter_pod_path_has_five_switches() {
        let t = Topology::fat_tree(8, BW, PROP);
        let p = t.path_switches(HostId(0), HostId(127), FlowId(3));
        assert_eq!(p.len(), 5, "ToR-Agg-Core-Agg-ToR, got {p:?}");
    }

    #[test]
    fn fat_tree_paths_are_symmetric_for_acks() {
        // The FNCC prerequisite: ACK path == reversed data path, for many
        // flows and pairs.
        let t = Topology::fat_tree(8, BW, PROP);
        for f in 0..40u32 {
            let src = HostId((f * 13) % 128);
            let dst = HostId((f * 57 + 31) % 128);
            if src == dst {
                continue;
            }
            let fwd = t.path_switches(src, dst, FlowId(f));
            let mut rev = t.path_switches(dst, src, FlowId(f));
            rev.reverse();
            assert_eq!(fwd, rev, "asymmetric path for flow {f} {src:?}->{dst:?}");
        }
    }

    #[test]
    fn fat_tree_ecmp_uses_multiple_cores() {
        let t = Topology::fat_tree(8, BW, PROP);
        let mut cores_seen = std::collections::HashSet::new();
        for f in 0..64u32 {
            let p = t.path_switches(HostId(0), HostId(127), FlowId(f));
            cores_seen.insert(p[2]); // middle switch is the core
        }
        assert!(
            cores_seen.len() > 8,
            "ECMP concentrated on {} cores",
            cores_seen.len()
        );
    }

    #[test]
    fn leaf_spine_shape_and_paths() {
        // 4 leaves × 8 hosts over 2 spines: 4:1 oversubscription.
        let t = Topology::leaf_spine(4, 2, 8, BW, PROP);
        assert_eq!(t.n_hosts, 32);
        assert_eq!(t.n_switches(), 6);
        for l in 0..4 {
            assert_eq!(t.switches[l].ports.len(), 10);
        }
        for s in 4..6 {
            assert_eq!(t.switches[s].ports.len(), 4);
        }
        // Intra-leaf: one switch; inter-leaf: leaf–spine–leaf.
        assert_eq!(
            t.path_switches(HostId(0), HostId(1), FlowId(0)),
            vec![SwitchId(0)]
        );
        let p = t.path_switches(HostId(0), HostId(31), FlowId(5));
        assert_eq!(p.len(), 3, "leaf-spine-leaf, got {p:?}");
        assert_eq!(p[0], SwitchId(0));
        assert_eq!(p[2], SwitchId(3));
        assert!(p[1].0 >= 4 && p[1].0 < 6, "middle hop not a spine: {p:?}");
    }

    #[test]
    fn leaf_spine_paths_are_symmetric_and_spread() {
        let t = Topology::leaf_spine(6, 4, 6, BW, PROP);
        let mut spines_seen = std::collections::HashSet::new();
        for f in 0..60u32 {
            let src = HostId((f * 7) % 36);
            let dst = HostId((f * 13 + 11) % 36);
            if src == dst {
                continue;
            }
            let fwd = t.path_switches(src, dst, FlowId(f));
            let mut rev = t.path_switches(dst, src, FlowId(f));
            rev.reverse();
            assert_eq!(fwd, rev, "asymmetric leaf-spine path, flow {f}");
            if fwd.len() == 3 {
                spines_seen.insert(fwd[1]);
            }
        }
        assert!(spines_seen.len() >= 3, "ECMP stuck on {spines_seen:?}");
    }

    #[test]
    fn base_rtt_dumbbell_matches_hand_computation() {
        let prop = TimeDelta::from_ns(1500);
        let t = Topology::dumbbell(2, 3, BW, prop);
        // 4 links each way: 4*(1518B tx + prop) + 4*(70B tx + prop)
        let mtu_tx = BW.tx_time(1518);
        let ack_tx = BW.tx_time(70);
        let expect = (mtu_tx + prop) * 4 + (ack_tx + prop) * 4;
        assert_eq!(t.base_rtt(1518, 70), expect);
        // ~12.6 us, the paper's scale.
        assert!((t.base_rtt(1518, 70).as_us_f64() - 12.5).abs() < 0.5);
    }

    #[test]
    fn ideal_fct_single_packet() {
        let prop = TimeDelta::from_ns(1500);
        let t = Topology::dumbbell(2, 3, BW, prop);
        // One 1000-byte packet + 62B header over 4 links.
        let fct = t.ideal_fct(HostId(0), HostId(2), FlowId(0), 1000, 1456, 62);
        let expect = (BW.tx_time(1062) + prop) * 4;
        assert_eq!(fct, expect);
    }

    #[test]
    fn ideal_fct_streams_at_bottleneck() {
        let prop = TimeDelta::from_ns(1500);
        let t = Topology::dumbbell(2, 3, BW, prop);
        let size = 10_000_000u64; // 10 MB
        let fct = t.ideal_fct(HostId(0), HostId(2), FlowId(0), size, 1456, 62);
        // Dominated by size/bw: 10MB*8/100G = 800us (plus ~5% header).
        let lower = 0.8 * 1.04; // ms
        assert!(fct.as_secs_f64() * 1e3 > lower && fct.as_secs_f64() * 1e3 < 0.9);
    }

    #[test]
    fn spanning_tree_paths_are_symmetric_and_unique() {
        let t = Topology::fat_tree(4, BW, PROP).with_spanning_trees(4);
        for f in 0..30u32 {
            let src = HostId((f * 5) % 16);
            let dst = HostId((f * 11 + 3) % 16);
            if src == dst {
                continue;
            }
            let fwd = t.path_switches(src, dst, FlowId(f));
            let mut rev = t.path_switches(dst, src, FlowId(f));
            rev.reverse();
            assert_eq!(fwd, rev, "asymmetric spanning-tree path flow {f}");
        }
    }

    #[test]
    fn spanning_trees_give_path_diversity() {
        let t = Topology::fat_tree(4, BW, PROP).with_spanning_trees(4);
        let mut distinct = std::collections::HashSet::new();
        for f in 0..50u32 {
            distinct.insert(t.path_switches(HostId(0), HostId(15), FlowId(f)));
        }
        assert!(distinct.len() >= 2, "all flows took one tree path");
    }

    #[test]
    fn validate_passes_on_all_builders() {
        Topology::dumbbell(4, 3, BW, PROP).validate();
        Topology::line(3, &[0, 1], BW, PROP).validate();
        Topology::star(8, BW, PROP).validate();
        Topology::fat_tree(4, BW, PROP).validate();
        Topology::leaf_spine(3, 2, 4, BW, PROP).validate();
        Topology::jellyfish(8, 3, 2, BW, PROP, 1, 4).validate();
    }

    #[test]
    fn dragonfly_structure_and_symmetry() {
        // 4 groups × 3 routers × 2 hosts = 24 hosts, 12 routers.
        let t = Topology::dragonfly(4, 3, 2, BW, PROP, 4);
        assert_eq!(t.n_hosts, 24);
        assert_eq!(t.n_switches(), 12);
        // Router port count: 2 hosts + 2 intra-group + global share.
        // 6 group pairs round-robin over routers: each group owns 3 pair
        // links spread over 3 routers → 1 global port per router here.
        for sw in &t.switches {
            assert_eq!(sw.ports.len(), 2 + 2 + 1, "ports: {}", sw.ports.len());
        }
        for f in 0..40u32 {
            let src = HostId((f * 5) % 24);
            let dst = HostId((f * 11 + 3) % 24);
            if src == dst {
                continue;
            }
            let fwd = t.path_switches(src, dst, FlowId(f));
            let mut rev = t.path_switches(dst, src, FlowId(f));
            rev.reverse();
            assert_eq!(fwd, rev, "asymmetric dragonfly path, flow {f}");
        }
    }

    #[test]
    fn jellyfish_is_regular_and_connected() {
        let t = Topology::jellyfish(10, 4, 2, BW, PROP, 7, 4);
        assert_eq!(t.n_hosts, 20);
        assert_eq!(t.n_switches(), 10);
        for sw in &t.switches {
            // 2 host ports + 4 network ports each.
            assert_eq!(sw.ports.len(), 6);
        }
        // Every pair is reachable (trace_path would panic otherwise).
        for a in 0..20u32 {
            let b = (a + 7) % 20;
            if a != b {
                let _ = t.trace_path(HostId(a), HostId(b), FlowId(0));
            }
        }
    }

    #[test]
    fn jellyfish_paths_are_symmetric() {
        let t = Topology::jellyfish(12, 3, 1, BW, PROP, 3, 6);
        for f in 0..50u32 {
            let src = HostId((f * 5) % 12);
            let dst = HostId((f * 7 + 1) % 12);
            if src == dst {
                continue;
            }
            let fwd = t.path_switches(src, dst, FlowId(f));
            let mut rev = t.path_switches(dst, src, FlowId(f));
            rev.reverse();
            assert_eq!(fwd, rev, "asymmetric jellyfish path, flow {f}");
        }
    }

    #[test]
    fn jellyfish_deterministic_per_seed() {
        let a = Topology::jellyfish(10, 3, 1, BW, PROP, 42, 4);
        let b = Topology::jellyfish(10, 3, 1, BW, PROP, 42, 4);
        for h in 1..10u32 {
            assert_eq!(
                a.path_switches(HostId(0), HostId(h), FlowId(0)),
                b.path_switches(HostId(0), HostId(h), FlowId(0)),
            );
        }
    }

    #[test]
    fn path_bandwidth_is_min_link() {
        let t = Topology::dumbbell(2, 2, BW, PROP);
        assert_eq!(t.path_bandwidth(HostId(0), HostId(2), FlowId(0)), BW);
    }
}
