//! The live network: switches + host NICs driven by the DES engine.
//!
//! Host *behaviour* (transport, congestion control) is supplied by the
//! [`HostLogic`] trait, implemented in `fncc-transport`; this module owns the
//! mechanics every host shares — NIC serialization, PFC pause reaction, link
//! propagation — and all event plumbing.

use crate::config::FabricConfig;
use crate::ids::{FlowId, HostId, NodeRef, SwitchId};
use crate::packet::{Packet, PacketKind};
use crate::partition::PartitionMap;
use crate::pool::PacketPool;
use crate::port::Port;
use crate::switch::{Switch, SwitchOutput};
use crate::telemetry::Telemetry;
use crate::topology::Topology;
use crate::units::Bandwidth;
use fncc_des::engine::{Model, Scheduler};
use fncc_des::time::{SimTime, TimeDelta};
use fncc_obs::TraceEvent;
use std::sync::Arc;

/// Ordering domain stamped onto the periodic ticks (INT refresh, RoCC,
/// sampling) when domain tagging is on. Ticks have no owning node — they
/// run as full replicas on every shard — so they get a reserved domain
/// above every shard id: a tick that ties a data event at the same
/// `(time, prio)` dispatches after it, identically in the single-engine
/// and sharded executions (the comparison never reaches the engine-local
/// counters, which differ between the two).
pub const TICK_DOMAIN: u16 = u16::MAX;

/// Sharded-run context attached to a fabric replica: which shard this
/// replica executes, and the partition map used to route frames that cross
/// into another shard's event loop.
pub struct ShardCtx {
    /// The global partition map, shared by every shard replica.
    pub map: Arc<PartitionMap>,
    /// This replica's shard id.
    pub my: u16,
    /// Events processed here that are exact replicas of events another
    /// shard also processes (periodic ticks mirrored on every shard are
    /// counted by shard 0; link-fault boundaries are counted by the owner
    /// of the faulted switch). Subtracted when aggregating
    /// `events_processed` across shards so the total matches the
    /// single-engine run.
    pub replica_events: u64,
}

impl ShardCtx {
    /// Attach shard `my` of `map`.
    pub fn new(map: Arc<PartitionMap>, my: u16) -> Self {
        ShardCtx {
            map,
            my,
            replica_events: 0,
        }
    }

    /// True when this replica owns `n`.
    #[inline]
    pub fn owns(&self, n: NodeRef) -> bool {
        self.map.owner_of(n) == self.my
    }
}

/// The fabric's event alphabet, generic over the host-timer payload.
#[derive(Debug)]
pub enum Ev<T> {
    /// A frame fully arrived at `node` on `port` (after propagation).
    Arrive {
        /// Receiving node.
        node: NodeRef,
        /// Receiving port.
        port: u8,
        /// The frame.
        pkt: Box<Packet>,
    },
    /// `node`'s `port` finished serializing its in-flight frame.
    TxDone {
        /// Transmitting node.
        node: NodeRef,
        /// Transmitting port.
        port: u8,
    },
    /// A host-defined timer fired.
    HostTimer {
        /// Owning host.
        host: HostId,
        /// Transport-defined payload.
        timer: T,
    },
    /// Periodic `All_INT_Table` refresh across all switches.
    IntRefresh,
    /// Periodic RoCC PI-controller step across all switches.
    RoccTick,
    /// Telemetry sampling tick.
    Sample,
    /// Fault injection: force-pause `cfg.faults[ix]`'s port.
    FaultPause {
        /// Index into `cfg.faults`.
        ix: usize,
    },
    /// Fault injection: release `cfg.faults[ix]`'s port.
    FaultRelease {
        /// Index into `cfg.faults`.
        ix: usize,
    },
    /// Link fault: `cfg.link_faults[ix]` begins (link dies / comes up /
    /// degradation or loss window opens).
    LinkFaultStart {
        /// Index into `cfg.link_faults`.
        ix: usize,
    },
    /// Link fault: `cfg.link_faults[ix]`'s interval ends (degradation or
    /// loss window closes; down/up faults have no end event).
    LinkFaultEnd {
        /// Index into `cfg.link_faults`.
        ix: usize,
    },
}

/// Host-side services exposed to [`HostLogic`] callbacks.
pub struct HostCtx<'a, T> {
    now: SimTime,
    host: HostId,
    /// Fabric configuration (MTU, header sizes, …).
    pub cfg: &'a FabricConfig,
    /// Telemetry sink (flow records, counters).
    pub telemetry: &'a mut Telemetry,
    port: &'a mut Port,
    pool: &'a mut PacketPool,
    sched: &'a mut Scheduler<Ev<T>>,
}

impl<'a, T> HostCtx<'a, T> {
    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This host's id.
    #[inline]
    pub fn host(&self) -> HostId {
        self.host
    }

    /// NIC line rate.
    #[inline]
    pub fn nic_bw(&self) -> Bandwidth {
        self.port.bw
    }

    /// Bytes currently queued (plus in flight) at the NIC.
    #[inline]
    pub fn nic_backlog(&self) -> u64 {
        self.port.queue_bytes
            + self
                .port
                .in_flight
                .as_ref()
                .map(|p| p.size as u64)
                .unwrap_or(0)
    }

    /// True while the first-hop switch has PFC-paused this NIC.
    #[inline]
    pub fn nic_paused(&self) -> bool {
        self.port.paused
    }

    /// The shared packet pool: allocate outgoing frames here.
    #[inline]
    pub fn pool(&mut self) -> &mut PacketPool {
        self.pool
    }

    /// Return a fully consumed frame to the pool.
    #[inline]
    pub fn recycle(&mut self, pkt: Box<Packet>) {
        self.pool.put(pkt);
    }

    /// Hand a frame to the NIC for transmission.
    pub fn send(&mut self, pkt: Box<Packet>) {
        debug_assert!(!pkt.kind.is_control(), "hosts do not send PFC frames");
        self.port.enqueue(pkt);
        start_port_tx(
            NodeRef::Host(self.host),
            self.port,
            self.now,
            self.cfg,
            self.sched,
        );
    }

    /// Fire `timer` after `d`.
    pub fn schedule(&mut self, d: TimeDelta, timer: T) {
        self.sched.after(
            d,
            Ev::HostTimer {
                host: self.host,
                timer,
            },
        );
    }
}

/// Transport/host behaviour plugged into the fabric.
pub trait HostLogic: Sized {
    /// Timer payload type (flow pacing, CC timers, flow starts, …).
    type Timer: core::fmt::Debug;

    /// A data/ACK/CNP frame was delivered to this host.
    fn on_packet(&mut self, ctx: &mut HostCtx<'_, Self::Timer>, pkt: Box<Packet>);

    /// A previously scheduled timer fired.
    fn on_timer(&mut self, ctx: &mut HostCtx<'_, Self::Timer>, timer: Self::Timer);

    /// The congestion-control pacing rate of a locally originated flow, if
    /// live (telemetry probe for "first to slow down" measurements).
    fn cc_rate_bps(&self, _flow: FlowId) -> Option<f64> {
        None
    }
}

/// The complete simulated network.
pub struct Fabric<H: HostLogic> {
    /// Configuration shared by all nodes.
    pub cfg: FabricConfig,
    /// Switches by id.
    pub switches: Vec<Switch>,
    /// Host NIC egress ports by host id.
    pub host_ports: Vec<Port>,
    /// Host behaviours by host id.
    pub hosts: Vec<H>,
    /// Measurement sink.
    pub telemetry: Telemetry,
    /// Shared packet free-list (recycles every consumed frame).
    pub pool: PacketPool,
    /// Scratch buffer for switch outputs (reused across events).
    scratch: Vec<SwitchOutput>,
    /// Pre-degradation propagation delay per `cfg.link_faults` entry,
    /// captured when a `Degrade` window opens and restored when it closes.
    degrade_base_prop: Vec<TimeDelta>,
    /// Sharded-run context; `None` for the ordinary single-engine run.
    pub shard: Option<ShardCtx>,
    /// Partition map used purely for event-ordering domains (see
    /// [`Scheduler::set_domain`]): every schedule is tagged with the shard
    /// that owns the node whose handler performs it, so same-`(time, prio)`
    /// ties break identically in the single-engine and sharded executions.
    /// Set for every partitionable topology — including plain single-engine
    /// runs, which is what makes their reports byte-identical to sharded
    /// ones — and `None` otherwise (domain 0 everywhere: plain schedule
    /// order, the pre-sharding behaviour).
    pub domains: Option<Arc<PartitionMap>>,
}

impl<H: HostLogic> Fabric<H> {
    /// Build a fabric over `topo` with one [`HostLogic`] per host.
    pub fn new(topo: &Topology, cfg: FabricConfig, hosts: Vec<H>) -> Self {
        assert_eq!(hosts.len(), topo.n_hosts as usize, "one HostLogic per host");
        let switches = topo
            .switches
            .iter()
            .enumerate()
            .map(|(i, spec)| Switch::new(SwitchId(i as u32), spec, &cfg))
            .collect();
        let host_ports = topo.host_ports.iter().map(Port::from_spec).collect();
        let degrade_base_prop = vec![TimeDelta::ZERO; cfg.link_faults.len()];
        Fabric {
            cfg,
            switches,
            host_ports,
            hosts,
            telemetry: Telemetry::new(),
            pool: PacketPool::new(),
            scratch: Vec::with_capacity(8),
            degrade_base_prop,
            shard: None,
            domains: None,
        }
    }

    /// The ordering domain of `n`'s schedules: its owning shard under the
    /// domain map, or 0 when tagging is off.
    #[inline]
    fn node_domain(&self, n: NodeRef) -> u16 {
        self.domains.as_ref().map_or(0, |m| m.owner_of(n))
    }

    /// The ordering domain an event's handler schedules in: the shard
    /// owning the node that processes it, [`TICK_DOMAIN`] for the global
    /// periodic ticks, and the faulted node's (respectively primary
    /// switch's) owner for fault events. A pure function of the event, so
    /// the tag is identical no matter which engine — single or shard
    /// replica — handles it; 0 for everything when tagging is off.
    pub fn event_domain(&self, ev: &Ev<H::Timer>) -> u16 {
        let Some(m) = &self.domains else { return 0 };
        match ev {
            Ev::Arrive { node, .. } | Ev::TxDone { node, .. } => m.owner_of(*node),
            Ev::HostTimer { host, .. } => m.owner_host(*host),
            Ev::IntRefresh | Ev::RoccTick | Ev::Sample => TICK_DOMAIN,
            Ev::FaultPause { ix } | Ev::FaultRelease { ix } => {
                m.owner_of(self.cfg.faults[*ix].node)
            }
            Ev::LinkFaultStart { ix } | Ev::LinkFaultEnd { ix } => {
                m.owner_switch(self.cfg.link_faults[*ix].switch)
            }
        }
    }

    /// Schedule a frame arrival `prop` in the future at `(peer, peer_port)`,
    /// routing it through the engine outbox when `peer` lives in another
    /// shard. All cross-shard traffic funnels through here: both switch
    /// egress (`Deliver`) and host-NIC egress arrive this way, and every
    /// other event class (timers, TxDone, periodic ticks) is local to its
    /// owning shard by construction.
    fn emit_arrive(
        shard: &Option<ShardCtx>,
        sched: &mut Scheduler<Ev<H::Timer>>,
        prop: TimeDelta,
        peer: NodeRef,
        peer_port: u8,
        pkt: Box<Packet>,
    ) {
        let ev = Ev::Arrive {
            node: peer,
            port: peer_port,
            pkt,
        };
        match shard {
            Some(sc) if !sc.owns(peer) => sched.remote(prop, sc.map.owner_of(peer), ev),
            _ => sched.after(prop, ev),
        }
    }

    /// Initial periodic events the caller must schedule on the engine before
    /// running (INT refresh, RoCC ticks, sampling).
    pub fn startup_events(&self) -> Vec<(SimTime, Ev<H::Timer>)> {
        let mut evs = Vec::new();
        if self.cfg.int_refresh.is_some() {
            evs.push((SimTime::ZERO, Ev::IntRefresh));
        }
        if self.cfg.rocc.is_some() {
            evs.push((SimTime::ZERO, Ev::RoccTick));
        }
        if !self.telemetry.sample_interval.is_zero() {
            evs.push((SimTime::ZERO, Ev::Sample));
        }
        for (ix, f) in self.cfg.faults.iter().enumerate() {
            evs.push((f.at, Ev::FaultPause { ix }));
        }
        for (ix, f) in self.cfg.link_faults.iter().enumerate() {
            evs.push((f.start(), Ev::LinkFaultStart { ix }));
            if let Some(end) = f.end() {
                evs.push((end, Ev::LinkFaultEnd { ix }));
            }
        }
        evs
    }

    /// Periodic ticks (INT refresh, RoCC, sampling) run identically on every
    /// shard so that per-switch timers stay in phase without cross-shard
    /// traffic; shard 0 counts them as real events, every other shard counts
    /// a replica so the aggregated `events_processed` matches the
    /// single-engine run.
    fn note_tick_replica(&mut self) {
        if let Some(sc) = &mut self.shard {
            if sc.my != 0 {
                sc.replica_events += 1;
            }
        }
    }

    /// A link-fault boundary event fires on every shard owning one of the
    /// faulted link's endpoints; the owner of the named switch counts it as
    /// real, the peer's owner counts a replica.
    fn note_link_fault_replica(&mut self, ix: usize) {
        let primary = NodeRef::Switch(self.cfg.link_faults[ix].switch);
        if let Some(sc) = &mut self.shard {
            if sc.map.owner_of(primary) != sc.my {
                sc.replica_events += 1;
            }
        }
    }

    fn fault_port(&mut self, ix: usize) -> &mut Port {
        let f = self.cfg.faults[ix];
        match f.node {
            NodeRef::Switch(s) => &mut self.switches[s.ix()].ports[f.port as usize],
            NodeRef::Host(h) => {
                debug_assert_eq!(f.port, 0);
                &mut self.host_ports[h.ix()]
            }
        }
    }

    /// Set the phantom egress backlog of the port at `(node, port)`: the
    /// standing queue of co-simulated fluid traffic on this link. The
    /// backlog inflates the port's congestion signals (INT `qLen`, ECN
    /// marking depth, RoCC queue sample) and delays delivered frames by
    /// its line-rate serialization time; see [`Port::set_backlog`].
    pub fn set_port_backlog(&mut self, node: NodeRef, port: u8, bytes: u64) {
        match node {
            NodeRef::Switch(s) => self.switches[s.ix()].ports[port as usize].set_backlog(bytes),
            NodeRef::Host(h) => {
                debug_assert_eq!(port, 0, "hosts have a single port");
                self.host_ports[h.ix()].set_backlog(bytes);
            }
        }
    }

    /// Cap the effective drain rate of the egress port at `(node, port)`:
    /// the hybrid backend's residual-capacity push (raw link bandwidth
    /// minus the fluid background load on that link). Applies from the
    /// next serialized frame; see [`Port::set_drain_bw`] for clamping.
    pub fn set_port_drain(&mut self, node: NodeRef, port: u8, rate: Bandwidth) {
        match node {
            NodeRef::Switch(s) => self.switches[s.ix()].ports[port as usize].set_drain_bw(rate),
            NodeRef::Host(h) => {
                debug_assert_eq!(port, 0, "hosts have a single egress port");
                self.host_ports[h.ix()].set_drain_bw(rate);
            }
        }
    }

    /// Convenience: run `f` with a [`HostCtx`] for `host`.
    fn with_host_ctx(
        &mut self,
        host: HostId,
        now: SimTime,
        sched: &mut Scheduler<Ev<H::Timer>>,
        f: impl FnOnce(&mut H, &mut HostCtx<'_, H::Timer>),
    ) {
        let hix = host.ix();
        let mut ctx = HostCtx {
            now,
            host,
            cfg: &self.cfg,
            telemetry: &mut self.telemetry,
            port: &mut self.host_ports[hix],
            pool: &mut self.pool,
            sched,
        };
        f(&mut self.hosts[hix], &mut ctx);
    }

    fn host_arrive(
        &mut self,
        host: HostId,
        pkt: Box<Packet>,
        now: SimTime,
        sched: &mut Scheduler<Ev<H::Timer>>,
    ) {
        match pkt.kind {
            PacketKind::PfcPause => {
                let p = &mut self.host_ports[host.ix()];
                p.paused = true;
                p.pause_rx += 1;
                if p.paused_since.is_none() {
                    p.paused_since = Some(now);
                }
                if self.telemetry.trace.enabled() {
                    self.telemetry.trace.record(TraceEvent::PfcPause {
                        t_ps: now.as_ps(),
                        node: host.0,
                        port: 0,
                        tx: false,
                        at_host: true,
                    });
                }
                self.pool.put(pkt);
            }
            PacketKind::PfcResume => {
                let p = &mut self.host_ports[host.ix()];
                p.paused = false;
                if let Some(t0) = p.paused_since.take() {
                    self.telemetry.note_pause_episode(now.since(t0));
                }
                if self.telemetry.trace.enabled() {
                    self.telemetry.trace.record(TraceEvent::PfcResume {
                        t_ps: now.as_ps(),
                        node: host.0,
                        port: 0,
                        tx: false,
                        at_host: true,
                    });
                }
                self.pool.put(pkt);
                let p = &mut self.host_ports[host.ix()];
                start_port_tx(NodeRef::Host(host), p, now, &self.cfg, sched);
            }
            kind => {
                match kind {
                    PacketKind::Data => self.telemetry.counters.data_delivered += 1,
                    PacketKind::Ack => self.telemetry.counters.acks_delivered += 1,
                    PacketKind::Cnp => self.telemetry.counters.cnps_delivered += 1,
                    _ => unreachable!(),
                }
                self.with_host_ctx(host, now, sched, |h, ctx| h.on_packet(ctx, pkt));
            }
        }
    }

    fn flush_switch_outputs(
        &mut self,
        sw_ix: usize,
        _now: SimTime,
        sched: &mut Scheduler<Ev<H::Timer>>,
        mut outputs: Vec<SwitchOutput>,
    ) -> Vec<SwitchOutput> {
        for out in outputs.drain(..) {
            match out {
                SwitchOutput::StartTx { port, tx_after } => {
                    sched.after(
                        tx_after,
                        Ev::TxDone {
                            node: NodeRef::Switch(SwitchId(sw_ix as u32)),
                            port,
                        },
                    );
                }
                SwitchOutput::Deliver {
                    peer,
                    peer_port,
                    prop,
                    pkt,
                    ..
                } => {
                    Self::emit_arrive(&self.shard, sched, prop, peer, peer_port, pkt);
                }
            }
        }
        outputs
    }

    fn do_sample(&mut self, now: SimTime) {
        let switches = &self.switches;
        self.telemetry.sample(
            now,
            |s, p| switches[s.ix()].ports[p as usize].queue_bytes,
            |s, p| switches[s.ix()].ports[p as usize].tx_bytes,
        );
        let hosts = &self.hosts;
        self.telemetry
            .sample_cc_rates(now, |h, f| hosts[h.ix()].cc_rate_bps(f));
    }

    /// Total PFC pause frames sent by one switch port (Fig. 3's metric).
    pub fn pause_frames_at(&self, sw: SwitchId, port: u8) -> u64 {
        self.switches[sw.ix()].ports[port as usize].pause_tx
    }

    /// Tear down one direction of a link at `sw`'s egress `port` and flush
    /// the resulting switch outputs (PFC resumes freed by the purge).
    fn switch_link_down(
        &mut self,
        sw: SwitchId,
        port: u8,
        now: SimTime,
        sched: &mut Scheduler<Ev<H::Timer>>,
    ) {
        let mut outputs = std::mem::take(&mut self.scratch);
        {
            let Fabric {
                switches,
                cfg,
                telemetry,
                pool,
                ..
            } = self;
            switches[sw.ix()].link_down(now, port, cfg, telemetry, pool, &mut outputs);
        }
        self.scratch = self.flush_switch_outputs(sw.ix(), now, sched, outputs);
    }

    /// Apply one boundary of `cfg.link_faults[ix]`. `Down`/`Up` fail or
    /// restore *both* directions of the link (the peer must be a switch —
    /// the scenario layer validates this); `Degrade` and `RandomLoss`
    /// affect only the named egress direction (inject two specs to fault
    /// both directions).
    fn link_fault_transition(
        &mut self,
        ix: usize,
        now: SimTime,
        opening: bool,
        sched: &mut Scheduler<Ev<H::Timer>>,
    ) {
        use crate::config::LinkFault;
        let spec = self.cfg.link_faults[ix];
        let s = spec.switch;
        let (peer, peer_port) = {
            let p = &self.switches[s.ix()].ports[spec.port as usize];
            (p.peer, p.peer_port)
        };
        // In a sharded run the boundary event fires on every shard owning
        // one of the link's endpoints; each shard only touches its own side.
        let owns = |n: NodeRef| self.shard.as_ref().is_none_or(|sc| sc.owns(n));
        let owns_primary = owns(NodeRef::Switch(s));
        let owns_peer = owns(peer);
        match spec.fault {
            LinkFault::Down { .. } => {
                if owns_primary {
                    self.switch_link_down(s, spec.port, now, sched);
                }
                if let NodeRef::Switch(s2) = peer {
                    if owns_peer {
                        // The peer-side teardown schedules on behalf of the
                        // peer switch, which may live in another shard: tag
                        // its domain so the resulting events order the same
                        // way whether one engine handles both sides or each
                        // owner handles its own.
                        sched.set_domain(self.node_domain(peer));
                        self.switch_link_down(s2, peer_port, now, sched);
                    }
                }
            }
            LinkFault::Up { .. } => {
                if owns_primary {
                    self.switches[s.ix()].link_up(now, spec.port, &mut self.telemetry);
                }
                if let NodeRef::Switch(s2) = peer {
                    if owns_peer {
                        self.switches[s2.ix()].link_up(now, peer_port, &mut self.telemetry);
                    }
                }
            }
            LinkFault::Degrade {
                rate_factor,
                delay_factor,
                ..
            } => {
                if !owns_primary {
                    return;
                }
                let p = &mut self.switches[s.ix()].ports[spec.port as usize];
                if opening {
                    self.degrade_base_prop[ix] = p.prop;
                    let scaled = Bandwidth::bps((p.bw.as_bps() as f64 * rate_factor) as u64);
                    p.set_drain_bw(scaled);
                    p.prop = TimeDelta::from_ps((p.prop.as_ps() as f64 * delay_factor) as u64);
                } else {
                    let full = p.bw;
                    p.set_drain_bw(full);
                    p.prop = self.degrade_base_prop[ix];
                }
            }
            LinkFault::RandomLoss { prob, .. } => {
                if !owns_primary {
                    return;
                }
                self.switches[s.ix()].set_loss(spec.port, if opening { prob } else { 0.0 });
            }
        }
    }
}

/// If `port` is idle and has an eligible frame, begin serializing it
/// (host-NIC variant: no INT/stamping logic).
fn start_port_tx<T>(
    node: NodeRef,
    port: &mut Port,
    _now: SimTime,
    cfg: &FabricConfig,
    sched: &mut Scheduler<Ev<T>>,
) {
    if !port.idle() {
        return;
    }
    let Some(pkt) = port.dequeue() else { return };
    let t = port.tx_time(pkt.size as u64 + cfg.wire_overhead as u64);
    // The fabric only uses start_port_tx for hosts; find the port index: a
    // host has exactly one port, index 0.
    port.in_flight = Some(pkt);
    sched.after(t, Ev::TxDone { node, port: 0 });
}

impl<H: HostLogic> Model for Fabric<H> {
    type Event = Ev<H::Timer>;

    fn handle(&mut self, now: SimTime, ev: Self::Event, sched: &mut Scheduler<Self::Event>) {
        sched.set_domain(self.event_domain(&ev));
        match ev {
            Ev::Arrive { node, port, pkt } => match node {
                NodeRef::Switch(s) => {
                    let mut outputs = std::mem::take(&mut self.scratch);
                    {
                        // Split borrows: switch, cfg and telemetry are
                        // disjoint fields.
                        let Fabric {
                            switches,
                            cfg,
                            telemetry,
                            pool,
                            ..
                        } = self;
                        switches[s.ix()].on_arrive(
                            now,
                            port,
                            pkt,
                            cfg,
                            telemetry,
                            pool,
                            &mut outputs,
                        );
                    }
                    self.scratch = self.flush_switch_outputs(s.ix(), now, sched, outputs);
                }
                NodeRef::Host(h) => self.host_arrive(h, pkt, now, sched),
            },
            Ev::TxDone { node, port } => match node {
                NodeRef::Switch(s) => {
                    let mut outputs = std::mem::take(&mut self.scratch);
                    {
                        let Fabric {
                            switches,
                            cfg,
                            telemetry,
                            pool,
                            ..
                        } = self;
                        switches[s.ix()].on_tx_done(now, port, cfg, telemetry, pool, &mut outputs);
                    }
                    self.scratch = self.flush_switch_outputs(s.ix(), now, sched, outputs);
                }
                NodeRef::Host(h) => {
                    let p = &mut self.host_ports[h.ix()];
                    let pkt = p.in_flight.take().expect("host TxDone with no frame");
                    p.tx_bytes += pkt.size as u64;
                    let (peer, peer_port, prop) = (p.peer, p.peer_port, p.wire_delay(now));
                    Self::emit_arrive(&self.shard, sched, prop, peer, peer_port, pkt);
                    let p = &mut self.host_ports[h.ix()];
                    start_port_tx(NodeRef::Host(h), p, now, &self.cfg, sched);
                }
            },
            Ev::HostTimer { host, timer } => {
                self.with_host_ctx(host, now, sched, |h, ctx| h.on_timer(ctx, timer));
            }
            Ev::IntRefresh => {
                self.note_tick_replica();
                for sw in &mut self.switches {
                    sw.refresh_int_table(now);
                }
                if let Some(d) = self.cfg.int_refresh {
                    sched.after(d, Ev::IntRefresh);
                }
            }
            Ev::RoccTick => {
                self.note_tick_replica();
                for sw in &mut self.switches {
                    sw.rocc_step(&self.cfg);
                }
                if let Some(rc) = &self.cfg.rocc {
                    sched.after(rc.period, Ev::RoccTick);
                }
            }
            Ev::Sample => {
                self.note_tick_replica();
                self.do_sample(now);
                let every = self.telemetry.sample_interval;
                if !every.is_zero() && now + every <= self.telemetry.sample_until {
                    sched.after(every, Ev::Sample);
                }
            }
            Ev::FaultPause { ix } => {
                let duration = self.cfg.faults[ix].duration;
                let p = self.fault_port(ix);
                p.paused = true;
                if p.paused_since.is_none() {
                    p.paused_since = Some(now);
                }
                sched.after(duration, Ev::FaultRelease { ix });
            }
            Ev::FaultRelease { ix } => {
                let node = self.cfg.faults[ix].node;
                let port_ix = self.cfg.faults[ix].port;
                let p = self.fault_port(ix);
                p.paused = false;
                let episode = p.paused_since.take();
                if let Some(t0) = episode {
                    self.telemetry.note_pause_episode(now.since(t0));
                }
                match node {
                    NodeRef::Switch(s) => {
                        let mut outputs = std::mem::take(&mut self.scratch);
                        {
                            let Fabric { switches, cfg, .. } = self;
                            switches[s.ix()].maybe_start_tx(port_ix, now, cfg, &mut outputs);
                        }
                        self.scratch = self.flush_switch_outputs(s.ix(), now, sched, outputs);
                    }
                    NodeRef::Host(h) => {
                        let p = &mut self.host_ports[h.ix()];
                        start_port_tx(NodeRef::Host(h), p, now, &self.cfg, sched);
                    }
                }
            }
            Ev::LinkFaultStart { ix } => {
                self.note_link_fault_replica(ix);
                self.link_fault_transition(ix, now, true, sched)
            }
            Ev::LinkFaultEnd { ix } => {
                self.note_link_fault_replica(ix);
                self.link_fault_transition(ix, now, false, sched)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::FlowId;
    use crate::units::Bandwidth;
    use fncc_des::engine::Engine;

    /// Minimal transport for fabric tests: on `Start`, send `n` data frames
    /// back-to-back; the receiver ACKs every data frame; the sender counts
    /// ACKs.
    struct MiniHost {
        send_to: Option<HostId>,
        n_packets: u32,
        acks_received: u32,
        data_received: u32,
        last_ack_at: SimTime,
        int_seen: Vec<u64>, // qlen values observed in ACK INT
    }

    impl MiniHost {
        fn idle() -> Self {
            MiniHost {
                send_to: None,
                n_packets: 0,
                acks_received: 0,
                data_received: 0,
                last_ack_at: SimTime::ZERO,
                int_seen: Vec::new(),
            }
        }
        fn sender(dst: HostId, n: u32) -> Self {
            MiniHost {
                send_to: Some(dst),
                n_packets: n,
                ..Self::idle()
            }
        }
    }

    #[derive(Debug, Clone)]
    enum MiniTimer {
        Start,
    }

    impl HostLogic for MiniHost {
        type Timer = MiniTimer;

        fn on_packet(&mut self, ctx: &mut HostCtx<'_, MiniTimer>, pkt: Box<Packet>) {
            match pkt.kind {
                PacketKind::Data => {
                    self.data_received += 1;
                    let ack = Packet::ack(
                        pkt.flow,
                        ctx.host(),
                        pkt.src,
                        pkt.seq + pkt.payload as u64,
                        ctx.cfg.ack_base,
                        ctx.now(),
                    );
                    ctx.send(ack);
                }
                PacketKind::Ack => {
                    self.acks_received += 1;
                    self.last_ack_at = ctx.now();
                    for r in pkt.int.as_slice() {
                        self.int_seen.push(r.qlen);
                    }
                }
                _ => {}
            }
        }

        fn on_timer(&mut self, ctx: &mut HostCtx<'_, MiniTimer>, _t: MiniTimer) {
            let dst = self.send_to.expect("start on non-sender");
            let payload = ctx.cfg.mtu_payload();
            for i in 0..self.n_packets {
                let pkt = Packet::data(
                    FlowId(0),
                    ctx.host(),
                    dst,
                    i as u64 * payload as u64,
                    payload,
                    ctx.cfg.mtu,
                    ctx.now(),
                );
                ctx.send(pkt);
            }
        }
    }

    fn dumbbell_fabric(cfg: FabricConfig, n: u32) -> Engine<Fabric<MiniHost>> {
        let topo = Topology::dumbbell(2, 3, Bandwidth::gbps(100), TimeDelta::from_ns(1500));
        let hosts = vec![
            MiniHost::sender(HostId(2), n),
            MiniHost::idle(),
            MiniHost::idle(),
        ];
        let fabric = Fabric::new(&topo, cfg, hosts);
        let mut eng = Engine::new(fabric);
        for (t, ev) in eng.model.startup_events() {
            eng.schedule(t, ev);
        }
        eng.schedule(
            SimTime::ZERO,
            Ev::HostTimer {
                host: HostId(0),
                timer: MiniTimer::Start,
            },
        );
        eng
    }

    /// Two senders blasting `n` frames each at the shared receiver: the sw0
    /// uplink is 2:1 oversubscribed, so queues (and PFC) engage.
    fn contended_dumbbell(cfg: FabricConfig, n: u32) -> Engine<Fabric<MiniHost>> {
        let topo = Topology::dumbbell(2, 3, Bandwidth::gbps(100), TimeDelta::from_ns(1500));
        let hosts = vec![
            MiniHost::sender(HostId(2), n),
            MiniHost::sender(HostId(2), n),
            MiniHost::idle(),
        ];
        let fabric = Fabric::new(&topo, cfg, hosts);
        let mut eng = Engine::new(fabric);
        for (t, ev) in eng.model.startup_events() {
            eng.schedule(t, ev);
        }
        eng.schedule(
            SimTime::ZERO,
            Ev::HostTimer {
                host: HostId(0),
                timer: MiniTimer::Start,
            },
        );
        eng.schedule(
            SimTime::ZERO,
            Ev::HostTimer {
                host: HostId(1),
                timer: MiniTimer::Start,
            },
        );
        eng
    }

    #[test]
    fn data_flows_end_to_end_and_acks_return() {
        let mut eng = dumbbell_fabric(FabricConfig::paper_default(), 10);
        eng.run_until_idle();
        assert_eq!(eng.model.hosts[2].data_received, 10);
        assert_eq!(eng.model.hosts[0].acks_received, 10);
        assert_eq!(eng.model.telemetry.counters.data_delivered, 10);
        assert_eq!(eng.model.telemetry.counters.acks_delivered, 10);
        assert_eq!(eng.model.telemetry.counters.drops, 0);
    }

    #[test]
    fn first_delivery_takes_store_and_forward_latency() {
        let mut eng = dumbbell_fabric(FabricConfig::paper_default(), 1);
        eng.run_until_idle();
        // One-way data: 4 links * (1518B@100G + 1.5us) ≈ 4*(0.121+1.5) us;
        // ACK back: 4 * (70B@100G + 1.5us). Total ≈ 12.5 us.
        let t = eng.model.hosts[0].last_ack_at.as_us_f64();
        assert!((12.0..13.0).contains(&t), "RTT {t}us out of range");
    }

    #[test]
    fn hpcc_int_collected_on_data_path() {
        let mut cfg = FabricConfig::paper_default();
        cfg.int = crate::config::IntInsertion::OnData;
        let mut eng = dumbbell_fabric(cfg, 40);
        eng.run_until_idle();
        // Receiver copies nothing in MiniHost; but data frames carried INT —
        // check a delivered ACK has no INT (OnData mode) while data had 3.
        // MiniHost stores INT seen in *ACKs*: should be empty.
        assert!(eng.model.hosts[0].int_seen.is_empty());
        // All 40 packets and ACKs delivered despite INT growth.
        assert_eq!(eng.model.hosts[0].acks_received, 40);
    }

    #[test]
    fn fncc_int_collected_on_ack_path_sees_queue() {
        let mut cfg = FabricConfig::paper_default();
        cfg.int = crate::config::IntInsertion::OnAck;
        let mut eng = contended_dumbbell(cfg, 60);
        eng.run_until_idle();
        let ints = &eng.model.hosts[0].int_seen;
        // Each ACK crosses 3 switches → 3 INT records each.
        assert_eq!(ints.len() as u32, 60 * 3);
        // Two senders blast at a 2:1 bottleneck: ACK-path INT must observe a
        // nonzero request-path queue at sw0.
        assert!(
            ints.iter().any(|&q| q > 0),
            "no queue ever observed via ACK INT"
        );
        assert!(ints.iter().all(|&q| q < 32 * 1024 * 1024));
    }

    #[test]
    fn pfc_pauses_host_and_run_is_lossless() {
        let mut cfg = FabricConfig::paper_default();
        cfg.pfc.threshold = 10_000; // tiny: force pauses
        let mut eng = contended_dumbbell(cfg, 400);
        eng.run_until_idle();
        let m = &eng.model;
        assert_eq!(m.hosts[2].data_received, 800, "lossless under PFC");
        assert!(m.telemetry.counters.pfc_pause_tx > 0, "pauses must trigger");
        assert_eq!(
            m.telemetry.counters.pfc_pause_tx, m.telemetry.counters.pfc_resume_tx,
            "every pause eventually resumes"
        );
        assert_eq!(m.telemetry.counters.drops, 0);
        // Host NICs observed at least one pause.
        assert!(m.host_ports[0].pause_rx + m.host_ports[1].pause_rx > 0);
    }

    #[test]
    fn no_pfc_small_buffer_drops() {
        let mut cfg = FabricConfig::paper_default();
        cfg.pfc = crate::config::PfcConfig::disabled();
        cfg.buffer_bytes = 20_000;
        let mut eng = contended_dumbbell(cfg, 400);
        eng.run_until_idle();
        assert!(eng.model.telemetry.counters.drops > 0);
        assert!(eng.model.hosts[2].data_received < 800);
    }

    #[test]
    fn sampling_produces_series() {
        let mut eng = dumbbell_fabric(FabricConfig::paper_default(), 200);
        eng.model
            .telemetry
            .enable_sampling(TimeDelta::from_us(1), SimTime::from_us(50));
        eng.model
            .telemetry
            .watch_queue(SwitchId(0), 2, "sw0-uplink");
        eng.model
            .telemetry
            .watch_utilization(SwitchId(0), 2, Bandwidth::gbps(100), "util");
        eng.schedule(SimTime::ZERO, Ev::Sample);
        eng.run_until_idle();
        let q = eng.model.telemetry.queue_series(SwitchId(0), 2).unwrap();
        assert!(q.len() >= 50, "expected ≥50 samples, got {}", q.len());
        let u = eng.model.telemetry.util_series(SwitchId(0), 2).unwrap();
        // While 200 MTU frames stream through, utilization must hit ~1.
        assert!(u.max() > 0.9, "peak utilization {}", u.max());
    }

    #[test]
    fn injected_stuck_pause_stalls_and_recovers() {
        use crate::config::FaultSpec;
        let mut cfg = FabricConfig::paper_default();
        // Stick sw1's egress toward sw2 (port 1) for 50 us starting at 5 us.
        cfg.faults.push(FaultSpec {
            node: NodeRef::Switch(SwitchId(1)),
            port: 1,
            at: SimTime::from_us(5),
            duration: TimeDelta::from_us(50),
        });
        let mut eng = dumbbell_fabric(cfg, 200);
        eng.run_until_idle();
        let m = &eng.model;
        // Everything still delivered after the fault clears.
        assert_eq!(m.hosts[2].data_received, 200);
        assert_eq!(m.telemetry.counters.drops, 0);
        // The watchdog saw the (injected) long pause episode.
        assert_eq!(
            m.telemetry.pause_episodes(),
            1 + m.telemetry.counters.pfc_resume_tx
        );
        assert!(
            m.telemetry.pause_time_max() >= TimeDelta::from_us(50),
            "max pause {} must cover the injected fault",
            m.telemetry.pause_time_max()
        );
        // The stall backed traffic up at sw1 while the fault was active;
        // with the tiny default backlog it must have PFC-paused upstream
        // (pause storm propagation) OR absorbed it in the shared buffer —
        // either way the fault window shows in total pause time.
        assert!(m.telemetry.pause_time_total() >= TimeDelta::from_us(50));
    }

    #[test]
    fn deterministic_event_counts_across_runs() {
        let run = || {
            let mut eng = dumbbell_fabric(FabricConfig::paper_default(), 100);
            eng.run_until_idle();
            (eng.events_processed(), eng.now())
        };
        assert_eq!(run(), run());
    }
}
