//! Bit-level wire format of the FNCC ACK (Fig. 7).
//!
//! The simulator proper moves [`IntRecord`]s as structs (the frame *sizes*
//! already account for the encoded widths); this module implements the
//! actual 64-bit field packing so the format's precision and wraparound
//! behaviour can be studied and tested:
//!
//! ```text
//! 64-bit INT record:   B (4b) | TS (24b) | txBytes (20b) | qLen (16b)
//! ACK path header:     nHop (4b) | pathID (12b, XOR of switch ids)
//! ```
//!
//! Encoding choices (the paper fixes widths, not units; these follow the
//! HPCC implementation practice):
//!
//! * `B` — index into a table of standard link rates (16 entries cover
//!   1 Gb/s … 1.6 Tb/s);
//! * `TS` — nanoseconds modulo 2²⁴ (wraps every ≈16.8 ms);
//! * `txBytes` — units of 128 B modulo 2²⁰ (wraps every 128 MiB);
//! * `qLen` — units of 80 B, saturating (max ≈5.2 MB, beyond any sane
//!   queue).
//!
//! Senders reconstruct full-resolution values from wrapped fields relative
//! to their previous observation ([`unwrap_counter`]), exactly like real
//! INT consumers do.

use crate::packet::IntRecord;
use crate::units::Bandwidth;
use fncc_des::time::SimTime;

/// The 16 encodable link rates (Gb/s).
pub const RATE_TABLE_GBPS: [u64; 16] = [
    1, 10, 25, 40, 50, 100, 200, 400, 800, 1600, 2, 5, 20, 75, 150, 300,
];

/// Timestamp modulus (2²⁴ ns).
pub const TS_MOD_NS: u64 = 1 << 24;
/// txBytes unit (bytes).
pub const TXBYTES_UNIT: u64 = 128;
/// txBytes modulus (in units).
pub const TXBYTES_MOD: u64 = 1 << 20;
/// qLen unit (bytes).
pub const QLEN_UNIT: u64 = 80;
/// qLen saturation (in units).
pub const QLEN_MAX: u64 = (1 << 16) - 1;

/// Encode a link rate into its 4-bit index. Panics on rates outside the
/// table (a configuration error, not a runtime condition).
pub fn encode_rate(bw: Bandwidth) -> u8 {
    let gbps = bw.as_bps() / 1_000_000_000;
    RATE_TABLE_GBPS
        .iter()
        .position(|&g| g == gbps)
        .unwrap_or_else(|| panic!("unencodable link rate {bw}")) as u8
}

/// Decode a 4-bit rate index.
pub fn decode_rate(idx: u8) -> Bandwidth {
    Bandwidth::gbps(RATE_TABLE_GBPS[(idx & 0xF) as usize])
}

/// Pack an [`IntRecord`] into the 64-bit Fig. 7 layout.
pub fn encode_int(rec: &IntRecord) -> u64 {
    let b = encode_rate(rec.bandwidth) as u64;
    let ts = (rec.ts.as_ps() / 1000) % TS_MOD_NS;
    let tx = (rec.tx_bytes / TXBYTES_UNIT) % TXBYTES_MOD;
    let q = (rec.qlen / QLEN_UNIT).min(QLEN_MAX);
    (b << 60) | (ts << 36) | (tx << 16) | q
}

/// The decoded (still wrapped / quantised) view of a 64-bit INT record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireInt {
    /// Link rate.
    pub bandwidth: Bandwidth,
    /// Timestamp in ns, modulo 2²⁴.
    pub ts_ns_wrapped: u64,
    /// txBytes in 128-B units, modulo 2²⁰.
    pub tx_units_wrapped: u64,
    /// Queue length in 80-B units (saturating).
    pub qlen_units: u64,
}

/// Unpack the 64-bit layout.
pub fn decode_int(w: u64) -> WireInt {
    WireInt {
        bandwidth: decode_rate((w >> 60) as u8),
        ts_ns_wrapped: (w >> 36) & (TS_MOD_NS - 1),
        tx_units_wrapped: (w >> 16) & (TXBYTES_MOD - 1),
        qlen_units: w & 0xFFFF,
    }
}

/// Reconstruct a full-resolution monotone counter from a wrapped reading:
/// the smallest value ≥ `prev_full` congruent to `wrapped` (mod `modulus`).
/// Correct as long as the counter advanced by less than one modulus between
/// observations.
pub fn unwrap_counter(prev_full: u64, wrapped: u64, modulus: u64) -> u64 {
    debug_assert!(wrapped < modulus);
    let base = prev_full - (prev_full % modulus);
    let candidate = base + wrapped;
    if candidate >= prev_full {
        candidate
    } else {
        candidate + modulus
    }
}

/// Reconstruct an [`IntRecord`] from the wire given the previous
/// full-resolution observation of the same hop.
pub fn reconstruct_int(w: u64, prev: &IntRecord) -> IntRecord {
    let d = decode_int(w);
    let prev_ts_ns = prev.ts.as_ps() / 1000;
    let ts_ns = unwrap_counter(prev_ts_ns, d.ts_ns_wrapped, TS_MOD_NS);
    let prev_tx_units = prev.tx_bytes / TXBYTES_UNIT;
    let tx_units = unwrap_counter(prev_tx_units, d.tx_units_wrapped, TXBYTES_MOD);
    IntRecord {
        bandwidth: d.bandwidth,
        ts: SimTime::from_ns(ts_ns),
        tx_bytes: tx_units * TXBYTES_UNIT,
        qlen: d.qlen_units * QLEN_UNIT,
    }
}

/// Pack the ACK's path header: `nHop` (4 bits) and `pathID` (12 bits).
pub fn encode_path_header(nhop: u8, path_xor: u16) -> u16 {
    debug_assert!(nhop < 16, "nHop field is 4 bits");
    ((nhop as u16) << 12) | (path_xor & 0x0FFF)
}

/// Unpack the ACK's path header into `(nHop, pathID)`.
pub fn decode_path_header(h: u16) -> (u8, u16) {
    ((h >> 12) as u8, h & 0x0FFF)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(gbps: u64, ts_ns: u64, tx: u64, qlen: u64) -> IntRecord {
        IntRecord {
            bandwidth: Bandwidth::gbps(gbps),
            ts: SimTime::from_ns(ts_ns),
            tx_bytes: tx,
            qlen,
        }
    }

    #[test]
    fn rate_table_roundtrips() {
        for (i, &g) in RATE_TABLE_GBPS.iter().enumerate() {
            assert_eq!(encode_rate(Bandwidth::gbps(g)), i as u8);
            assert_eq!(decode_rate(i as u8), Bandwidth::gbps(g));
        }
    }

    #[test]
    #[should_panic]
    fn unencodable_rate_panics() {
        encode_rate(Bandwidth::gbps(123));
    }

    #[test]
    fn int_roundtrip_within_quantisation() {
        let r = rec(100, 5_000, 1_234_567, 300_000);
        let d = decode_int(encode_int(&r));
        assert_eq!(d.bandwidth, Bandwidth::gbps(100));
        assert_eq!(d.ts_ns_wrapped, 5_000);
        assert_eq!(d.tx_units_wrapped, 1_234_567 / 128);
        assert_eq!(d.qlen_units, 300_000 / 80);
    }

    #[test]
    fn qlen_saturates() {
        let r = rec(400, 0, 0, 100 * 1024 * 1024);
        let d = decode_int(encode_int(&r));
        assert_eq!(d.qlen_units, QLEN_MAX);
    }

    #[test]
    fn reconstruct_recovers_quantised_values() {
        let prev = rec(100, 1_000, 1_000_000, 0);
        let cur = rec(100, 9_000, 1_500_000, 42_000);
        let got = reconstruct_int(encode_int(&cur), &prev);
        assert_eq!(got.ts, SimTime::from_ns(9_000));
        // txBytes recovered to within one 128-B unit.
        assert!(got.tx_bytes.abs_diff(1_500_000) < TXBYTES_UNIT);
        assert!(got.qlen.abs_diff(42_000) < QLEN_UNIT);
    }

    #[test]
    fn reconstruct_handles_ts_wraparound() {
        // prev just below the 2^24-ns wrap, cur just after it.
        let prev_ns = TS_MOD_NS - 100;
        let cur_ns = TS_MOD_NS + 50;
        let prev = rec(100, prev_ns, 0, 0);
        let cur = rec(100, cur_ns, 0, 0);
        let got = reconstruct_int(encode_int(&cur), &prev);
        assert_eq!(got.ts, SimTime::from_ns(cur_ns));
    }

    #[test]
    fn reconstruct_handles_txbytes_wraparound() {
        let modulus_bytes = TXBYTES_MOD * TXBYTES_UNIT; // 128 MiB
        let prev = rec(100, 0, modulus_bytes - 10_000, 0);
        let cur = rec(100, 1, modulus_bytes + 5_000, 0);
        let got = reconstruct_int(encode_int(&cur), &prev);
        assert!(got.tx_bytes.abs_diff(modulus_bytes + 5_000) < TXBYTES_UNIT);
    }

    #[test]
    fn unwrap_counter_basic() {
        assert_eq!(unwrap_counter(100, 5, 50), 105);
        assert_eq!(unwrap_counter(100, 0, 50), 100);
        assert_eq!(unwrap_counter(149, 0, 50), 150);
        assert_eq!(unwrap_counter(0, 49, 50), 49);
    }

    #[test]
    fn path_header_roundtrip() {
        for nhop in 0..16u8 {
            for xor in [0u16, 1, 0x0ABC, 0x0FFF] {
                let (n, x) = decode_path_header(encode_path_header(nhop, xor));
                assert_eq!(n, nhop);
                assert_eq!(x, xor);
            }
        }
    }

    #[test]
    fn distinct_records_encode_distinctly() {
        let a = encode_int(&rec(100, 1, 128, 80));
        let b = encode_int(&rec(100, 2, 128, 80));
        let c = encode_int(&rec(100, 1, 256, 80));
        let d = encode_int(&rec(100, 1, 128, 160));
        assert!(a != b && a != c && a != d && b != c);
    }
}
