//! Packets: RoCEv2 data frames, ACKs with INT stacks (Fig. 7), DCQCN CNPs
//! and PFC control frames.

use crate::ids::{FlowId, HostId};
use crate::units::{Bandwidth, INT_RECORD_BYTES};
use fncc_des::time::SimTime;

/// Maximum number of switch hops whose INT a packet can carry.
///
/// The deepest path in this repo is the 3-level fat-tree: 5 switches.
pub const MAX_HOPS: usize = 8;

/// One in-network-telemetry record, `{B, TS, txBytes, qLen}` per Fig. 7.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IntRecord {
    /// Egress-port bandwidth.
    pub bandwidth: Bandwidth,
    /// When this record was sampled.
    pub ts: SimTime,
    /// Cumulative bytes transmitted by the egress port at `ts`.
    pub tx_bytes: u64,
    /// Egress queue length in bytes at `ts`.
    pub qlen: u64,
}

/// A fixed-capacity stack of INT records (no heap allocation in the hot
/// path). Records are pushed in the order switches append them.
#[derive(Clone, Copy, Debug)]
pub struct IntStack {
    records: [IntRecord; MAX_HOPS],
    len: u8,
}

const EMPTY_RECORD: IntRecord = IntRecord {
    bandwidth: Bandwidth::bps(1),
    ts: SimTime::ZERO,
    tx_bytes: 0,
    qlen: 0,
};

impl Default for IntStack {
    fn default() -> Self {
        IntStack {
            records: [EMPTY_RECORD; MAX_HOPS],
            len: 0,
        }
    }
}

impl IntStack {
    /// Empty stack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of records.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if no records have been appended.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append a record. Silently drops records beyond [`MAX_HOPS`] (paths
    /// that deep do not occur in the supported topologies; a debug assert
    /// guards regressions).
    #[inline]
    pub fn push(&mut self, r: IntRecord) {
        debug_assert!((self.len as usize) < MAX_HOPS, "INT stack overflow");
        if (self.len as usize) < MAX_HOPS {
            self.records[self.len as usize] = r;
            self.len += 1;
        }
    }

    /// Records in insertion order.
    #[inline]
    pub fn as_slice(&self) -> &[IntRecord] {
        &self.records[..self.len as usize]
    }

    /// Reverse the record order in place. FNCC ACKs collect INT along the
    /// *return* path (last request-path switch first); the sender calls this
    /// to normalise to request-path order before running `MeasureInFlight`.
    pub fn reverse(&mut self) {
        self.records[..self.len as usize].reverse();
    }

    /// Remove all records.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Wire bytes these records occupy in a frame.
    #[inline]
    pub fn wire_bytes(&self) -> u32 {
        self.len as u32 * INT_RECORD_BYTES
    }
}

/// The kind of a frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PacketKind {
    /// Application data (RDMA write segment).
    Data,
    /// Transport acknowledgment, possibly cumulative.
    Ack,
    /// DCQCN congestion-notification packet (receiver → sender).
    Cnp,
    /// PFC XOFF: pause the peer's egress on this link.
    PfcPause,
    /// PFC XON: resume the peer's egress on this link.
    PfcResume,
}

impl PacketKind {
    /// Control frames bypass PFC pause and jump the egress queue.
    #[inline]
    pub fn is_control(self) -> bool {
        matches!(self, PacketKind::PfcPause | PacketKind::PfcResume)
    }
}

/// A frame in flight. Boxed when stored in events/queues.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Frame kind.
    pub kind: PacketKind,
    /// Flow this frame belongs to (ACK/CNP carry the data flow's id so ECMP
    /// hashes identically in both directions).
    pub flow: FlowId,
    /// Originating host of *this frame*.
    pub src: HostId,
    /// Destination host of *this frame* (for an ACK: the data sender).
    pub dst: HostId,
    /// Data: index of the first payload byte carried.
    /// ACK: cumulative — next expected payload byte at the receiver.
    pub seq: u64,
    /// Wire size in bytes (grows when INT records are appended).
    pub size: u32,
    /// Application payload bytes carried (data frames only).
    pub payload: u32,
    /// Timestamp set by the sender of the frame (RTT measurement).
    pub sent_at: SimTime,
    /// ECN congestion-experienced mark (set by RED marking).
    pub ecn: bool,
    /// In-network telemetry stack.
    pub int: IntStack,
    /// Number of concurrent flows `N` at the receiver (FNCC ACKs, Fig. 7).
    pub concurrent_flows: u16,
    /// Fig. 7 `pathID`: XOR of the (12-bit-truncated) ids of the switches
    /// that inserted INT — lets the sender detect path changes.
    pub path_xor: u16,
    /// RoCC advertised fair rate (bits/s); `f64::INFINITY` when unset.
    pub rocc_rate: f64,
    /// Switch-internal metadata: ingress port of this frame at the switch
    /// currently holding it (Algorithm 1 line 3; also PFC accounting).
    pub in_port: u8,
    /// Switch-internal metadata: bytes charged to buffer/PFC accounting on
    /// arrival (the frame may grow INT records before departure).
    pub accounted: u32,
    /// For data frames: true if this is the flow's last payload byte carrier.
    pub last_of_flow: bool,
}

impl Packet {
    /// A data frame of `payload` application bytes starting at `seq`.
    pub fn data(
        flow: FlowId,
        src: HostId,
        dst: HostId,
        seq: u64,
        payload: u32,
        wire_size: u32,
        now: SimTime,
    ) -> Box<Packet> {
        Box::new(Packet {
            kind: PacketKind::Data,
            flow,
            src,
            dst,
            seq,
            size: wire_size,
            payload,
            sent_at: now,
            ecn: false,
            int: IntStack::new(),
            concurrent_flows: 0,
            path_xor: 0,
            rocc_rate: f64::INFINITY,
            in_port: 0,
            accounted: 0,
            last_of_flow: false,
        })
    }

    /// An ACK from `src` (the data receiver) to `dst` (the data sender),
    /// cumulatively acknowledging payload bytes below `ack_seq`.
    pub fn ack(
        flow: FlowId,
        src: HostId,
        dst: HostId,
        ack_seq: u64,
        base_size: u32,
        now: SimTime,
    ) -> Box<Packet> {
        Box::new(Packet {
            kind: PacketKind::Ack,
            flow,
            src,
            dst,
            seq: ack_seq,
            size: base_size,
            payload: 0,
            sent_at: now,
            ecn: false,
            int: IntStack::new(),
            concurrent_flows: 0,
            path_xor: 0,
            rocc_rate: f64::INFINITY,
            in_port: 0,
            accounted: 0,
            last_of_flow: false,
        })
    }

    /// A DCQCN congestion-notification packet.
    pub fn cnp(flow: FlowId, src: HostId, dst: HostId, size: u32, now: SimTime) -> Box<Packet> {
        Box::new(Packet {
            kind: PacketKind::Cnp,
            flow,
            src,
            dst,
            seq: 0,
            size,
            payload: 0,
            sent_at: now,
            ecn: false,
            int: IntStack::new(),
            concurrent_flows: 0,
            path_xor: 0,
            rocc_rate: f64::INFINITY,
            in_port: 0,
            accounted: 0,
            last_of_flow: false,
        })
    }

    /// A PFC control frame (link-local; src/dst are not routed).
    pub fn pfc(kind: PacketKind, size: u32, now: SimTime) -> Box<Packet> {
        debug_assert!(kind.is_control());
        Box::new(Packet {
            kind,
            flow: FlowId(u32::MAX),
            src: HostId(u32::MAX),
            dst: HostId(u32::MAX),
            seq: 0,
            size,
            payload: 0,
            sent_at: now,
            ecn: false,
            int: IntStack::new(),
            concurrent_flows: 0,
            path_xor: 0,
            rocc_rate: f64::INFINITY,
            in_port: 0,
            accounted: 0,
            last_of_flow: false,
        })
    }

    /// Append an INT record, growing the wire size accordingly.
    #[inline]
    pub fn push_int(&mut self, r: IntRecord) {
        self.int.push(r);
        self.size += INT_RECORD_BYTES;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ts_us: u64, qlen: u64) -> IntRecord {
        IntRecord {
            bandwidth: Bandwidth::gbps(100),
            ts: SimTime::from_us(ts_us),
            tx_bytes: 0,
            qlen,
        }
    }

    #[test]
    fn int_stack_push_and_order() {
        let mut s = IntStack::new();
        assert!(s.is_empty());
        s.push(rec(1, 10));
        s.push(rec(2, 20));
        s.push(rec(3, 30));
        assert_eq!(s.len(), 3);
        let q: Vec<u64> = s.as_slice().iter().map(|r| r.qlen).collect();
        assert_eq!(q, vec![10, 20, 30]);
    }

    #[test]
    fn int_stack_reverse_normalises_return_path_order() {
        let mut s = IntStack::new();
        // Return-path order: last request-path switch first.
        s.push(rec(3, 30));
        s.push(rec(2, 20));
        s.push(rec(1, 10));
        s.reverse();
        let q: Vec<u64> = s.as_slice().iter().map(|r| r.qlen).collect();
        assert_eq!(q, vec![10, 20, 30]);
    }

    #[test]
    fn int_stack_wire_bytes() {
        let mut s = IntStack::new();
        assert_eq!(s.wire_bytes(), 0);
        s.push(rec(1, 1));
        s.push(rec(2, 2));
        assert_eq!(s.wire_bytes(), 2 * INT_RECORD_BYTES);
    }

    #[test]
    fn int_stack_clear() {
        let mut s = IntStack::new();
        s.push(rec(1, 1));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.as_slice().len(), 0);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn int_stack_saturates_at_capacity() {
        let mut s = IntStack::new();
        for i in 0..(MAX_HOPS + 3) {
            s.push(rec(i as u64, i as u64));
        }
        assert_eq!(s.len(), MAX_HOPS);
    }

    #[test]
    fn push_int_grows_wire_size() {
        let mut p = Packet::data(
            FlowId(0),
            HostId(0),
            HostId(1),
            0,
            1000,
            1062,
            SimTime::ZERO,
        );
        let before = p.size;
        p.push_int(rec(0, 0));
        assert_eq!(p.size, before + INT_RECORD_BYTES);
        assert_eq!(p.int.len(), 1);
    }

    #[test]
    fn constructors_set_kinds() {
        let d = Packet::data(FlowId(1), HostId(0), HostId(1), 0, 100, 162, SimTime::ZERO);
        assert_eq!(d.kind, PacketKind::Data);
        assert!(!d.kind.is_control());
        let a = Packet::ack(FlowId(1), HostId(1), HostId(0), 100, 70, SimTime::ZERO);
        assert_eq!(a.kind, PacketKind::Ack);
        assert_eq!(a.seq, 100);
        let c = Packet::cnp(FlowId(1), HostId(1), HostId(0), 64, SimTime::ZERO);
        assert_eq!(c.kind, PacketKind::Cnp);
        let p = Packet::pfc(PacketKind::PfcPause, 64, SimTime::ZERO);
        assert!(p.kind.is_control());
        let r = Packet::pfc(PacketKind::PfcResume, 64, SimTime::ZERO);
        assert!(r.kind.is_control());
    }

    #[test]
    fn rocc_rate_defaults_unset() {
        let d = Packet::data(FlowId(1), HostId(0), HostId(1), 0, 100, 162, SimTime::ZERO);
        assert!(d.rocc_rate.is_infinite());
    }
}
