//! Fabric-wide configuration: frame sizes, PFC, ECN, INT insertion mode,
//! the RoCC switch controller, and fault injection.

use crate::ids::NodeRef;
use crate::units::{Bandwidth, ByteSize};
use fncc_des::time::{SimTime, TimeDelta};

/// Where switches insert INT records (the core difference between HPCC and
/// FNCC, Fig. 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IntInsertion {
    /// No INT (DCQCN, RoCC, Timely).
    None,
    /// HPCC: append the egress port's INT to every *data* frame.
    OnData,
    /// FNCC (Algorithm 1): append `All_INT_Table[ack.input_port]` to every
    /// *ACK* frame.
    OnAck,
}

/// Priority-flow-control configuration (§2.3; §5.1 uses a 500 KB threshold).
#[derive(Clone, Copy, Debug)]
pub struct PfcConfig {
    /// Master switch.
    pub enabled: bool,
    /// Per-ingress-port byte threshold that triggers XOFF.
    pub threshold: u64,
    /// Hysteresis: XON is sent when the counter falls below
    /// `threshold - resume_offset`.
    pub resume_offset: u64,
}

impl PfcConfig {
    /// The paper's setting: enabled with a 500 KB threshold.
    pub fn paper_default() -> Self {
        PfcConfig {
            enabled: true,
            threshold: ByteSize::kb(500).as_bytes(),
            resume_offset: 2 * 1518,
        }
    }

    /// PFC disabled (packets can drop at buffer exhaustion).
    pub fn disabled() -> Self {
        PfcConfig {
            enabled: false,
            threshold: u64::MAX,
            resume_offset: 0,
        }
    }
}

/// RED/ECN marking for DCQCN.
#[derive(Clone, Copy, Debug)]
pub struct EcnConfig {
    /// Master switch.
    pub enabled: bool,
    /// No marking below this egress queue depth (bytes).
    pub kmin: u64,
    /// Above this depth every frame is marked (bytes).
    pub kmax: u64,
    /// Marking probability at `kmax` (linear ramp from `kmin`).
    pub pmax: f64,
}

impl EcnConfig {
    /// Disabled.
    pub fn disabled() -> Self {
        EcnConfig {
            enabled: false,
            kmin: u64::MAX,
            kmax: u64::MAX,
            pmax: 0.0,
        }
    }

    /// DCQCN defaults scaled linearly with line rate, anchored at the
    /// commonly used 100 Gb/s values (Kmin = 100 KB, Kmax = 400 KB,
    /// Pmax = 0.2).
    pub fn dcqcn_scaled(line: Bandwidth) -> Self {
        let scale = line.as_f64() / 100e9;
        EcnConfig {
            enabled: true,
            kmin: (ByteSize::kb(100).as_bytes() as f64 * scale) as u64,
            kmax: (ByteSize::kb(400).as_bytes() as f64 * scale) as u64,
            pmax: 0.2,
        }
    }

    /// Marking probability at queue depth `q` bytes.
    pub fn mark_probability(&self, q: u64) -> f64 {
        if !self.enabled || q < self.kmin {
            0.0
        } else if q >= self.kmax {
            1.0
        } else {
            self.pmax * (q - self.kmin) as f64 / (self.kmax - self.kmin) as f64
        }
    }
}

/// The RoCC switch-side PI controller computing a per-port fair rate.
#[derive(Clone, Copy, Debug)]
pub struct RoccSwitchConfig {
    /// Controller update period.
    pub period: TimeDelta,
    /// Queue set-point in bytes.
    pub qref: f64,
    /// Proportional gain (bits/s per byte of queue error).
    pub gain_p: f64,
    /// Integral-difference gain (bits/s per byte of queue delta).
    pub gain_d: f64,
    /// Lower clamp for the advertised rate (bits/s).
    pub min_rate: f64,
}

impl RoccSwitchConfig {
    /// Defaults tuned (like the published RoCC evaluation) for stability
    /// over speed: convergence on the order of a millisecond.
    pub fn default_for(line: Bandwidth) -> Self {
        let b = line.as_f64();
        RoccSwitchConfig {
            period: TimeDelta::from_us(20),
            qref: 50.0 * 1024.0,
            // Full-queue error moves the rate by ~1% of line rate per period.
            gain_p: b * 1e-7,
            gain_d: b * 5e-7,
            min_rate: b / 1000.0,
        }
    }
}

/// An injected link fault: the data class of `node`'s egress `port` is
/// force-paused at `at` for `duration` — a "stuck PFC pause" (§2.3's pause
/// storms / deadlock hazard). Downstream pressure then propagates PFC
/// upstream; the watchdog counters in [`crate::telemetry::Telemetry`]
/// record the episode lengths.
#[derive(Clone, Copy, Debug)]
pub struct FaultSpec {
    /// Node whose egress port is stuck.
    pub node: NodeRef,
    /// Port index at that node.
    pub port: u8,
    /// Injection time.
    pub at: SimTime,
    /// How long the port stays force-paused.
    pub duration: TimeDelta,
}

/// What a [`LinkFaultSpec`] does to its switch egress link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LinkFault {
    /// The link dies at `at`: queued and in-flight frames are destroyed,
    /// both directions are marked dead, and routing recompiles around it.
    Down {
        /// Failure time.
        at: SimTime,
    },
    /// A previously-downed link is restored at `at` and rejoins routing.
    Up {
        /// Restoration time.
        at: SimTime,
    },
    /// Over `[from, to)` the egress drain rate is scaled by `rate_factor`
    /// and the propagation delay by `delay_factor` (a flapping optic or a
    /// FEC-degraded long-haul link).
    Degrade {
        /// Degradation start.
        from: SimTime,
        /// Degradation end (original parameters restored).
        to: SimTime,
        /// Multiplier on the drain rate, (0, 1]. The port clamps the
        /// effective rate at `bw/100`, so factors below 0.01 saturate.
        rate_factor: f64,
        /// Multiplier on the propagation delay, >= 1.
        delay_factor: f64,
    },
    /// Over `[from, to)` every data-class frame routed into the egress
    /// port is dropped with probability `prob`, drawn from a per-switch
    /// RNG derived from the fabric seed (deterministic per seed).
    RandomLoss {
        /// Loss-window start.
        from: SimTime,
        /// Loss-window end.
        to: SimTime,
        /// Per-frame drop probability, (0, 1].
        prob: f64,
    },
}

/// One injected link-level fault on a switch egress port. Unlike the
/// stuck-pause [`FaultSpec`] (which only freezes the scheduler), link
/// faults destroy frames and interact with routing — see
/// [`crate::switch::Switch`] for the teardown/recompute semantics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkFaultSpec {
    /// Switch owning the faulted egress port.
    pub switch: crate::ids::SwitchId,
    /// Egress port index at that switch.
    pub port: u8,
    /// What happens to the link.
    pub fault: LinkFault,
}

impl LinkFaultSpec {
    /// When the fault's first transition fires.
    pub fn start(&self) -> SimTime {
        match self.fault {
            LinkFault::Down { at } | LinkFault::Up { at } => at,
            LinkFault::Degrade { from, .. } | LinkFault::RandomLoss { from, .. } => from,
        }
    }

    /// When the fault's second transition fires, for interval faults.
    pub fn end(&self) -> Option<SimTime> {
        match self.fault {
            LinkFault::Down { .. } | LinkFault::Up { .. } => None,
            LinkFault::Degrade { to, .. } | LinkFault::RandomLoss { to, .. } => Some(to),
        }
    }
}

/// All switch/link level configuration for one simulation.
#[derive(Clone, Debug)]
pub struct FabricConfig {
    /// Maximum frame size in bytes, headers included (the paper: 1518).
    pub mtu: u32,
    /// Per-data-frame header overhead (Eth+IP+UDP+BTH+ICRC+FCS).
    pub data_header: u32,
    /// ACK frame size before INT records.
    pub ack_base: u32,
    /// Extra on-wire bytes per frame (preamble + IFG); 0 keeps utilization
    /// plots normalised to goodput like the paper's.
    pub wire_overhead: u32,
    /// Shared buffer per switch.
    pub buffer_bytes: u64,
    /// PFC settings.
    pub pfc: PfcConfig,
    /// ECN marking settings.
    pub ecn: EcnConfig,
    /// INT insertion mode.
    pub int: IntInsertion,
    /// `Some(d)`: `All_INT_Table` refreshed every `d` (Fig. 8's periodic
    /// update); `None`: table reads are live.
    pub int_refresh: Option<TimeDelta>,
    /// RoCC PI controller, if the RoCC scheme is active.
    pub rocc: Option<RoccSwitchConfig>,
    /// Injected faults (stuck-pause episodes).
    pub faults: Vec<FaultSpec>,
    /// Injected link faults (down/up, degradation, random loss).
    pub link_faults: Vec<LinkFaultSpec>,
    /// Master seed for all stochastic fabric components (ECN marking).
    pub seed: u64,
}

impl FabricConfig {
    /// Paper-style defaults; congestion-control specific fields (`int`,
    /// `ecn`, `rocc`) are set by the scenario layer.
    pub fn paper_default() -> Self {
        FabricConfig {
            mtu: 1518,
            data_header: crate::units::DATA_HEADER_BYTES,
            ack_base: crate::units::ACK_BASE_BYTES,
            wire_overhead: 0,
            buffer_bytes: ByteSize::mb(32).as_bytes(),
            pfc: PfcConfig::paper_default(),
            ecn: EcnConfig::disabled(),
            int: IntInsertion::None,
            int_refresh: None,
            rocc: None,
            faults: Vec::new(),
            link_faults: Vec::new(),
            seed: 1,
        }
    }

    /// Application payload bytes carried by a full-size data frame.
    #[inline]
    pub fn mtu_payload(&self) -> u32 {
        self.mtu - self.data_header
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mtu_payload() {
        let cfg = FabricConfig::paper_default();
        assert_eq!(cfg.mtu_payload(), 1518 - 62);
    }

    #[test]
    fn pfc_paper_default_is_500kb() {
        let p = PfcConfig::paper_default();
        assert!(p.enabled);
        assert_eq!(p.threshold, 512_000);
        assert!(p.resume_offset > 0 && p.resume_offset < p.threshold);
    }

    #[test]
    fn ecn_probability_ramp() {
        let e = EcnConfig {
            enabled: true,
            kmin: 100,
            kmax: 300,
            pmax: 0.2,
        };
        assert_eq!(e.mark_probability(0), 0.0);
        assert_eq!(e.mark_probability(99), 0.0);
        assert_eq!(e.mark_probability(100), 0.0);
        assert!((e.mark_probability(200) - 0.1).abs() < 1e-12);
        assert_eq!(e.mark_probability(300), 1.0);
        assert_eq!(e.mark_probability(10_000), 1.0);
    }

    #[test]
    fn ecn_disabled_never_marks() {
        let e = EcnConfig::disabled();
        assert_eq!(e.mark_probability(u64::MAX / 2), 0.0);
    }

    #[test]
    fn ecn_scales_with_line_rate() {
        let e100 = EcnConfig::dcqcn_scaled(Bandwidth::gbps(100));
        let e400 = EcnConfig::dcqcn_scaled(Bandwidth::gbps(400));
        assert_eq!(e400.kmin, 4 * e100.kmin);
        assert_eq!(e400.kmax, 4 * e100.kmax);
    }

    #[test]
    fn rocc_defaults_scale() {
        let r = RoccSwitchConfig::default_for(Bandwidth::gbps(100));
        assert!(r.gain_p > 0.0 && r.gain_d > 0.0);
        assert!(r.min_rate < 100e9);
    }
}
