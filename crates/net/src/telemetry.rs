//! Run-wide measurement state: counters, per-flow byte counters, flow
//! completion records, and the sampling watch-lists feeding the paper's
//! time-series plots.

use crate::ids::{FlowId, HostId, SwitchId};
use crate::units::Bandwidth;
use fncc_des::stats::{RateMeter, TimeSeries};
use fncc_des::time::{SimTime, TimeDelta};
use fncc_obs::{HistId, MetricsRegistry, PhaseId, Profiler, TraceSink};
use std::time::Instant;

/// Lifetime record of one flow.
#[derive(Clone, Debug)]
pub struct FlowRecord {
    /// Flow id.
    pub flow: FlowId,
    /// Sender.
    pub src: HostId,
    /// Receiver.
    pub dst: HostId,
    /// Application bytes.
    pub size: u64,
    /// Start time (first eligible to send).
    pub start: SimTime,
    /// Completion time: last payload byte delivered at the receiver.
    pub finish: Option<SimTime>,
}

impl FlowRecord {
    /// Flow completion time, if finished.
    pub fn fct(&self) -> Option<TimeDelta> {
        self.finish.map(|f| f.since(self.start))
    }
}

/// Global event counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct Counters {
    /// Data frames delivered to receivers.
    pub data_delivered: u64,
    /// ACK frames delivered to senders.
    pub acks_delivered: u64,
    /// CNPs delivered to senders.
    pub cnps_delivered: u64,
    /// Frames ECN-marked by switches.
    pub ecn_marks: u64,
    /// Frames dropped at buffer exhaustion (0 whenever PFC is on).
    pub drops: u64,
    /// PFC XOFF frames sent network-wide.
    pub pfc_pause_tx: u64,
    /// PFC XON frames sent network-wide.
    pub pfc_resume_tx: u64,
    /// Frames destroyed by injected link faults (down/random-loss) — kept
    /// apart from `drops` so drop attribution survives into reports.
    pub fault_drops: u64,
    /// Go-back-N retransmitted data frames (sender side).
    pub retx: u64,
    /// Retransmission-timeout firings that rewound a flow.
    pub rtos: u64,
    /// Flows whose frames took a non-pristine route at least once because
    /// of a dead link (deduplicated network-wide).
    pub rerouted_flows: u64,
}

struct QueueWatch {
    sw: SwitchId,
    port: u8,
    series: TimeSeries,
}

struct UtilWatch {
    sw: SwitchId,
    port: u8,
    bw: Bandwidth,
    meter: RateMeter,
    series: TimeSeries,
}

struct FlowWatch {
    flow: FlowId,
    meter: RateMeter,
    series: TimeSeries,
}

struct CcRateWatch {
    flow: FlowId,
    host: HostId,
    series: TimeSeries,
}

/// Telemetry sink owned by the fabric; scenario code configures watches
/// before the run and harvests series after it.
pub struct Telemetry {
    /// Global counters.
    pub counters: Counters,
    /// Flight-recorder event sink (disabled by default; the backend arms it
    /// when the scenario's `probes.trace` knob is set).
    pub trace: TraceSink,
    /// Named metrics harvested into the run report. Histograms registered
    /// here are fed only from simulation state, so their percentiles are
    /// deterministic and identical whether tracing is armed or not.
    pub metrics: MetricsRegistry,
    /// Queue-depth histogram (bytes), fed on every sampling tick.
    h_queue_depth: HistId,
    /// Flow-completion-time histogram (µs), fed on each flow finish.
    h_fct_us: HistId,
    /// Wall-clock spans (active only when `FNCC_PROFILE` is set).
    pub profiler: Profiler,
    ph_cc_update: PhaseId,
    /// Cumulative payload bytes handed to the NIC per flow (sender side).
    flow_tx_bytes: Vec<u64>,
    /// Flow lifetime records, indexed by flow id.
    flows: Vec<Option<FlowRecord>>,
    /// Number of `Some` entries in `flows` (O(1) `flow_count`).
    flows_started: usize,
    /// Number of finished flows (O(1) `all_flows_finished`).
    flows_finished: usize,
    /// Sampling period; `TimeDelta::ZERO` disables sampling.
    pub sample_interval: TimeDelta,
    /// No further sample events are scheduled after this instant.
    pub sample_until: SimTime,
    queues: Vec<QueueWatch>,
    utils: Vec<UtilWatch>,
    flows_watched: Vec<FlowWatch>,
    cc_watched: Vec<CcRateWatch>,
    /// Per-hop INT age accumulators (seconds): how stale the telemetry of
    /// hop `j` was when the sender consumed it (Fig. 12's quantity).
    int_age_sum: Vec<f64>,
    int_age_cnt: Vec<u64>,
    pause_episodes: u64,
    pause_time_total: TimeDelta,
    pause_time_max: TimeDelta,
    /// Flows already counted in `counters.rerouted_flows` (dense by flow
    /// id; only ever grows while dead links exist).
    rerouted: Vec<bool>,
}

impl Telemetry {
    /// Fresh telemetry with sampling disabled.
    pub fn new() -> Self {
        let mut metrics = MetricsRegistry::new();
        let h_queue_depth = metrics.histogram("queue_depth_bytes");
        let h_fct_us = metrics.histogram("fct_us");
        let mut profiler = Profiler::from_env();
        let ph_cc_update = profiler.phase("cc_update");
        Telemetry {
            counters: Counters::default(),
            trace: TraceSink::disabled(),
            metrics,
            h_queue_depth,
            h_fct_us,
            profiler,
            ph_cc_update,
            flow_tx_bytes: Vec::new(),
            flows: Vec::new(),
            flows_started: 0,
            flows_finished: 0,
            sample_interval: TimeDelta::ZERO,
            sample_until: SimTime::MAX,
            queues: Vec::new(),
            utils: Vec::new(),
            flows_watched: Vec::new(),
            cc_watched: Vec::new(),
            int_age_sum: Vec::new(),
            int_age_cnt: Vec::new(),
            pause_episodes: 0,
            pause_time_total: TimeDelta::ZERO,
            pause_time_max: TimeDelta::ZERO,
            rerouted: Vec::new(),
        }
    }

    // --- configuration ---------------------------------------------------

    /// Enable periodic sampling with the given period, up to `until`.
    pub fn enable_sampling(&mut self, every: TimeDelta, until: SimTime) {
        assert!(!every.is_zero());
        self.sample_interval = every;
        self.sample_until = until;
    }

    /// Watch a switch egress queue depth (Fig. 1b–d, 9a/c/e, 13a–c).
    pub fn watch_queue(&mut self, sw: SwitchId, port: u8, name: impl Into<String>) {
        self.queues.push(QueueWatch {
            sw,
            port,
            series: TimeSeries::new(name),
        });
    }

    /// Watch a switch egress link utilization (Fig. 9g–h, 13a–c).
    pub fn watch_utilization(
        &mut self,
        sw: SwitchId,
        port: u8,
        bw: Bandwidth,
        name: impl Into<String>,
    ) {
        self.utils.push(UtilWatch {
            sw,
            port,
            bw,
            meter: RateMeter::new(SimTime::ZERO, 0),
            series: TimeSeries::new(name),
        });
    }

    /// Watch a sender's flow rate (Fig. 9b/d/f, 13d–e).
    pub fn watch_flow_rate(&mut self, flow: FlowId, name: impl Into<String>) {
        self.flows_watched.push(FlowWatch {
            flow,
            meter: RateMeter::new(SimTime::ZERO, 0),
            series: TimeSeries::new(name),
        });
    }

    /// Watch a sender's congestion-control pacing rate (reaction timing).
    pub fn watch_cc_rate(&mut self, flow: FlowId, host: HostId, name: impl Into<String>) {
        self.cc_watched.push(CcRateWatch {
            flow,
            host,
            series: TimeSeries::new(name),
        });
    }

    // --- updates from the fabric/hosts ------------------------------------

    /// Register a flow at start time.
    pub fn flow_started(&mut self, rec: FlowRecord) {
        let ix = rec.flow.ix();
        if self.flows.len() <= ix {
            self.flows.resize(ix + 1, None);
        }
        if self.flows[ix].is_none() {
            self.flows_started += 1;
        } else if self.flows[ix].as_ref().is_some_and(|r| r.finish.is_some()) {
            // Re-registration of a finished record re-opens it.
            self.flows_finished -= 1;
        }
        self.flows[ix] = Some(rec);
    }

    /// Mark a flow finished (last payload byte delivered).
    pub fn flow_finished(&mut self, flow: FlowId, at: SimTime) {
        let rec = self.flows[flow.ix()].as_mut().expect("finish before start");
        debug_assert!(rec.finish.is_none(), "double finish for {flow:?}");
        if rec.finish.is_none() {
            self.flows_finished += 1;
            self.metrics
                .observe_f64(self.h_fct_us, at.since(rec.start).as_secs_f64() * 1e6);
        }
        rec.finish = Some(at);
    }

    /// Add sender-side transmitted payload bytes for a flow.
    #[inline]
    pub fn add_flow_tx(&mut self, flow: FlowId, bytes: u64) {
        let ix = flow.ix();
        if self.flow_tx_bytes.len() <= ix {
            self.flow_tx_bytes.resize(ix + 1, 0);
        }
        self.flow_tx_bytes[ix] += bytes;
    }

    /// Cumulative transmitted payload bytes of a flow.
    pub fn flow_tx(&self, flow: FlowId) -> u64 {
        self.flow_tx_bytes.get(flow.ix()).copied().unwrap_or(0)
    }

    /// Take one sample of every watched quantity. Called by the fabric on
    /// its sampling tick: `queue_read`/`tx_read` map `(switch, port)` to the
    /// current queue depth and cumulative tx bytes.
    pub fn sample(
        &mut self,
        now: SimTime,
        mut queue_read: impl FnMut(SwitchId, u8) -> u64,
        mut tx_read: impl FnMut(SwitchId, u8) -> u64,
    ) {
        for w in &mut self.queues {
            let depth = queue_read(w.sw, w.port);
            self.metrics.observe(self.h_queue_depth, depth);
            w.series.push(now, depth as f64);
        }
        for w in &mut self.utils {
            let rate = w.meter.sample(now, tx_read(w.sw, w.port));
            w.series.push(now, rate / w.bw.as_f64());
        }
        for w in &mut self.flows_watched {
            let bytes = self.flow_tx_bytes.get(w.flow.ix()).copied().unwrap_or(0);
            let rate = w.meter.sample(now, bytes);
            w.series.push(now, rate);
        }
    }

    /// Sample watched CC pacing rates; `read` maps `(host, flow)` to the
    /// current rate, `None` while the flow is not live (recorded as 0).
    pub fn sample_cc_rates(
        &mut self,
        now: SimTime,
        mut read: impl FnMut(HostId, FlowId) -> Option<f64>,
    ) {
        for w in &mut self.cc_watched {
            w.series.push(now, read(w.host, w.flow).unwrap_or(0.0));
        }
    }

    /// Count `flow` as rerouted (its frames deviated from the pristine
    /// route because of a dead link); idempotent per flow.
    pub fn note_rerouted(&mut self, flow: FlowId) {
        let ix = flow.ix();
        if self.rerouted.len() <= ix {
            self.rerouted.resize(ix + 1, false);
        }
        if !self.rerouted[ix] {
            self.rerouted[ix] = true;
            self.counters.rerouted_flows += 1;
        }
    }

    /// Record the end of one PFC pause episode of `duration` (watchdog:
    /// pause storms / stuck-pause detection, §2.3).
    pub fn note_pause_episode(&mut self, duration: TimeDelta) {
        self.pause_episodes += 1;
        self.pause_time_total += duration;
        if duration > self.pause_time_max {
            self.pause_time_max = duration;
        }
    }

    /// Number of completed pause episodes network-wide.
    pub fn pause_episodes(&self) -> u64 {
        self.pause_episodes
    }

    /// Total time spent paused, summed over ports.
    pub fn pause_time_total(&self) -> TimeDelta {
        self.pause_time_total
    }

    /// Longest single pause episode (a storm/deadlock indicator when it
    /// approaches the run length).
    pub fn pause_time_max(&self) -> TimeDelta {
        self.pause_time_max
    }

    /// Record how stale hop `hop`'s INT record was (in seconds) when a
    /// sender consumed it. Hops are indexed in request-path order.
    #[inline]
    pub fn note_int_age(&mut self, hop: usize, age_secs: f64) {
        if self.int_age_sum.len() <= hop {
            self.int_age_sum.resize(hop + 1, 0.0);
            self.int_age_cnt.resize(hop + 1, 0);
        }
        self.int_age_sum[hop] += age_secs;
        self.int_age_cnt[hop] += 1;
    }

    /// Mean INT age (seconds) observed for hop `hop`, if any was recorded.
    pub fn mean_int_age(&self, hop: usize) -> Option<f64> {
        let n = *self.int_age_cnt.get(hop)?;
        if n == 0 {
            return None;
        }
        Some(self.int_age_sum[hop] / n as f64)
    }

    /// Number of hops with INT-age records.
    pub fn int_age_hops(&self) -> usize {
        self.int_age_cnt.len()
    }

    /// Open a wall-clock span over one congestion-control update; returns
    /// `None` (no clock read) when profiling is off.
    #[inline]
    pub fn cc_span(&self) -> Option<Instant> {
        self.profiler.begin()
    }

    /// Close a span opened by [`Telemetry::cc_span`].
    #[inline]
    pub fn cc_span_end(&mut self, started: Option<Instant>) {
        self.profiler.end(self.ph_cc_update, started);
    }

    // --- shard merging -----------------------------------------------------

    /// Fold another shard's telemetry into this one (sharded-DES harvest).
    ///
    /// Every aggregate here is exact, not approximate: counters and
    /// per-flow byte vectors are integer sums; the histograms round to
    /// integer units before summing (see [`fncc_obs::Histogram::absorb`]);
    /// watch lists concatenate in shard order because each shard only
    /// registers watches for entities it owns, so the keyed lookups
    /// (`queue_series`, …) see exactly one entry per key. Flow records
    /// merge per id, a finished record (receiver side) winning over the
    /// sender's open one. `rerouted_flows` is deduplicated network-wide,
    /// so the per-flow bitmaps are unioned and the counter recomputed
    /// rather than summed.
    pub fn merge_shard(&mut self, other: Telemetry) {
        let o = other.counters;
        self.counters.data_delivered += o.data_delivered;
        self.counters.acks_delivered += o.acks_delivered;
        self.counters.cnps_delivered += o.cnps_delivered;
        self.counters.ecn_marks += o.ecn_marks;
        self.counters.drops += o.drops;
        self.counters.pfc_pause_tx += o.pfc_pause_tx;
        self.counters.pfc_resume_tx += o.pfc_resume_tx;
        self.counters.fault_drops += o.fault_drops;
        self.counters.retx += o.retx;
        self.counters.rtos += o.rtos;
        if self.rerouted.len() < other.rerouted.len() {
            self.rerouted.resize(other.rerouted.len(), false);
        }
        for (ix, &r) in other.rerouted.iter().enumerate() {
            if r {
                self.rerouted[ix] = true;
            }
        }
        self.counters.rerouted_flows = self.rerouted.iter().filter(|&&r| r).count() as u64;

        self.metrics.absorb(&other.metrics);

        if self.flow_tx_bytes.len() < other.flow_tx_bytes.len() {
            self.flow_tx_bytes.resize(other.flow_tx_bytes.len(), 0);
        }
        for (ix, &b) in other.flow_tx_bytes.iter().enumerate() {
            self.flow_tx_bytes[ix] += b;
        }

        if self.flows.len() < other.flows.len() {
            self.flows.resize(other.flows.len(), None);
        }
        for (ix, rec) in other.flows.into_iter().enumerate() {
            let Some(rec) = rec else { continue };
            let mine = &self.flows[ix];
            let mine_finished = mine.as_ref().is_some_and(|r| r.finish.is_some());
            if mine.is_none() || (rec.finish.is_some() && !mine_finished) {
                self.flows[ix] = Some(rec);
            }
        }
        self.flows_started = self.flows.iter().filter(|f| f.is_some()).count();
        self.flows_finished = self
            .flows
            .iter()
            .filter(|f| f.as_ref().is_some_and(|r| r.finish.is_some()))
            .count();

        self.queues.extend(other.queues);
        self.utils.extend(other.utils);
        self.flows_watched.extend(other.flows_watched);
        self.cc_watched.extend(other.cc_watched);

        if self.int_age_sum.len() < other.int_age_sum.len() {
            self.int_age_sum.resize(other.int_age_sum.len(), 0.0);
            self.int_age_cnt.resize(other.int_age_cnt.len(), 0);
        }
        for (ix, &s) in other.int_age_sum.iter().enumerate() {
            self.int_age_sum[ix] += s;
            self.int_age_cnt[ix] += other.int_age_cnt[ix];
        }

        self.pause_episodes += other.pause_episodes;
        self.pause_time_total += other.pause_time_total;
        if other.pause_time_max > self.pause_time_max {
            self.pause_time_max = other.pause_time_max;
        }
    }

    // --- harvesting --------------------------------------------------------

    /// All flow records (finished or not).
    pub fn flow_records(&self) -> impl Iterator<Item = &FlowRecord> {
        self.flows.iter().filter_map(|f| f.as_ref())
    }

    /// Record for one flow.
    pub fn flow_record(&self, flow: FlowId) -> Option<&FlowRecord> {
        self.flows.get(flow.ix()).and_then(|f| f.as_ref())
    }

    /// Number of registered flows.
    pub fn flow_count(&self) -> usize {
        self.flows_started
    }

    /// True if every registered flow has finished.
    pub fn all_flows_finished(&self) -> bool {
        self.flows_finished == self.flows_started
    }

    /// Number of finished flows (the sharded coordinator's termination
    /// check needs the raw count, not just [`Telemetry::all_flows_finished`],
    /// because receiver shards pre-register records for flows whose sender
    /// lives elsewhere).
    pub fn flows_finished_count(&self) -> usize {
        self.flows_finished
    }

    /// Harvest the queue-depth series for a watched queue.
    pub fn queue_series(&self, sw: SwitchId, port: u8) -> Option<&TimeSeries> {
        self.queues
            .iter()
            .find(|w| w.sw == sw && w.port == port)
            .map(|w| &w.series)
    }

    /// Harvest the utilization series for a watched port.
    pub fn util_series(&self, sw: SwitchId, port: u8) -> Option<&TimeSeries> {
        self.utils
            .iter()
            .find(|w| w.sw == sw && w.port == port)
            .map(|w| &w.series)
    }

    /// Harvest the rate series for a watched flow.
    pub fn flow_rate_series(&self, flow: FlowId) -> Option<&TimeSeries> {
        self.flows_watched
            .iter()
            .find(|w| w.flow == flow)
            .map(|w| &w.series)
    }

    /// Harvest the CC pacing-rate series for a watched flow.
    pub fn cc_rate_series(&self, flow: FlowId) -> Option<&TimeSeries> {
        self.cc_watched
            .iter()
            .find(|w| w.flow == flow)
            .map(|w| &w.series)
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_lifecycle() {
        let mut t = Telemetry::new();
        t.flow_started(FlowRecord {
            flow: FlowId(2),
            src: HostId(0),
            dst: HostId(1),
            size: 1000,
            start: SimTime::from_us(5),
            finish: None,
        });
        assert_eq!(t.flow_count(), 1);
        assert!(!t.all_flows_finished());
        t.flow_finished(FlowId(2), SimTime::from_us(9));
        assert!(t.all_flows_finished());
        let rec = t.flow_record(FlowId(2)).unwrap();
        assert_eq!(rec.fct(), Some(TimeDelta::from_us(4)));
    }

    #[test]
    fn flow_tx_accumulates_with_sparse_ids() {
        let mut t = Telemetry::new();
        t.add_flow_tx(FlowId(7), 100);
        t.add_flow_tx(FlowId(7), 50);
        assert_eq!(t.flow_tx(FlowId(7)), 150);
        assert_eq!(t.flow_tx(FlowId(3)), 0);
        assert_eq!(t.flow_tx(FlowId(100)), 0);
    }

    #[test]
    fn sampling_records_watched_quantities() {
        let mut t = Telemetry::new();
        t.watch_queue(SwitchId(1), 2, "q");
        t.watch_utilization(SwitchId(1), 2, Bandwidth::gbps(100), "u");
        t.watch_flow_rate(FlowId(0), "r");
        t.add_flow_tx(FlowId(0), 0);

        // At t=1us: queue 500 bytes, 12500 bytes txed → 100 Gb/s → util 1.0.
        t.add_flow_tx(FlowId(0), 1250); // flow rate 10 Gb/s over 1 us
        t.sample(SimTime::from_us(1), |_, _| 500, |_, _| 12_500);

        let q = t.queue_series(SwitchId(1), 2).unwrap();
        assert_eq!(q.values(), &[500.0]);
        let u = t.util_series(SwitchId(1), 2).unwrap();
        assert!((u.values()[0] - 1.0).abs() < 1e-9, "util {}", u.values()[0]);
        let r = t.flow_rate_series(FlowId(0)).unwrap();
        assert!((r.values()[0] - 10e9).abs() < 1.0);
    }

    #[test]
    fn unwatched_lookups_return_none() {
        let t = Telemetry::new();
        assert!(t.queue_series(SwitchId(0), 0).is_none());
        assert!(t.util_series(SwitchId(0), 0).is_none());
        assert!(t.flow_rate_series(FlowId(0)).is_none());
    }

    #[test]
    fn int_age_accumulates_per_hop() {
        let mut t = Telemetry::new();
        assert_eq!(t.mean_int_age(0), None);
        t.note_int_age(0, 2.0e-6);
        t.note_int_age(0, 4.0e-6);
        t.note_int_age(2, 10.0e-6);
        assert!((t.mean_int_age(0).unwrap() - 3.0e-6).abs() < 1e-15);
        assert_eq!(t.mean_int_age(1), None);
        assert!((t.mean_int_age(2).unwrap() - 10.0e-6).abs() < 1e-15);
        assert_eq!(t.int_age_hops(), 3);
    }

    #[test]
    #[should_panic]
    fn finish_before_start_panics() {
        let mut t = Telemetry::new();
        t.flow_started(FlowRecord {
            flow: FlowId(0),
            src: HostId(0),
            dst: HostId(1),
            size: 1,
            start: SimTime::ZERO,
            finish: None,
        });
        t.flow_finished(FlowId(1), SimTime::ZERO);
    }
}
