//! Topology partitioning for the sharded (conservative-synchronization)
//! packet DES: which shard owns each host and switch, which links cross
//! shards, and the lookahead bound those cut links admit.
//!
//! The partitioning rule is by fat-tree pod: shard `p` owns pod `p`'s
//! hosts, ToRs and aggregation switches; core switches are round-robined
//! across the pod shards (`core j → shard j mod k`), which balances load
//! and keeps the shard count a power-of-two-friendly `k`. Every cut link
//! is then an agg↔core hop, and the lookahead is the minimum one-way
//! propagation delay over those hops: a frame emitted toward another shard
//! is always scheduled `prop` in the future (the serialization time has
//! already elapsed on the sender's egress port by emission time), so no
//! cross-shard event can fire earlier than `min prop` after it was sent.
//!
//! Topologies without a pod structure (dumbbell, line, star, leaf–spine,
//! custom) are not partitioned: [`PartitionMap::for_topology`] returns a
//! single-shard map carrying a [`FallbackReason`], and the sharded runtime
//! degrades to the ordinary single-engine execution.

use crate::ids::{HostId, NodeRef, SwitchId};
use crate::topology::{Topology, TopologyKind};
use fncc_des::time::TimeDelta;

/// Why a topology fell back to a single shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FallbackReason {
    /// The topology has no pod structure to partition by.
    NotFatTree,
    /// A cut link has zero propagation delay, so no positive lookahead
    /// exists and conservative epochs cannot make progress.
    ZeroLookahead,
}

impl FallbackReason {
    /// Stable numeric code for report scalars (`shard_fallback`).
    pub fn code(self) -> u32 {
        match self {
            FallbackReason::NotFatTree => 1,
            FallbackReason::ZeroLookahead => 2,
        }
    }
}

/// Shard ownership of every node in a topology, plus the synchronization
/// lookahead its cut links admit.
#[derive(Clone, Debug)]
pub struct PartitionMap {
    /// Number of shards (1 = unsharded fallback).
    pub n_shards: u16,
    /// Owning shard per host id.
    host_owner: Vec<u16>,
    /// Owning shard per switch id.
    switch_owner: Vec<u16>,
    /// Conservative lookahead: minimum propagation delay over cut links
    /// (zero when there are no cut links, i.e. a single shard).
    pub lookahead: TimeDelta,
    /// Number of directed links whose endpoints live in different shards.
    pub cut_links: usize,
    /// Why the map is single-shard, when it is and a partition was asked for.
    pub fallback: Option<FallbackReason>,
}

impl PartitionMap {
    /// Partition `topo` by pod if it is a fat-tree; otherwise return the
    /// single-shard fallback (never panics — the descriptive reason ends up
    /// as a report scalar).
    pub fn for_topology(topo: &Topology) -> PartitionMap {
        let TopologyKind::FatTree(k) = topo.kind else {
            return PartitionMap::single_shard(topo, Some(FallbackReason::NotFatTree));
        };
        let half = k / 2;
        let hosts_per_pod = half * half;
        let n_tor = k * half;
        let n_agg = k * half;
        let host_owner: Vec<u16> = (0..topo.n_hosts)
            .map(|h| (h / hosts_per_pod) as u16)
            .collect();
        let switch_owner: Vec<u16> = (0..topo.switches.len() as u32)
            .map(|s| {
                if s < n_tor {
                    (s / half) as u16
                } else if s < n_tor + n_agg {
                    ((s - n_tor) / half) as u16
                } else {
                    // Core switches, round-robined across the pod shards.
                    ((s - n_tor - n_agg) % k) as u16
                }
            })
            .collect();
        let map = PartitionMap::from_owners(topo, k as u16, host_owner, switch_owner);
        if map.n_shards > 1 && map.cut_links > 0 && map.lookahead.is_zero() {
            return PartitionMap::single_shard(topo, Some(FallbackReason::ZeroLookahead));
        }
        map
    }

    /// The trivial map: everything in shard 0.
    pub fn single_shard(topo: &Topology, fallback: Option<FallbackReason>) -> PartitionMap {
        PartitionMap {
            n_shards: 1,
            host_owner: vec![0; topo.n_hosts as usize],
            switch_owner: vec![0; topo.switches.len()],
            lookahead: TimeDelta::ZERO,
            cut_links: 0,
            fallback,
        }
    }

    /// Build a map from explicit per-node owners (the property tests fuzz
    /// arbitrary partitions through this). Owners are compacted as given;
    /// `n_shards` must cover every owner id used.
    pub fn from_owners(
        topo: &Topology,
        n_shards: u16,
        host_owner: Vec<u16>,
        switch_owner: Vec<u16>,
    ) -> PartitionMap {
        assert_eq!(host_owner.len(), topo.n_hosts as usize);
        assert_eq!(switch_owner.len(), topo.switches.len());
        assert!(host_owner
            .iter()
            .chain(&switch_owner)
            .all(|&o| o < n_shards));
        let mut map = PartitionMap {
            n_shards,
            host_owner,
            switch_owner,
            lookahead: TimeDelta::ZERO,
            cut_links: 0,
            fallback: None,
        };
        let (cut, la) = map.measure_cut(topo);
        map.cut_links = cut;
        map.lookahead = la;
        map
    }

    /// Count directed cut links and the minimum propagation delay across
    /// them.
    fn measure_cut(&self, topo: &Topology) -> (usize, TimeDelta) {
        let mut cut = 0usize;
        let mut la: Option<TimeDelta> = None;
        let mut consider = |a: u16, b: u16, prop: TimeDelta| {
            if a != b {
                cut += 1;
                la = Some(la.map_or(prop, |m| m.min(prop)));
            }
        };
        for (h, port) in topo.host_ports.iter().enumerate() {
            let owner = self.host_owner[h];
            consider(owner, self.owner_of(port.peer), port.prop);
        }
        for (s, sw) in topo.switches.iter().enumerate() {
            let owner = self.switch_owner[s];
            for port in &sw.ports {
                consider(owner, self.owner_of(port.peer), port.prop);
            }
        }
        (cut, la.unwrap_or(TimeDelta::ZERO))
    }

    /// Owning shard of a host.
    #[inline]
    pub fn owner_host(&self, h: HostId) -> u16 {
        self.host_owner[h.ix()]
    }

    /// Owning shard of a switch.
    #[inline]
    pub fn owner_switch(&self, s: SwitchId) -> u16 {
        self.switch_owner[s.ix()]
    }

    /// Owning shard of any node.
    #[inline]
    pub fn owner_of(&self, n: NodeRef) -> u16 {
        match n {
            NodeRef::Host(h) => self.owner_host(h),
            NodeRef::Switch(s) => self.owner_switch(s),
        }
    }

    /// True when the map actually splits the topology.
    #[inline]
    pub fn is_sharded(&self) -> bool {
        self.n_shards > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Bandwidth;

    fn ft(k: u32) -> Topology {
        Topology::fat_tree(k, Bandwidth::gbps(100), TimeDelta::from_ns(1500))
    }

    #[test]
    fn fat_tree_partitions_by_pod() {
        let topo = ft(4);
        let map = PartitionMap::for_topology(&topo);
        assert_eq!(map.n_shards, 4);
        assert!(map.fallback.is_none());
        // Hosts 0..4 are pod 0, 4..8 pod 1, …
        for h in 0..topo.n_hosts {
            assert_eq!(map.owner_host(HostId(h)), (h / 4) as u16);
        }
        // ToRs 0..8 and aggs 8..16 follow their pod; cores 16..20 round-robin.
        assert_eq!(map.owner_switch(SwitchId(0)), 0);
        assert_eq!(map.owner_switch(SwitchId(7)), 3);
        assert_eq!(map.owner_switch(SwitchId(8)), 0);
        assert_eq!(map.owner_switch(SwitchId(15)), 3);
        assert_eq!(map.owner_switch(SwitchId(16)), 0);
        assert_eq!(map.owner_switch(SwitchId(17)), 1);
        // Lookahead = the uniform 1.5 µs link propagation; cut links exist.
        assert_eq!(map.lookahead, TimeDelta::from_ns(1500));
        assert!(map.cut_links > 0);
    }

    #[test]
    fn non_fat_tree_falls_back_to_single_shard() {
        for topo in [
            Topology::dumbbell(2, 3, Bandwidth::gbps(100), TimeDelta::from_ns(1500)),
            Topology::star(4, Bandwidth::gbps(100), TimeDelta::from_ns(1500)),
            Topology::leaf_spine(4, 2, 4, Bandwidth::gbps(100), TimeDelta::from_ns(1500)),
        ] {
            let map = PartitionMap::for_topology(&topo);
            assert_eq!(map.n_shards, 1);
            assert_eq!(map.fallback, Some(FallbackReason::NotFatTree));
            assert_eq!(map.cut_links, 0);
        }
    }

    #[test]
    fn explicit_owner_maps_measure_their_cut() {
        let topo = Topology::dumbbell(2, 3, Bandwidth::gbps(100), TimeDelta::from_ns(1500));
        // Put the last host in its own shard: its NIC link is cut.
        let mut hosts = vec![0u16; topo.n_hosts as usize];
        *hosts.last_mut().unwrap() = 1;
        let switches = vec![0u16; topo.switches.len()];
        let map = PartitionMap::from_owners(&topo, 2, hosts, switches);
        assert_eq!(map.cut_links, 2); // both directions of the NIC link
        assert_eq!(map.lookahead, TimeDelta::from_ns(1500));
    }
}
