#![warn(missing_docs)]
//! `fncc-net` — the packet-level data-center network substrate.
//!
//! The FNCC paper evaluates congestion control on an OMNeT++/INET model of a
//! RoCEv2 data center. This crate is that substrate rebuilt from scratch:
//!
//! * [`packet`] — data/ACK/CNP/PFC frames with the INT stack of Fig. 7;
//! * [`port`] — store-and-forward ports with serialization, egress queues and
//!   PFC pause state;
//! * [`switch`] — output-queued shared-buffer switches implementing
//!   Algorithm 1 (`All_INT_Table`, INT-into-ACK), HPCC-style INT-into-data,
//!   RED/ECN marking for DCQCN, per-ingress PFC accounting (XOFF/XON), and
//!   the RoCC PI fair-rate controller;
//! * [`routing`] — per-destination tables with symmetric ECMP (Fig. 5) and
//!   spanning-tree unique paths (Fig. 6);
//! * [`topology`] — builders for the paper's topologies: dumbbell (Fig. 10),
//!   hop-location lines (Fig. 11), and the k=8 three-level fat-tree of §5.5;
//! * [`fabric`] — the event-driven network model gluing switches and hosts
//!   (host behaviour is supplied by `fncc-transport` through [`fabric::HostLogic`]).

pub mod config;
pub mod fabric;
pub mod ids;
pub mod packet;
pub mod partition;
pub mod pool;
pub mod port;
pub mod routing;
pub mod switch;
pub mod telemetry;
pub mod topology;
pub mod units;
pub mod wire;

pub use config::{EcnConfig, FabricConfig, FaultSpec, IntInsertion, PfcConfig, RoccSwitchConfig};
pub use fabric::{Ev, Fabric, HostCtx, HostLogic, ShardCtx};
pub use ids::{FlowId, HostId, NodeRef, SwitchId};
pub use packet::{IntRecord, IntStack, Packet, PacketKind, MAX_HOPS};
pub use partition::{FallbackReason, PartitionMap};
pub use pool::PacketPool;
pub use telemetry::{FlowRecord, Telemetry};
pub use topology::{Topology, TopologyKind};
pub use units::{Bandwidth, ByteSize};
