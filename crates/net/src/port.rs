//! A full-duplex network port: the egress half of one link direction.
//!
//! Each port owns an egress FIFO for data-class frames plus a strict-priority
//! control FIFO for PFC frames (pause frames must cut through even when the
//! data class is paused). Ingress needs no state — arriving frames are
//! delivered as events.

use crate::ids::NodeRef;
use crate::packet::{IntRecord, Packet};
use crate::topology::PortSpec;
use crate::units::Bandwidth;
use fncc_des::time::TimeDelta;
use std::collections::VecDeque;

/// Egress state of one port.
#[derive(Debug)]
pub struct Port {
    /// Far end of the link.
    pub peer: NodeRef,
    /// Port index at the far end.
    pub peer_port: u8,
    /// Link rate.
    pub bw: Bandwidth,
    /// Effective drain rate: `bw` minus any externally-imposed share of the
    /// link (hybrid backend: the fluid background load on this link leaves
    /// only the residual for packet traffic). Defaults to `bw`; see
    /// [`Self::set_drain_bw`].
    drain_bw: Bandwidth,
    /// One-way propagation delay.
    pub prop: TimeDelta,
    /// Data-class egress FIFO.
    queue: VecDeque<Box<Packet>>,
    /// Control-class egress FIFO (PFC frames): strict priority, never paused.
    ctrl: VecDeque<Box<Packet>>,
    /// Bytes queued in the data-class FIFO (the `qLen` of INT records).
    pub queue_bytes: u64,
    /// Frame currently being serialized, if any.
    pub in_flight: Option<Box<Packet>>,
    /// True while the peer has PFC-paused our data class.
    pub paused: bool,
    /// When the current pause began (watchdog/storm accounting).
    pub paused_since: Option<fncc_des::SimTime>,
    /// Cumulative data-class bytes fully transmitted (the `txBytes` of INT).
    pub tx_bytes: u64,
    /// PFC XOFF frames sent from this port ("pause times" of Fig. 3).
    pub pause_tx: u64,
    /// PFC XON frames sent from this port.
    pub resume_tx: u64,
    /// PFC XOFF frames received on this port.
    pub pause_rx: u64,
    /// Memo of the last serialization-time computation (`bytes` → span):
    /// frame sizes repeat heavily, and the 128-bit division in
    /// [`Bandwidth::tx_time`] is hot-path noticeable.
    tx_memo: (u64, TimeDelta),
    /// Phantom egress backlog, in bytes: traffic that exists only in a
    /// co-simulated fluid model but whose standing queue this port must
    /// still *signal* (INT `qLen`, ECN marking depth, RoCC queue sample)
    /// and *impose* (frames delivered late by its serialization time).
    /// Never occupies shared buffer and never enters PFC accounting —
    /// the fluid half owns those bytes, the packet half only sees their
    /// shadow. Set via [`crate::fabric::Fabric::set_port_backlog`].
    virtual_backlog: u64,
    /// Arrival time of the frame most recently put on the wire: a
    /// shrinking `virtual_backlog` must not let a later frame overtake an
    /// earlier one (a FIFO queue reorders nothing).
    last_arrival: fncc_des::SimTime,
    /// PFC accounting: bytes buffered from frames that *entered* on this
    /// port index (ingress side; lives here so one port touch covers both
    /// directions of the hot path).
    pub ingress_bytes: u64,
    /// True while we hold the upstream on this ingress port paused.
    pub upstream_paused: bool,
    /// This port's `All_INT_Table` entry (Fig. 8): last periodic snapshot.
    /// Unused in live mode.
    pub int_rec: IntRecord,
    /// RoCC advertised fair rate (bits/s).
    pub rocc_rate: f64,
    /// RoCC controller: previous queue sample.
    pub rocc_prev_q: f64,
}

impl Port {
    /// Build a port from its topology description.
    pub fn from_spec(spec: &PortSpec) -> Port {
        Port {
            peer: spec.peer,
            peer_port: spec.peer_port,
            bw: spec.bw,
            drain_bw: spec.bw,
            prop: spec.prop,
            queue: VecDeque::new(),
            ctrl: VecDeque::new(),
            queue_bytes: 0,
            in_flight: None,
            paused: false,
            paused_since: None,
            tx_bytes: 0,
            pause_tx: 0,
            resume_tx: 0,
            pause_rx: 0,
            tx_memo: (u64::MAX, TimeDelta::ZERO),
            virtual_backlog: 0,
            last_arrival: fncc_des::SimTime::ZERO,
            ingress_bytes: 0,
            upstream_paused: false,
            int_rec: IntRecord {
                bandwidth: spec.bw,
                ts: fncc_des::SimTime::ZERO,
                tx_bytes: 0,
                qlen: 0,
            },
            rocc_rate: spec.bw.as_f64(),
            rocc_prev_q: 0.0,
        }
    }

    /// Serialization time of `bytes` at this port's *drain* rate, memoized
    /// on the last distinct size (identical result to
    /// [`Bandwidth::tx_time`] at [`Self::drain_bw`]).
    #[inline]
    pub fn tx_time(&mut self, bytes: u64) -> TimeDelta {
        if self.tx_memo.0 != bytes {
            self.tx_memo = (bytes, self.drain_bw.tx_time(bytes));
        }
        self.tx_memo.1
    }

    /// Current effective drain rate (`bw` unless capped by
    /// [`Self::set_drain_bw`]).
    #[inline]
    pub fn drain_bw(&self) -> Bandwidth {
        self.drain_bw
    }

    /// Cap the port's effective drain rate at `rate` (residual-capacity
    /// push from the hybrid backend's fluid half). Clamped to
    /// `[bw/100, bw]` so serialization time stays finite; takes effect
    /// from the *next* frame — the one in flight keeps its scheduled
    /// TxDone (deterministic regardless of when the push lands within a
    /// frame). Invalidates the serialization-time memo.
    pub fn set_drain_bw(&mut self, rate: Bandwidth) {
        let floor = Bandwidth::bps((self.bw.as_bps() / 100).max(1));
        let capped = rate.clamp(floor, self.bw);
        if capped != self.drain_bw {
            self.drain_bw = capped;
            self.tx_memo = (u64::MAX, TimeDelta::ZERO);
        }
    }

    /// Current phantom egress backlog (bytes); see [`Self::set_backlog`].
    #[inline]
    pub fn backlog(&self) -> u64 {
        self.virtual_backlog
    }

    /// Set the phantom egress backlog (hybrid backend: the fluid
    /// background's standing queue on this link). Takes effect on the
    /// next signal read / frame delivery.
    #[inline]
    pub fn set_backlog(&mut self, bytes: u64) {
        self.virtual_backlog = bytes;
    }

    /// Queue depth as congestion signals must see it: real queued bytes
    /// plus the phantom backlog.
    #[inline]
    pub fn signal_qlen(&self) -> u64 {
        self.queue_bytes + self.virtual_backlog
    }

    /// One-way delivery delay for a frame put on the wire at `now`:
    /// propagation plus the FIFO wait behind the phantom backlog (its
    /// serialization time at line rate), clamped so arrivals stay in
    /// transmission order even when the backlog shrinks between frames.
    #[inline]
    pub fn wire_delay(&mut self, now: fncc_des::SimTime) -> TimeDelta {
        let mut d = self.prop;
        if self.virtual_backlog > 0 {
            d += self.bw.tx_time(self.virtual_backlog);
        }
        let at = now + d;
        let at = at.max(self.last_arrival);
        self.last_arrival = at;
        at.since(now)
    }

    /// Queue a data-class frame (data, ACK or CNP).
    #[inline]
    pub fn enqueue(&mut self, pkt: Box<Packet>) {
        debug_assert!(!pkt.kind.is_control());
        self.queue_bytes += pkt.size as u64;
        self.queue.push_back(pkt);
    }

    /// Queue a control frame (strict priority).
    #[inline]
    pub fn enqueue_ctrl(&mut self, pkt: Box<Packet>) {
        debug_assert!(pkt.kind.is_control());
        self.ctrl.push_back(pkt);
    }

    /// Frames waiting in the data FIFO.
    #[inline]
    pub fn queued_frames(&self) -> usize {
        self.queue.len()
    }

    /// True if nothing is being serialized.
    #[inline]
    pub fn idle(&self) -> bool {
        self.in_flight.is_none()
    }

    /// Remove every queued frame (control first, then data) without
    /// transmitting them — link-fault teardown. The frame in flight (if
    /// any) is left alone: its `TxDone` is already scheduled, and the
    /// switch discards it there once it sees the port is dead.
    pub fn purge_queues(&mut self) -> Vec<Box<Packet>> {
        self.queue_bytes = 0;
        self.ctrl.drain(..).chain(self.queue.drain(..)).collect()
    }

    /// Take the next frame to serialize, honouring control priority and the
    /// PFC pause state (pause gates the data class only). Updates
    /// `queue_bytes`.
    #[inline]
    pub fn dequeue(&mut self) -> Option<Box<Packet>> {
        if let Some(c) = self.ctrl.pop_front() {
            return Some(c);
        }
        if self.paused {
            return None;
        }
        let pkt = self.queue.pop_front()?;
        self.queue_bytes -= pkt.size as u64;
        Some(pkt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{FlowId, HostId};
    use crate::packet::PacketKind;
    use fncc_des::time::SimTime;

    fn spec() -> PortSpec {
        PortSpec {
            peer: NodeRef::Host(HostId(0)),
            peer_port: 0,
            bw: Bandwidth::gbps(100),
            prop: TimeDelta::from_us(1),
        }
    }

    fn data(size: u32) -> Box<Packet> {
        Packet::data(
            FlowId(0),
            HostId(0),
            HostId(1),
            0,
            size - 62,
            size,
            SimTime::ZERO,
        )
    }

    #[test]
    fn fifo_order_and_byte_accounting() {
        let mut p = Port::from_spec(&spec());
        p.enqueue(data(100));
        p.enqueue(data(200));
        assert_eq!(p.queue_bytes, 300);
        assert_eq!(p.queued_frames(), 2);
        let a = p.dequeue().unwrap();
        assert_eq!(a.size, 100);
        assert_eq!(p.queue_bytes, 200);
        let b = p.dequeue().unwrap();
        assert_eq!(b.size, 200);
        assert_eq!(p.queue_bytes, 0);
        assert!(p.dequeue().is_none());
    }

    #[test]
    fn control_frames_have_strict_priority() {
        let mut p = Port::from_spec(&spec());
        p.enqueue(data(100));
        p.enqueue_ctrl(Packet::pfc(PacketKind::PfcPause, 64, SimTime::ZERO));
        let first = p.dequeue().unwrap();
        assert_eq!(first.kind, PacketKind::PfcPause);
        let second = p.dequeue().unwrap();
        assert_eq!(second.kind, PacketKind::Data);
    }

    #[test]
    fn pause_gates_data_but_not_control() {
        let mut p = Port::from_spec(&spec());
        p.enqueue(data(100));
        p.enqueue_ctrl(Packet::pfc(PacketKind::PfcResume, 64, SimTime::ZERO));
        p.paused = true;
        // Control still flows.
        assert_eq!(p.dequeue().unwrap().kind, PacketKind::PfcResume);
        // Data is gated…
        assert!(p.dequeue().is_none());
        assert_eq!(p.queue_bytes, 100);
        // …until resumed.
        p.paused = false;
        assert_eq!(p.dequeue().unwrap().kind, PacketKind::Data);
    }

    #[test]
    fn drain_bw_caps_tx_time_and_clamps() {
        let mut p = Port::from_spec(&spec());
        let full = p.tx_time(1500);
        p.set_drain_bw(Bandwidth::gbps(50));
        assert_eq!(p.drain_bw(), Bandwidth::gbps(50));
        let capped = p.tx_time(1500);
        assert_eq!(capped, Bandwidth::gbps(50).tx_time(1500));
        assert!(capped > full);
        // Restoring the full rate restores the memoized answer.
        p.set_drain_bw(Bandwidth::gbps(100));
        assert_eq!(p.tx_time(1500), full);
        // Above-line-rate and zero pushes clamp to [bw/100, bw].
        p.set_drain_bw(Bandwidth::gbps(400));
        assert_eq!(p.drain_bw(), Bandwidth::gbps(100));
        p.set_drain_bw(Bandwidth::bps(0));
        assert_eq!(p.drain_bw(), Bandwidth::gbps(1));
    }

    #[test]
    fn idle_tracks_in_flight() {
        let mut p = Port::from_spec(&spec());
        assert!(p.idle());
        p.in_flight = Some(data(64));
        assert!(!p.idle());
    }
}
