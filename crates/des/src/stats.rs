//! Measurement primitives shared by all metric collectors.

use crate::time::{SimTime, TimeDelta};

/// A named time series of `(t, value)` samples.
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    /// Series label used in CSV headers and printed tables.
    pub name: String,
    times: Vec<SimTime>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// New empty series with a label.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            times: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Append a sample. Samples must be pushed in nondecreasing time order.
    pub fn push(&mut self, t: SimTime, v: f64) {
        debug_assert!(self.times.last().is_none_or(|&last| t >= last));
        self.times.push(t);
        self.values.push(v);
    }

    /// Append a sample without the debug ordering assertion. For ingest
    /// paths replaying externally-produced data (artifact files), where
    /// ordering is checked once at serialization/use time via
    /// [`validate_ordering`](TimeSeries::validate_ordering) instead of per
    /// push.
    pub fn push_unchecked(&mut self, t: SimTime, v: f64) {
        self.times.push(t);
        self.values.push(v);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Iterate `(t, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// Sampled values only.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Sample timestamps only.
    pub fn times(&self) -> &[SimTime] {
        &self.times
    }

    /// Maximum value (0 for an empty series).
    pub fn max(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max)
    }

    /// Arithmetic mean of the samples (0 for an empty series).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Mean over samples within `[from, to)`.
    pub fn mean_in(&self, from: SimTime, to: SimTime) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for (t, v) in self.iter() {
            if t >= from && t < to {
                sum += v;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Maximum over samples within `[from, to)`.
    pub fn max_in(&self, from: SimTime, to: SimTime) -> f64 {
        self.iter()
            .filter(|&(t, _)| t >= from && t < to)
            .map(|(_, v)| v)
            .fold(0.0, f64::max)
    }

    /// First time at which the value satisfies `pred`, if any.
    pub fn first_time_where(&self, mut pred: impl FnMut(f64) -> bool) -> Option<SimTime> {
        self.iter().find(|&(_, v)| pred(v)).map(|(t, _)| t)
    }

    /// First out-of-order sample, as `(index, previous_time, time)`, if any.
    ///
    /// [`push`](TimeSeries::push) asserts monotonicity only in debug
    /// builds; release-mode serializers call this (via
    /// [`validate_ordering`](TimeSeries::validate_ordering)) so a disordered
    /// series surfaces as a descriptive error instead of corrupt CSV/JSON.
    pub fn first_disorder(&self) -> Option<(usize, SimTime, SimTime)> {
        self.times
            .windows(2)
            .position(|w| w[1] < w[0])
            .map(|i| (i + 1, self.times[i], self.times[i + 1]))
    }

    /// Err with a descriptive message if samples are not in nondecreasing
    /// time order.
    pub fn validate_ordering(&self) -> Result<(), String> {
        match self.first_disorder() {
            None => Ok(()),
            Some((ix, prev, t)) => Err(format!(
                "series {:?}: out-of-order sample at index {ix} ({t} after {prev})",
                self.name
            )),
        }
    }
}

/// Exponentially weighted moving average with a fixed smoothing factor.
#[derive(Clone, Copy, Debug)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// `alpha` is the weight of each new observation, in `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        Ewma { alpha, value: None }
    }

    /// Fold in an observation and return the updated average.
    pub fn update(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(v) => v + self.alpha * (x - v),
        };
        self.value = Some(v);
        v
    }

    /// Current average, if any observation has been folded in.
    pub fn get(&self) -> Option<f64> {
        self.value
    }
}

/// An unsorted bag of samples with percentile queries (nearest-rank).
#[derive(Clone, Debug, Default)]
pub struct Samples {
    data: Vec<f64>,
    sorted: bool,
}

impl Samples {
    /// New empty bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one sample.
    pub fn push(&mut self, x: f64) {
        self.data.push(x);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Arithmetic mean (0 for an empty bag).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f64>() / self.data.len() as f64
        }
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.data
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
    }

    /// Nearest-rank percentile, `p` in `[0, 100]`. Returns 0 for empty bags.
    pub fn percentile(&mut self, p: f64) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let n = self.data.len();
        let rank = ((p / 100.0) * n as f64).ceil().max(1.0) as usize;
        self.data[rank.min(n) - 1]
    }

    /// Median (p50).
    pub fn median(&mut self) -> f64 {
        self.percentile(50.0)
    }

    /// Largest sample (0 for empty).
    pub fn max(&mut self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        *self.data.last().unwrap()
    }
}

/// Jain's fairness index over per-flow throughputs:
/// `(Σx)² / (n · Σx²)`; 1.0 means perfectly fair. Empty input yields 0.
pub fn jain_index(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 1.0; // all zero: degenerate but "equal"
    }
    sum * sum / (xs.len() as f64 * sq)
}

/// Converts a monotonically growing byte counter into an interval rate.
///
/// Call [`RateMeter::sample`] at each sampling tick with the counter's
/// current value; it returns the average rate in bits/s since the previous
/// tick.
#[derive(Clone, Copy, Debug)]
pub struct RateMeter {
    last_bytes: u64,
    last_time: SimTime,
}

impl RateMeter {
    /// Start metering from `(t0, bytes0)`.
    pub fn new(t0: SimTime, bytes0: u64) -> Self {
        RateMeter {
            last_bytes: bytes0,
            last_time: t0,
        }
    }

    /// Rate in bits/s over `(last_tick, now]`; returns 0 for a zero-length
    /// interval. Counters must be monotone.
    pub fn sample(&mut self, now: SimTime, bytes: u64) -> f64 {
        let dt = now.since(self.last_time);
        let db = bytes.saturating_sub(self.last_bytes);
        self.last_bytes = bytes;
        self.last_time = now;
        if dt.is_zero() {
            0.0
        } else {
            (db as f64 * 8.0) / dt.as_secs_f64()
        }
    }
}

/// Mean over a slice (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// A windowed reduction of a time series: averages consecutive samples into
/// buckets of `window` so long plots can be printed compactly.
pub fn downsample(series: &TimeSeries, window: TimeDelta) -> TimeSeries {
    let mut out = TimeSeries::new(series.name.clone());
    if series.is_empty() || window.is_zero() {
        return out;
    }
    let mut bucket_start = series.times()[0];
    let mut acc = 0.0;
    let mut n = 0usize;
    for (t, v) in series.iter() {
        if t.since(bucket_start) >= window && n > 0 {
            out.push(bucket_start, acc / n as f64);
            bucket_start = t;
            acc = 0.0;
            n = 0;
        }
        acc += v;
        n += 1;
    }
    if n > 0 {
        out.push(bucket_start, acc / n as f64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_series_basic_stats() {
        let mut s = TimeSeries::new("q");
        for i in 0..10u64 {
            s.push(SimTime::from_us(i), i as f64);
        }
        assert_eq!(s.len(), 10);
        assert_eq!(s.max(), 9.0);
        assert!((s.mean() - 4.5).abs() < 1e-12);
        assert_eq!(s.first_time_where(|v| v > 5.0), Some(SimTime::from_us(6)));
        assert_eq!(
            s.mean_in(SimTime::from_us(2), SimTime::from_us(5)),
            (2.0 + 3.0 + 4.0) / 3.0
        );
        assert_eq!(s.max_in(SimTime::from_us(0), SimTime::from_us(4)), 3.0);
    }

    #[test]
    fn disorder_is_detected_at_validation_time() {
        let mut s = TimeSeries::new("q");
        s.push_unchecked(SimTime::from_us(1), 1.0);
        s.push_unchecked(SimTime::from_us(3), 2.0);
        s.push_unchecked(SimTime::from_us(2), 3.0);
        let (ix, prev, t) = s.first_disorder().expect("disorder present");
        assert_eq!(ix, 2);
        assert_eq!(prev, SimTime::from_us(3));
        assert_eq!(t, SimTime::from_us(2));
        let err = s.validate_ordering().unwrap_err();
        assert!(err.contains("\"q\"") && err.contains("index 2"), "{err}");
    }

    #[test]
    fn ordered_series_validate_clean() {
        let mut s = TimeSeries::new("ok");
        for i in 0..5u64 {
            s.push(SimTime::from_us(i), i as f64);
        }
        // Equal timestamps are legal (same-instant samples).
        s.push(SimTime::from_us(4), 9.0);
        assert!(s.first_disorder().is_none());
        assert!(s.validate_ordering().is_ok());
        assert!(TimeSeries::new("empty").validate_ordering().is_ok());
    }

    #[test]
    fn empty_series_is_safe() {
        let s = TimeSeries::new("e");
        assert!(s.is_empty());
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.first_time_where(|v| v > 0.0), None);
    }

    #[test]
    fn ewma_converges_towards_constant_input() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.get(), None);
        e.update(0.0);
        for _ in 0..50 {
            e.update(10.0);
        }
        assert!((e.get().unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn ewma_rejects_zero_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut s = Samples::new();
        for i in 1..=100 {
            s.push(i as f64);
        }
        assert_eq!(s.percentile(50.0), 50.0);
        assert_eq!(s.percentile(95.0), 95.0);
        assert_eq!(s.percentile(99.0), 99.0);
        assert_eq!(s.percentile(100.0), 100.0);
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.median(), 50.0);
        assert_eq!(s.max(), 100.0);
        assert!((s.mean() - 50.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_single_sample() {
        let mut s = Samples::new();
        s.push(7.5);
        assert_eq!(s.percentile(1.0), 7.5);
        assert_eq!(s.percentile(99.0), 7.5);
    }

    #[test]
    fn empty_samples_are_safe() {
        let mut s = Samples::new();
        assert_eq!(s.percentile(95.0), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn jain_index_bounds() {
        assert_eq!(jain_index(&[]), 0.0);
        assert!((jain_index(&[5.0, 5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        // One flow hogging everything among n flows → index 1/n.
        let idx = jain_index(&[1.0, 0.0, 0.0, 0.0]);
        assert!((idx - 0.25).abs() < 1e-12);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn rate_meter_computes_interval_rate() {
        let mut m = RateMeter::new(SimTime::ZERO, 0);
        // 1250 bytes over 1 us = 10 Gb/s.
        let r = m.sample(SimTime::from_us(1), 1250);
        assert!((r - 10e9).abs() / 10e9 < 1e-9, "rate {r}");
        // No progress → zero rate.
        let r2 = m.sample(SimTime::from_us(2), 1250);
        assert_eq!(r2, 0.0);
        // Zero-length interval → 0, not NaN.
        let r3 = m.sample(SimTime::from_us(2), 9999);
        assert_eq!(r3, 0.0);
    }

    #[test]
    fn downsample_averages_buckets() {
        let mut s = TimeSeries::new("d");
        for i in 0..10u64 {
            s.push(SimTime::from_us(i), i as f64);
        }
        let d = downsample(&s, TimeDelta::from_us(5));
        assert_eq!(d.len(), 2);
        assert!((d.values()[0] - 2.0).abs() < 1e-12); // mean of 0..=4
        assert!((d.values()[1] - 7.0).abs() < 1e-12); // mean of 5..=9
    }

    #[test]
    fn downsample_empty_and_zero_window() {
        let s = TimeSeries::new("d");
        assert!(downsample(&s, TimeDelta::from_us(1)).is_empty());
        let mut s2 = TimeSeries::new("d2");
        s2.push(SimTime::ZERO, 1.0);
        assert!(downsample(&s2, TimeDelta::ZERO).is_empty());
    }
}
