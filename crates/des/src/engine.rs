//! The event loop: a time-ordered heap of model events with deterministic
//! tie-breaking.
//!
//! The engine is generic over the [`Model`] so the hot dispatch path is fully
//! monomorphised — no boxing, no dynamic dispatch. Models schedule follow-up
//! events through the [`Scheduler`] handle passed to every callback; the
//! engine drains those into the heap after each dispatch.

use crate::time::{SimTime, TimeDelta};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A simulation model: owns all mutable world state and reacts to events.
pub trait Model {
    /// The event alphabet of this model.
    type Event;

    /// Handle one event at simulation time `now`, scheduling any follow-ups
    /// on `sched`.
    fn handle(&mut self, now: SimTime, ev: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// Handle through which a model schedules future events during a callback.
pub struct Scheduler<E> {
    now: SimTime,
    pending: Vec<(SimTime, E)>,
}

impl<E> Scheduler<E> {
    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `ev` at absolute time `t`. Scheduling in the past is a logic
    /// error and panics in debug builds; in release it is clamped to `now`.
    #[inline]
    pub fn at(&mut self, t: SimTime, ev: E) {
        debug_assert!(
            t >= self.now,
            "scheduling into the past: {t} < {}",
            self.now
        );
        self.pending.push((t.max(self.now), ev));
    }

    /// Schedule `ev` after a delay of `d` from now.
    #[inline]
    pub fn after(&mut self, d: TimeDelta, ev: E) {
        self.pending.push((self.now + d, ev));
    }

    /// Schedule `ev` immediately (same timestamp, FIFO after the current
    /// event's earlier insertions).
    #[inline]
    pub fn immediate(&mut self, ev: E) {
        self.pending.push((self.now, ev));
    }

    /// Number of events queued by the current callback so far.
    #[inline]
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

struct HeapEntry<E> {
    time: SimTime,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    // Reversed: BinaryHeap is a max-heap, we want earliest (time, seq) first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Why a [`Engine::run_until`] call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The horizon was reached with events still pending.
    HorizonReached,
    /// The event heap drained before the horizon.
    Idle,
    /// The event budget was exhausted (runaway-model backstop).
    BudgetExhausted,
}

/// The discrete-event engine driving a [`Model`].
pub struct Engine<M: Model> {
    heap: BinaryHeap<HeapEntry<M::Event>>,
    sched: Scheduler<M::Event>,
    time: SimTime,
    seq: u64,
    events_processed: u64,
    event_budget: u64,
    /// The model being simulated; public so callers can inspect/mutate state
    /// between phases (e.g. inject flows, read metrics).
    pub model: M,
}

impl<M: Model> Engine<M> {
    /// Create an engine at t = 0 around `model`.
    pub fn new(model: M) -> Self {
        Engine {
            heap: BinaryHeap::with_capacity(1024),
            sched: Scheduler {
                now: SimTime::ZERO,
                pending: Vec::with_capacity(16),
            },
            time: SimTime::ZERO,
            seq: 0,
            events_processed: 0,
            event_budget: u64::MAX,
            model,
        }
    }

    /// Cap the total number of events processed (safety backstop for tests).
    pub fn set_event_budget(&mut self, budget: u64) {
        self.event_budget = budget;
    }

    /// Current simulation time (time of the most recently dispatched event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Total events dispatched so far.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of events waiting in the heap.
    #[inline]
    pub fn queue_len(&self) -> usize {
        self.heap.len()
    }

    /// Schedule an event from outside a model callback (setup phase).
    pub fn schedule(&mut self, t: SimTime, ev: M::Event) {
        assert!(
            t >= self.time,
            "scheduling into the past: {t} < {}",
            self.time
        );
        self.heap.push(HeapEntry {
            time: t,
            seq: self.seq,
            ev,
        });
        self.seq += 1;
    }

    /// Dispatch the single earliest event. Returns `false` if the heap is
    /// empty. Time advances to the event's timestamp.
    pub fn step(&mut self) -> bool {
        let Some(entry) = self.heap.pop() else {
            return false;
        };
        debug_assert!(entry.time >= self.time, "event heap went backwards");
        self.time = entry.time;
        self.sched.now = entry.time;
        self.model.handle(entry.time, entry.ev, &mut self.sched);
        self.events_processed += 1;
        for (t, ev) in self.sched.pending.drain(..) {
            self.heap.push(HeapEntry {
                time: t,
                seq: self.seq,
                ev,
            });
            self.seq += 1;
        }
        true
    }

    /// Run until simulation time strictly exceeds `horizon`, the heap drains,
    /// or the event budget runs out. Events *at* the horizon are processed.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        loop {
            match self.heap.peek() {
                None => return RunOutcome::Idle,
                Some(e) if e.time > horizon => {
                    // Leave future events queued; clock parks at the horizon.
                    self.time = self.time.max(horizon);
                    return RunOutcome::HorizonReached;
                }
                Some(_) => {}
            }
            if self.events_processed >= self.event_budget {
                return RunOutcome::BudgetExhausted;
            }
            self.step();
        }
    }

    /// Run until the heap drains or the budget runs out.
    pub fn run_until_idle(&mut self) -> RunOutcome {
        self.run_until(SimTime::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A model that records the order events were observed in.
    struct Recorder {
        seen: Vec<(SimTime, u32)>,
        /// (delay, tag) pairs to schedule on seeing event 0.
        chain: Vec<(TimeDelta, u32)>,
    }

    impl Model for Recorder {
        type Event = u32;
        fn handle(&mut self, now: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
            self.seen.push((now, ev));
            if ev == 0 {
                for &(d, tag) in &self.chain {
                    sched.after(d, tag);
                }
            }
        }
    }

    fn recorder() -> Recorder {
        Recorder {
            seen: Vec::new(),
            chain: Vec::new(),
        }
    }

    #[test]
    fn events_dispatch_in_time_order() {
        let mut eng = Engine::new(recorder());
        eng.schedule(SimTime::from_us(5), 5);
        eng.schedule(SimTime::from_us(1), 1);
        eng.schedule(SimTime::from_us(3), 3);
        assert_eq!(eng.run_until_idle(), RunOutcome::Idle);
        let tags: Vec<u32> = eng.model.seen.iter().map(|&(_, e)| e).collect();
        assert_eq!(tags, vec![1, 3, 5]);
        assert_eq!(eng.now(), SimTime::from_us(5));
        assert_eq!(eng.events_processed(), 3);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut eng = Engine::new(recorder());
        let t = SimTime::from_us(7);
        for tag in 0..50u32 {
            eng.schedule(t, tag + 10);
        }
        eng.run_until_idle();
        let tags: Vec<u32> = eng.model.seen.iter().map(|&(_, e)| e).collect();
        assert_eq!(tags, (10..60).collect::<Vec<_>>());
    }

    #[test]
    fn callbacks_can_schedule_followups() {
        let mut eng = Engine::new(recorder());
        eng.model.chain = vec![(TimeDelta::from_us(2), 20), (TimeDelta::from_us(1), 10)];
        eng.schedule(SimTime::from_us(1), 0);
        eng.run_until_idle();
        assert_eq!(
            eng.model.seen,
            vec![
                (SimTime::from_us(1), 0),
                (SimTime::from_us(2), 10),
                (SimTime::from_us(3), 20),
            ]
        );
    }

    #[test]
    fn immediate_events_run_at_same_time_after_current() {
        struct Imm {
            seen: Vec<u32>,
        }
        impl Model for Imm {
            type Event = u32;
            fn handle(&mut self, _now: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
                self.seen.push(ev);
                if ev == 0 {
                    sched.immediate(1);
                    sched.immediate(2);
                }
            }
        }
        let mut eng = Engine::new(Imm { seen: vec![] });
        eng.schedule(SimTime::from_us(4), 0);
        eng.schedule(SimTime::from_us(4), 9); // inserted before the immediates
        eng.run_until_idle();
        assert_eq!(eng.model.seen, vec![0, 9, 1, 2]);
        assert_eq!(eng.now(), SimTime::from_us(4));
    }

    #[test]
    fn run_until_parks_at_horizon() {
        let mut eng = Engine::new(recorder());
        eng.schedule(SimTime::from_us(1), 1);
        eng.schedule(SimTime::from_us(10), 2);
        assert_eq!(
            eng.run_until(SimTime::from_us(5)),
            RunOutcome::HorizonReached
        );
        assert_eq!(eng.model.seen.len(), 1);
        assert_eq!(eng.now(), SimTime::from_us(5));
        assert_eq!(eng.queue_len(), 1);
        // Resuming picks the remaining event up.
        assert_eq!(eng.run_until(SimTime::from_us(10)), RunOutcome::Idle);
        assert_eq!(eng.model.seen.len(), 2);
    }

    #[test]
    fn horizon_is_inclusive() {
        let mut eng = Engine::new(recorder());
        eng.schedule(SimTime::from_us(5), 1);
        assert_eq!(eng.run_until(SimTime::from_us(5)), RunOutcome::Idle);
        assert_eq!(eng.model.seen.len(), 1);
    }

    #[test]
    fn event_budget_stops_runaway_models() {
        struct Loopy;
        impl Model for Loopy {
            type Event = ();
            fn handle(&mut self, _now: SimTime, _ev: (), sched: &mut Scheduler<()>) {
                sched.after(TimeDelta::from_ns(1), ());
            }
        }
        let mut eng = Engine::new(Loopy);
        eng.set_event_budget(1000);
        eng.schedule(SimTime::ZERO, ());
        assert_eq!(eng.run_until_idle(), RunOutcome::BudgetExhausted);
        assert_eq!(eng.events_processed(), 1000);
    }

    #[test]
    #[should_panic]
    fn scheduling_into_the_past_panics() {
        let mut eng = Engine::new(recorder());
        eng.schedule(SimTime::from_us(5), 1);
        eng.run_until_idle();
        eng.schedule(SimTime::from_us(1), 2);
    }

    #[test]
    fn empty_engine_is_idle() {
        let mut eng = Engine::new(recorder());
        assert_eq!(eng.run_until_idle(), RunOutcome::Idle);
        assert!(!eng.step());
        assert_eq!(eng.now(), SimTime::ZERO);
    }
}
