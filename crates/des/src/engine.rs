//! The event loop: a time-ordered event queue of model events with
//! deterministic tie-breaking.
//!
//! The engine is generic over the [`Model`] so the hot dispatch path is fully
//! monomorphised — no boxing, no dynamic dispatch. Models schedule follow-up
//! events through the [`Scheduler`] handle passed to every callback; the
//! engine drains those into the queue after each dispatch.
//!
//! Two event-queue implementations share identical `(time, prio, seq)`
//! dispatch semantics (see [`QueueKind`]): the default hierarchical timing wheel
//! (O(1) amortized push/pop — see [`crate::wheel`]) and the classic
//! `BinaryHeap`, kept as the reference oracle for equivalence tests and
//! benchmarks. Select with [`Engine::with_queue`] or the `FNCC_DES_SCHED`
//! environment variable (`wheel`/`heap`).

use crate::time::{SimTime, TimeDelta};
use crate::wheel::{Entry, TimingWheel};
use fncc_obs::{PhaseId, Profiler};
use std::collections::BinaryHeap;
use std::time::Instant;

/// A simulation model: owns all mutable world state and reacts to events.
pub trait Model {
    /// The event alphabet of this model.
    type Event;

    /// Handle one event at simulation time `now`, scheduling any follow-ups
    /// on `sched`.
    fn handle(&mut self, now: SimTime, ev: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// Destination tag meaning "this engine's own queue" (the only destination
/// outside the sharded runtime). Anything else names a shard whose mailbox
/// the event is bound for — see [`Scheduler::remote`].
pub const LOCAL_SHARD: u16 = u16::MAX;

/// Handle through which a model schedules future events during a callback.
pub struct Scheduler<E> {
    now: SimTime,
    /// `(fire time, destination shard, ordering domain, event)`.
    pending: Vec<(SimTime, u16, u16, E)>,
    /// Ordering domain stamped onto every schedule until changed (see
    /// [`Scheduler::set_domain`]). 0 unless a model opts into domain
    /// tagging.
    domain: u16,
    clamped: u64,
}

impl<E> Scheduler<E> {
    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Set the ordering domain stamped onto subsequently scheduled events.
    ///
    /// Same-`(time, prio)` ties dispatch in `(domain, schedule order)`
    /// order: the domain occupies the sequence number's high bits (see
    /// [`SEQ_SHARD_SHIFT`]), so events from a lower domain win ties
    /// regardless of which engine scheduled them or when. A model that tags
    /// every schedule with a domain that is (a) a pure function of the
    /// event being handled and (b) aligned with the shard partition makes
    /// its tie-breaking identical between the single-engine and sharded
    /// executions — the per-domain schedule subsequence is the same in
    /// both, even though the global interleaving is not. Models that never
    /// call this keep every event in domain 0, i.e. plain schedule order.
    #[inline]
    pub fn set_domain(&mut self, d: u16) {
        self.domain = d;
    }

    /// The ordering domain currently stamped onto schedules.
    #[inline]
    pub fn domain(&self) -> u16 {
        self.domain
    }

    /// Schedule `ev` at absolute time `t`. Scheduling in the past is a logic
    /// error: it panics in debug builds; in release it is clamped to `now`
    /// and counted (see [`Engine::clamped_schedules`]), so silent model bugs
    /// stay visible in run reports.
    #[inline]
    pub fn at(&mut self, t: SimTime, ev: E) {
        debug_assert!(
            t >= self.now,
            "scheduling into the past: {t} < {}",
            self.now
        );
        if t < self.now {
            self.clamped += 1;
        }
        self.pending
            .push((t.max(self.now), LOCAL_SHARD, self.domain, ev));
    }

    /// Schedule `ev` after a delay of `d` from now.
    #[inline]
    pub fn after(&mut self, d: TimeDelta, ev: E) {
        self.pending
            .push((self.now + d, LOCAL_SHARD, self.domain, ev));
    }

    /// Schedule `ev` immediately (same timestamp, FIFO after the current
    /// event's earlier insertions).
    #[inline]
    pub fn immediate(&mut self, ev: E) {
        self.pending.push((self.now, LOCAL_SHARD, self.domain, ev));
    }

    /// Schedule `ev` after `d` *in another shard's engine*. The event is
    /// routed to the engine's [outbox](Engine::outbox_mut) instead of the
    /// local queue, consuming a sequence number exactly as a local schedule
    /// would — so the `(prio, seq)` it carries is the position the sending
    /// shard's domain order assigns it. Only the sharded fabric calls this;
    /// `dst` must not be [`LOCAL_SHARD`].
    #[inline]
    pub fn remote(&mut self, d: TimeDelta, dst: u16, ev: E) {
        debug_assert_ne!(dst, LOCAL_SHARD);
        self.pending.push((self.now + d, dst, self.domain, ev));
    }

    /// Number of events queued by the current callback so far.
    #[inline]
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

/// Which event-queue implementation an [`Engine`] dispatches from. Both are
/// exactly `(time, prio, seq)`-ordered, so runs are bit-identical across
/// kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum QueueKind {
    /// Hierarchical timing wheel (default; O(1) amortized).
    #[default]
    Wheel,
    /// Binary heap (reference oracle; O(log n)).
    Heap,
}

impl QueueKind {
    /// Resolve from the `FNCC_DES_SCHED` environment variable
    /// (`heap` selects the oracle; anything else, or unset, the wheel).
    pub fn from_env() -> QueueKind {
        match std::env::var("FNCC_DES_SCHED") {
            Ok(v) if v.eq_ignore_ascii_case("heap") => QueueKind::Heap,
            _ => QueueKind::Wheel,
        }
    }
}

enum EventQueue<E> {
    Wheel(TimingWheel<E>),
    Heap(BinaryHeap<Entry<E>>),
}

impl<E> EventQueue<E> {
    fn new(kind: QueueKind) -> Self {
        match kind {
            QueueKind::Wheel => EventQueue::Wheel(TimingWheel::new()),
            QueueKind::Heap => EventQueue::Heap(BinaryHeap::with_capacity(1024)),
        }
    }

    #[inline]
    fn push(&mut self, time: SimTime, prio: SimTime, seq: u64, ev: E) {
        match self {
            EventQueue::Wheel(w) => w.push(time, prio, seq, ev),
            EventQueue::Heap(h) => h.push(Entry {
                time,
                prio,
                seq,
                ev,
            }),
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<Entry<E>> {
        match self {
            EventQueue::Wheel(w) => w.pop(),
            EventQueue::Heap(h) => h.pop(),
        }
    }

    /// Time of the earliest queued event (the wheel advances its cursor).
    #[inline]
    fn peek_time(&mut self) -> Option<SimTime> {
        match self {
            EventQueue::Wheel(w) => w.peek_time(),
            EventQueue::Heap(h) => h.peek().map(|e| e.time),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        match self {
            EventQueue::Wheel(w) => w.len(),
            EventQueue::Heap(h) => h.len(),
        }
    }

    /// Per-level cascade counts (wheel only).
    fn cascade_counts(&self) -> Option<&[u64]> {
        match self {
            EventQueue::Wheel(w) => Some(w.cascade_counts()),
            EventQueue::Heap(_) => None,
        }
    }
}

/// Why a [`Engine::run_until`] call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The horizon was reached with events still pending.
    HorizonReached,
    /// The event queue drained before the horizon.
    Idle,
    /// The event budget was exhausted (runaway-model backstop).
    BudgetExhausted,
}

/// Heartbeat state for the `--progress`/`FNCC_PROGRESS` stderr line.
struct Progress {
    started: Instant,
    last_print: Instant,
    /// True once a heartbeat line was written (so the run can close it).
    printed: bool,
}

/// How often (in events) the progress-enabled loop checks the wall clock.
const PROGRESS_EVERY: u64 = 1 << 18;

/// Domain width inside a sequence number: every assigned sequence is
/// `(domain << SEQ_SHARD_SHIFT) | counter`, so same-`(time, prio)` ties
/// dispatch domain-major and only fall back to the engine-local schedule
/// counter within a domain (2^48 schedules per engine before the counter
/// could bleed into the domain bits — far beyond any run). See
/// [`Scheduler::set_domain`] for why this makes sharded and single-engine
/// executions tie-break identically.
pub const SEQ_SHARD_SHIFT: u32 = 48;

/// An event bound for another shard, drained from a sharded engine's
/// outbox at epoch boundaries and [injected](Engine::inject) into the
/// destination engine with its source-shard `(prio, seq)` intact.
pub struct Outbound<E> {
    /// Destination shard id.
    pub dst: u16,
    /// Absolute time the event fires at.
    pub time: SimTime,
    /// Simulation time it was scheduled at in the source shard.
    pub prio: SimTime,
    /// The source engine's sequence number it consumed.
    pub seq: u64,
    /// The event payload.
    pub ev: E,
}

/// The discrete-event engine driving a [`Model`].
pub struct Engine<M: Model> {
    queue: EventQueue<M::Event>,
    sched: Scheduler<M::Event>,
    time: SimTime,
    seq: u64,
    events_processed: u64,
    event_budget: u64,
    clamped_schedules: u64,
    peak_queue_len: usize,
    /// Self-profiling spans over the hot loop (scheduler pop, dispatch).
    /// Off unless `FNCC_PROFILE` is set; see [`fncc_obs::Profiler`].
    profiler: Profiler,
    ph_pop: PhaseId,
    ph_dispatch: PhaseId,
    /// Heartbeat line for long runs; `Some` iff `FNCC_PROGRESS` is set.
    progress: Option<Progress>,
    /// Events scheduled via [`Scheduler::remote`], awaiting epoch exchange.
    outbox: Vec<Outbound<M::Event>>,
    /// The model being simulated; public so callers can inspect/mutate state
    /// between phases (e.g. inject flows, read metrics).
    pub model: M,
}

impl<M: Model> Engine<M> {
    /// Create an engine at t = 0 around `model`, using the queue kind from
    /// the environment ([`QueueKind::from_env`]; default: timing wheel).
    pub fn new(model: M) -> Self {
        Self::with_queue(model, QueueKind::from_env())
    }

    /// Create an engine with an explicit event-queue implementation.
    pub fn with_queue(model: M, kind: QueueKind) -> Self {
        let mut profiler = Profiler::from_env();
        let ph_pop = profiler.phase("sched_pop");
        let ph_dispatch = profiler.phase("dispatch");
        let progress = match std::env::var("FNCC_PROGRESS") {
            Ok(v) if !v.is_empty() && v != "0" => Some(Progress {
                started: Instant::now(),
                last_print: Instant::now(),
                printed: false,
            }),
            _ => None,
        };
        Engine {
            queue: EventQueue::new(kind),
            sched: Scheduler {
                now: SimTime::ZERO,
                pending: Vec::with_capacity(16),
                domain: 0,
                clamped: 0,
            },
            time: SimTime::ZERO,
            seq: 0,
            events_processed: 0,
            event_budget: u64::MAX,
            clamped_schedules: 0,
            peak_queue_len: 0,
            profiler,
            ph_pop,
            ph_dispatch,
            progress,
            outbox: Vec::new(),
            model,
        }
    }

    /// Set the ordering domain stamped onto events scheduled from outside a
    /// model callback (see [`Scheduler::set_domain`]; [`Engine::schedule`]
    /// uses it). Models change the in-callback domain through the
    /// [`Scheduler`] handle they are passed.
    pub fn set_domain(&mut self, d: u16) {
        self.sched.domain = d;
    }

    /// The outbox of cross-shard events emitted since it was last drained.
    /// The sharded coordinator empties it at every epoch barrier.
    pub fn outbox_mut(&mut self) -> &mut Vec<Outbound<M::Event>> {
        &mut self.outbox
    }

    /// Inject a cross-shard event with the `(prio, seq)` its source shard
    /// assigned, placing it exactly where the global single-engine order
    /// would have. `time` must not lie in this engine's past.
    pub fn inject(&mut self, time: SimTime, prio: SimTime, seq: u64, ev: M::Event) {
        debug_assert!(
            time >= self.time,
            "cross-shard event in the past: {time} < {}",
            self.time
        );
        self.queue.push(time, prio, seq, ev);
        self.peak_queue_len = self.peak_queue_len.max(self.queue.len());
    }

    /// Cap the total number of events processed (safety backstop for tests).
    pub fn set_event_budget(&mut self, budget: u64) {
        self.event_budget = budget;
    }

    /// Current simulation time (time of the most recently dispatched event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Total events dispatched so far.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of events waiting in the queue.
    #[inline]
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// High-water mark of the event queue length.
    #[inline]
    pub fn peak_queue_len(&self) -> usize {
        self.peak_queue_len
    }

    /// Times a schedule into the past was clamped to `now` (0 in a healthy
    /// model; a nonzero count flags a latent timing bug).
    #[inline]
    pub fn clamped_schedules(&self) -> u64 {
        self.clamped_schedules
    }

    /// Schedule an event from outside a model callback (setup phase).
    /// Scheduling in the past panics in debug builds and is clamped to the
    /// current time (and counted) in release, mirroring [`Scheduler::at`].
    pub fn schedule(&mut self, t: SimTime, ev: M::Event) {
        debug_assert!(
            t >= self.time,
            "scheduling into the past: {t} < {}",
            self.time
        );
        if t < self.time {
            self.clamped_schedules += 1;
        }
        let seq = ((self.sched.domain as u64) << SEQ_SHARD_SHIFT) | self.seq;
        self.seq += 1;
        self.queue.push(t.max(self.time), self.time, seq, ev);
        self.peak_queue_len = self.peak_queue_len.max(self.queue.len());
    }

    /// Dispatch the single earliest event. Returns `false` if the queue is
    /// empty. Time advances to the event's timestamp.
    pub fn step(&mut self) -> bool {
        let t0 = self.profiler.begin();
        let Some(entry) = self.queue.pop() else {
            return false;
        };
        self.profiler.end(self.ph_pop, t0);
        debug_assert!(entry.time >= self.time, "event queue went backwards");
        self.time = entry.time;
        self.sched.now = entry.time;
        let t1 = self.profiler.begin();
        self.model.handle(entry.time, entry.ev, &mut self.sched);
        self.profiler.end(self.ph_dispatch, t1);
        self.events_processed += 1;
        for (t, dst, domain, ev) in self.sched.pending.drain(..) {
            let seq = ((domain as u64) << SEQ_SHARD_SHIFT) | self.seq;
            self.seq += 1;
            if dst == LOCAL_SHARD {
                self.queue.push(t, self.time, seq, ev);
            } else {
                self.outbox.push(Outbound {
                    dst,
                    time: t,
                    prio: self.time,
                    seq,
                    ev,
                });
            }
        }
        self.clamped_schedules += self.sched.clamped;
        self.sched.clamped = 0;
        self.peak_queue_len = self.peak_queue_len.max(self.queue.len());
        true
    }

    /// Run until simulation time strictly exceeds `horizon`, the queue
    /// drains, or the event budget runs out. Events *at* the horizon are
    /// processed.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        let outcome = loop {
            match self.queue.peek_time() {
                None => break RunOutcome::Idle,
                Some(t) if t > horizon => {
                    // Leave future events queued; clock parks at the horizon.
                    self.time = self.time.max(horizon);
                    break RunOutcome::HorizonReached;
                }
                Some(_) => {}
            }
            if self.events_processed >= self.event_budget {
                break RunOutcome::BudgetExhausted;
            }
            self.step();
            if self.progress.is_some() && self.events_processed.is_multiple_of(PROGRESS_EVERY) {
                self.heartbeat(horizon);
            }
        };
        if let Some(p) = &mut self.progress {
            if p.printed {
                // Move off the carriage-returned heartbeat line.
                eprintln!();
                p.printed = false;
            }
        }
        outcome
    }

    /// Run until the queue drains or the budget runs out.
    pub fn run_until_idle(&mut self) -> RunOutcome {
        self.run_until(SimTime::MAX)
    }

    /// Emit the `FNCC_PROGRESS` heartbeat (at most once per second): events
    /// processed, wall event rate, simulated time, and — when the horizon is
    /// finite — the ETA extrapolated from sim-time progress so far.
    fn heartbeat(&mut self, horizon: SimTime) {
        let Some(p) = &mut self.progress else {
            return;
        };
        if p.last_print.elapsed().as_secs_f64() < 1.0 {
            return;
        }
        p.last_print = Instant::now();
        p.printed = true;
        let wall = p.started.elapsed().as_secs_f64();
        let rate = self.events_processed as f64 / wall.max(1e-9);
        let sim_us = self.time.as_ps() as f64 / 1e6;
        let eta = if horizon < SimTime::MAX && self.time.as_ps() > 0 {
            let frac = self.time.as_ps() as f64 / horizon.as_ps() as f64;
            format!("{:.0}s", wall * (1.0 - frac).max(0.0) / frac.max(1e-9))
        } else {
            "?".to_string()
        };
        eprint!(
            "\r[fncc] {:>12} events  {:>10.0} ev/s  sim {:>10.1} us  eta {:<8}",
            self.events_processed, rate, sim_us, eta
        );
    }

    /// The hot-loop profiler (spans are all-zero unless `FNCC_PROFILE` was
    /// set when the engine was built).
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Per-level cascade counts of the timing wheel (`None` on the heap
    /// oracle): index = source level, value = slots broken into finer ones.
    pub fn wheel_cascades(&self) -> Option<&[u64]> {
        self.queue.cascade_counts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A model that records the order events were observed in.
    struct Recorder {
        seen: Vec<(SimTime, u32)>,
        /// (delay, tag) pairs to schedule on seeing event 0.
        chain: Vec<(TimeDelta, u32)>,
    }

    impl Model for Recorder {
        type Event = u32;
        fn handle(&mut self, now: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
            self.seen.push((now, ev));
            if ev == 0 {
                for &(d, tag) in &self.chain {
                    sched.after(d, tag);
                }
            }
        }
    }

    fn recorder() -> Recorder {
        Recorder {
            seen: Vec::new(),
            chain: Vec::new(),
        }
    }

    #[test]
    fn events_dispatch_in_time_order() {
        let mut eng = Engine::new(recorder());
        eng.schedule(SimTime::from_us(5), 5);
        eng.schedule(SimTime::from_us(1), 1);
        eng.schedule(SimTime::from_us(3), 3);
        assert_eq!(eng.run_until_idle(), RunOutcome::Idle);
        let tags: Vec<u32> = eng.model.seen.iter().map(|&(_, e)| e).collect();
        assert_eq!(tags, vec![1, 3, 5]);
        assert_eq!(eng.now(), SimTime::from_us(5));
        assert_eq!(eng.events_processed(), 3);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut eng = Engine::new(recorder());
        let t = SimTime::from_us(7);
        for tag in 0..50u32 {
            eng.schedule(t, tag + 10);
        }
        eng.run_until_idle();
        let tags: Vec<u32> = eng.model.seen.iter().map(|&(_, e)| e).collect();
        assert_eq!(tags, (10..60).collect::<Vec<_>>());
    }

    #[test]
    fn callbacks_can_schedule_followups() {
        let mut eng = Engine::new(recorder());
        eng.model.chain = vec![(TimeDelta::from_us(2), 20), (TimeDelta::from_us(1), 10)];
        eng.schedule(SimTime::from_us(1), 0);
        eng.run_until_idle();
        assert_eq!(
            eng.model.seen,
            vec![
                (SimTime::from_us(1), 0),
                (SimTime::from_us(2), 10),
                (SimTime::from_us(3), 20),
            ]
        );
    }

    #[test]
    fn immediate_events_run_at_same_time_after_current() {
        struct Imm {
            seen: Vec<u32>,
        }
        impl Model for Imm {
            type Event = u32;
            fn handle(&mut self, _now: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
                self.seen.push(ev);
                if ev == 0 {
                    sched.immediate(1);
                    sched.immediate(2);
                }
            }
        }
        let mut eng = Engine::new(Imm { seen: vec![] });
        eng.schedule(SimTime::from_us(4), 0);
        eng.schedule(SimTime::from_us(4), 9); // inserted before the immediates
        eng.run_until_idle();
        assert_eq!(eng.model.seen, vec![0, 9, 1, 2]);
        assert_eq!(eng.now(), SimTime::from_us(4));
    }

    #[test]
    fn run_until_parks_at_horizon() {
        let mut eng = Engine::new(recorder());
        eng.schedule(SimTime::from_us(1), 1);
        eng.schedule(SimTime::from_us(10), 2);
        assert_eq!(
            eng.run_until(SimTime::from_us(5)),
            RunOutcome::HorizonReached
        );
        assert_eq!(eng.model.seen.len(), 1);
        assert_eq!(eng.now(), SimTime::from_us(5));
        assert_eq!(eng.queue_len(), 1);
        // Resuming picks the remaining event up.
        assert_eq!(eng.run_until(SimTime::from_us(10)), RunOutcome::Idle);
        assert_eq!(eng.model.seen.len(), 2);
    }

    #[test]
    fn horizon_is_inclusive() {
        let mut eng = Engine::new(recorder());
        eng.schedule(SimTime::from_us(5), 1);
        assert_eq!(eng.run_until(SimTime::from_us(5)), RunOutcome::Idle);
        assert_eq!(eng.model.seen.len(), 1);
    }

    #[test]
    fn event_budget_stops_runaway_models() {
        struct Loopy;
        impl Model for Loopy {
            type Event = ();
            fn handle(&mut self, _now: SimTime, _ev: (), sched: &mut Scheduler<()>) {
                sched.after(TimeDelta::from_ns(1), ());
            }
        }
        let mut eng = Engine::new(Loopy);
        eng.set_event_budget(1000);
        eng.schedule(SimTime::ZERO, ());
        assert_eq!(eng.run_until_idle(), RunOutcome::BudgetExhausted);
        assert_eq!(eng.events_processed(), 1000);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic]
    fn scheduling_into_the_past_panics() {
        let mut eng = Engine::new(recorder());
        eng.schedule(SimTime::from_us(5), 1);
        eng.run_until_idle();
        eng.schedule(SimTime::from_us(1), 2);
    }

    #[test]
    fn empty_engine_is_idle() {
        let mut eng = Engine::new(recorder());
        assert_eq!(eng.run_until_idle(), RunOutcome::Idle);
        assert!(!eng.step());
        assert_eq!(eng.now(), SimTime::ZERO);
    }

    /// Every ordering test above, replayed against the heap oracle: the two
    /// queue kinds must dispatch identically.
    #[test]
    fn heap_oracle_matches_wheel_on_mixed_schedule() {
        let run = |kind: QueueKind| {
            let mut eng = Engine::with_queue(recorder(), kind);
            eng.model.chain = vec![
                (TimeDelta::from_ns(3), 100),
                (TimeDelta::from_us(40), 101),
                (TimeDelta::from_ms(70), 102), // level ≥ 2 territory
            ];
            for i in 0..200u32 {
                eng.schedule(SimTime::from_ns((i as u64 * 977) % 5_000), i + 1);
            }
            eng.schedule(SimTime::from_ns(10), 0); // triggers the chain
            eng.schedule(SimTime::from_secs(120), 999); // overflow territory
            eng.run_until_idle();
            eng.model.seen
        };
        assert_eq!(run(QueueKind::Wheel), run(QueueKind::Heap));
    }

    #[test]
    fn peak_queue_len_tracks_high_water_mark() {
        let mut eng = Engine::new(recorder());
        for i in 0..7u32 {
            eng.schedule(SimTime::from_us(i as u64 + 1), i);
        }
        assert_eq!(eng.peak_queue_len(), 7);
        eng.run_until_idle();
        assert_eq!(eng.peak_queue_len(), 7);
        assert_eq!(eng.queue_len(), 0);
    }

    #[test]
    fn release_mode_clamps_and_counts_past_schedules() {
        // The debug panic is pinned by `scheduling_into_the_past_panics`;
        // here exercise the counter via the release-path semantics directly.
        struct PastSched {
            tried: bool,
        }
        impl Model for PastSched {
            type Event = u32;
            fn handle(&mut self, _now: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
                if !self.tried && ev == 0 {
                    self.tried = true;
                    // `at` with t == now is legal and must not count.
                    sched.at(sched.now(), 1);
                }
            }
        }
        let mut eng = Engine::new(PastSched { tried: false });
        eng.schedule(SimTime::from_us(1), 0);
        eng.run_until_idle();
        assert_eq!(eng.clamped_schedules(), 0);
        assert!(eng.model.tried);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn clamped_schedules_counted_in_release() {
        let mut eng = Engine::new(recorder());
        eng.schedule(SimTime::from_us(5), 1);
        eng.run_until_idle();
        eng.schedule(SimTime::from_us(1), 2); // clamped to now = 5 µs
        assert_eq!(eng.clamped_schedules(), 1);
        eng.run_until_idle();
        assert_eq!(eng.model.seen.last(), Some(&(SimTime::from_us(5), 2)));
    }
}
