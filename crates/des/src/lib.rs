#![warn(missing_docs)]
//! `fncc-des` — a small, fast, deterministic discrete-event simulation engine.
//!
//! This crate is the foundation of the FNCC reproduction: everything above it
//! (links, switches, hosts, congestion control) is expressed as a [`Model`]
//! that consumes timestamped events from a central event heap.
//!
//! Design points:
//!
//! * **Integer picosecond time** ([`SimTime`], [`TimeDelta`]): at 400 Gb/s a
//!   byte serializes in 20 ps, so picoseconds keep link arithmetic exact and
//!   deterministic across platforms (no floating-point time).
//! * **Monomorphised engine**: [`Engine`] is generic over the model and its
//!   event type — no trait objects or boxing in the hot dispatch loop.
//! * **Strict determinism**: ties in the heap are broken by insertion
//!   sequence number, and all randomness flows through seeded [`rng`]
//!   streams, so a run is a pure function of its configuration.
//! * **Reusable statistics** ([`stats`]): time series, EWMA, sample
//!   percentiles, rate meters and Jain's fairness index used by the metric
//!   collectors in `fncc-core`.

pub mod engine;
pub mod output;
pub mod rng;
pub mod stats;
pub mod time;
mod wheel;

pub use engine::{Engine, Model, QueueKind, RunOutcome, Scheduler};
pub use rng::{splitmix64, DetRng};
pub use time::{SimTime, TimeDelta};

/// Convenience prelude for downstream crates.
pub mod prelude {
    pub use crate::engine::{Engine, Model, RunOutcome, Scheduler};
    pub use crate::rng::{splitmix64, DetRng};
    pub use crate::time::{SimTime, TimeDelta};
}
