//! Simulation time as integer picoseconds.
//!
//! Two distinct newtypes keep instants and durations from being confused:
//! [`SimTime`] is an absolute instant since simulation start, [`TimeDelta`]
//! is a span. Arithmetic between them is closed under the usual rules
//! (`SimTime + TimeDelta = SimTime`, `SimTime - SimTime = TimeDelta`, …) and
//! saturates rather than wrapping, so a malformed configuration surfaces as
//! a stuck clock instead of UB-adjacent wrap-around.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Picoseconds in one nanosecond.
pub const PS_PER_NS: u64 = 1_000;
/// Picoseconds in one microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Picoseconds in one millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds in one second.
pub const PS_PER_SEC: u64 = 1_000_000_000_000;

/// An absolute instant in simulation time (picoseconds since start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time (picoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimeDelta(u64);

impl SimTime {
    /// Simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }
    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * PS_PER_NS)
    }
    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * PS_PER_US)
    }
    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * PS_PER_MS)
    }
    /// Construct from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * PS_PER_SEC)
    }

    /// Raw picoseconds.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }
    /// Value in nanoseconds (floating point).
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }
    /// Value in microseconds (floating point) — the unit of the paper's plots.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }
    /// Value in seconds (floating point).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// Span since an earlier instant; saturates to zero if `earlier` is later.
    #[inline]
    pub fn since(self, earlier: SimTime) -> TimeDelta {
        TimeDelta(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a span.
    #[inline]
    pub fn saturating_add(self, d: TimeDelta) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl TimeDelta {
    /// Zero-length span.
    pub const ZERO: TimeDelta = TimeDelta(0);
    /// The greatest representable span; used as "infinite".
    pub const MAX: TimeDelta = TimeDelta(u64::MAX);

    /// Construct from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        TimeDelta(ps)
    }
    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        TimeDelta(ns * PS_PER_NS)
    }
    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        TimeDelta(us * PS_PER_US)
    }
    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        TimeDelta(ms * PS_PER_MS)
    }
    /// Construct from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        TimeDelta(s * PS_PER_SEC)
    }
    /// Construct from floating-point seconds, rounding up to a whole
    /// picosecond so nonzero spans never collapse to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "negative or non-finite duration");
        TimeDelta((s * PS_PER_SEC as f64).ceil() as u64)
    }

    /// Raw picoseconds.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }
    /// Value in nanoseconds (floating point).
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }
    /// Value in microseconds (floating point).
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }
    /// Value in seconds (floating point).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// True if this span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Integer-scaled span.
    #[inline]
    pub const fn scaled(self, k: u64) -> TimeDelta {
        TimeDelta(self.0.saturating_mul(k))
    }

    /// The smaller of two spans.
    #[inline]
    pub fn min(self, other: TimeDelta) -> TimeDelta {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// The larger of two spans.
    #[inline]
    pub fn max(self, other: TimeDelta) -> TimeDelta {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<TimeDelta> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: TimeDelta) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<TimeDelta> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<TimeDelta> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: TimeDelta) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = TimeDelta;
    #[inline]
    fn sub(self, rhs: SimTime) -> TimeDelta {
        TimeDelta(self.0.saturating_sub(rhs.0))
    }
}

impl Add for TimeDelta {
    type Output = TimeDelta;
    #[inline]
    fn add(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for TimeDelta {
    #[inline]
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for TimeDelta {
    type Output = TimeDelta;
    #[inline]
    fn sub(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for TimeDelta {
    #[inline]
    fn sub_assign(&mut self, rhs: TimeDelta) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for TimeDelta {
    type Output = TimeDelta;
    #[inline]
    fn mul(self, rhs: u64) -> TimeDelta {
        TimeDelta(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for TimeDelta {
    type Output = TimeDelta;
    #[inline]
    fn div(self, rhs: u64) -> TimeDelta {
        TimeDelta(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

impl fmt::Debug for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

impl fmt::Display for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(SimTime::from_ns(1).as_ps(), 1_000);
        assert_eq!(SimTime::from_us(1).as_ps(), 1_000_000);
        assert_eq!(SimTime::from_ms(1).as_ps(), 1_000_000_000);
        assert_eq!(SimTime::from_secs(1).as_ps(), 1_000_000_000_000);
        assert_eq!(TimeDelta::from_us(3).as_ps(), 3_000_000);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_us(10);
        let d = TimeDelta::from_us(4);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
        assert_eq!(t.since(SimTime::from_us(4)), TimeDelta::from_us(6));
    }

    #[test]
    fn subtraction_saturates() {
        let early = SimTime::from_us(1);
        let late = SimTime::from_us(5);
        assert_eq!(early - late, TimeDelta::ZERO);
        assert_eq!(early.since(late), TimeDelta::ZERO);
        assert_eq!(early - TimeDelta::from_us(9), SimTime::ZERO);
    }

    #[test]
    fn addition_saturates_at_max() {
        assert_eq!(SimTime::MAX + TimeDelta::from_us(1), SimTime::MAX);
        assert_eq!(TimeDelta::MAX + TimeDelta::from_us(1), TimeDelta::MAX);
    }

    #[test]
    fn float_views() {
        let t = SimTime::from_us(2);
        assert!((t.as_us_f64() - 2.0).abs() < 1e-12);
        assert!((t.as_ns_f64() - 2000.0).abs() < 1e-9);
        assert!((t.as_secs_f64() - 2e-6).abs() < 1e-15);
    }

    #[test]
    fn from_secs_f64_rounds_up() {
        // Even a sub-picosecond duration must stay nonzero.
        assert!(TimeDelta::from_secs_f64(1e-15).as_ps() >= 1);
        assert_eq!(TimeDelta::from_secs_f64(0.0), TimeDelta::ZERO);
    }

    #[test]
    #[should_panic]
    fn from_secs_f64_rejects_negative() {
        let _ = TimeDelta::from_secs_f64(-1.0);
    }

    #[test]
    fn delta_scaling_and_ordering() {
        let d = TimeDelta::from_ns(100);
        assert_eq!(d * 3, TimeDelta::from_ns(300));
        assert_eq!(d.scaled(3), TimeDelta::from_ns(300));
        assert_eq!((d * 3) / 3, d);
        assert_eq!(d.min(d * 2), d);
        assert_eq!(d.max(d * 2), d * 2);
        assert!(TimeDelta::from_ns(1) < TimeDelta::from_us(1));
    }

    #[test]
    fn display_formats_microseconds() {
        assert_eq!(format!("{}", SimTime::from_us(300)), "300.000us");
        assert_eq!(format!("{}", TimeDelta::from_ns(1500)), "1.500us");
    }
}
