//! Deterministic random number streams.
//!
//! Every stochastic component (workload generator, ECN marking, ECMP seeds,
//! …) owns its own [`DetRng`] derived from `(master_seed, stream_id)`, so
//! adding a new consumer of randomness never perturbs the draws seen by
//! existing ones — runs stay reproducible as the codebase grows.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// SplitMix64 — the standard seed-expansion / integer-mixing function.
///
/// Used both to derive per-stream seeds and as a cheap stateless hash for
/// ECMP five-tuple hashing.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic per-component RNG stream.
#[derive(Clone, Debug)]
pub struct DetRng {
    inner: SmallRng,
}

impl DetRng {
    /// Derive stream `stream` from `master_seed`. Different `(seed, stream)`
    /// pairs yield statistically independent sequences.
    pub fn new(master_seed: u64, stream: u64) -> Self {
        let s = splitmix64(master_seed ^ splitmix64(stream.wrapping_add(0xA5A5_5A5A)));
        DetRng {
            inner: SmallRng::seed_from_u64(s),
        }
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        self.inner.gen_range(0..n)
    }

    /// Uniform usize in `[0, n)`. Panics if `n == 0`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        self.inner.gen_range(0..n)
    }

    /// Exponentially distributed sample with the given mean (inter-arrival
    /// times of a Poisson process).
    #[inline]
    pub fn exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // Inverse-CDF; (1 - u) keeps the argument of ln strictly positive.
        -mean * (1.0 - self.f64()).ln()
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Raw 64 random bits.
    #[inline]
    pub fn u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream_is_deterministic() {
        let mut a = DetRng::new(42, 7);
        let mut b = DetRng::new(42, 7);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn different_streams_differ() {
        let mut a = DetRng::new(42, 0);
        let mut b = DetRng::new(42, 1);
        let same = (0..64).filter(|_| a.u64() == b.u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = DetRng::new(1, 0);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DetRng::new(2, 0);
        for _ in 0..10_000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn exp_has_roughly_right_mean() {
        let mut r = DetRng::new(3, 0);
        let n = 200_000;
        let mean = 5.0;
        let sum: f64 = (0..n).map(|_| r.exp(mean)).sum();
        let sample_mean = sum / n as f64;
        assert!(
            (sample_mean - mean).abs() < 0.1,
            "sample mean {sample_mean} too far from {mean}"
        );
    }

    #[test]
    fn chance_frequency_matches_p() {
        let mut r = DetRng::new(4, 0);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.chance(0.25)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.25).abs() < 0.01, "frequency {freq}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = DetRng::new(5, 0);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            xs,
            (0..100).collect::<Vec<_>>(),
            "astronomically unlikely identity"
        );
    }

    #[test]
    fn splitmix_is_stable() {
        // Known-answer test pins the hash across refactors (ECMP path choice
        // and every seeded experiment depend on it).
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
    }
}
