//! Result emission: aligned stdout tables (matching the rows the paper
//! reports) and CSV files for plotting.

use crate::stats::TimeSeries;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple aligned text table for printing experiment rows to stdout.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row; must have the same arity as the header.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let r: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(r.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(r);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncol = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:width$}", c, width = widths[i]);
                if i + 1 < ncol {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncol.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Serialize as CSV text.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Write the CSV form to `path`, creating parent directories.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

/// Write several time series sharing a time axis into one CSV
/// (`time_us,name1,name2,…`); series are sampled on their own ticks, missing
/// cells are left empty.
///
/// The cursor merge below assumes each series is time-ordered; a disordered
/// series would silently drop samples, so ordering is validated here and a
/// descriptive error returned instead of corrupt CSV.
pub fn series_to_csv(series: &[&TimeSeries]) -> Result<String, String> {
    for s in series {
        s.validate_ordering()?;
    }
    // Collect the union of timestamps.
    let mut times: Vec<u64> = series
        .iter()
        .flat_map(|s| s.times().iter().map(|t| t.as_ps()))
        .collect();
    times.sort_unstable();
    times.dedup();

    let mut out = String::new();
    out.push_str("time_us");
    for s in series {
        out.push(',');
        out.push_str(&s.name);
    }
    out.push('\n');

    // Per-series cursor over its own samples.
    let mut cursors = vec![0usize; series.len()];
    for &tps in &times {
        let _ = write!(out, "{:.3}", tps as f64 / 1e6);
        for (si, s) in series.iter().enumerate() {
            out.push(',');
            let i = &mut cursors[si];
            if *i < s.len() && s.times()[*i].as_ps() == tps {
                let _ = write!(out, "{}", s.values()[*i]);
                *i += 1;
            }
        }
        out.push('\n');
    }
    Ok(out)
}

/// Write a string to `path`, creating parent directories.
pub fn write_text(path: impl AsRef<Path>, text: &str) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["b", "22222"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "value" column starts at same offset in all rows.
        let off = lines[0].find("value").unwrap();
        assert_eq!(&lines[2][off..off + 1], "1");
        assert_eq!(&lines[3][off..off + 1], "2");
    }

    #[test]
    #[should_panic]
    fn table_rejects_wrong_arity() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new(["k", "v"]);
        t.row(["a,b", "say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn series_csv_merges_time_axes() {
        let mut a = TimeSeries::new("a");
        a.push(SimTime::from_us(1), 1.0);
        a.push(SimTime::from_us(3), 3.0);
        let mut b = TimeSeries::new("b");
        b.push(SimTime::from_us(2), 2.0);
        let csv = series_to_csv(&[&a, &b]).unwrap();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_us,a,b");
        assert_eq!(lines[1], "1.000,1,");
        assert_eq!(lines[2], "2.000,,2");
        assert_eq!(lines[3], "3.000,3,");
    }

    #[test]
    fn series_csv_rejects_disordered_series() {
        let mut a = TimeSeries::new("bad");
        a.push_unchecked(SimTime::from_us(3), 1.0);
        a.push_unchecked(SimTime::from_us(1), 2.0);
        let err = series_to_csv(&[&a]).unwrap_err();
        assert!(err.contains("out-of-order"), "{err}");
    }

    #[test]
    fn write_csv_creates_dirs() {
        let dir = std::env::temp_dir().join("fncc_des_test_csv");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("deep/nested/t.csv");
        let mut t = Table::new(["x"]);
        t.row(["1"]);
        t.write_csv(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "x\n1\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
