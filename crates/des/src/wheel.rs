//! A hierarchical timing wheel: the engine's O(1) event queue.
//!
//! The classic `BinaryHeap` event queue costs O(log n) comparisons per
//! push/pop with poor locality once the queue holds tens of thousands of
//! entries — at packet-DES scale the queue, not the model, dominates the
//! run time. This wheel exploits the structure of network-simulation
//! schedules: almost every event is scheduled within a few link
//! serialization times or one propagation delay of `now`, so bucketing by
//! time quantum makes push and pop O(1) amortized.
//!
//! Layout: [`LEVELS`] wheels of [`SLOTS`] slots each. A level-0 slot spans
//! 2^[`SLOT_SHIFT`] ps (≈ 8.2 ns — below one MTU serialization time at
//! 100 Gb/s, so same-slot collisions stay small); each higher level is
//! [`SLOTS`]× coarser. An event lands in the finest level whose *aligned
//! group* contains both the event and the cursor (the no-wrap placement
//! rule: placement never wraps around a wheel, so a linear bitmap scan of
//! the current group is exhaustive). Events beyond the top level's aligned
//! window live in an overflow heap and migrate into the wheel as the clock
//! approaches them. Events at or before the cursor's slot sit in a small
//! `ready` heap which restores exact `(time, seq)` order — so the wheel's
//! dispatch order is bit-identical to the reference `BinaryHeap` scheduler
//! (the engine's equivalence fuzz pins this).

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// log2 of the level-0 slot width in picoseconds.
const SLOT_SHIFT: u32 = 13;
/// log2 of the number of slots per level.
const SLOT_BITS: u32 = 8;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Number of wheel levels; the top level's aligned window spans
/// 2^(SLOT_SHIFT + LEVELS·SLOT_BITS) ps ≈ 35 s of simulated time.
const LEVELS: usize = 4;
/// Occupancy bitmap words per level.
const WORDS: usize = SLOTS / 64;

/// A queued event: absolute time, schedule-time priority, insertion
/// sequence, payload. Ordered so that a max-`BinaryHeap` pops the smallest
/// `(time, prio, seq)`.
///
/// `prio` is the simulation time at which the event was *scheduled*. For a
/// single engine this refinement is an identity: sequence numbers are
/// assigned in dispatch order and dispatch time is monotone, so `seq` order
/// already implies non-decreasing schedule time. It exists for the sharded
/// runtime, where a frame crossing shards keeps the `(prio, seq)` it was
/// assigned in its *source* shard — reproducing the position the global
/// single-engine order would have given it.
pub(crate) struct Entry<E> {
    pub time: SimTime,
    pub prio: SimTime,
    pub seq: u64,
    pub ev: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.prio == other.prio && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    // Reversed: BinaryHeap is a max-heap, we want the earliest
    // (time, prio, seq) first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.prio, other.seq).cmp(&(self.time, self.prio, self.seq))
    }
}

struct Level<E> {
    slots: Vec<Vec<Entry<E>>>,
    /// One bit per slot: does the slot hold any events?
    occupied: [u64; WORDS],
}

impl<E> Level<E> {
    fn new() -> Self {
        Level {
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; WORDS],
        }
    }

    #[inline]
    fn mark(&mut self, ix: usize) {
        self.occupied[ix >> 6] |= 1u64 << (ix & 63);
    }

    #[inline]
    fn clear(&mut self, ix: usize) {
        self.occupied[ix >> 6] &= !(1u64 << (ix & 63));
    }

    /// Smallest occupied slot index strictly greater than `after`, if any.
    fn next_occupied_after(&self, after: usize) -> Option<usize> {
        let mut w = after >> 6;
        // Mask off bits ≤ `after` within its word.
        let mut word = self.occupied[w] & (u64::MAX << (after & 63)) & !(1u64 << (after & 63));
        loop {
            if word != 0 {
                return Some((w << 6) + word.trailing_zeros() as usize);
            }
            w += 1;
            if w >= WORDS {
                return None;
            }
            word = self.occupied[w];
        }
    }
}

/// The hierarchical timing wheel event queue.
pub(crate) struct TimingWheel<E> {
    /// Events in the already-reached slot range, in exact heap order.
    ready: BinaryHeap<Entry<E>>,
    levels: Vec<Level<E>>,
    /// Global level-0 slot index of the clock cursor (`time >> SLOT_SHIFT`).
    cur_slot: u64,
    /// Far-future events beyond the top level's aligned window.
    overflow: BinaryHeap<Entry<E>>,
    len: usize,
    /// Cascades performed per source level (level 1.. — index 0 unused):
    /// how often `refill` had to break a coarse slot into finer ones. Fed
    /// to the `wheel_cascade_depth` metric histogram.
    cascades: [u64; LEVELS],
}

impl<E> TimingWheel<E> {
    pub fn new() -> Self {
        TimingWheel {
            ready: BinaryHeap::with_capacity(64),
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            cur_slot: 0,
            overflow: BinaryHeap::new(),
            len: 0,
            cascades: [0; LEVELS],
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Cascade counts indexed by source level (index 0 is always 0).
    pub fn cascade_counts(&self) -> &[u64] {
        &self.cascades
    }

    /// Queue an event. `time` must be ≥ the time of the last popped event
    /// (the engine clamps); times at or before the cursor's slot are legal
    /// (the cursor may have advanced ahead of dispatch during a peek) and
    /// land in the ready heap, which restores exact order.
    pub fn push(&mut self, time: SimTime, prio: SimTime, seq: u64, ev: E) {
        self.len += 1;
        self.place(Entry {
            time,
            prio,
            seq,
            ev,
        });
    }

    /// Insert an entry without touching `len` (shared by push/cascade).
    fn place(&mut self, entry: Entry<E>) {
        let s = entry.time.as_ps() >> SLOT_SHIFT;
        if s <= self.cur_slot {
            self.ready.push(entry);
            return;
        }
        for l in 0..LEVELS {
            // No-wrap rule: level l may hold the event only if the event
            // and the cursor share the aligned level-(l+1) group.
            let parent_shift = SLOT_BITS * (l as u32 + 1);
            if (s >> parent_shift) == (self.cur_slot >> parent_shift) {
                let shift = SLOT_BITS * l as u32;
                let ix = ((s >> shift) & (SLOTS as u64 - 1)) as usize;
                self.levels[l].slots[ix].push(entry);
                self.levels[l].mark(ix);
                return;
            }
        }
        self.overflow.push(entry);
    }

    /// Time of the earliest queued event, advancing the cursor to it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.refill();
        self.ready.peek().map(|e| e.time)
    }

    /// Pop the earliest `(time, seq)` event.
    pub fn pop(&mut self) -> Option<Entry<E>> {
        self.refill();
        let e = self.ready.pop();
        if e.is_some() {
            self.len -= 1;
        }
        e
    }

    /// Ensure the ready heap holds the globally earliest event (if any):
    /// advance the cursor (bitmap-guided, so empty ranges are skipped in
    /// O(words)), cascading coarser levels down as their slots are reached
    /// and migrating overflow events once they fit in the wheel.
    fn refill(&mut self) {
        while self.ready.is_empty() {
            // Next occupied level-0 slot within the cursor's group.
            let c0 = (self.cur_slot & (SLOTS as u64 - 1)) as usize;
            if let Some(i) = self.levels[0].next_occupied_after(c0) {
                self.cur_slot = (self.cur_slot & !(SLOTS as u64 - 1)) + i as u64;
                let mut slot = std::mem::take(&mut self.levels[0].slots[i]);
                self.levels[0].clear(i);
                for e in slot.drain(..) {
                    self.ready.push(e);
                }
                // Hand the capacity-retaining Vec back to the slot.
                self.levels[0].slots[i] = slot;
                continue;
            }
            // Level 0 exhausted: cascade the next occupied coarser slot.
            let mut cascaded = false;
            for l in 1..LEVELS {
                let shift = SLOT_BITS * l as u32;
                let cl = ((self.cur_slot >> shift) & (SLOTS as u64 - 1)) as usize;
                let Some(j) = self.levels[l].next_occupied_after(cl) else {
                    continue;
                };
                // Jump the cursor to the start of that slot's range; every
                // event inside re-places at a finer level (or `ready` for
                // the exact slot-start time).
                let parent_shift = SLOT_BITS * (l as u32 + 1);
                let base = (self.cur_slot >> parent_shift) << parent_shift;
                self.cur_slot = base | ((j as u64) << shift);
                let mut slot = std::mem::take(&mut self.levels[l].slots[j]);
                self.levels[l].clear(j);
                for e in slot.drain(..) {
                    self.place(e);
                }
                self.levels[l].slots[j] = slot;
                self.cascades[l] += 1;
                cascaded = true;
                break;
            }
            if cascaded {
                self.migrate_overflow();
                continue;
            }
            // Wheel empty: jump to the overflow's earliest event, if any.
            match self.overflow.pop() {
                Some(e) => {
                    self.cur_slot = e.time.as_ps() >> SLOT_SHIFT;
                    self.ready.push(e);
                    self.migrate_overflow();
                }
                None => return,
            }
        }
    }

    /// Move overflow events that now share the top level's aligned window
    /// with the cursor into the wheel.
    fn migrate_overflow(&mut self) {
        let window_shift = SLOT_BITS * LEVELS as u32;
        while let Some(e) = self.overflow.peek() {
            let s = e.time.as_ps() >> SLOT_SHIFT;
            if (s >> window_shift) != (self.cur_slot >> window_shift) {
                return;
            }
            let e = self.overflow.pop().expect("peeked");
            self.place(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_order(w: &mut TimingWheel<u32>) -> Vec<(u64, u32)> {
        let mut out = Vec::new();
        while let Some(e) = w.pop() {
            out.push((e.time.as_ps(), e.ev));
        }
        out
    }

    #[test]
    fn orders_across_levels_and_overflow() {
        let mut w = TimingWheel::new();
        // Times spanning ready, levels 0..3 and overflow.
        let times = [
            0u64,
            1,
            5_000,                  // same slot group
            3_000_000,              // level 1 (past 2^21 ps)
            900_000_000,            // level 2
            200_000_000_000,        // level 3
            90_000_000_000_000_000, // overflow (past 2^45 ps)
            7,
        ];
        for (i, &t) in times.iter().enumerate() {
            w.push(SimTime::from_ps(t), SimTime::ZERO, i as u64, i as u32);
        }
        assert_eq!(w.len(), times.len());
        let got = drain_order(&mut w);
        let mut want: Vec<(u64, u32)> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i as u32))
            .collect();
        want.sort();
        assert_eq!(got, want);
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn ties_pop_in_sequence_order() {
        let mut w = TimingWheel::new();
        for i in 0..100u32 {
            w.push(SimTime::from_ps(42), SimTime::ZERO, i as u64, i);
        }
        let got = drain_order(&mut w);
        assert_eq!(got, (0..100).map(|i| (42, i)).collect::<Vec<_>>());
    }

    #[test]
    fn group_boundary_crossings_are_not_skipped() {
        // Events a few slots apart but on opposite sides of a level-0 group
        // boundary (group = 256 slots of 2^13 ps): the no-wrap rule must
        // route the later one through level 1 and still dispatch in order.
        let mut w = TimingWheel::new();
        let group = (SLOTS as u64) << SLOT_SHIFT;
        w.push(SimTime::from_ps(group - 10), SimTime::ZERO, 0, 0);
        w.push(SimTime::from_ps(group + 10), SimTime::ZERO, 1, 1);
        w.push(SimTime::from_ps(group * 256 + 5), SimTime::ZERO, 2, 2); // level-1 group boundary
        let got = drain_order(&mut w);
        assert_eq!(
            got,
            vec![(group - 10, 0), (group + 10, 1), (group * 256 + 5, 2)]
        );
    }

    #[test]
    fn push_behind_cursor_lands_in_ready() {
        let mut w = TimingWheel::new();
        w.push(SimTime::from_us(100), SimTime::ZERO, 0, 0);
        // Peek advances the cursor to the 100 µs slot…
        assert_eq!(w.peek_time(), Some(SimTime::from_us(100)));
        // …then an earlier event arrives (legal: a horizon-parked engine
        // schedules between `now` and the next event).
        w.push(SimTime::from_us(50), SimTime::ZERO, 1, 1);
        let got = drain_order(&mut w);
        assert_eq!(got, vec![(50_000_000, 1), (100_000_000, 0)]);
    }

    #[test]
    fn interleaved_push_pop_keeps_global_order() {
        let mut w = TimingWheel::new();
        let mut seq = 0u64;
        let mut push = |w: &mut TimingWheel<u32>, t: u64, tag: u32| {
            w.push(SimTime::from_ns(t), SimTime::ZERO, seq, tag);
            seq += 1;
        };
        push(&mut w, 10, 0);
        push(&mut w, 5_000_000, 1); // far future
        let e = w.pop().unwrap();
        assert_eq!(e.ev, 0);
        // Schedule relative to the popped time.
        push(&mut w, 20, 2);
        push(&mut w, 4_000, 3);
        assert_eq!(w.pop().unwrap().ev, 2);
        assert_eq!(w.pop().unwrap().ev, 3);
        assert_eq!(w.pop().unwrap().ev, 1);
        assert!(w.pop().is_none());
    }

    #[test]
    fn overflow_migrates_as_the_clock_approaches() {
        let mut w = TimingWheel::new();
        let window = 1u64 << (SLOT_SHIFT + SLOT_BITS * LEVELS as u32);
        w.push(SimTime::from_ps(window + 100), SimTime::ZERO, 0, 0);
        w.push(SimTime::from_ps(window + 200), SimTime::ZERO, 1, 1);
        w.push(SimTime::from_ps(3), SimTime::ZERO, 2, 2);
        assert_eq!(w.pop().unwrap().ev, 2);
        assert_eq!(w.pop().unwrap().ev, 0);
        assert_eq!(w.pop().unwrap().ev, 1);
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn empty_wheel_behaves() {
        let mut w: TimingWheel<u32> = TimingWheel::new();
        assert_eq!(w.len(), 0);
        assert_eq!(w.peek_time(), None);
        assert!(w.pop().is_none());
    }
}
