//! Fig. 9 bench: the full four-scheme response-speed microbenchmark at
//! 100 Gb/s (scaled horizon).

use criterion::{criterion_group, criterion_main, Criterion};
use fncc_cc::CcKind;
use fncc_core::scenarios::{elephant_dumbbell, MicrobenchSpec};

fn spec(cc: CcKind) -> MicrobenchSpec {
    MicrobenchSpec {
        cc,
        horizon_us: 450,
        join_at_us: 150,
        ..Default::default()
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig09_micro");
    g.sample_size(10);
    for cc in [CcKind::Fncc, CcKind::Hpcc, CcKind::Dcqcn, CcKind::Rocc] {
        g.bench_function(cc.name(), |b| {
            b.iter(|| {
                let r = elephant_dumbbell(&spec(cc));
                (r.peak_queue_kb, r.events)
            })
        });
    }
    g.finish();

    // Reaction ordering holds even at the scaled horizon.
    let f = elephant_dumbbell(&spec(CcKind::Fncc)).reaction_us.unwrap();
    let h = elephant_dumbbell(&spec(CcKind::Hpcc)).reaction_us.unwrap();
    assert!(
        f <= h,
        "Fig. 9 shape violated: FNCC reacted at {f}, HPCC at {h}"
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
