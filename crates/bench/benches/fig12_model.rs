//! Fig. 12 bench: the closed-form notification-latency model (pure
//! computation) and the measured INT-age instrumentation run.

use criterion::{criterion_group, criterion_main, Criterion};
use fncc_cc::CcKind;
use fncc_core::analysis::notification_gain_model;
use fncc_core::scenarios::{elephant_dumbbell, MicrobenchSpec};
use fncc_des::TimeDelta;
use fncc_net::units::Bandwidth;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    c.bench_function("fig12_model_closed_form", |b| {
        b.iter(|| {
            notification_gain_model(
                black_box(3),
                Bandwidth::gbps(100),
                TimeDelta::from_ns(1500),
                1518,
                70,
            )
        })
    });

    let mut g = c.benchmark_group("fig12_measured_int_age");
    g.sample_size(10);
    for cc in [CcKind::Fncc, CcKind::Hpcc] {
        g.bench_function(cc.name(), |b| {
            b.iter(|| {
                let spec = MicrobenchSpec {
                    cc,
                    horizon_us: 400,
                    join_at_us: 150,
                    ..Default::default()
                };
                elephant_dumbbell(&spec).mean_int_age_us
            })
        });
    }
    g.finish();

    // Shape: the modelled gain decreases with the hop index.
    let m = notification_gain_model(3, Bandwidth::gbps(100), TimeDelta::from_ns(1500), 1518, 70);
    assert!(m[0].gain() > m[2].gain());
}

criterion_group!(benches, bench);
criterion_main!(benches);
