//! Fig. 13 bench: congestion-location study (first/middle/last hop, LHCS
//! on/off) and the fairness staircase.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fncc_cc::CcKind;
use fncc_core::scenarios::{fairness_staircase, hop_congestion, HopLocation, MicrobenchSpec};
use fncc_des::TimeDelta;

fn spec(cc: CcKind, disable_lhcs: bool) -> MicrobenchSpec {
    MicrobenchSpec {
        cc,
        horizon_us: 500,
        join_at_us: 150,
        disable_lhcs,
        ..Default::default()
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13_hops");
    g.sample_size(10);
    for loc in [HopLocation::First, HopLocation::Middle, HopLocation::Last] {
        for cc in [CcKind::Hpcc, CcKind::Fncc] {
            g.bench_with_input(
                BenchmarkId::new(cc.name(), loc.name()),
                &(cc, loc),
                |b, &(cc, loc)| b.iter(|| hop_congestion(loc, &spec(cc, false)).peak_queue_kb),
            );
        }
    }
    g.bench_function("FNCC-no-LHCS/last", |b| {
        b.iter(|| hop_congestion(HopLocation::Last, &spec(CcKind::Fncc, true)).peak_queue_kb)
    });
    g.finish();

    let mut f = c.benchmark_group("fig13e_fairness");
    f.sample_size(10);
    f.bench_function("FNCC-staircase-4", |b| {
        b.iter(|| fairness_staircase(CcKind::Fncc, 4, TimeDelta::from_us(400), 1).jain_per_period)
    });
    f.finish();

    // Shape: LHCS fires at the last hop and lowers the standing queue.
    let with = hop_congestion(HopLocation::Last, &spec(CcKind::Fncc, false));
    let without = hop_congestion(HopLocation::Last, &spec(CcKind::Fncc, true));
    assert!(with.lhcs_triggers > 0 && without.lhcs_triggers == 0);
    assert!(with.mean_queue_kb <= without.mean_queue_kb * 1.05);
}

criterion_group!(benches, bench);
criterion_main!(benches);
