//! DES scale sweep: packet-backend events/sec across topology size and
//! flow count, plus a wheel-vs-heap scheduler comparison on a queue shape
//! that separates them (many far-future events pending).
//!
//! `fncc-repro bench-des` is the recording harness (it writes
//! `BENCH_des.json`); this criterion bench is for interactive A/B work on
//! the same points at reduced sizes.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fncc_cc::CcKind;
use fncc_core::{
    run_scenario, Scenario, SimBackend, StopCondition, TopologySpec, TrafficSpec, Workload,
};
use fncc_des::engine::{Engine, Model, QueueKind, Scheduler};
use fncc_des::{SimTime, TimeDelta};

fn point(k: u32, flows: u32) -> Scenario {
    let mut sc = Scenario::new(
        format!("des-scale-k{k}-{flows}f"),
        TopologySpec::FatTree { k },
        TrafficSpec::Poisson {
            workload: Workload::WebSearch,
            load: 0.5,
            flows,
        },
        CcKind::Fncc,
    );
    sc.stop = StopCondition::Drain { cap_ms: 100 };
    sc.seeds = vec![1];
    sc
}

fn bench_des_scale(c: &mut Criterion) {
    let mut g = c.benchmark_group("des_scale");
    g.sample_size(10);
    for (k, flows) in [(4u32, 200u32), (4, 1000), (8, 200), (8, 1000)] {
        let sc = point(k, flows);
        // Pre-measure the event count so criterion reports events/sec.
        let events = run_scenario(&sc, SimBackend::Packet).events;
        g.throughput(Throughput::Elements(events));
        g.bench_function(format!("k{k}_flows{flows}"), |b| {
            b.iter(|| run_scenario(&sc, SimBackend::Packet).events)
        });
    }
    g.finish();
}

/// Self-rescheduling chains over a backlog of far-future events: the shape
/// where the heap pays O(log n) against a large array and the wheel does
/// not. This isolates the scheduler from the network model.
struct Churn {
    remaining: u64,
}

impl Model for Churn {
    type Event = u32;
    fn handle(&mut self, _now: SimTime, ev: u32, s: &mut Scheduler<u32>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            s.after(TimeDelta::from_ns(10), ev);
        }
    }
}

fn bench_scheduler_kinds(c: &mut Criterion) {
    let mut g = c.benchmark_group("des_scale_sched");
    const N: u64 = 100_000;
    const BACKLOG: u64 = 100_000;
    g.throughput(Throughput::Elements(N));
    for (name, kind) in [("wheel", QueueKind::Wheel), ("heap", QueueKind::Heap)] {
        g.bench_function(format!("churn_100k_backlog_100k_{name}"), |b| {
            b.iter(|| {
                let mut eng = Engine::with_queue(Churn { remaining: N }, kind);
                // A standing backlog of far-future events (pending flow
                // starts, timeouts…) that the churn never reaches.
                for i in 0..BACKLOG {
                    eng.schedule(SimTime::from_ms(10 + i), 0);
                }
                for i in 0..16 {
                    eng.schedule(SimTime::from_ns(i), i as u32);
                }
                eng.run_until(SimTime::from_ms(9));
                eng.events_processed()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_des_scale, bench_scheduler_kinds);
criterion_main!(benches);
