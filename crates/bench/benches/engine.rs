//! Engine microbenchmarks: raw event throughput, switch forwarding, and
//! topology construction.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fncc_des::engine::{Engine, Model, Scheduler};
use fncc_des::{SimTime, TimeDelta};
use fncc_net::config::FabricConfig;
use fncc_net::ids::{FlowId, HostId, SwitchId};
use fncc_net::packet::Packet;
use fncc_net::pool::PacketPool;
use fncc_net::switch::Switch;
use fncc_net::telemetry::Telemetry;
use fncc_net::topology::Topology;
use fncc_net::units::Bandwidth;
use std::hint::black_box;

/// Self-rescheduling no-op model: measures pure heap throughput.
struct Churn {
    remaining: u64,
}

impl Model for Churn {
    type Event = u32;
    fn handle(&mut self, _now: SimTime, ev: u32, s: &mut Scheduler<u32>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            s.after(TimeDelta::from_ns(10), ev);
        }
    }
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    const N: u64 = 100_000;
    g.throughput(Throughput::Elements(N));
    g.bench_function("event_churn_100k", |b| {
        b.iter(|| {
            let mut eng = Engine::new(Churn { remaining: N });
            // 16 concurrent timer chains.
            for i in 0..16 {
                eng.schedule(SimTime::from_ns(i), i as u32);
            }
            eng.run_until_idle();
            eng.events_processed()
        })
    });
    g.finish();
}

fn bench_switch(c: &mut Criterion) {
    let mut g = c.benchmark_group("switch_forwarding");
    const N: u64 = 10_000;
    g.throughput(Throughput::Elements(N));
    g.bench_function("arrive_txdone_10k", |b| {
        let topo = Topology::dumbbell(2, 3, Bandwidth::gbps(100), TimeDelta::from_us(1));
        let cfg = FabricConfig::paper_default();
        b.iter(|| {
            let mut sw = Switch::new(SwitchId(0), &topo.switches[0], &cfg);
            let mut telem = Telemetry::new();
            let mut pool = PacketPool::new();
            let mut out = Vec::new();
            for i in 0..N {
                out.clear();
                let pkt = Packet::data(
                    FlowId(0),
                    HostId(0),
                    HostId(2),
                    i * 1456,
                    1456,
                    1518,
                    SimTime::from_ns(i),
                );
                sw.on_arrive(
                    SimTime::from_ns(i),
                    0,
                    pkt,
                    &cfg,
                    &mut telem,
                    &mut pool,
                    &mut out,
                );
                if !sw.ports[2].idle() {
                    out.clear();
                    sw.on_tx_done(
                        SimTime::from_ns(i),
                        2,
                        &cfg,
                        &mut telem,
                        &mut pool,
                        &mut out,
                    );
                }
            }
            black_box(sw.ports[2].tx_bytes)
        })
    });
    g.finish();
}

fn bench_topology(c: &mut Criterion) {
    let mut g = c.benchmark_group("topology");
    g.sample_size(10);
    g.bench_function("fat_tree_k8_build", |b| {
        b.iter(|| Topology::fat_tree(8, Bandwidth::gbps(100), TimeDelta::from_ns(1500)).n_hosts)
    });
    g.bench_function("fat_tree_k8_base_rtt", |b| {
        let topo = Topology::fat_tree(8, Bandwidth::gbps(100), TimeDelta::from_ns(1500));
        b.iter(|| topo.base_rtt(1518, 70))
    });
    g.finish();
}

criterion_group!(benches, bench_engine, bench_switch, bench_topology);
criterion_main!(benches);
