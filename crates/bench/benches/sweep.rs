//! Regression guard for `fncc_core::sweep::run_parallel`: the per-slot
//! hand-off must keep 1k short jobs fast (the old whole-vector mutex
//! serialized every result write).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fncc_core::sweep::run_parallel;

fn bench_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweep");
    const N: u64 = 1000;
    g.throughput(Throughput::Elements(N));
    g.bench_function("short_jobs_1k_x8threads", |b| {
        b.iter(|| {
            let jobs: Vec<_> = (0..N)
                .map(|i| {
                    move || {
                        // A few microseconds of real work per job.
                        let mut acc = i;
                        for k in 0..2_000u64 {
                            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                        }
                        acc
                    }
                })
                .collect();
            run_parallel(jobs, 8).len()
        })
    });
    g.bench_function("short_jobs_1k_x1thread", |b| {
        b.iter(|| {
            let jobs: Vec<_> = (0..N)
                .map(|i| {
                    move || {
                        let mut acc = i;
                        for k in 0..2_000u64 {
                            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                        }
                        acc
                    }
                })
                .collect();
            run_parallel(jobs, 1).len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
