//! Ablation bench: LHCS parameter variants and INT-refresh periods on the
//! last-hop scenario (the design choices DESIGN.md calls out).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fncc_cc::CcKind;
use fncc_core::scenarios::{elephant_dumbbell, hop_congestion, HopLocation, MicrobenchSpec};
use fncc_des::TimeDelta;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_lhcs");
    g.sample_size(10);
    for disable in [false, true] {
        let label = if disable { "without" } else { "with" };
        g.bench_with_input(BenchmarkId::new("lhcs", label), &disable, |b, &disable| {
            b.iter(|| {
                let spec = MicrobenchSpec {
                    cc: CcKind::Fncc,
                    horizon_us: 500,
                    join_at_us: 150,
                    disable_lhcs: disable,
                    ..Default::default()
                };
                hop_congestion(HopLocation::Last, &spec).mean_queue_kb
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("ablation_int_refresh");
    g.sample_size(10);
    for (label, refresh) in [
        ("live", None),
        ("1us", Some(TimeDelta::from_us(1))),
        ("20us", Some(TimeDelta::from_us(20))),
    ] {
        g.bench_with_input(
            BenchmarkId::new("refresh", label),
            &refresh,
            |b, refresh| {
                b.iter(|| {
                    let spec = MicrobenchSpec {
                        cc: CcKind::Fncc,
                        horizon_us: 500,
                        join_at_us: 150,
                        int_refresh: *refresh,
                        ..Default::default()
                    };
                    elephant_dumbbell(&spec).mean_util_after_join
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
