//! The unified Scenario path itself, one description on both engines: the
//! packet/fluid cost ratio is the headline number of the backend split, and
//! this bench guards the dispatch layer against accidental overhead (the
//! scenario build + JSON round-trip must stay trivially cheap next to the
//! run).

use criterion::{criterion_group, criterion_main, Criterion};
use fncc_cc::CcKind;
use fncc_core::prelude::*;
use fncc_core::Scenario;

fn scenario() -> Scenario {
    Scenario {
        seeds: vec![1],
        stop: StopCondition::Drain { cap_ms: 50 },
        ..Scenario::new(
            "bench-incast-fattree",
            TopologySpec::FatTree { k: 4 },
            TrafficSpec::Incast {
                receiver: 0,
                fan_in: 12,
                size: 200_000,
                waves: 2,
                gap_us: 100,
            },
            CcKind::Fncc,
        )
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("scenario_run");
    g.sample_size(10);
    for backend in [SimBackend::Packet, SimBackend::Fluid] {
        g.bench_function(backend.name(), |b| {
            b.iter(|| {
                let r = run_scenario(&scenario(), backend);
                assert!(r.unfinished.iter().all(|&u| u == 0));
                r.events
            })
        });
    }
    g.bench_function("describe_and_roundtrip", |b| {
        b.iter(|| {
            let sc = scenario();
            let parsed = Scenario::from_json(&sc.to_json()).unwrap();
            assert_eq!(parsed, sc);
            parsed.instance(1).1.len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
