//! Fig. 1b–d bench: the elephant-dumbbell queue scenario at 100/200/400 G
//! for FNCC/HPCC/DCQCN (scaled horizon). Measures simulator wall time and
//! asserts the figure's shape (FNCC's queue is the shallowest).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fncc_cc::CcKind;
use fncc_core::scenarios::{elephant_dumbbell, MicrobenchSpec};

fn spec(cc: CcKind, gbps: u64) -> MicrobenchSpec {
    MicrobenchSpec {
        cc,
        line_gbps: gbps,
        horizon_us: 450,
        join_at_us: 150,
        ..Default::default()
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig01_queue");
    g.sample_size(10);
    for gbps in [100u64, 200, 400] {
        for cc in [CcKind::Fncc, CcKind::Hpcc, CcKind::Dcqcn] {
            g.bench_with_input(
                BenchmarkId::new(cc.name(), gbps),
                &(cc, gbps),
                |b, &(cc, gbps)| b.iter(|| elephant_dumbbell(&spec(cc, gbps)).peak_queue_kb),
            );
        }
    }
    g.finish();

    // Shape check once per bench run.
    let f = elephant_dumbbell(&spec(CcKind::Fncc, 100)).peak_queue_kb;
    let h = elephant_dumbbell(&spec(CcKind::Hpcc, 100)).peak_queue_kb;
    let d = elephant_dumbbell(&spec(CcKind::Dcqcn, 100)).peak_queue_kb;
    assert!(
        f < h && h < d,
        "Fig. 1 shape violated: FNCC {f} HPCC {h} DCQCN {d}"
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
