//! Fig. 3 bench: pause-frame generation at 400 Gb/s per scheme.

use criterion::{criterion_group, criterion_main, Criterion};
use fncc_cc::CcKind;
use fncc_core::scenarios::{elephant_dumbbell, MicrobenchSpec};

fn spec(cc: CcKind) -> MicrobenchSpec {
    MicrobenchSpec {
        cc,
        line_gbps: 400,
        horizon_us: 450,
        join_at_us: 150,
        ..Default::default()
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig03_pause");
    g.sample_size(10);
    for cc in [CcKind::Dcqcn, CcKind::Hpcc, CcKind::Fncc] {
        g.bench_function(cc.name(), |b| {
            b.iter(|| elephant_dumbbell(&spec(cc)).pause_frames)
        });
    }
    g.finish();

    let d = elephant_dumbbell(&spec(CcKind::Dcqcn)).pause_frames;
    let f = elephant_dumbbell(&spec(CcKind::Fncc)).pause_frames;
    assert!(
        f <= d,
        "Fig. 3 shape violated: FNCC {f} pauses vs DCQCN {d}"
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
