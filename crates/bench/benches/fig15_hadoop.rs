//! Fig. 15 bench: FB_Hadoop workload on a k=4 fat-tree (scaled-down flow
//! count; the full k=8 figure is produced by `fncc-repro fig15`).

use criterion::{criterion_group, criterion_main, Criterion};
use fncc_cc::CcKind;
use fncc_core::scenarios::{Workload, WorkloadSpec};
use fncc_core::{run_scenario, SimBackend};

fn spec(cc: CcKind) -> WorkloadSpec {
    WorkloadSpec {
        cc,
        workload: Workload::FbHadoop,
        load: 0.5,
        n_flows: 150,
        seeds: vec![1],
        k: 4,
        line_gbps: 100,
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig15_hadoop");
    g.sample_size(10);
    for cc in [CcKind::Dcqcn, CcKind::Hpcc, CcKind::Fncc] {
        g.bench_function(cc.name(), |b| {
            b.iter(|| {
                let r = run_scenario(&spec(cc).scenario(), SimBackend::Packet);
                assert_eq!(r.unfinished, vec![0]);
                r.events
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
