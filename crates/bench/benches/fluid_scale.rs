//! Fluid-backend scale benchmarks: allocator throughput and end-to-end
//! flows-per-second on the paper's fat-tree.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fncc_cc::CcKind;
use fncc_des::time::TimeDelta;
use fncc_fluid::{scenarios, Demand, FluidSim, RateModel, WaterFiller};
use fncc_net::ids::HostId;
use fncc_net::topology::Topology;
use fncc_net::units::Bandwidth;

fn fat_tree() -> Topology {
    Topology::fat_tree(8, Bandwidth::gbps(100), TimeDelta::from_ns(1500))
}

fn bench_allocator(c: &mut Criterion) {
    let mut g = c.benchmark_group("fluid_allocator");
    // A synthetic incast: n flows over (n host uplinks + 1 receiver link).
    for n in [64usize, 1024, 16384] {
        let caps: Vec<f64> = (0..n + 1).map(|_| 100e9).collect();
        let paths: Vec<[u32; 2]> = (0..n).map(|i| [i as u32, n as u32]).collect();
        let demands: Vec<Demand<'_>> = paths
            .iter()
            .map(|p| Demand {
                cap: f64::INFINITY,
                path: p,
            })
            .collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("incast_waterfill", n), &n, |b, _| {
            let mut wf = WaterFiller::new(caps.len());
            let mut rates = Vec::new();
            b.iter(|| {
                wf.allocate(&caps, &demands, &mut rates);
                rates[0]
            })
        });
    }
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("fluid_end_to_end");
    g.sample_size(10);

    let topo = fat_tree();
    const N_PERM: u64 = 10_048; // 78.5 waves × 128 hosts
    g.throughput(Throughput::Elements(N_PERM));
    g.bench_function("permutation_10k_flows", |b| {
        b.iter(|| {
            let flows =
                scenarios::permutation_waves(topo.n_hosts, 100_000, 79, TimeDelta::from_us(50), 1);
            let r = FluidSim::new(topo.clone(), RateModel::paper_default(CcKind::Fncc))
                .flows(flows)
                .run();
            assert!(r.telemetry.all_flows_finished());
            r.reallocations
        })
    });

    const N_STORM: u64 = 10_000;
    g.throughput(Throughput::Elements(N_STORM));
    g.bench_function("incast_storm_10k_flows", |b| {
        b.iter(|| {
            let flows = scenarios::incast_storm(
                topo.n_hosts,
                HostId(0),
                100,
                100_000,
                100,
                TimeDelta::from_us(200),
            );
            let r = FluidSim::new(topo.clone(), RateModel::paper_default(CcKind::Fncc))
                .flows(flows)
                .run();
            assert!(r.telemetry.all_flows_finished());
            r.reallocations
        })
    });

    const N_POISSON: u64 = 5_000;
    g.throughput(Throughput::Elements(N_POISSON));
    g.bench_function("websearch_poisson_5k_flows", |b| {
        b.iter(|| {
            let flows = scenarios::poisson_trace(
                topo.n_hosts,
                Bandwidth::gbps(100),
                0.5,
                N_POISSON as u32,
                scenarios::Trace::WebSearch,
                1,
            );
            let r = FluidSim::new(topo.clone(), RateModel::paper_default(CcKind::Fncc))
                .flows(flows)
                .run();
            assert!(r.telemetry.all_flows_finished());
            r.reallocations
        })
    });
    g.finish();
}

criterion_group!(benches, bench_allocator, bench_end_to_end);
criterion_main!(benches);
