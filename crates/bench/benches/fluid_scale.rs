//! Fluid-backend scale benchmarks: allocator throughput (cold from-scratch
//! vs warm incremental) and end-to-end flows-per-second on the paper's
//! fat-tree.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fncc_cc::CcKind;
use fncc_des::time::TimeDelta;
use fncc_fluid::{scenarios, Demand, FluidSim, LinkMap, RateModel, WaterFiller};
use fncc_net::ids::{FlowId, HostId};
use fncc_net::topology::Topology;
use fncc_net::units::Bandwidth;

fn fat_tree() -> Topology {
    Topology::fat_tree(8, Bandwidth::gbps(100), TimeDelta::from_ns(1500))
}

/// A deterministic Poisson-like churn trace over the fat-tree: per event
/// one flow leaves and one arrives (the steady-state shape the warm start
/// exists for), over a standing population of `standing` random pairs.
fn churn_trace(standing: usize, events: usize) -> (Vec<f64>, Vec<Vec<u32>>, Vec<usize>) {
    let topo = fat_tree();
    let lm = LinkMap::new(&topo);
    let caps: Vec<f64> = lm.capacities().iter().map(|&c| c * 0.95).collect();
    let mut seed = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    let n_hosts = topo.n_hosts as u64;
    let mut paths = Vec::with_capacity(standing + events);
    for i in 0..standing + events {
        let src = (next() % n_hosts) as u32;
        let mut dst = (next() % (n_hosts - 1)) as u32;
        if dst >= src {
            dst += 1;
        }
        paths.push(lm.path_links(&topo, HostId(src), HostId(dst), FlowId(i as u32)));
    }
    let removals = (0..events)
        .map(|_| (next() % standing as u64) as usize)
        .collect();
    (caps, paths, removals)
}

fn bench_allocator(c: &mut Criterion) {
    let mut g = c.benchmark_group("fluid_allocator");
    // A synthetic incast: n flows over (n host uplinks + 1 receiver link).
    for n in [64usize, 1024, 16384] {
        let caps: Vec<f64> = (0..n + 1).map(|_| 100e9).collect();
        let paths: Vec<[u32; 2]> = (0..n).map(|i| [i as u32, n as u32]).collect();
        let demands: Vec<Demand<'_>> = paths
            .iter()
            .map(|p| Demand {
                cap: f64::INFINITY,
                path: p,
            })
            .collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("incast_waterfill", n), &n, |b, _| {
            let mut wf = WaterFiller::new(caps.len());
            let mut rates = Vec::new();
            b.iter(|| {
                wf.allocate(&caps, &demands, &mut rates);
                rates[0]
            })
        });
    }
    g.finish();
}

/// Cold vs warm: the same single-flow churn sequence solved from scratch
/// every event (the old per-event cost) vs through the incremental
/// `add_flow`/`remove_flow`/`rebalance` path. The ratio is the warm-start
/// payoff the ROADMAP item asked for; regressions here are hot-path
/// regressions in the fluid backend.
fn bench_churn_cold_vs_warm(c: &mut Criterion) {
    const STANDING: usize = 500;
    const EVENTS: usize = 200;
    let (caps, paths, removals) = churn_trace(STANDING, EVENTS);
    let mut g = c.benchmark_group("fluid_allocator_churn");
    g.throughput(Throughput::Elements(EVENTS as u64));

    g.bench_function("cold_full_solve", |b| {
        let mut wf = WaterFiller::new(caps.len());
        let mut rates = Vec::new();
        b.iter(|| {
            let mut alive: Vec<usize> = (0..STANDING).collect();
            let mut acc = 0.0;
            for (ev, &gone) in removals.iter().enumerate() {
                alive[gone] = STANDING + ev;
                let demands: Vec<Demand<'_>> = alive
                    .iter()
                    .map(|&ix| Demand {
                        cap: f64::INFINITY,
                        path: &paths[ix],
                    })
                    .collect();
                wf.allocate(&caps, &demands, &mut rates);
                acc += rates[gone];
            }
            acc
        })
    });

    g.bench_function("warm_incremental", |b| {
        let mut wf = WaterFiller::new(caps.len());
        b.iter(|| {
            wf.begin_incremental(&caps);
            let mut alive: Vec<u32> = paths[..STANDING].iter().map(|p| wf.add_flow(p)).collect();
            wf.rebalance();
            let mut acc = 0.0;
            for (ev, &gone) in removals.iter().enumerate() {
                wf.remove_flow(alive[gone]);
                alive[gone] = wf.add_flow(&paths[STANDING + ev]);
                wf.rebalance();
                acc += wf.rate(alive[gone]);
            }
            acc
        })
    });
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("fluid_end_to_end");
    g.sample_size(10);

    let topo = fat_tree();
    const N_PERM: u64 = 10_048; // 78.5 waves × 128 hosts
    g.throughput(Throughput::Elements(N_PERM));
    g.bench_function("permutation_10k_flows", |b| {
        b.iter(|| {
            let flows =
                scenarios::permutation_waves(topo.n_hosts, 100_000, 79, TimeDelta::from_us(50), 1);
            let r = FluidSim::new(topo.clone(), RateModel::paper_default(CcKind::Fncc))
                .flows(flows)
                .run()
                .unwrap();
            assert!(r.telemetry.all_flows_finished());
            r.reallocations
        })
    });

    const N_STORM: u64 = 10_000;
    g.throughput(Throughput::Elements(N_STORM));
    g.bench_function("incast_storm_10k_flows", |b| {
        b.iter(|| {
            let flows = scenarios::incast_storm(
                topo.n_hosts,
                HostId(0),
                100,
                100_000,
                100,
                TimeDelta::from_us(200),
            );
            let r = FluidSim::new(topo.clone(), RateModel::paper_default(CcKind::Fncc))
                .flows(flows)
                .run()
                .unwrap();
            assert!(r.telemetry.all_flows_finished());
            r.reallocations
        })
    });

    const N_POISSON: u64 = 5_000;
    g.throughput(Throughput::Elements(N_POISSON));
    g.bench_function("websearch_poisson_5k_flows", |b| {
        b.iter(|| {
            let flows = scenarios::poisson_trace(
                topo.n_hosts,
                Bandwidth::gbps(100),
                0.5,
                N_POISSON as u32,
                scenarios::Trace::WebSearch,
                1,
            );
            let r = FluidSim::new(topo.clone(), RateModel::paper_default(CcKind::Fncc))
                .flows(flows)
                .run()
                .unwrap();
            assert!(r.telemetry.all_flows_finished());
            r.reallocations
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_allocator,
    bench_churn_cold_vs_warm,
    bench_end_to_end
);
criterion_main!(benches);
