//! The metrics registry: named counters, gauges and log-linear HDR-style
//! histograms, the uniform export path behind both backends' `RunReport`
//! metric scalars.
//!
//! Hot paths hold typed handles ([`CounterId`], [`HistId`]) obtained once at
//! setup, so an update is an indexed add — no name lookup, no allocation.

/// Handle to a registered counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistId(usize);

/// Sub-bucket resolution: 2^4 = 16 linear sub-buckets per power of two,
/// bounding the relative quantization error at ~6%.
const SUB_BITS: u32 = 4;
const SUBS: u64 = 1 << SUB_BITS;

/// A log-linear histogram of non-negative integer values (HdrHistogram's
/// bucketing scheme): values below 2^4 get exact unit buckets, larger
/// values 16 linear sub-buckets per octave. Recording is O(1) and
/// allocation-free after the first value of a given magnitude.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    /// Bucket counts, grown lazily to the highest index touched.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: u64,
    max: u64,
}

/// Bucket index of a value.
fn bucket_of(v: u64) -> usize {
    if v < SUBS {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros();
        let sub = (v >> (exp - SUB_BITS)) & (SUBS - 1);
        (((exp - SUB_BITS) as u64 + 1) * SUBS + sub) as usize
    }
}

/// Representative (midpoint) value of a bucket index — the inverse of
/// [`bucket_of`] up to quantization.
fn bucket_value(ix: usize) -> u64 {
    let ix = ix as u64;
    if ix < SUBS {
        ix
    } else {
        let exp = ix / SUBS - 1 + SUB_BITS as u64;
        let sub = ix % SUBS;
        let lo = (1u64 << exp) | (sub << (exp - SUB_BITS as u64));
        lo + (1u64 << (exp - SUB_BITS as u64)) / 2
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: Vec::new(),
            count: 0,
            sum: 0.0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        let ix = bucket_of(v);
        if self.counts.len() <= ix {
            self.counts.resize(ix + 1, 0);
        }
        self.counts[ix] += 1;
        self.count += 1;
        self.sum += v as f64;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Record a non-negative float, rounded to the nearest integer unit.
    pub fn record_f64(&mut self, v: f64) {
        if v.is_finite() && v >= 0.0 {
            self.record(v.round() as u64);
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value, exact.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Fold `other`'s recorded values into `self`. Because recording
    /// rounds to integer units first, bucket counts, totals and extrema
    /// are all exact integer quantities (sums stay below 2^53), so the
    /// merged histogram is byte-identical to one fed the union of values
    /// in any order — the property the sharded DES relies on when it
    /// combines per-shard telemetry.
    pub fn absorb(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (ix, &c) in other.counts.iter().enumerate() {
            self.counts[ix] += c;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Nearest-rank percentile (`p` in [0, 100]) as a bucket-midpoint
    /// value; exact at the recorded extremes, within ~6% elsewhere.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (ix, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_value(ix).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// A registry of named metrics. Names are registered once (returning a
/// handle) and exported in registration order, which keeps downstream
/// artifacts diffable.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    hists: Vec<(String, Histogram)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or find) a counter by name.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(ix) = self.counters.iter().position(|(n, _)| n == name) {
            return CounterId(ix);
        }
        self.counters.push((name.to_string(), 0));
        CounterId(self.counters.len() - 1)
    }

    /// Register (or find) a gauge by name.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(ix) = self.gauges.iter().position(|(n, _)| n == name) {
            return GaugeId(ix);
        }
        self.gauges.push((name.to_string(), 0.0));
        GaugeId(self.gauges.len() - 1)
    }

    /// Register (or find) a histogram by name.
    pub fn histogram(&mut self, name: &str) -> HistId {
        if let Some(ix) = self.hists.iter().position(|(n, _)| n == name) {
            return HistId(ix);
        }
        self.hists.push((name.to_string(), Histogram::new()));
        HistId(self.hists.len() - 1)
    }

    /// Add to a counter.
    #[inline]
    pub fn inc(&mut self, id: CounterId, by: u64) {
        self.counters[id.0].1 += by;
    }

    /// Overwrite a counter with an externally-accumulated total (for
    /// counters that live in hot-path structs and are harvested at
    /// export time).
    #[inline]
    pub fn set_counter(&mut self, id: CounterId, total: u64) {
        self.counters[id.0].1 = total;
    }

    /// Set a gauge.
    #[inline]
    pub fn set_gauge(&mut self, id: GaugeId, v: f64) {
        self.gauges[id.0].1 = v;
    }

    /// Record a histogram value.
    #[inline]
    pub fn observe(&mut self, id: HistId, v: u64) {
        self.hists[id.0].1.record(v);
    }

    /// Record a histogram value given as a non-negative float.
    #[inline]
    pub fn observe_f64(&mut self, id: HistId, v: f64) {
        self.hists[id.0].1.record_f64(v);
    }

    /// Counters in registration order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// Gauges in registration order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// Histograms in registration order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.hists.iter().map(|(n, h)| (n.as_str(), h))
    }

    /// A histogram by name, if registered.
    pub fn histogram_by_name(&self, name: &str) -> Option<&Histogram> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Fold another registry into this one, matching metrics by name:
    /// counters and gauges add, histograms [`Histogram::absorb`]. Metrics
    /// only present in `other` are appended in `other`'s registration
    /// order, so two registries built by identical setup code merge into
    /// one with the same export order.
    pub fn absorb(&mut self, other: &MetricsRegistry) {
        for (n, v) in other.counters() {
            let id = self.counter(n);
            self.inc(id, v);
        }
        for (n, v) in other.gauges() {
            let id = self.gauge(n);
            self.gauges[id.0].1 += v;
        }
        for (n, h) in other.histograms() {
            let id = self.histogram(n);
            self.hists[id.0].1.absorb(h);
        }
    }

    /// Flatten every metric into `(name, value)` scalar pairs, in
    /// registration order: counters and gauges as-is, histograms as
    /// `<name>_{count,mean,p50,p99,max}`. Deterministic for deterministic
    /// inputs, so the pairs are safe to embed in run artifacts.
    pub fn scalar_pairs(&self) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        for (n, v) in self.counters() {
            out.push((n.to_string(), v as f64));
        }
        for (n, v) in self.gauges() {
            out.push((n.to_string(), v));
        }
        for (n, h) in self.histograms() {
            if h.count() == 0 {
                continue;
            }
            out.push((format!("{n}_count"), h.count() as f64));
            out.push((format!("{n}_mean"), h.mean()));
            out.push((format!("{n}_p50"), h.percentile(50.0) as f64));
            out.push((format!("{n}_p99"), h.percentile(99.0) as f64));
            out.push((format!("{n}_max"), h.max() as f64));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_invert_within_tolerance() {
        for v in [0u64, 1, 15, 16, 17, 100, 1000, 65_537, 1 << 40] {
            let mid = bucket_value(bucket_of(v));
            let err = (mid as f64 - v as f64).abs() / (v.max(1) as f64);
            assert!(err <= 0.07, "v={v} mid={mid} err={err}");
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..16 {
            h.record(v);
        }
        assert_eq!(h.count(), 16);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        assert_eq!(h.percentile(100.0), 15);
        assert_eq!(h.percentile(0.0), 0);
    }

    #[test]
    fn percentiles_track_a_wide_distribution() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let p50 = h.percentile(50.0) as f64;
        let p99 = h.percentile(99.0) as f64;
        assert!((p50 - 5000.0).abs() / 5000.0 < 0.07, "p50={p50}");
        assert!((p99 - 9900.0).abs() / 9900.0 < 0.07, "p99={p99}");
        assert_eq!(h.max(), 10_000);
        assert!((h.mean() - 5000.5).abs() < 1e-6);
    }

    #[test]
    fn registry_handles_and_scalars() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("widgets");
        assert_eq!(r.counter("widgets"), c, "re-registration returns same id");
        r.inc(c, 2);
        r.inc(c, 3);
        let g = r.gauge("level");
        r.set_gauge(g, 0.5);
        let h = r.histogram("lat");
        r.observe(h, 10);
        r.observe(h, 20);
        let pairs = r.scalar_pairs();
        let get = |k: &str| pairs.iter().find(|(n, _)| n == k).map(|(_, v)| *v);
        assert_eq!(get("widgets"), Some(5.0));
        assert_eq!(get("level"), Some(0.5));
        assert_eq!(get("lat_count"), Some(2.0));
        assert_eq!(get("lat_max"), Some(20.0));
    }

    #[test]
    fn empty_histograms_export_nothing() {
        let mut r = MetricsRegistry::new();
        r.histogram("never_fed");
        assert!(r.scalar_pairs().is_empty());
    }
}
