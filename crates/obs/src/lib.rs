#![warn(missing_docs)]
//! `fncc-obs` — the flight-recorder observability layer.
//!
//! This crate sits *below* every simulation crate (it depends on nothing,
//! not even `fncc-des`), so the engine, the fabric, the transport and the
//! fluid solver can all share one instrumentation vocabulary:
//!
//! * [`trace`] — a ring-buffered recorder of typed simulation events
//!   ([`TraceSink`]). The hot path pays a single predictable branch when
//!   tracing is off; when on, events land in a fixed-capacity flight
//!   recorder that drains to the versioned `fncc.trace/v1` JSONL artifact.
//! * [`metrics`] — a [`MetricsRegistry`] of named counters, gauges and
//!   log-linear HDR-style [`Histogram`]s, the uniform export path behind
//!   the `RunReport` metric scalars of both backends.
//! * [`profile`] — scoped wall-clock [`Profiler`] spans over engine phases
//!   (scheduler pop, dispatch, fluid solve, report build). Wall-clock
//!   readings are non-deterministic, so spans are off unless explicitly
//!   enabled (`FNCC_PROFILE=1`) and never feed deterministic artifacts.
//!
//! Timestamps cross this crate's API as raw picosecond `u64`s and ids as
//! raw `u32`s: depending on `fncc_des::SimTime` or the id newtypes would
//! invert the crate ordering.

pub mod metrics;
pub mod profile;
pub mod trace;

pub use metrics::{CounterId, GaugeId, HistId, Histogram, MetricsRegistry};
pub use profile::{PhaseId, Profiler};
pub use trace::{TraceEvent, TraceMeta, TraceSink, TRACE_SCHEMA};
